file(REMOVE_RECURSE
  "CMakeFiles/test_power_gating.dir/test_power_gating.cpp.o"
  "CMakeFiles/test_power_gating.dir/test_power_gating.cpp.o.d"
  "test_power_gating"
  "test_power_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
