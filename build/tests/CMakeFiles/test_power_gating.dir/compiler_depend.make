# Empty compiler generated dependencies file for test_power_gating.
# This may be replaced when dependencies are built.
