file(REMOVE_RECURSE
  "CMakeFiles/test_noc_power.dir/test_noc_power.cpp.o"
  "CMakeFiles/test_noc_power.dir/test_noc_power.cpp.o.d"
  "test_noc_power"
  "test_noc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
