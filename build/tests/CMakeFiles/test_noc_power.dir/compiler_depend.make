# Empty compiler generated dependencies file for test_noc_power.
# This may be replaced when dependencies are built.
