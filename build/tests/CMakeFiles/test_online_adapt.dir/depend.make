# Empty dependencies file for test_online_adapt.
# This may be replaced when dependencies are built.
