file(REMOVE_RECURSE
  "CMakeFiles/test_online_adapt.dir/test_online_adapt.cpp.o"
  "CMakeFiles/test_online_adapt.dir/test_online_adapt.cpp.o.d"
  "test_online_adapt"
  "test_online_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
