# Empty dependencies file for test_network_builder.
# This may be replaced when dependencies are built.
