file(REMOVE_RECURSE
  "CMakeFiles/test_network_builder.dir/test_network_builder.cpp.o"
  "CMakeFiles/test_network_builder.dir/test_network_builder.cpp.o.d"
  "test_network_builder"
  "test_network_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
