file(REMOVE_RECURSE
  "CMakeFiles/test_chip_power.dir/test_chip_power.cpp.o"
  "CMakeFiles/test_chip_power.dir/test_chip_power.cpp.o.d"
  "test_chip_power"
  "test_chip_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chip_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
