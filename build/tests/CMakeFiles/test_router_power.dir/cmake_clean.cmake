file(REMOVE_RECURSE
  "CMakeFiles/test_router_power.dir/test_router_power.cpp.o"
  "CMakeFiles/test_router_power.dir/test_router_power.cpp.o.d"
  "test_router_power"
  "test_router_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
