
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/test_parallel.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/test_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sprint/CMakeFiles/nocs_sprint.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nocs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/nocs_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/nocs_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nocs_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
