# Empty compiler generated dependencies file for test_floorplanner.
# This may be replaced when dependencies are built.
