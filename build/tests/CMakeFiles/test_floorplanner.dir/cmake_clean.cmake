file(REMOVE_RECURSE
  "CMakeFiles/test_floorplanner.dir/test_floorplanner.cpp.o"
  "CMakeFiles/test_floorplanner.dir/test_floorplanner.cpp.o.d"
  "test_floorplanner"
  "test_floorplanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_floorplanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
