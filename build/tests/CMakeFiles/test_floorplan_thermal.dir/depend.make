# Empty dependencies file for test_floorplan_thermal.
# This may be replaced when dependencies are built.
