file(REMOVE_RECURSE
  "CMakeFiles/test_floorplan_thermal.dir/test_floorplan_thermal.cpp.o"
  "CMakeFiles/test_floorplan_thermal.dir/test_floorplan_thermal.cpp.o.d"
  "test_floorplan_thermal"
  "test_floorplan_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_floorplan_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
