# Empty dependencies file for test_physical_wires.
# This may be replaced when dependencies are built.
