file(REMOVE_RECURSE
  "CMakeFiles/test_physical_wires.dir/test_physical_wires.cpp.o"
  "CMakeFiles/test_physical_wires.dir/test_physical_wires.cpp.o.d"
  "test_physical_wires"
  "test_physical_wires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physical_wires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
