file(REMOVE_RECURSE
  "CMakeFiles/test_cdor.dir/test_cdor.cpp.o"
  "CMakeFiles/test_cdor.dir/test_cdor.cpp.o.d"
  "test_cdor"
  "test_cdor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
