# Empty dependencies file for test_cdor.
# This may be replaced when dependencies are built.
