# Empty compiler generated dependencies file for test_sprint_controller.
# This may be replaced when dependencies are built.
