file(REMOVE_RECURSE
  "CMakeFiles/test_sprint_controller.dir/test_sprint_controller.cpp.o"
  "CMakeFiles/test_sprint_controller.dir/test_sprint_controller.cpp.o.d"
  "test_sprint_controller"
  "test_sprint_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sprint_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
