# Empty dependencies file for test_dim_sprint.
# This may be replaced when dependencies are built.
