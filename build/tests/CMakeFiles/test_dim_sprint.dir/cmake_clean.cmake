file(REMOVE_RECURSE
  "CMakeFiles/test_dim_sprint.dir/test_dim_sprint.cpp.o"
  "CMakeFiles/test_dim_sprint.dir/test_dim_sprint.cpp.o.d"
  "test_dim_sprint"
  "test_dim_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dim_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
