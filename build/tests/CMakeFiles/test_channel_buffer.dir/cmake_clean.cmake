file(REMOVE_RECURSE
  "CMakeFiles/test_channel_buffer.dir/test_channel_buffer.cpp.o"
  "CMakeFiles/test_channel_buffer.dir/test_channel_buffer.cpp.o.d"
  "test_channel_buffer"
  "test_channel_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
