# Empty compiler generated dependencies file for traffic_sweep.
# This may be replaced when dependencies are built.
