file(REMOVE_RECURSE
  "CMakeFiles/traffic_sweep.dir/traffic_sweep.cpp.o"
  "CMakeFiles/traffic_sweep.dir/traffic_sweep.cpp.o.d"
  "traffic_sweep"
  "traffic_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
