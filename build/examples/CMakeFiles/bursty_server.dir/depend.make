# Empty dependencies file for bursty_server.
# This may be replaced when dependencies are built.
