file(REMOVE_RECURSE
  "CMakeFiles/bursty_server.dir/bursty_server.cpp.o"
  "CMakeFiles/bursty_server.dir/bursty_server.cpp.o.d"
  "bursty_server"
  "bursty_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
