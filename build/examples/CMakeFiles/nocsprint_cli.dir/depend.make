# Empty dependencies file for nocsprint_cli.
# This may be replaced when dependencies are built.
