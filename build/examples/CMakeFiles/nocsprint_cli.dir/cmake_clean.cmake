file(REMOVE_RECURSE
  "CMakeFiles/nocsprint_cli.dir/nocsprint_cli.cpp.o"
  "CMakeFiles/nocsprint_cli.dir/nocsprint_cli.cpp.o.d"
  "nocsprint_cli"
  "nocsprint_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocsprint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
