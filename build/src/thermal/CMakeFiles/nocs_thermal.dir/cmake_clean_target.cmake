file(REMOVE_RECURSE
  "libnocs_thermal.a"
)
