file(REMOVE_RECURSE
  "CMakeFiles/nocs_thermal.dir/floorplan.cpp.o"
  "CMakeFiles/nocs_thermal.dir/floorplan.cpp.o.d"
  "CMakeFiles/nocs_thermal.dir/grid.cpp.o"
  "CMakeFiles/nocs_thermal.dir/grid.cpp.o.d"
  "CMakeFiles/nocs_thermal.dir/pcm.cpp.o"
  "CMakeFiles/nocs_thermal.dir/pcm.cpp.o.d"
  "libnocs_thermal.a"
  "libnocs_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocs_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
