# Empty dependencies file for nocs_thermal.
# This may be replaced when dependencies are built.
