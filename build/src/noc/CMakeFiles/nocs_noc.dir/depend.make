# Empty dependencies file for nocs_noc.
# This may be replaced when dependencies are built.
