file(REMOVE_RECURSE
  "CMakeFiles/nocs_noc.dir/network.cpp.o"
  "CMakeFiles/nocs_noc.dir/network.cpp.o.d"
  "CMakeFiles/nocs_noc.dir/network_interface.cpp.o"
  "CMakeFiles/nocs_noc.dir/network_interface.cpp.o.d"
  "CMakeFiles/nocs_noc.dir/parallel_sweep.cpp.o"
  "CMakeFiles/nocs_noc.dir/parallel_sweep.cpp.o.d"
  "CMakeFiles/nocs_noc.dir/router.cpp.o"
  "CMakeFiles/nocs_noc.dir/router.cpp.o.d"
  "CMakeFiles/nocs_noc.dir/simulator.cpp.o"
  "CMakeFiles/nocs_noc.dir/simulator.cpp.o.d"
  "CMakeFiles/nocs_noc.dir/traffic.cpp.o"
  "CMakeFiles/nocs_noc.dir/traffic.cpp.o.d"
  "libnocs_noc.a"
  "libnocs_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocs_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
