file(REMOVE_RECURSE
  "libnocs_noc.a"
)
