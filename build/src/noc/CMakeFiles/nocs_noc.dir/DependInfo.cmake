
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/nocs_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/nocs_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/network_interface.cpp" "src/noc/CMakeFiles/nocs_noc.dir/network_interface.cpp.o" "gcc" "src/noc/CMakeFiles/nocs_noc.dir/network_interface.cpp.o.d"
  "/root/repo/src/noc/parallel_sweep.cpp" "src/noc/CMakeFiles/nocs_noc.dir/parallel_sweep.cpp.o" "gcc" "src/noc/CMakeFiles/nocs_noc.dir/parallel_sweep.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/nocs_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/nocs_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/simulator.cpp" "src/noc/CMakeFiles/nocs_noc.dir/simulator.cpp.o" "gcc" "src/noc/CMakeFiles/nocs_noc.dir/simulator.cpp.o.d"
  "/root/repo/src/noc/traffic.cpp" "src/noc/CMakeFiles/nocs_noc.dir/traffic.cpp.o" "gcc" "src/noc/CMakeFiles/nocs_noc.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
