# Empty dependencies file for nocs_sprint.
# This may be replaced when dependencies are built.
