file(REMOVE_RECURSE
  "CMakeFiles/nocs_sprint.dir/area.cpp.o"
  "CMakeFiles/nocs_sprint.dir/area.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/cdor.cpp.o"
  "CMakeFiles/nocs_sprint.dir/cdor.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/cosim.cpp.o"
  "CMakeFiles/nocs_sprint.dir/cosim.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/dim_sprint.cpp.o"
  "CMakeFiles/nocs_sprint.dir/dim_sprint.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/floorplanner.cpp.o"
  "CMakeFiles/nocs_sprint.dir/floorplanner.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/llc.cpp.o"
  "CMakeFiles/nocs_sprint.dir/llc.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/network_builder.cpp.o"
  "CMakeFiles/nocs_sprint.dir/network_builder.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/online_adapt.cpp.o"
  "CMakeFiles/nocs_sprint.dir/online_adapt.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/physical_wires.cpp.o"
  "CMakeFiles/nocs_sprint.dir/physical_wires.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/power_gating.cpp.o"
  "CMakeFiles/nocs_sprint.dir/power_gating.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/rotation.cpp.o"
  "CMakeFiles/nocs_sprint.dir/rotation.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/sprint_controller.cpp.o"
  "CMakeFiles/nocs_sprint.dir/sprint_controller.cpp.o.d"
  "CMakeFiles/nocs_sprint.dir/topology.cpp.o"
  "CMakeFiles/nocs_sprint.dir/topology.cpp.o.d"
  "libnocs_sprint.a"
  "libnocs_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocs_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
