
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sprint/area.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/area.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/area.cpp.o.d"
  "/root/repo/src/sprint/cdor.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/cdor.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/cdor.cpp.o.d"
  "/root/repo/src/sprint/cosim.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/cosim.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/cosim.cpp.o.d"
  "/root/repo/src/sprint/dim_sprint.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/dim_sprint.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/dim_sprint.cpp.o.d"
  "/root/repo/src/sprint/floorplanner.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/floorplanner.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/floorplanner.cpp.o.d"
  "/root/repo/src/sprint/llc.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/llc.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/llc.cpp.o.d"
  "/root/repo/src/sprint/network_builder.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/network_builder.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/network_builder.cpp.o.d"
  "/root/repo/src/sprint/online_adapt.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/online_adapt.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/online_adapt.cpp.o.d"
  "/root/repo/src/sprint/physical_wires.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/physical_wires.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/physical_wires.cpp.o.d"
  "/root/repo/src/sprint/power_gating.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/power_gating.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/power_gating.cpp.o.d"
  "/root/repo/src/sprint/rotation.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/rotation.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/rotation.cpp.o.d"
  "/root/repo/src/sprint/sprint_controller.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/sprint_controller.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/sprint_controller.cpp.o.d"
  "/root/repo/src/sprint/topology.cpp" "src/sprint/CMakeFiles/nocs_sprint.dir/topology.cpp.o" "gcc" "src/sprint/CMakeFiles/nocs_sprint.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nocs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nocs_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nocs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/nocs_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/nocs_cmp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
