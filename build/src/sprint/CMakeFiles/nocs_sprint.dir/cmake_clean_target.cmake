file(REMOVE_RECURSE
  "libnocs_sprint.a"
)
