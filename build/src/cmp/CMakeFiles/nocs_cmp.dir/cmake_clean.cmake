file(REMOVE_RECURSE
  "CMakeFiles/nocs_cmp.dir/perf_model.cpp.o"
  "CMakeFiles/nocs_cmp.dir/perf_model.cpp.o.d"
  "CMakeFiles/nocs_cmp.dir/workload.cpp.o"
  "CMakeFiles/nocs_cmp.dir/workload.cpp.o.d"
  "libnocs_cmp.a"
  "libnocs_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocs_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
