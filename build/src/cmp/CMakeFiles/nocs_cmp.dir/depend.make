# Empty dependencies file for nocs_cmp.
# This may be replaced when dependencies are built.
