
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cmp/perf_model.cpp" "src/cmp/CMakeFiles/nocs_cmp.dir/perf_model.cpp.o" "gcc" "src/cmp/CMakeFiles/nocs_cmp.dir/perf_model.cpp.o.d"
  "/root/repo/src/cmp/workload.cpp" "src/cmp/CMakeFiles/nocs_cmp.dir/workload.cpp.o" "gcc" "src/cmp/CMakeFiles/nocs_cmp.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
