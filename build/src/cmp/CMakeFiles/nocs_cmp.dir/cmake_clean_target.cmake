file(REMOVE_RECURSE
  "libnocs_cmp.a"
)
