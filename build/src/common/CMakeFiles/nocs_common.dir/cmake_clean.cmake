file(REMOVE_RECURSE
  "CMakeFiles/nocs_common.dir/config.cpp.o"
  "CMakeFiles/nocs_common.dir/config.cpp.o.d"
  "CMakeFiles/nocs_common.dir/geometry.cpp.o"
  "CMakeFiles/nocs_common.dir/geometry.cpp.o.d"
  "CMakeFiles/nocs_common.dir/log.cpp.o"
  "CMakeFiles/nocs_common.dir/log.cpp.o.d"
  "CMakeFiles/nocs_common.dir/parallel.cpp.o"
  "CMakeFiles/nocs_common.dir/parallel.cpp.o.d"
  "CMakeFiles/nocs_common.dir/stats.cpp.o"
  "CMakeFiles/nocs_common.dir/stats.cpp.o.d"
  "CMakeFiles/nocs_common.dir/table.cpp.o"
  "CMakeFiles/nocs_common.dir/table.cpp.o.d"
  "libnocs_common.a"
  "libnocs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
