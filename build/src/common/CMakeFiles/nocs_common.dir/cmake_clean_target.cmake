file(REMOVE_RECURSE
  "libnocs_common.a"
)
