# Empty compiler generated dependencies file for nocs_common.
# This may be replaced when dependencies are built.
