file(REMOVE_RECURSE
  "libnocs_power.a"
)
