file(REMOVE_RECURSE
  "CMakeFiles/nocs_power.dir/chip_power.cpp.o"
  "CMakeFiles/nocs_power.dir/chip_power.cpp.o.d"
  "CMakeFiles/nocs_power.dir/noc_power.cpp.o"
  "CMakeFiles/nocs_power.dir/noc_power.cpp.o.d"
  "CMakeFiles/nocs_power.dir/router_power.cpp.o"
  "CMakeFiles/nocs_power.dir/router_power.cpp.o.d"
  "libnocs_power.a"
  "libnocs_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocs_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
