# Empty compiler generated dependencies file for nocs_power.
# This may be replaced when dependencies are built.
