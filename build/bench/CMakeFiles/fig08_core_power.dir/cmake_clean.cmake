file(REMOVE_RECURSE
  "CMakeFiles/fig08_core_power.dir/fig08_core_power.cpp.o"
  "CMakeFiles/fig08_core_power.dir/fig08_core_power.cpp.o.d"
  "fig08_core_power"
  "fig08_core_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_core_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
