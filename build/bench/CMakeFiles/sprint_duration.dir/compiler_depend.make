# Empty compiler generated dependencies file for sprint_duration.
# This may be replaced when dependencies are built.
