file(REMOVE_RECURSE
  "CMakeFiles/sprint_duration.dir/sprint_duration.cpp.o"
  "CMakeFiles/sprint_duration.dir/sprint_duration.cpp.o.d"
  "sprint_duration"
  "sprint_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprint_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
