# Empty dependencies file for ablation_wires.
# This may be replaced when dependencies are built.
