file(REMOVE_RECURSE
  "CMakeFiles/ablation_wires.dir/ablation_wires.cpp.o"
  "CMakeFiles/ablation_wires.dir/ablation_wires.cpp.o.d"
  "ablation_wires"
  "ablation_wires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
