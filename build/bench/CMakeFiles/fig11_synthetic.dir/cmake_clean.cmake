file(REMOVE_RECURSE
  "CMakeFiles/fig11_synthetic.dir/fig11_synthetic.cpp.o"
  "CMakeFiles/fig11_synthetic.dir/fig11_synthetic.cpp.o.d"
  "fig11_synthetic"
  "fig11_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
