# Empty compiler generated dependencies file for fig03_chip_power.
# This may be replaced when dependencies are built.
