file(REMOVE_RECURSE
  "CMakeFiles/fig03_chip_power.dir/fig03_chip_power.cpp.o"
  "CMakeFiles/fig03_chip_power.dir/fig03_chip_power.cpp.o.d"
  "fig03_chip_power"
  "fig03_chip_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_chip_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
