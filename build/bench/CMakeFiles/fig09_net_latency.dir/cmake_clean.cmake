file(REMOVE_RECURSE
  "CMakeFiles/fig09_net_latency.dir/fig09_net_latency.cpp.o"
  "CMakeFiles/fig09_net_latency.dir/fig09_net_latency.cpp.o.d"
  "fig09_net_latency"
  "fig09_net_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_net_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
