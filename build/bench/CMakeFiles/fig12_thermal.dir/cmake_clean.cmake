file(REMOVE_RECURSE
  "CMakeFiles/fig12_thermal.dir/fig12_thermal.cpp.o"
  "CMakeFiles/fig12_thermal.dir/fig12_thermal.cpp.o.d"
  "fig12_thermal"
  "fig12_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
