file(REMOVE_RECURSE
  "CMakeFiles/fig01_sprint_phases.dir/fig01_sprint_phases.cpp.o"
  "CMakeFiles/fig01_sprint_phases.dir/fig01_sprint_phases.cpp.o.d"
  "fig01_sprint_phases"
  "fig01_sprint_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sprint_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
