# Empty dependencies file for fig01_sprint_phases.
# This may be replaced when dependencies are built.
