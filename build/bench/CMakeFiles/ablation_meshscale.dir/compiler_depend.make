# Empty compiler generated dependencies file for ablation_meshscale.
# This may be replaced when dependencies are built.
