file(REMOVE_RECURSE
  "CMakeFiles/ablation_meshscale.dir/ablation_meshscale.cpp.o"
  "CMakeFiles/ablation_meshscale.dir/ablation_meshscale.cpp.o.d"
  "ablation_meshscale"
  "ablation_meshscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_meshscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
