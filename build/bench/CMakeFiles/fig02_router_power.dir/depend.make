# Empty dependencies file for fig02_router_power.
# This may be replaced when dependencies are built.
