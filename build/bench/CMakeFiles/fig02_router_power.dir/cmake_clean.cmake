file(REMOVE_RECURSE
  "CMakeFiles/fig02_router_power.dir/fig02_router_power.cpp.o"
  "CMakeFiles/fig02_router_power.dir/fig02_router_power.cpp.o.d"
  "fig02_router_power"
  "fig02_router_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_router_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
