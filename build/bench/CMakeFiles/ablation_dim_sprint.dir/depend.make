# Empty dependencies file for ablation_dim_sprint.
# This may be replaced when dependencies are built.
