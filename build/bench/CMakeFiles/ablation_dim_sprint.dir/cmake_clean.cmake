file(REMOVE_RECURSE
  "CMakeFiles/ablation_dim_sprint.dir/ablation_dim_sprint.cpp.o"
  "CMakeFiles/ablation_dim_sprint.dir/ablation_dim_sprint.cpp.o.d"
  "ablation_dim_sprint"
  "ablation_dim_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dim_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
