file(REMOVE_RECURSE
  "CMakeFiles/ablation_floorplan.dir/ablation_floorplan.cpp.o"
  "CMakeFiles/ablation_floorplan.dir/ablation_floorplan.cpp.o.d"
  "ablation_floorplan"
  "ablation_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
