# Empty dependencies file for fig07_exec_time.
# This may be replaced when dependencies are built.
