file(REMOVE_RECURSE
  "CMakeFiles/fig07_exec_time.dir/fig07_exec_time.cpp.o"
  "CMakeFiles/fig07_exec_time.dir/fig07_exec_time.cpp.o.d"
  "fig07_exec_time"
  "fig07_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
