# Empty compiler generated dependencies file for fig04_parsec_scaling.
# This may be replaced when dependencies are built.
