# Empty dependencies file for fig10_net_power.
# This may be replaced when dependencies are built.
