# Empty compiler generated dependencies file for cdor_area.
# This may be replaced when dependencies are built.
