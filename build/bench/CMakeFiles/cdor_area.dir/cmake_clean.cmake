file(REMOVE_RECURSE
  "CMakeFiles/cdor_area.dir/cdor_area.cpp.o"
  "CMakeFiles/cdor_area.dir/cdor_area.cpp.o.d"
  "cdor_area"
  "cdor_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdor_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
