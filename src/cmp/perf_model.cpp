#include "cmp/perf_model.hpp"

namespace nocs::cmp {

double PerfModel::exec_time(const WorkloadParams& w, int n) const {
  NOCS_EXPECTS(n >= 1 && n <= n_max_);
  w.validate();
  const double f = w.serial_frac;
  const double nn = n;
  return f + (1.0 - f) / nn + w.alpha * (nn - 1.0) +
         w.beta * (nn - 1.0) * (nn - 1.0);
}

double PerfModel::exec_time(const WorkloadParams& w, int n,
                            double measured_latency,
                            double reference_latency) const {
  NOCS_EXPECTS(measured_latency > 0.0 && reference_latency > 0.0);
  const double base = exec_time(w, n);
  if (n == 1) return base;  // no network traffic in nominal operation
  const double parallel = (1.0 - w.serial_frac) / static_cast<double>(n);
  const double deviation = measured_latency / reference_latency - 1.0;
  return base + w.comm_gamma * parallel * deviation;
}

int PerfModel::optimal_level(const WorkloadParams& w) const {
  int best = 1;
  double best_t = exec_time(w, 1);
  for (int n = 2; n <= n_max_; ++n) {
    const double t = exec_time(w, n);
    if (t < best_t) {
      best_t = t;
      best = n;
    }
  }
  return best;
}

std::vector<double> PerfModel::scaling_curve(const WorkloadParams& w) const {
  std::vector<double> curve;
  curve.reserve(static_cast<std::size_t>(n_max_));
  for (int n = 1; n <= n_max_; ++n) curve.push_back(exec_time(w, n));
  return curve;
}

}  // namespace nocs::cmp
