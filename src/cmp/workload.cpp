#include "cmp/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace nocs::cmp {

namespace {

double model_time(double f, double alpha, double beta, int n) {
  const double nn = n;
  return f + (1.0 - f) / nn + alpha * (nn - 1.0) +
         beta * (nn - 1.0) * (nn - 1.0);
}

int model_argmin(double f, double alpha, double beta, int n_max) {
  int best = 1;
  double best_t = model_time(f, alpha, beta, 1);
  for (int n = 2; n <= n_max; ++n) {
    const double t = model_time(f, alpha, beta, n);
    if (t < best_t) {
      best_t = t;
      best = n;
    }
  }
  return best;
}

}  // namespace

WorkloadParams calibrate_workload(const CalibrationTarget& t, int n_max) {
  NOCS_EXPECTS(n_max >= 2);
  NOCS_EXPECTS(t.optimal_cores >= 1 && t.optimal_cores <= n_max);
  NOCS_EXPECTS(t.speedup_optimal >= 1.0 && t.speedup_full > 0.0);

  const double k = t.optimal_cores;
  const double n = n_max;
  const double t_opt = 1.0 / t.speedup_optimal;
  const double t_full = 1.0 / t.speedup_full;

  // 2-D feasibility scan over (parallel fraction g, curvature beta).  For
  // each candidate, alpha is chosen so the speedup at the target optimum is
  // matched *exactly*; candidates whose integer argmin is not the target
  // level or whose parameters go negative are rejected; among the rest we
  // keep the one that best matches the full-machine speedup.  (An exact
  // 3-equation solve is overconstrained for sharply peaked workloads.)
  double best_err = 1e30;
  double best_g = -1.0, best_alpha = 0.0, best_beta = 0.0;

  for (int gi = 1; gi <= 200; ++gi) {
    const double g = gi * 0.005;
    for (int bi = 0; bi <= 250; ++bi) {
      const double beta = bi * 0.0002;
      double alpha;
      if (t.optimal_cores > 1) {
        // T(k) = t_opt  =>  alpha = (t_opt - 1 + g(1 - 1/k) - beta(k-1)^2) / (k-1)
        alpha = (t_opt - 1.0 + g * (1.0 - 1.0 / k) -
                 beta * (k - 1.0) * (k - 1.0)) / (k - 1.0);
      } else {
        // Serial workload (T(1) == 1 trivially): fit the full-machine
        // slowdown exactly instead.
        alpha = (t_full - 1.0 + g * (1.0 - 1.0 / n) -
                 beta * (n - 1.0) * (n - 1.0)) / (n - 1.0);
      }
      if (alpha < 0.0) continue;
      const double f = 1.0 - g;
      if (model_argmin(f, alpha, beta, n_max) != t.optimal_cores) continue;
      const double err =
          std::fabs(model_time(f, alpha, beta, n_max) - t_full);
      if (err < best_err) {
        best_err = err;
        best_g = g;
        best_alpha = alpha;
        best_beta = beta;
      }
    }
  }

  if (best_g < 0.0)
    throw std::invalid_argument("infeasible calibration target for " +
                                t.name);

  WorkloadParams w;
  w.name = t.name;
  w.serial_frac = 1.0 - best_g;
  w.alpha = best_alpha;
  w.beta = best_beta;
  w.comm_gamma = t.comm_gamma;
  w.injection_rate = t.injection_rate;
  w.validate();
  return w;
}

std::vector<CalibrationTarget> parsec_targets() {
  // {name, optimal cores, speedup at optimum, speedup at 16, comm gamma,
  //  injection rate}.  Targets reproduce the workload classes of Figure 4
  //  and the aggregate speedups of Figure 7 (see EXPERIMENTS.md).
  return {
      {"blackscholes", 16, 5.5, 5.5, 0.05, 0.03},
      {"bodytrack", 16, 4.8, 4.8, 0.10, 0.08},
      {"canneal", 5, 2.8, 1.2, 0.30, 0.25},
      {"dedup", 4, 2.1, 0.9, 0.20, 0.15},
      {"ferret", 8, 3.6, 1.8, 0.15, 0.12},
      {"fluidanimate", 8, 4.2, 2.0, 0.15, 0.10},
      {"freqmine", 2, 1.1, 0.55, 0.10, 0.05},
      {"streamcluster", 5, 3.0, 1.3, 0.30, 0.28},
      {"swaptions", 8, 4.6, 1.6, 0.05, 0.06},
      {"vips", 6, 3.6, 1.4, 0.15, 0.10},
      {"x264", 6, 3.0, 1.5, 0.15, 0.09},
  };
}

std::vector<WorkloadParams> parsec_suite(int n_max) {
  std::vector<WorkloadParams> suite;
  for (const CalibrationTarget& t : parsec_targets())
    suite.push_back(calibrate_workload(t, n_max));
  return suite;
}

const WorkloadParams& find_workload(const std::vector<WorkloadParams>& suite,
                                    const std::string& name) {
  for (const WorkloadParams& w : suite)
    if (w.name == name) return w;
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace nocs::cmp
