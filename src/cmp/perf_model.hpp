// Execution-time model and sprint-level selection.
//
// Stands in for the paper's off-line PARSEC profiling: given a workload's
// calibrated parameters, it predicts normalized execution time at any core
// count, optionally corrected by *measured* network latency from the
// cycle-accurate simulator (so CDOR's shorter paths feed back into
// end-to-end performance), and selects the optimal sprint level.
#pragma once

#include <vector>

#include "cmp/workload.hpp"
#include "common/assert.hpp"

namespace nocs::cmp {

class PerfModel {
 public:
  /// `n_max` is the machine's core count (16 in the paper's Table 1).
  explicit PerfModel(int n_max = 16) : n_max_(n_max) {
    NOCS_EXPECTS(n_max >= 1);
  }

  int n_max() const { return n_max_; }

  /// Normalized execution time on `n` cores with the calibration-reference
  /// interconnect (T(1) == 1).
  double exec_time(const WorkloadParams& w, int n) const;

  /// Execution time with a measured average network latency.  The parallel
  /// portion inflates (or deflates) by comm_gamma for each fractional
  /// deviation of `measured_latency` from `reference_latency` — this is
  /// how CDOR's 24.5 % latency cut shows up in end-to-end time.
  double exec_time(const WorkloadParams& w, int n, double measured_latency,
                   double reference_latency) const;

  /// Speedup over single-core nominal operation.
  double speedup(const WorkloadParams& w, int n) const {
    return 1.0 / exec_time(w, n);
  }

  /// The optimal sprint level: the core count in [1, n_max] minimizing
  /// execution time (the paper's off-line profiling step).
  int optimal_level(const WorkloadParams& w) const;

  /// Execution time at every core count 1..n_max (Figure 4 rows).
  std::vector<double> scaling_curve(const WorkloadParams& w) const;

 private:
  int n_max_;
};

}  // namespace nocs::cmp
