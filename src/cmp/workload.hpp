// Workload descriptors: an analytic-but-calibrated substitute for the
// paper's gem5 + PARSEC 2.1 full-system runs.
//
// Normalized execution time on n cores is modeled as
//
//   T(n) = f + (1-f)/n + alpha*(n-1) + beta*(n-1)^2        (T(1) = 1)
//
// where f is the serial fraction (Amdahl), alpha captures per-core
// scheduling/synchronization cost, and beta captures the superlinear
// overheads (lock contention, long interconnect paths as computation
// spreads) that make some PARSEC workloads *slow down* beyond their sweet
// spot — the three workload classes of the paper's Figure 4: scalable
// (blackscholes, bodytrack), serial (freqmine), and peak-then-degrade
// (vips, swaptions, ...).
//
// Each benchmark also carries a NoC injection rate (flits/cycle/node during
// the sprint, all below the 0.3 the paper reports) and a communication
// sensitivity used to couple measured network latency into execution time.
#pragma once

#include <string>
#include <vector>

#include "common/assert.hpp"

namespace nocs::cmp {

/// Parameters of one workload's execution-time model.
struct WorkloadParams {
  std::string name;
  double serial_frac = 0.0;  ///< f: Amdahl serial fraction
  double alpha = 0.0;        ///< linear per-core overhead
  double beta = 0.0;         ///< quadratic overhead (degradation)
  double comm_gamma = 0.15;  ///< sensitivity to network-latency deviation
  double injection_rate = 0.1;  ///< flits/cycle/node injected while sprinting

  void validate() const {
    NOCS_EXPECTS(!name.empty());
    NOCS_EXPECTS(serial_frac >= 0.0 && serial_frac <= 1.0);
    NOCS_EXPECTS(alpha >= 0.0 && beta >= 0.0);
    NOCS_EXPECTS(comm_gamma >= 0.0);
    NOCS_EXPECTS(injection_rate > 0.0 && injection_rate <= 1.0);
  }
};

/// Calibration targets: the observable behaviour we fit (f, alpha, beta) to.
struct CalibrationTarget {
  std::string name;
  int optimal_cores = 8;       ///< core count minimizing execution time
  double speedup_optimal = 3.0;  ///< 1 / T(optimal_cores)
  double speedup_full = 2.0;     ///< 1 / T(n_max); < optimal when degrading
  double comm_gamma = 0.15;
  double injection_rate = 0.1;
};

/// Fits WorkloadParams to a target on an `n_max`-core machine by solving
/// the (linear in f, alpha, beta) system
///   T(k*) = 1/s*,  T(n_max) = 1/s_full,  dT/dn(k*) = 0  (interior k*)
/// with beta pinned to 0 when k* == n_max.  Throws std::invalid_argument
/// if the target is infeasible (would need negative parameters).
WorkloadParams calibrate_workload(const CalibrationTarget& target, int n_max);

/// The PARSEC 2.1 suite calibrated for the paper's 16-core system:
/// blackscholes, bodytrack, canneal, dedup, ferret, fluidanimate, freqmine,
/// streamcluster, swaptions, vips, x264.
std::vector<WorkloadParams> parsec_suite(int n_max = 16);

/// The calibration table behind parsec_suite() (exposed for tests and the
/// experiment index in EXPERIMENTS.md).
std::vector<CalibrationTarget> parsec_targets();

/// Looks a workload up by name; throws std::out_of_range when absent.
const WorkloadParams& find_workload(const std::vector<WorkloadParams>& suite,
                                    const std::string& name);

}  // namespace nocs::cmp
