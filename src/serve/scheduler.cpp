#include "serve/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace nocs::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds ms(std::uint64_t n) {
  return std::chrono::milliseconds(n);
}

std::uint64_t positive_u64(const Config& cfg, const char* key,
                           std::uint64_t def) {
  const long long v = cfg.get_int(key, static_cast<long long>(def));
  if (v < 0)
    throw std::invalid_argument(std::string(key) + " must be >= 0");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

ServeLimits ServeLimits::from_config(const Config& cfg) {
  ServeLimits l;
  l.workers = static_cast<int>(cfg.get_int("serve_workers", l.workers));
  if (l.workers < 1)
    throw std::invalid_argument("serve_workers must be >= 1");
  const long long jobs =
      cfg.get_int("serve_max_jobs", static_cast<long long>(l.max_jobs));
  const long long pending = cfg.get_int(
      "serve_max_pending", static_cast<long long>(l.max_pending_tasks));
  if (jobs < 1 || pending < 1)
    throw std::invalid_argument(
        "serve_max_jobs and serve_max_pending must be >= 1");
  l.max_jobs = static_cast<std::size_t>(jobs);
  l.max_pending_tasks = static_cast<std::size_t>(pending);
  l.max_attempts =
      static_cast<int>(cfg.get_int("serve_max_attempts", l.max_attempts));
  if (l.max_attempts < 1)
    throw std::invalid_argument("serve_max_attempts must be >= 1");
  l.task_timeout_ms =
      positive_u64(cfg, "serve_task_timeout_ms", l.task_timeout_ms);
  l.backoff_base_ms = positive_u64(cfg, "serve_backoff_ms", l.backoff_base_ms);
  l.backoff_cap_ms =
      positive_u64(cfg, "serve_backoff_cap_ms", l.backoff_cap_ms);
  l.progress_every_ms =
      positive_u64(cfg, "serve_progress_every_ms", l.progress_every_ms);
  return l;
}

std::uint64_t backoff_delay_ms(std::uint64_t base_ms, std::uint64_t cap_ms,
                               int attempt) {
  if (base_ms == 0) return 0;
  const int exp = std::max(attempt - 1, 0);
  // `base << exp` would wrap for exp >= 64 (and is UB-adjacent even
  // before that once the product leaves the type); any shift that cannot
  // fit under the cap is by definition >= the cap, so saturate instead.
  if (exp >= 64 || base_ms > (cap_ms >> exp)) return cap_ms;
  return base_ms << exp;
}

TaskOutcome TaskOutcome::ok(json::Value r) {
  TaskOutcome o;
  o.status = Status::kOk;
  o.result = std::move(r);
  return o;
}

TaskOutcome TaskOutcome::cancelled() {
  TaskOutcome o;
  o.status = Status::kCancelled;
  return o;
}

TaskOutcome TaskOutcome::failed(std::string why) {
  TaskOutcome o;
  o.status = Status::kError;
  o.error = std::move(why);
  return o;
}

namespace {

/// One task's scheduling state.  `queued` means a pool closure is in
/// flight for it; `waiting_retry` that the supervisor owns its requeue.
struct TaskState {
  int attempts = 0;
  bool done = false;
  bool queued = false;
  bool running = false;
  bool waiting_retry = false;
  bool timed_out = false;  ///< current attempt was killed by the watchdog
  bool preempted = false;  ///< current attempt was evicted for a kHigh job
  Clock::time_point deadline{};  ///< valid while running with a timeout
  Clock::time_point retry_at{};  ///< valid while waiting_retry
  CancellationToken token;
  /// Latest cycle the runner reported.  Written by the worker thread via
  /// TaskContext::report_progress (relaxed store, no scheduler lock —
  /// the drain phase reports every cycle) and read under `mu` by watch
  /// frames; shared_ptr so the closure outlives any attempt.
  std::shared_ptr<std::atomic<std::uint64_t>> cycles =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

struct JobState {
  enum class State { kActive, kDone, kQuarantined };

  std::string id;
  JobSpec spec;
  std::string fp;
  bool recovered = false;
  State state = State::kActive;
  std::vector<TaskState> tasks;
  std::vector<json::Value> results;
  std::size_t done_tasks = 0;
  json::Value result;  ///< terminal kDone
  std::string error;   ///< terminal kQuarantined

  const char* state_name() const {
    switch (state) {
      case State::kDone: return "done";
      case State::kQuarantined: return "quarantined";
      default: break;
    }
    for (const TaskState& t : tasks)
      if (t.running) return "running";
    return "queued";
  }
};

}  // namespace

struct JobScheduler::Impl {
  ServeLimits limits;
  TaskRunner runner;
  Aggregator aggregate;
  Ledger* ledger;

  mutable std::mutex mu;
  /// Notified on any job reaching a terminal state (and on drain/stop),
  /// which is exactly what `wait` blocks on.
  std::condition_variable job_cv;
  std::condition_variable supervisor_cv;

  // Job ids are dense ("job-1", "job-2", ...); entries are never erased,
  // so JobState* stays valid for the scheduler's lifetime and closures
  // may capture it raw.
  std::map<std::string, std::unique_ptr<JobState>> jobs;
  /// Jobs in submission order (map iteration orders "job-10" before
  /// "job-2"): queue positions count along it, preemption walks it
  /// backwards so the most recently admitted lower-priority work yields
  /// first.
  std::vector<JobState*> order;
  std::uint64_t next_id = 1;
  /// fingerprint -> (job id, final result) of every completed job.
  std::map<std::string, std::pair<std::string, json::Value>> cache;

  bool is_draining = false;
  bool stopping = false;

  std::size_t active_jobs = 0;
  std::size_t done_jobs = 0;
  std::size_t quarantined_jobs = 0;
  std::size_t pending_tasks = 0;  ///< queued or waiting_retry
  std::size_t running_tasks = 0;
  std::uint64_t submitted = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t rejected = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_recovered = 0;

  std::unique_ptr<ThreadPool> pool;
  std::thread supervisor;

  Impl(const ServeLimits& l, TaskRunner r, Aggregator a, Ledger* led)
      : limits(l), runner(std::move(r)), aggregate(std::move(a)),
        ledger(led) {
    NOCS_EXPECTS(runner != nullptr);
    pool = std::make_unique<ThreadPool>(limits.workers);
  }

  // --- ledger records -------------------------------------------------------

  void ledger_append(json::Value record) {
    // Called with `mu` held: a submit record must hit the device before
    // the accept reply, and task/done records before any observer can see
    // the transition.  Tasks run for seconds; an fsync per transition is
    // cheap at this granularity.
    if (ledger != nullptr) ledger->append(record);
  }

  void record_submit(const JobState& job) {
    json::Value rec = json::Value::object();
    rec.set("type", "submit");
    rec.set("job", job.id);
    rec.set("spec", spec_to_json(job.spec));
    rec.set("fingerprint", job.fp);
    ledger_append(std::move(rec));
  }

  void record_task(const JobState& job, std::size_t index,
                   const json::Value& result) {
    json::Value rec = json::Value::object();
    rec.set("type", "task");
    rec.set("job", job.id);
    rec.set("task", static_cast<double>(index));
    rec.set("result", result);
    ledger_append(std::move(rec));
  }

  void record_done(const JobState& job) {
    json::Value rec = json::Value::object();
    rec.set("type", "done");
    rec.set("job", job.id);
    rec.set("result", job.result);
    ledger_append(std::move(rec));
  }

  void record_failed(const JobState& job) {
    json::Value rec = json::Value::object();
    rec.set("type", "failed");
    rec.set("job", job.id);
    rec.set("error", job.error);
    ledger_append(std::move(rec));
  }

  // --- task lifecycle -------------------------------------------------------

  /// Hands task `index` to the pool.  Caller holds `mu` and has already
  /// counted the task in `pending_tasks`.
  void enqueue_locked(JobState* job, std::size_t index) {
    TaskState& t = job->tasks[index];
    NOCS_EXPECTS(!t.queued && !t.running && !t.done);
    t.queued = true;
    // ThreadPool::submit takes its own lock; pool code never takes `mu`,
    // so the nesting is one-way and safe.
    pool->submit(job->spec.priority,
                 [this, job, index] { run_task(job, index); });
  }

  void run_task(JobState* job, std::size_t index) {
    JobSpec spec;
    TaskContext ctx;
    {
      std::lock_guard<std::mutex> lock(mu);
      TaskState& t = job->tasks[index];
      t.queued = false;
      NOCS_EXPECTS(pending_tasks > 0);
      --pending_tasks;  // leaving the queue: either runs now or is dropped
      if (is_draining || stopping || t.done ||
          job->state != JobState::State::kActive)
        return;
      t.running = true;
      t.timed_out = false;
      ++t.attempts;
      t.token = CancellationToken();
      if (limits.task_timeout_ms > 0)
        t.deadline = Clock::now() + ms(limits.task_timeout_ms);
      ++running_tasks;
      spec = job->spec;
      ctx.job_id = job->id;
      ctx.task_index = index;
      ctx.attempt = t.attempts;
      ctx.cancel = t.token;
      ctx.report_progress = [cycles = t.cycles](std::uint64_t c) {
        cycles->store(c, std::memory_order_relaxed);
      };
    }

    TaskOutcome out;
    try {
      out = runner(spec, ctx);
    } catch (const std::exception& e) {
      out = TaskOutcome::failed(std::string("runner threw: ") + e.what());
    }

    std::lock_guard<std::mutex> lock(mu);
    TaskState& t = job->tasks[index];
    t.running = false;
    NOCS_EXPECTS(running_tasks > 0);
    --running_tasks;
    const bool was_preempted = t.preempted;
    t.preempted = false;
    if (job->state != JobState::State::kActive)
      return;  // a sibling already quarantined the job
    switch (out.status) {
      case TaskOutcome::Status::kOk: {
        t.done = true;
        job->results[index] = out.result;
        ++job->done_tasks;
        ++tasks_completed;
        record_task(*job, index, out.result);
        if (job->done_tasks == job->tasks.size()) complete_job_locked(*job);
        break;
      }
      case TaskOutcome::Status::kCancelled: {
        if (is_draining || stopping)
          return;  // not a failure: the ledger resumes it next start
        if (was_preempted && !t.timed_out) {
          // Evicted for a high-priority job, not failed: the runner just
          // checkpointed, so re-queue in the task's own priority lane and
          // resume bit-identically from the snapshot.  The attempt was
          // not consumed — a preempted first attempt resumes as attempt 1.
          --t.attempts;
          ++pending_tasks;
          enqueue_locked(job, index);
          return;
        }
        handle_failure_locked(*job, index,
                              t.timed_out ? "task timed out" : "cancelled");
        break;
      }
      case TaskOutcome::Status::kError:
        handle_failure_locked(*job, index, out.error);
        break;
    }
  }

  /// Called on a kHigh submission whose `incoming` tasks would otherwise
  /// sit behind lower-priority work occupying every worker.  Cancels just
  /// enough running kLow/kNormal tasks — newest jobs first, kLow before
  /// kNormal — to free workers for the high lane; victims checkpoint and
  /// re-queue (see run_task).  Caller holds `mu`.
  void preempt_for_high_locked(std::size_t incoming) {
    const std::size_t workers = static_cast<std::size_t>(limits.workers);
    const std::size_t idle =
        workers > running_tasks ? workers - running_tasks : 0;
    const std::size_t want = std::min(incoming, workers);
    if (want <= idle) return;
    std::size_t need = want - idle;
    for (const TaskPriority lane : {TaskPriority::kLow, TaskPriority::kNormal}) {
      for (auto it = order.rbegin(); it != order.rend() && need > 0; ++it) {
        JobState* job = *it;
        if (job->state != JobState::State::kActive ||
            job->spec.priority != lane)
          continue;
        for (TaskState& t : job->tasks) {
          if (need == 0) break;
          if (!t.running || t.preempted || t.timed_out) continue;
          t.preempted = true;
          ++preemptions;
          t.token.request_stop();
          --need;
          log_message(LogLevel::kInfo,
                      "serve: preempting a %s-priority task of %s for a "
                      "high-priority submission",
                      priority_to_string(job->spec.priority).c_str(),
                      job->id.c_str());
        }
      }
    }
  }

  void handle_failure_locked(JobState& job, std::size_t index,
                             const std::string& why) {
    TaskState& t = job.tasks[index];
    if (t.attempts >= limits.max_attempts) {
      job.state = JobState::State::kQuarantined;
      job.error = "task " + std::to_string(index) + " failed after " +
                  std::to_string(t.attempts) + " attempt(s): " + why;
      NOCS_EXPECTS(active_jobs > 0);
      --active_jobs;
      ++quarantined_jobs;
      // Free the workers promptly: sibling results would be discarded
      // anyway, and quarantine is terminal.
      for (TaskState& other : job.tasks)
        if (other.running) other.token.request_stop();
      record_failed(job);
      log_message(LogLevel::kWarn, "serve: job %s quarantined: %s",
                  job.id.c_str(), job.error.c_str());
      job_cv.notify_all();
      return;
    }
    ++retries;
    t.waiting_retry = true;
    ++pending_tasks;
    const std::uint64_t delay = backoff_delay_ms(
        limits.backoff_base_ms, limits.backoff_cap_ms, t.attempts);
    t.retry_at = Clock::now() + ms(delay);
    log_message(LogLevel::kInfo,
                "serve: job %s task %zu attempt %d failed (%s); retry in "
                "%llu ms",
                job.id.c_str(), index, t.attempts, why.c_str(),
                static_cast<unsigned long long>(delay));
  }

  void complete_job_locked(JobState& job) {
    json::Value doc;
    if (aggregate != nullptr) {
      doc = aggregate(job.spec, job.results);
    } else {
      doc = json::Value::object();
      json::Value arr = json::Value::array();
      for (const json::Value& r : job.results) arr.push_back(r);
      doc.set("tasks", std::move(arr));
    }
    job.result = std::move(doc);
    job.state = JobState::State::kDone;
    NOCS_EXPECTS(active_jobs > 0);
    --active_jobs;
    ++done_jobs;
    cache[job.fp] = {job.id, job.result};
    record_done(job);
    job_cv.notify_all();
  }

  // --- supervisor -----------------------------------------------------------

  void supervise() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      supervisor_cv.wait_for(lock, ms(limits.supervise_every_ms),
                             [&] { return stopping; });
      if (stopping) break;
      const auto now = Clock::now();
      for (auto& [id, jobp] : jobs) {
        JobState& job = *jobp;
        if (job.state != JobState::State::kActive) continue;
        for (std::size_t i = 0; i < job.tasks.size(); ++i) {
          TaskState& t = job.tasks[i];
          if (t.running && !t.timed_out && limits.task_timeout_ms > 0 &&
              now >= t.deadline) {
            t.timed_out = true;
            ++timeouts;
            t.token.request_stop();
            log_message(LogLevel::kWarn,
                        "serve: job %s task %zu exceeded %llu ms; "
                        "cancelling attempt %d",
                        job.id.c_str(), i,
                        static_cast<unsigned long long>(
                            limits.task_timeout_ms),
                        t.attempts);
          }
          if (t.waiting_retry && !is_draining && now >= t.retry_at) {
            t.waiting_retry = false;
            enqueue_locked(&job, i);
          }
        }
      }
    }
  }

  // --- recovery -------------------------------------------------------------

  /// Replays the ledger into scheduler state.  Runs before the supervisor
  /// starts but after the pool exists, so re-enqueued tasks may begin
  /// executing immediately (hence the lock).  Returns re-run job count.
  std::size_t recover() {
    NOCS_EXPECTS(ledger != nullptr);
    std::lock_guard<std::mutex> lock(mu);
    for (const json::Value& rec : ledger->replayed()) {
      const json::Value* type = rec.find("type");
      if (type == nullptr || !type->is_string()) continue;
      const std::string& t = type->as_string();
      try {
        if (t == "submit") {
          replay_submit_locked(rec);
        } else if (t == "task") {
          replay_task_locked(rec);
        } else if (t == "done") {
          JobState& job = *jobs.at(rec.at("job").as_string());
          job.state = JobState::State::kDone;
          job.result = rec.at("result");
          cache[job.fp] = {job.id, job.result};
        } else if (t == "failed") {
          JobState& job = *jobs.at(rec.at("job").as_string());
          job.state = JobState::State::kQuarantined;
          job.error = rec.at("error").as_string();
        }
      } catch (const std::exception& e) {
        log_message(LogLevel::kWarn,
                    "serve: skipping unreplayable ledger record (%s)",
                    e.what());
      }
    }

    std::size_t rerun = 0;
    for (auto& [id, jobp] : jobs) {
      JobState& job = *jobp;
      switch (job.state) {
        case JobState::State::kDone: ++done_jobs; break;
        case JobState::State::kQuarantined: ++quarantined_jobs; break;
        case JobState::State::kActive: {
          ++active_jobs;
          ++rerun;
          if (job.done_tasks == job.tasks.size()) {
            // Crash landed between the last task record and the done
            // record: every result is on disk, only aggregation is owed.
            complete_job_locked(job);
            break;
          }
          std::size_t requeued = 0;
          for (std::size_t i = 0; i < job.tasks.size(); ++i) {
            if (job.tasks[i].done) continue;
            ++pending_tasks;
            enqueue_locked(&job, i);
            ++requeued;
          }
          log_message(LogLevel::kInfo,
                      "serve: recovered job %s (%zu of %zu task(s) were "
                      "already complete; re-running %zu)",
                      job.id.c_str(), job.done_tasks, job.tasks.size(),
                      requeued);
          break;
        }
      }
    }
    return rerun;
  }

  void replay_submit_locked(const json::Value& rec) {
    auto job = std::make_unique<JobState>();
    job->id = rec.at("job").as_string();
    if (jobs.count(job->id) != 0)
      // A duplicate submit record (only a hand-damaged log can contain
      // one) must not replace the JobState `order` already points at.
      throw std::invalid_argument("duplicate submit for " + job->id);
    job->spec = spec_from_json(rec.at("spec"));
    const json::Value* fp = rec.find("fingerprint");
    job->fp = fp != nullptr && fp->is_string() ? fp->as_string()
                                               : fingerprint(job->spec);
    job->recovered = true;
    const std::size_t n = task_count(job->spec);
    job->tasks.resize(n);
    job->results.resize(n);
    // Keep job-N numbering monotonic across restarts so a recovered
    // "job-7" is never shadowed by a fresh submission.
    if (job->id.rfind("job-", 0) == 0) {
      try {
        next_id = std::max<std::uint64_t>(next_id,
                                          std::stoull(job->id.substr(4)) + 1);
      } catch (const std::exception&) {
      }
    }
    order.push_back(job.get());
    jobs[job->id] = std::move(job);
  }

  void replay_task_locked(const json::Value& rec) {
    JobState& job = *jobs.at(rec.at("job").as_string());
    const double raw = rec.at("task").as_number();
    const std::size_t index = static_cast<std::size_t>(raw);
    if (raw < 0 || index >= job.tasks.size())
      throw std::invalid_argument("task index out of range");
    if (job.tasks[index].done) return;  // duplicate record; keep the first
    job.tasks[index].done = true;
    job.results[index] = rec.at("result");
    ++job.done_tasks;
    ++tasks_recovered;
  }

  // --- status dumps ---------------------------------------------------------

  json::Value job_status_locked(const JobState& job) const {
    json::Value v = json::Value::object();
    v.set("ok", true);
    v.set("job", job.id);
    v.set("state", job.state_name());
    v.set("kind", job.spec.kind);
    v.set("priority", priority_to_string(job.spec.priority));
    v.set("tasks", static_cast<double>(job.tasks.size()));
    v.set("completed_tasks", static_cast<double>(job.done_tasks));
    if (job.recovered) v.set("recovered", true);
    if (job.state == JobState::State::kActive)
      // Live progress for pollers; terminal statuses stay byte-stable
      // across runs (cycle snapshots are incidental, results are not).
      v.set("cycles", static_cast<double>(summed_cycles(job)));
    if (job.state == JobState::State::kDone) v.set("result", job.result);
    if (job.state == JobState::State::kQuarantined)
      v.set("error", job.error);
    return v;
  }

  static std::uint64_t summed_cycles(const JobState& job) {
    std::uint64_t total = 0;
    for (const TaskState& t : job.tasks)
      total += t.cycles->load(std::memory_order_relaxed);
    return total;
  }

  /// One `watch` streaming frame.  Distinguished from a final status by
  /// its "event" field; clients read lines until one without it.
  json::Value progress_frame_locked(const JobState& job) const {
    json::Value v = json::Value::object();
    v.set("ok", true);
    v.set("event", "progress");
    v.set("job", job.id);
    v.set("state", job.state_name());
    v.set("tasks", static_cast<double>(job.tasks.size()));
    v.set("completed_tasks", static_cast<double>(job.done_tasks));
    std::size_t running = 0;
    int attempt = 0;
    for (const TaskState& t : job.tasks) {
      if (t.running) ++running;
      attempt = std::max(attempt, t.attempts);
    }
    v.set("running_tasks", static_cast<double>(running));
    v.set("attempt", static_cast<double>(attempt));
    v.set("cycles", static_cast<double>(summed_cycles(job)));
    // Still-active jobs admitted before this one; 0 = front of the line.
    std::size_t position = 0;
    for (const JobState* other : order) {
      if (other == &job) break;
      if (other->state == JobState::State::kActive) ++position;
    }
    v.set("queue_position", static_cast<double>(position));
    return v;
  }

  json::Value status_locked() const {
    json::Value v = json::Value::object();
    v.set("ok", true);
    v.set("draining", is_draining);
    v.set("workers", static_cast<double>(limits.workers));
    json::Value j = json::Value::object();
    j.set("active", static_cast<double>(active_jobs));
    j.set("done", static_cast<double>(done_jobs));
    j.set("quarantined", static_cast<double>(quarantined_jobs));
    v.set("jobs", std::move(j));
    json::Value t = json::Value::object();
    t.set("pending", static_cast<double>(pending_tasks));
    t.set("running", static_cast<double>(running_tasks));
    t.set("completed", static_cast<double>(tasks_completed));
    t.set("recovered", static_cast<double>(tasks_recovered));
    v.set("tasks", std::move(t));
    json::Value c = json::Value::object();
    c.set("submitted", static_cast<double>(submitted));
    c.set("cache_hits", static_cast<double>(cache_hits));
    c.set("rejected", static_cast<double>(rejected));
    c.set("retries", static_cast<double>(retries));
    c.set("timeouts", static_cast<double>(timeouts));
    c.set("preemptions", static_cast<double>(preemptions));
    v.set("counters", std::move(c));
    if (ledger != nullptr) {
      json::Value l = json::Value::object();
      l.set("healthy", ledger->healthy());
      l.set("bytes", static_cast<double>(ledger->size_bytes()));
      l.set("compactions", static_cast<double>(ledger->compactions()));
      v.set("ledger", std::move(l));
    }
    return v;
  }
};

JobScheduler::JobScheduler(const ServeLimits& limits, TaskRunner runner,
                           Aggregator aggregate, Ledger* ledger)
    : impl_(std::make_unique<Impl>(limits, std::move(runner),
                                   std::move(aggregate), ledger)) {
  if (ledger != nullptr) recovered_jobs_ = impl_->recover();
  impl_->supervisor = std::thread([this] { impl_->supervise(); });
}

JobScheduler::~JobScheduler() {
  drain();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->supervisor_cv.notify_all();
  impl_->job_cv.notify_all();
  impl_->supervisor.join();
  // Destroy the pool (joins its workers) before any Impl state the task
  // closures touch goes away.
  impl_->pool.reset();
}

SubmitOutcome JobScheduler::submit(const JobSpec& spec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  SubmitOutcome out;
  if (impl_->is_draining || impl_->stopping) {
    out.code = SubmitOutcome::Code::kDraining;
    out.error = "daemon is draining";
    return out;
  }
  if (impl_->ledger != nullptr && !impl_->ledger->healthy()) {
    // The ledger failed closed (unrepairable tail or a short write):
    // accepting work we cannot make durable would silently break crash
    // recovery, so refuse with a 503-shaped reply.
    ++impl_->rejected;
    out.code = SubmitOutcome::Code::kDraining;
    out.error = "job ledger is not writable; refusing new work";
    return out;
  }
  const std::string fp = fingerprint(spec);
  const auto hit = impl_->cache.find(fp);
  if (hit != impl_->cache.end()) {
    ++impl_->cache_hits;
    out.code = SubmitOutcome::Code::kCached;
    out.job_id = hit->second.first;
    out.cached = hit->second.second;
    return out;
  }
  const std::size_t tasks = task_count(spec);
  if (impl_->active_jobs >= impl_->limits.max_jobs) {
    ++impl_->rejected;
    out.code = SubmitOutcome::Code::kRejected;
    out.error = "job queue full (" +
                std::to_string(impl_->limits.max_jobs) + " active jobs)";
    return out;
  }
  if (impl_->pending_tasks + tasks > impl_->limits.max_pending_tasks) {
    ++impl_->rejected;
    out.code = SubmitOutcome::Code::kRejected;
    out.error = "task queue full (" + std::to_string(tasks) +
                " task(s) would exceed the pending limit of " +
                std::to_string(impl_->limits.max_pending_tasks) + ")";
    return out;
  }

  auto job = std::make_unique<JobState>();
  job->id = "job-" + std::to_string(impl_->next_id++);
  job->spec = spec;
  job->fp = fp;
  job->tasks.resize(tasks);
  job->results.resize(tasks);
  JobState* raw = job.get();
  impl_->order.push_back(raw);
  impl_->jobs[job->id] = std::move(job);
  ++impl_->active_jobs;
  ++impl_->submitted;
  // Durability before acknowledgment: the submit record reaches the
  // device before the caller sees "accepted".
  impl_->record_submit(*raw);
  for (std::size_t i = 0; i < tasks; ++i) {
    ++impl_->pending_tasks;
    impl_->enqueue_locked(raw, i);
  }
  // A saturated pool must not make a high-priority job wait out a
  // low-priority sweep: evict just enough running lower-priority tasks
  // (they checkpoint and resume bit-identically later).
  if (spec.priority == TaskPriority::kHigh)
    impl_->preempt_for_high_locked(tasks);
  out.code = SubmitOutcome::Code::kAccepted;
  out.job_id = raw->id;
  return out;
}

json::Value JobScheduler::job_status(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end())
    return error_response(kCodeNotFound, "unknown job '" + job_id + "'");
  return impl_->job_status_locked(*it->second);
}

json::Value JobScheduler::wait(const std::string& job_id,
                               std::optional<std::uint64_t> timeout_ms) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end())
    return error_response(kCodeNotFound, "unknown job '" + job_id + "'");
  JobState* job = it->second.get();
  // nullopt = server default; an explicit 0 is a non-blocking poll.
  const std::uint64_t budget =
      timeout_ms.has_value() ? *timeout_ms : impl_->limits.wait_default_ms;
  if (budget > 0) {
    const auto deadline = Clock::now() + ms(budget);
    impl_->job_cv.wait_until(lock, deadline, [&] {
      // During a drain active jobs will not finish; unblock the client
      // with the job's current (non-terminal) status instead of hanging.
      return job->state != JobState::State::kActive || impl_->is_draining ||
             impl_->stopping;
    });
  }
  return impl_->job_status_locked(*job);
}

json::Value JobScheduler::watch(
    const std::string& job_id, std::uint64_t every_ms,
    const std::function<bool(const json::Value&)>& emit) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end())
    return error_response(kCodeNotFound, "unknown job '" + job_id + "'");
  JobState* job = it->second.get();
  // The client may slow the stream down, never speed it past the
  // server's floor — progress frames are a courtesy, not a load source.
  const std::uint64_t interval = std::max<std::uint64_t>(
      std::max(every_ms, impl_->limits.progress_every_ms), 1);
  const auto settled = [&] {
    return job->state != JobState::State::kActive || impl_->is_draining ||
           impl_->stopping;
  };
  std::string last_frame;
  while (!settled()) {
    json::Value frame = impl_->progress_frame_locked(*job);
    std::string dump = frame.dump();
    if (dump != last_frame) {  // only push frames that carry news
      last_frame = std::move(dump);
      lock.unlock();
      // Emit outside the lock: a slow client socket must not stall
      // workers or other watchers.
      const bool keep_streaming = !emit || emit(frame);
      lock.lock();
      if (!keep_streaming) break;  // client hung up
    }
    impl_->job_cv.wait_for(lock, ms(interval), settled);
  }
  return impl_->job_status_locked(*job);
}

json::Value JobScheduler::status() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->status_locked();
}

void JobScheduler::export_metrics(MetricsRegistry& reg) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  reg.counter("serve.jobs.submitted").set(impl_->submitted);
  reg.counter("serve.jobs.done").set(impl_->done_jobs);
  reg.counter("serve.jobs.quarantined").set(impl_->quarantined_jobs);
  reg.counter("serve.cache.hits").set(impl_->cache_hits);
  reg.counter("serve.rejected").set(impl_->rejected);
  reg.counter("serve.tasks.completed").set(impl_->tasks_completed);
  reg.counter("serve.tasks.recovered").set(impl_->tasks_recovered);
  reg.counter("serve.tasks.retries").set(impl_->retries);
  reg.counter("serve.tasks.timeouts").set(impl_->timeouts);
  reg.counter("serve.tasks.preemptions").set(impl_->preemptions);
  reg.gauge("serve.jobs.active")
      .set(static_cast<double>(impl_->active_jobs));
  reg.gauge("serve.tasks.pending")
      .set(static_cast<double>(impl_->pending_tasks));
  reg.gauge("serve.tasks.running")
      .set(static_cast<double>(impl_->running_tasks));
}

void JobScheduler::drain() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->is_draining) {
      impl_->is_draining = true;
      for (auto& [id, job] : impl_->jobs) {
        if (job->state != JobState::State::kActive) continue;
        for (TaskState& t : job->tasks)
          if (t.running) t.token.request_stop();
      }
    }
  }
  impl_->job_cv.notify_all();
  // Queued closures observe is_draining and fall through; running tasks
  // stop at their next cancellation poll (checkpointing themselves).
  impl_->pool->wait_idle();
}

bool JobScheduler::draining() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->is_draining;
}

}  // namespace nocs::serve
