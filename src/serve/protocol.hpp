// Wire protocol of the sprint-as-a-service daemon (`mode=serve`).
//
// Transport is line-delimited JSON over a byte stream: every request is
// one JSON object on one line, every reply is one JSON object on one
// line, in order.  The full schema (ops, error codes, examples) is
// specified in docs/SERVE.md.
//
// This header is transport-free on purpose: parse_request consumes a
// string and never throws, so the parser can be fuzzed directly
// (tests/test_fuzz) and the server loop treats any malformed line as a
// well-formed error reply rather than a crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"

namespace nocs::serve {

/// Error codes carried in `{"ok": false, "code": N}` replies.  Numbers
/// deliberately mirror HTTP so operators need no legend: 400 bad request,
/// 404 unknown job, 429 admission control, 503 draining.
inline constexpr int kCodeBadRequest = 400;
inline constexpr int kCodeNotFound = 404;
inline constexpr int kCodeRejected = 429;
inline constexpr int kCodeDraining = 503;

/// One job as submitted by a client: what to run and how urgently.
struct JobSpec {
  /// `simulate` (one cycle-accurate run), `sweep` (one task per injection
  /// rate), or `selftest` (scheduler exercise: cheap, no simulator).
  std::string kind;
  /// Flat object of scalar parameters (the same keys the CLI's batch
  /// modes accept; see docs/SERVE.md for the supported subset).
  json::Value params = json::Value::object();
  TaskPriority priority = TaskPriority::kNormal;
};

/// Canonical fingerprint of a spec: kind + params with sorted keys,
/// compact-dumped.  Two requests that differ only in key order or
/// priority share a fingerprint — priority changes scheduling, never
/// results — so the result cache and the ledger replay both key on it.
std::string fingerprint(const JobSpec& spec);

/// Number of tasks the job expands to (sweep: one per rate; otherwise
/// as given by `tasks=` for selftest, else 1).  Specs that reach here
/// have passed validation, so this never throws.
std::size_t task_count(const JobSpec& spec);

/// The spec's params as a Config (the typed accessor layer the runners
/// share with the CLI batch modes).
Config params_config(const JobSpec& spec);

/// Injection rates of a `rates=start:step:end` spec string (the sweep
/// grammar shared with `mode=sweep`).  Throws std::invalid_argument on a
/// malformed spec or a non-positive step.
std::vector<double> parse_rates(const std::string& spec);

/// One parsed client request.
struct Request {
  /// `submit` | `job` | `wait` | `watch` | `status` | `metrics` |
  /// `drain` | `ping`.
  std::string op;
  JobSpec spec;              ///< submit only
  std::string job_id;        ///< job/wait/watch
  /// wait only.  Meaningful when has_timeout: 0 is an immediate
  /// non-blocking poll, N > 0 blocks up to N ms.  Without has_timeout
  /// the server default applies.
  std::uint64_t timeout_ms = 0;
  bool has_timeout = false;  ///< wait: `timeout_ms` was present on the wire
  /// watch only: requested progress-frame interval (0 = server default;
  /// the server clamps it up to `serve_progress_every_ms`).
  std::uint64_t every_ms = 0;
};

/// parse_request outcome: either a request or a client-facing error.
struct ParseResult {
  bool ok = false;
  Request request;
  std::string error;  ///< set when !ok; safe to echo to the client
};

/// Parses and validates one wire line.  Never throws: every malformed
/// input (bad JSON, wrong types, unknown op/kind/priority, nested params,
/// out-of-range rates/tasks) comes back as an error string.
ParseResult parse_request(const std::string& line);

/// A spec as stored in ledger `submit` records:
/// {"kind":...,"params":{...},"priority":"normal"}.
json::Value spec_to_json(const JobSpec& spec);

/// Inverse of spec_to_json, with the same validation submit applies on the
/// wire.  Throws std::invalid_argument on a malformed or invalid object —
/// a ledger from a newer format version must not replay as garbage.
JobSpec spec_from_json(const json::Value& v);

/// Reply builders (one-line compact dumps are the caller's job).
json::Value ok_response();
json::Value error_response(int code, const std::string& message);

/// "high" | "normal" | "low" (status dumps and client echoes).
std::string priority_to_string(TaskPriority p);

}  // namespace nocs::serve
