#include "serve/ledger.hpp"

#include <unistd.h>

#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "common/snapshot.hpp"

namespace nocs::serve {

namespace {

// Returns the stream's current end-of-file offset (0 on error).  "ab"
// streams report position 0 until the first write, so size tracking
// always seeks explicitly.
std::uint64_t file_size_bytes(std::FILE* f) {
  if (f == nullptr) return 0;
  if (std::fseek(f, 0, SEEK_END) != 0) return 0;
  const long at = std::ftell(f);
  return at > 0 ? static_cast<std::uint64_t>(at) : 0;
}

bool write_framed(std::FILE* f, const std::vector<std::uint8_t>& payload) {
  return snapshot::write_record(
      f, payload.empty() ? nullptr : payload.data(), payload.size());
}

}  // namespace

Ledger::Ledger(const std::string& path, std::uint64_t compact_bytes)
    : path_(path),
      tmp_path_(path + ".compact.tmp"),
      compact_bytes_(compact_bytes) {
  // A temp file left behind by a compaction that died before its rename
  // is garbage by definition: the rename is the commit point, so the old
  // log is still the authoritative one.
  if (std::remove(tmp_path_.c_str()) == 0)
    log_message(LogLevel::kWarn,
                "ledger: removed stale compaction temp %s (compaction was "
                "interrupted; the log itself is intact)",
                tmp_path_.c_str());

  snapshot::RecordScan scan = snapshot::scan_records(path_);
  if (scan.damaged) {
    log_message(LogLevel::kWarn,
                "ledger %s has a damaged tail (%s); replaying the valid "
                "prefix of %zu record(s) and truncating",
                path_.c_str(), scan.damage.c_str(), scan.records.size());
    truncated_on_open_ = true;
    // Appending after garbage would bury the damage mid-file where the
    // next replay stops early; cut the file back to its valid prefix.
    // When the cut itself fails there is no safe place to append, so the
    // ledger fails closed: replay still works, writes are refused.
    if (::truncate(path_.c_str(),
                   static_cast<off_t>(scan.valid_bytes)) != 0) {
      log_message(LogLevel::kError,
                  "ledger: cannot truncate damaged tail of %s; refusing "
                  "further appends (submissions will be rejected)",
                  path_.c_str());
      healthy_ = false;
    }
  }

  bool saw_header = false;
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    const auto& bytes = scan.records[i];
    json::Value record;
    try {
      record = json::Value::parse(
          std::string(reinterpret_cast<const char*>(bytes.data()),
                      bytes.size()));
    } catch (const std::exception& e) {
      // A frame whose checksum held but whose payload is not JSON means a
      // writer bug, not bit rot; skip it rather than dropping the rest.
      log_message(LogLevel::kWarn,
                  "ledger %s record %zu is not JSON (%s); skipping",
                  path_.c_str(), i, e.what());
      continue;
    }
    if (i == 0) {
      const json::Value* magic = record.find("magic");
      if (magic == nullptr || !magic->is_string() ||
          magic->as_string() != "nocs-serve-ledger")
        throw std::runtime_error(path_ + " is not a serve ledger");
      saw_header = true;
      continue;
    }
    replayed_.push_back(std::move(record));
  }

  if (!healthy_) return;  // fail closed: replay-only, no append handle

  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("cannot open ledger for append: " + path_);

  if (!saw_header) {
    json::Value open = json::Value::object();
    open.set("type", "open");
    open.set("magic", "nocs-serve-ledger");
    open.set("version", kLedgerVersion);
    const std::string text = open.dump();
    if (!snapshot::append_record(
            file_, reinterpret_cast<const std::uint8_t*>(text.data()),
            text.size())) {
      std::fclose(file_);
      file_ = nullptr;
      throw std::runtime_error("cannot write ledger header: " + path_);
    }
  }
  size_bytes_ = file_size_bytes(file_);
}

Ledger::~Ledger() {
  if (file_ != nullptr) std::fclose(file_);
}

bool Ledger::healthy() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return healthy_ && file_ != nullptr;
}

bool Ledger::append(const json::Value& record) {
  const std::string text = record.dump();
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr || !healthy_) return false;
  if (!snapshot::append_record(
          file_, reinterpret_cast<const std::uint8_t*>(text.data()),
          text.size())) {
    // The file now ends in a torn frame; appending more would bury the
    // damage mid-file where the next replay silently stops.  Fail closed.
    log_message(LogLevel::kError,
                "ledger: short write to %s; refusing further appends",
                path_.c_str());
    healthy_ = false;
    return false;
  }
  ++appended_;
  size_bytes_ = file_size_bytes(file_);
  if (compact_bytes_ > 0 && size_bytes_ >= compact_bytes_ &&
      size_bytes_ >= 2 * last_compacted_bytes_)
    compact_locked();  // best effort: failure keeps the intact old log
  return true;
}

bool Ledger::compact() {
  const std::lock_guard<std::mutex> lock(mu_);
  return compact_locked();
}

// Snapshot + tail rewrite.  Payload bytes are copied verbatim (records
// are classified by parsing, but the original frames are re-written
// byte-for-byte), so replay semantics — including the first-record-wins
// rule for duplicate task indices — are exactly preserved.
bool Ledger::compact_locked() {
  if (file_ == nullptr || !healthy_) return false;
  std::fflush(file_);

  snapshot::RecordScan scan = snapshot::scan_records(path_);
  if (scan.damaged) {
    // append() fsyncs every frame, so a damaged tail mid-life means the
    // device is lying or failing; rewriting on top of that would risk
    // the one good copy.
    log_message(LogLevel::kError,
                "ledger: %s scan found damage during compaction (%s); "
                "leaving the log as-is",
                path_.c_str(), scan.damage.c_str());
    return false;
  }

  using Bytes = std::vector<std::uint8_t>;
  struct Group {
    const Bytes* submit = nullptr;
    const Bytes* terminal = nullptr;
    std::map<std::uint64_t, const Bytes*> tasks;  // first record wins
  };
  std::vector<std::string> order;          // jobs in first-submit order
  std::map<std::string, Group> groups;
  std::vector<const Bytes*> misc;          // anything we cannot classify

  for (std::size_t i = 1; i < scan.records.size(); ++i) {  // 0 = header
    const Bytes& bytes = scan.records[i];
    json::Value rec;
    try {
      rec = json::Value::parse(
          std::string(reinterpret_cast<const char*>(bytes.data()),
                      bytes.size()));
    } catch (const std::exception&) {
      misc.push_back(&bytes);
      continue;
    }
    const json::Value* type = rec.find("type");
    const json::Value* jobf = rec.find("job");
    const std::string t =
        type != nullptr && type->is_string() ? type->as_string() : "";
    if (jobf == nullptr || !jobf->is_string() ||
        (t != "submit" && t != "task" && t != "done" && t != "failed")) {
      misc.push_back(&bytes);
      continue;
    }
    Group& g = groups[jobf->as_string()];
    if (t == "submit") {
      if (g.submit == nullptr) {
        g.submit = &bytes;
        order.push_back(jobf->as_string());
      }
    } else if (t == "task") {
      const json::Value* idx = rec.find("task");
      if (idx == nullptr || !idx->is_number()) {
        misc.push_back(&bytes);
        continue;
      }
      g.tasks.emplace(static_cast<std::uint64_t>(idx->as_number()), &bytes);
    } else {
      if (g.terminal == nullptr) g.terminal = &bytes;
    }
  }

  std::FILE* out = std::fopen(tmp_path_.c_str(), "wb");
  if (out == nullptr) {
    log_message(LogLevel::kError, "ledger: cannot open %s for compaction",
                tmp_path_.c_str());
    return false;
  }
  bool ok = scan.records.empty()
                ? false  // no header on disk: nothing sane to rewrite
                : write_framed(out, scan.records[0]);
  for (const std::string& id : order) {
    if (!ok) break;
    const Group& g = groups.at(id);
    ok = write_framed(out, *g.submit);
    if (ok && g.terminal != nullptr) {
      // Finished job: its per-task records are dead weight — the replay
      // only needs the terminal result to seed the cache.
      ok = write_framed(out, *g.terminal);
    } else {
      for (const auto& [index, bytes] : g.tasks) {
        if (!ok) break;
        ok = write_framed(out, *bytes);
      }
    }
  }
  // Task/terminal records whose job has no submit record are unreplayable
  // either way; groups without a submit only arise from hand-damaged
  // logs.  Preserve their bytes at the tail rather than dropping data.
  for (const auto& [id, g] : groups) {
    if (!ok) break;
    if (g.submit != nullptr) continue;
    if (g.terminal != nullptr) ok = write_framed(out, *g.terminal);
    for (const auto& [index, bytes] : g.tasks) {
      if (!ok) break;
      ok = write_framed(out, *bytes);
    }
  }
  for (const Bytes* bytes : misc) {
    if (!ok) break;
    ok = write_framed(out, *bytes);
  }
  ok = ok && std::fflush(out) == 0;
  if (ok) ::fsync(::fileno(out));
  std::fclose(out);
  if (!ok) {
    log_message(LogLevel::kError, "ledger: short write compacting to %s",
                tmp_path_.c_str());
    std::remove(tmp_path_.c_str());
    return false;
  }

  // The commit point.  Close the old handle first: after the rename it
  // would reference the unlinked inode and appends would vanish.
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    log_message(LogLevel::kError, "ledger: cannot rename %s over %s",
                tmp_path_.c_str(), path_.c_str());
    std::remove(tmp_path_.c_str());
    file_ = std::fopen(path_.c_str(), "ab");  // old log is still intact
    if (file_ == nullptr) healthy_ = false;
    return false;
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    log_message(LogLevel::kError,
                "ledger: cannot reopen %s after compaction; refusing "
                "further appends",
                path_.c_str());
    healthy_ = false;
    return false;
  }
  const std::uint64_t before = size_bytes_;
  size_bytes_ = file_size_bytes(file_);
  last_compacted_bytes_ = size_bytes_;
  ++compactions_;
  log_message(LogLevel::kInfo,
              "ledger: compacted %s (%llu -> %llu bytes, %zu job(s))",
              path_.c_str(), static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(size_bytes_), order.size());
  return true;
}

std::size_t Ledger::appended_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::uint64_t Ledger::size_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return size_bytes_;
}

std::size_t Ledger::compactions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

}  // namespace nocs::serve
