#include "serve/ledger.hpp"

#include <unistd.h>

#include <stdexcept>

#include "common/log.hpp"
#include "common/snapshot.hpp"

namespace nocs::serve {

Ledger::Ledger(const std::string& path) : path_(path) {
  snapshot::RecordScan scan = snapshot::scan_records(path_);
  if (scan.damaged) {
    log_message(LogLevel::kWarn,
                "ledger %s has a damaged tail (%s); replaying the valid "
                "prefix of %zu record(s) and truncating",
                path_.c_str(), scan.damage.c_str(), scan.records.size());
    truncated_on_open_ = true;
    // Appending after garbage would bury the damage mid-file where the
    // next replay stops early; cut the file back to its valid prefix.
    if (::truncate(path_.c_str(),
                   static_cast<off_t>(scan.valid_bytes)) != 0)
      log_message(LogLevel::kError, "ledger: cannot truncate %s",
                  path_.c_str());
  }

  bool saw_header = false;
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    const auto& bytes = scan.records[i];
    json::Value record;
    try {
      record = json::Value::parse(
          std::string(reinterpret_cast<const char*>(bytes.data()),
                      bytes.size()));
    } catch (const std::exception& e) {
      // A frame whose checksum held but whose payload is not JSON means a
      // writer bug, not bit rot; skip it rather than dropping the rest.
      log_message(LogLevel::kWarn,
                  "ledger %s record %zu is not JSON (%s); skipping",
                  path_.c_str(), i, e.what());
      continue;
    }
    if (i == 0) {
      const json::Value* magic = record.find("magic");
      if (magic == nullptr || !magic->is_string() ||
          magic->as_string() != "nocs-serve-ledger")
        throw std::runtime_error(path_ + " is not a serve ledger");
      saw_header = true;
      continue;
    }
    replayed_.push_back(std::move(record));
  }

  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("cannot open ledger for append: " + path_);

  if (!saw_header) {
    json::Value open = json::Value::object();
    open.set("type", "open");
    open.set("magic", "nocs-serve-ledger");
    open.set("version", kLedgerVersion);
    const std::string text = open.dump();
    if (!snapshot::append_record(
            file_, reinterpret_cast<const std::uint8_t*>(text.data()),
            text.size())) {
      std::fclose(file_);
      file_ = nullptr;
      throw std::runtime_error("cannot write ledger header: " + path_);
    }
  }
}

Ledger::~Ledger() {
  if (file_ != nullptr) std::fclose(file_);
}

bool Ledger::append(const json::Value& record) {
  const std::string text = record.dump();
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return false;
  if (!snapshot::append_record(
          file_, reinterpret_cast<const std::uint8_t*>(text.data()),
          text.size())) {
    log_message(LogLevel::kError, "ledger: short write to %s",
                path_.c_str());
    return false;
  }
  ++appended_;
  return true;
}

std::size_t Ledger::appended_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

}  // namespace nocs::serve
