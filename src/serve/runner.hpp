// The serve daemon's real workloads: TaskRunner/Aggregator implementations
// that execute cycle-accurate simulations for `simulate` and `sweep` jobs
// (sharing seeds, defaults, and report shape with the CLI batch modes, so
// a daemon campaign is bit-identical to a direct run) plus the `selftest`
// kind, a simulator-free exercise of the scheduler's retry/timeout/
// cancellation machinery for tests and smoke checks.
#pragma once

#include <string>

#include "serve/scheduler.hpp"

namespace nocs::serve {

/// TaskRunner executing simulations.  `state_dir` ("" = off) holds one
/// snapshot per in-flight task: a cancelled task (drain or timeout)
/// checkpoints there via CheckpointConfig::stop_flag and the next attempt
/// resumes from it, so a drained campaign loses no simulated cycles.
TaskRunner make_sim_runner(std::string state_dir);

/// Aggregator shaping final results like the CLI reports: `simulate`
/// lifts its single task's report to the top level, `sweep` collects
/// `points` in rate order, `selftest` collects per-task echoes.
Aggregator make_sim_aggregator();

}  // namespace nocs::serve
