#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "serve/protocol.hpp"
#include "serve/runner.hpp"

namespace nocs::serve {

namespace {

/// mkdir -p: creates every missing component; throws on a real failure.
void ensure_dir(const std::string& dir) {
  std::string prefix;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      prefix += dir[i];
      continue;
    }
    if (!prefix.empty() && prefix != "." && prefix != "..") {
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
        throw std::runtime_error("cannot create state directory " + prefix +
                                 ": " + std::strerror(errno));
    }
    if (i < dir.size()) prefix += '/';
  }
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ServerOptions ServerOptions::from_config(const Config& cfg) {
  ServerOptions o;
  o.host = cfg.get_string("serve_host", o.host);
  o.port = static_cast<int>(cfg.get_int("serve_port", o.port));
  if (o.port < 0 || o.port > 65535)
    throw std::invalid_argument("serve_port must be in [0, 65535]");
  o.dir = cfg.get_string("serve_dir", o.dir);
  o.port_file = cfg.get_string("serve_port_file", o.port_file);
  o.max_connections = static_cast<int>(
      cfg.get_int("serve_max_connections", o.max_connections));
  if (o.max_connections < 1)
    throw std::invalid_argument("serve_max_connections must be >= 1");
  const long long compact = cfg.get_int(
      "serve_ledger_compact_bytes",
      static_cast<long long>(o.ledger_compact_bytes));
  if (compact < 0)
    throw std::invalid_argument("serve_ledger_compact_bytes must be >= 0");
  o.ledger_compact_bytes = static_cast<std::uint64_t>(compact);
  o.limits = ServeLimits::from_config(cfg);
  return o;
}

struct Server::Impl {
  ServerOptions opts;
  std::unique_ptr<Ledger> ledger;
  std::unique_ptr<JobScheduler> sched;
  int listen_fd = -1;
  int bound_port = 0;
  std::atomic<int> active_connections{0};
  std::mutex threads_mu;
  std::vector<std::thread> threads;

  /// Sends one reply line; false when the peer is gone.
  using Emit = std::function<bool(const json::Value&)>;

  json::Value dispatch(const Request& req, const Emit& emit = nullptr) {
    if (req.op == "ping") {
      json::Value v = ok_response();
      v.set("pong", true);
      return v;
    }
    if (req.op == "submit") {
      const SubmitOutcome out = sched->submit(req.spec);
      switch (out.code) {
        case SubmitOutcome::Code::kAccepted: {
          json::Value v = ok_response();
          v.set("job", out.job_id);
          v.set("state", "queued");
          return v;
        }
        case SubmitOutcome::Code::kCached: {
          json::Value v = ok_response();
          v.set("job", out.job_id);
          v.set("cached", true);
          v.set("result", out.cached);
          return v;
        }
        case SubmitOutcome::Code::kRejected:
          return error_response(kCodeRejected, out.error);
        case SubmitOutcome::Code::kDraining:
          return error_response(kCodeDraining, out.error);
      }
      return error_response(kCodeBadRequest, "unreachable");
    }
    if (req.op == "job") return sched->job_status(req.job_id);
    if (req.op == "wait")
      return sched->wait(req.job_id,
                         req.has_timeout
                             ? std::optional<std::uint64_t>(req.timeout_ms)
                             : std::nullopt);
    if (req.op == "watch")
      return sched->watch(req.job_id, req.every_ms, emit);
    if (req.op == "status") {
      json::Value v = sched->status();
      json::Value s = json::Value::object();
      s.set("host", opts.host);
      s.set("port", bound_port);
      s.set("dir", opts.dir);
      s.set("connections", active_connections.load());
      s.set("recovered_jobs",
            static_cast<double>(sched->recovered_jobs()));
      v.set("server", std::move(s));
      return v;
    }
    if (req.op == "metrics") {
      MetricsRegistry reg;
      sched->export_metrics(reg);
      json::Value v = ok_response();
      v.set("metrics", reg.to_json());
      v.set("text", reg.to_text());
      return v;
    }
    // "drain": parse_request admits no other op.
    request_shutdown();
    json::Value v = ok_response();
    v.set("draining", true);
    return v;
  }

  void serve_connection(int fd) {
    std::string buffer;
    char chunk[4096];
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    while (true) {
      // Bail between requests once a drain begins *and* the scheduler has
      // settled; until then keep answering status/wait polls.
      if (shutdown_requested() && buffer.empty() && sched->draining())
        break;
      const int ready = ::poll(&pfd, 1, 200);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready == 0) continue;
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n == 0) break;  // client closed
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      bool dead = false;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        // `watch` streams progress frames over this connection before its
        // final reply; every other op is one line in, one line out.
        const Emit emit = [fd](const json::Value& frame) {
          const std::string text = frame.dump() + "\n";
          return write_all(fd, text.data(), text.size());
        };
        const std::string reply = handle_line_impl(line, emit).dump() + "\n";
        if (!write_all(fd, reply.data(), reply.size())) {
          dead = true;
          break;
        }
      }
      if (dead) break;
      if (buffer.size() > (1u << 20)) {
        // A megabyte without a newline is not our protocol; cut it off
        // rather than buffering without bound.
        const std::string reply =
            error_response(kCodeBadRequest, "request line too long").dump() +
            "\n";
        write_all(fd, reply.data(), reply.size());
        break;
      }
    }
    ::close(fd);
    --active_connections;
  }

  json::Value handle_line_impl(const std::string& line,
                               const Emit& emit = nullptr) {
    const ParseResult parsed = parse_request(line);
    if (!parsed.ok) return error_response(kCodeBadRequest, parsed.error);
    return dispatch(parsed.request, emit);
  }
};

Server::Server(const ServerOptions& opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = opts;
  ensure_dir(opts.dir);
  impl_->ledger = std::make_unique<Ledger>(opts.dir + "/ledger.nsrl",
                                           opts.ledger_compact_bytes);
  impl_->sched = std::make_unique<JobScheduler>(
      opts.limits, make_sim_runner(opts.dir), make_sim_aggregator(),
      impl_->ledger.get());
  if (impl_->ledger->truncated_on_open())
    log_message(LogLevel::kWarn,
                "serve: ledger had a damaged tail (see above); state is the "
                "last durable prefix");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("cannot create socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad serve_host address: " + opts.host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot bind " + opts.host + ":" +
                             std::to_string(opts.port) + ": " + why);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  impl_->bound_port = ntohs(addr.sin_port);
  impl_->listen_fd = fd;

  if (!opts.port_file.empty()) {
    std::FILE* f = std::fopen(opts.port_file.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("cannot write port file " + opts.port_file);
    std::fprintf(f, "%d\n", impl_->bound_port);
    std::fclose(f);
  }
}

Server::~Server() {
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  {
    const std::lock_guard<std::mutex> lock(impl_->threads_mu);
    for (std::thread& t : impl_->threads)
      if (t.joinable()) t.join();
  }
}

int Server::port() const { return impl_->bound_port; }

JobScheduler& Server::scheduler() { return *impl_->sched; }

json::Value Server::handle_line(const std::string& line) {
  return impl_->handle_line_impl(line);
}

void Server::run() {
  struct pollfd pfd{};
  pfd.fd = impl_->listen_fd;
  pfd.events = POLLIN;
  while (!shutdown_requested()) {
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("poll failed on the listen socket");
    }
    if (ready == 0) continue;
    const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    if (impl_->active_connections.load() >= impl_->opts.max_connections) {
      const std::string reply =
          error_response(kCodeRejected, "too many connections").dump() +
          "\n";
      write_all(fd, reply.data(), reply.size());
      ::close(fd);
      continue;
    }
    ++impl_->active_connections;
    const std::lock_guard<std::mutex> lock(impl_->threads_mu);
    impl_->threads.emplace_back(
        [this, fd] { impl_->serve_connection(fd); });
  }

  log_message(LogLevel::kInfo,
              "serve: shutdown requested%s; draining (running tasks "
              "checkpoint and resume on next start)",
              shutdown_signal() != 0 ? " by signal" : "");
  impl_->sched->drain();
  // Connections notice the drain within a poll period and close; join
  // them so the dtor never races a live handler.
  {
    const std::lock_guard<std::mutex> lock(impl_->threads_mu);
    for (std::thread& t : impl_->threads)
      if (t.joinable()) t.join();
    impl_->threads.clear();
  }
}

}  // namespace nocs::serve
