#include "serve/protocol.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace nocs::serve {

namespace {

/// Hard ceiling on how many tasks one job may expand to; a request past
/// it is a client error, not an admission-control condition.
constexpr std::size_t kMaxTasksPerJob = 4096;

bool is_scalar(const json::Value& v) {
  return v.is_string() || v.is_number() || v.is_bool();
}

std::string dump_scalar(const json::Value& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  return json::format_number(v.as_number());
}

const char* priority_name(TaskPriority p) {
  switch (p) {
    case TaskPriority::kHigh: return "high";
    case TaskPriority::kLow: return "low";
    default: return "normal";
  }
}

}  // namespace

std::string fingerprint(const JobSpec& spec) {
  // Sorted keys make the fingerprint insensitive to client key order;
  // values go through the same shortest-round-trip formatter as reports,
  // so numerically identical numbers fingerprint identically.
  std::vector<std::pair<std::string, std::string>> kv;
  for (const auto& [key, value] : spec.params.members())
    kv.emplace_back(key, dump_scalar(value));
  std::sort(kv.begin(), kv.end());
  std::string fp = "serve:kind=" + spec.kind;
  for (const auto& [key, value] : kv) fp += ';' + key + '=' + value;
  return fp;
}

std::vector<double> parse_rates(const std::string& spec) {
  double start = 0, step = 0, end = 0;
  if (std::sscanf(spec.c_str(), "%lf:%lf:%lf", &start, &step, &end) != 3)
    throw std::invalid_argument("rates must be start:step:end");
  if (!(step > 0) || !(start > 0) || end < start)
    throw std::invalid_argument(
        "rates must satisfy start > 0, step > 0, end >= start");
  std::vector<double> rates;
  for (double r = start; r <= end + 1e-12; r += step) {
    rates.push_back(r);
    if (rates.size() > kMaxTasksPerJob)
      throw std::invalid_argument("rates expand to too many points");
  }
  return rates;
}

std::size_t task_count(const JobSpec& spec) {
  if (spec.kind == "sweep") {
    const json::Value* r = spec.params.find("rates");
    return parse_rates(r != nullptr ? r->as_string() : "0.05:0.05:0.5")
        .size();
  }
  if (spec.kind == "selftest") {
    const json::Value* t = spec.params.find("tasks");
    if (t == nullptr) return 1;
    // Params arrive as JSON numbers or as numeric strings (the client
    // forwards command-line values verbatim); both are documented as
    // equivalent, so both must expand.
    if (t->is_number()) return static_cast<std::size_t>(t->as_number());
    if (t->is_string()) {
      const std::string& s = t->as_string();
      char* end = nullptr;
      const long long v = std::strtoll(s.c_str(), &end, 10);
      if (!s.empty() && end == s.c_str() + s.size() && v >= 0)
        return static_cast<std::size_t>(v);
    }
    throw std::invalid_argument("selftest 'tasks' must be a number");
  }
  return 1;
}

Config params_config(const JobSpec& spec) {
  Config cfg;
  for (const auto& [key, value] : spec.params.members())
    cfg.set(key, dump_scalar(value));
  return cfg;
}

namespace {

/// Validates a submit's spec; returns an error string ("" = valid).
std::string validate_spec(const JobSpec& spec) {
  if (spec.kind != "simulate" && spec.kind != "sweep" &&
      spec.kind != "selftest")
    return "unknown kind '" + spec.kind +
           "' (simulate | sweep | selftest)";
  for (const auto& [key, value] : spec.params.members()) {
    if (key.empty()) return "params keys must be non-empty strings";
    if (!is_scalar(value))
      return "params values must be scalars (param '" + key + "' is not)";
  }
  try {
    const std::size_t tasks = task_count(spec);
    if (tasks == 0 || tasks > kMaxTasksPerJob)
      return "job expands to " + std::to_string(tasks) +
             " tasks (limit " + std::to_string(kMaxTasksPerJob) + ")";
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

}  // namespace

ParseResult parse_request(const std::string& line) {
  ParseResult out;
  json::Value doc;
  try {
    doc = json::Value::parse(line);
  } catch (const std::exception& e) {
    out.error = std::string("malformed JSON: ") + e.what();
    return out;
  }
  if (!doc.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }

  const json::Value* op = doc.find("op");
  if (op == nullptr || !op->is_string()) {
    out.error = "missing string field 'op'";
    return out;
  }
  Request& req = out.request;
  req.op = op->as_string();

  if (req.op == "submit") {
    const json::Value* kind = doc.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      out.error = "submit requires a string field 'kind'";
      return out;
    }
    req.spec.kind = kind->as_string();
    if (const json::Value* params = doc.find("params")) {
      if (!params->is_object()) {
        out.error = "'params' must be an object";
        return out;
      }
      req.spec.params = *params;
    }
    if (const json::Value* pri = doc.find("priority")) {
      if (!pri->is_string()) {
        out.error = "'priority' must be \"high\" | \"normal\" | \"low\"";
        return out;
      }
      const std::string& name = pri->as_string();
      if (name == "high") req.spec.priority = TaskPriority::kHigh;
      else if (name == "normal") req.spec.priority = TaskPriority::kNormal;
      else if (name == "low") req.spec.priority = TaskPriority::kLow;
      else {
        out.error = "unknown priority '" + name + "'";
        return out;
      }
    }
    const std::string spec_error = validate_spec(req.spec);
    if (!spec_error.empty()) {
      out.error = spec_error;
      return out;
    }
  } else if (req.op == "job" || req.op == "wait" || req.op == "watch") {
    const json::Value* job = doc.find("job");
    if (job == nullptr || !job->is_string() || job->as_string().empty()) {
      out.error = "'" + req.op + "' requires a string field 'job'";
      return out;
    }
    req.job_id = job->as_string();
    if (const json::Value* t = doc.find("timeout_ms")) {
      if (!t->is_number() || t->as_number() < 0) {
        out.error = "'timeout_ms' must be a non-negative number";
        return out;
      }
      req.timeout_ms = static_cast<std::uint64_t>(t->as_number());
      req.has_timeout = true;
    }
    if (const json::Value* nw = doc.find("nowait")) {
      if (!nw->is_bool()) {
        out.error = "'nowait' must be a boolean";
        return out;
      }
      if (nw->as_bool()) {
        // Sugar for timeout_ms:0 — a true non-blocking poll.
        req.timeout_ms = 0;
        req.has_timeout = true;
      }
    }
    if (const json::Value* e = doc.find("every_ms")) {
      if (!e->is_number() || e->as_number() < 0) {
        out.error = "'every_ms' must be a non-negative number";
        return out;
      }
      req.every_ms = static_cast<std::uint64_t>(e->as_number());
    }
  } else if (req.op != "status" && req.op != "metrics" &&
             req.op != "drain" && req.op != "ping") {
    out.error =
        "unknown op '" + req.op +
        "' (submit | job | wait | watch | status | metrics | drain | ping)";
    return out;
  }

  out.ok = true;
  return out;
}

json::Value spec_to_json(const JobSpec& spec) {
  json::Value v = json::Value::object();
  v.set("kind", spec.kind);
  v.set("params", spec.params);
  v.set("priority", priority_name(spec.priority));
  return v;
}

JobSpec spec_from_json(const json::Value& v) {
  if (!v.is_object()) throw std::invalid_argument("spec must be an object");
  JobSpec spec;
  spec.kind = v.at("kind").as_string();
  if (const json::Value* params = v.find("params")) {
    if (!params->is_object())
      throw std::invalid_argument("spec params must be an object");
    spec.params = *params;
  }
  if (const json::Value* pri = v.find("priority")) {
    const std::string& name = pri->as_string();
    if (name == "high") spec.priority = TaskPriority::kHigh;
    else if (name == "normal") spec.priority = TaskPriority::kNormal;
    else if (name == "low") spec.priority = TaskPriority::kLow;
    else throw std::invalid_argument("unknown priority '" + name + "'");
  }
  const std::string error = validate_spec(spec);
  if (!error.empty()) throw std::invalid_argument(error);
  return spec;
}

json::Value ok_response() {
  json::Value v = json::Value::object();
  v.set("ok", true);
  return v;
}

json::Value error_response(int code, const std::string& message) {
  json::Value v = json::Value::object();
  v.set("ok", false);
  v.set("code", code);
  v.set("error", message);
  return v;
}

// priority_name is also needed by the scheduler's status dumps; expose it
// through a tiny accessor instead of duplicating the switch there.
std::string priority_to_string(TaskPriority p) { return priority_name(p); }

}  // namespace nocs::serve
