// Crash-safe job scheduler: the heart of the serve daemon.
//
// Jobs expand into tasks that run on a shared common/parallel ThreadPool
// with per-job priority lanes.  Robustness is the contract:
//
//  - admission control: bounded job and task queues; a full queue is an
//    explicit 429-style reject, never unbounded memory growth;
//  - write-ahead ledger: submissions are durable before they are
//    acknowledged, task completions before they are aggregated, so a
//    `kill -9` at any point resumes with no lost or duplicated tasks;
//  - supervision: a watchdog thread enforces per-task wall-clock
//    timeouts via cancellation tokens, retries failures with
//    capped-exponential backoff, and quarantines a job whose task keeps
//    failing after max_attempts;
//  - result cache: completed jobs are cached by spec fingerprint, so an
//    identical resubmission replays the stored JSON bit-identically for
//    zero simulation cycles;
//  - preemption: a high-priority submission that finds every worker busy
//    with lower-priority tasks cancels enough of them through their
//    tokens; the victims checkpoint, re-queue in their own lanes without
//    consuming an attempt, and later resume bit-identically from their
//    per-task snapshots;
//  - streaming progress: watch() pushes rate-limited per-job progress
//    frames (cycle counts reported by runners, queue position, attempt)
//    to a client callback until the job settles;
//  - graceful drain: stop admitting, cancel running tasks cooperatively
//    (simulation runners checkpoint via CheckpointConfig), and leave the
//    ledger positioned so the next start finishes the campaign.
//
// The scheduler is transport- and workload-agnostic: the server wires in
// the socket front end, serve/runner.hpp the actual simulations, and
// tests wire in synthetic runners to exercise every failure path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "serve/ledger.hpp"
#include "serve/protocol.hpp"

namespace nocs::serve {

/// Scheduler capacity and supervision policy (CLI `serve_*` keys).
struct ServeLimits {
  int workers = 2;                    ///< pool worker threads
  std::size_t max_jobs = 64;          ///< non-terminal jobs admitted at once
  std::size_t max_pending_tasks = 1024;  ///< queued-but-not-running tasks
  int max_attempts = 3;               ///< attempts before quarantine
  std::uint64_t task_timeout_ms = 0;  ///< per-attempt wall clock (0 = off)
  std::uint64_t backoff_base_ms = 100;   ///< first retry delay
  std::uint64_t backoff_cap_ms = 5000;   ///< exponential backoff ceiling
  std::uint64_t supervise_every_ms = 20;  ///< watchdog poll period
  std::uint64_t wait_default_ms = 60000;  ///< `wait` op default timeout
  /// Floor on the interval between `watch` progress frames: a client may
  /// ask for a coarser cadence but never a finer one (rate limiting is
  /// the server's call, not the client's).
  std::uint64_t progress_every_ms = 100;

  /// Reads `serve_workers=`, `serve_max_jobs=`, `serve_max_pending=`,
  /// `serve_max_attempts=`, `serve_task_timeout_ms=`,
  /// `serve_backoff_ms=`, `serve_backoff_cap_ms=`,
  /// `serve_progress_every_ms=` (validated: throws
  /// std::invalid_argument on non-positive workers/attempts).
  static ServeLimits from_config(const Config& cfg);
};

/// Retry delay before attempt `attempt + 1`, i.e. after `attempt` failed
/// attempts: min(cap_ms, base_ms << (attempt - 1)), computed without the
/// uint64 shift overflow a naive `base << exp` hits for large attempt
/// counts — any product past the cap saturates at the cap.
std::uint64_t backoff_delay_ms(std::uint64_t base_ms, std::uint64_t cap_ms,
                               int attempt);

/// Result of one task attempt.
struct TaskOutcome {
  enum class Status {
    kOk,         ///< result is valid
    kCancelled,  ///< stopped at the cancellation token (timeout or drain)
    kError,      ///< attempt failed; retry or quarantine per policy
  };
  Status status = Status::kError;
  json::Value result;  ///< kOk only
  std::string error;   ///< kError only

  static TaskOutcome ok(json::Value r);
  static TaskOutcome cancelled();
  static TaskOutcome failed(std::string why);
};

/// Everything one task attempt needs from the scheduler.
struct TaskContext {
  std::string job_id;
  std::size_t task_index = 0;
  int attempt = 1;
  /// Must be polled; the runner returns kCancelled promptly once it
  /// fires — the timeout watchdog, graceful drain, and high-priority
  /// preemption all ride on this token.
  CancellationToken cancel;
  /// Optional progress sink: the runner reports its current simulated
  /// cycle (or any monotonic work counter) and `watch` streams it to
  /// clients.  Thread-safe and cheap (an atomic store); may be empty.
  std::function<void(std::uint64_t)> report_progress;
};

/// Executes one task attempt.  Must poll `ctx.cancel` and return
/// kCancelled promptly once it fires — the timeout watchdog, graceful
/// drain, and preemption all ride on that token.
using TaskRunner =
    std::function<TaskOutcome(const JobSpec& spec, const TaskContext& ctx)>;

/// Combines a completed job's per-task results into its final result.
using Aggregator = std::function<json::Value(
    const JobSpec& spec, const std::vector<json::Value>& task_results)>;

/// submit() outcome, mapped onto wire replies by the server.
struct SubmitOutcome {
  enum class Code {
    kAccepted,  ///< durably ledgered and queued
    kCached,    ///< identical completed job: result replayed, zero cycles
    kRejected,  ///< admission control (429)
    kDraining,  ///< daemon is shutting down (503)
  };
  Code code = Code::kRejected;
  std::string job_id;      ///< kAccepted: the new job; kCached: the donor
  json::Value cached;      ///< kCached: the stored result
  std::string error;       ///< kRejected / kDraining
};

class JobScheduler {
 public:
  /// Starts workers and the supervisor.  `ledger` may be null (a purely
  /// in-memory scheduler, used by some tests); with a ledger, its
  /// replayed records are recovered first: terminal jobs seed the result
  /// cache, interrupted jobs re-enqueue their unfinished tasks.
  JobScheduler(const ServeLimits& limits, TaskRunner runner,
               Aggregator aggregate, Ledger* ledger);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  SubmitOutcome submit(const JobSpec& spec);

  /// Status object for one job ({"ok":false,...} 404-style when unknown).
  json::Value job_status(const std::string& job_id) const;

  /// Blocks until the job is terminal or the timeout elapsed, then
  /// returns its status object.  nullopt uses
  /// ServeLimits::wait_default_ms; an explicit 0 is a true non-blocking
  /// poll (returns the current status immediately).
  json::Value wait(const std::string& job_id,
                   std::optional<std::uint64_t> timeout_ms = std::nullopt);

  /// Emits a progress frame through `emit` whenever the job's progress
  /// changes — at most once per max(every_ms, progress_every_ms) — until
  /// the job is terminal, the daemon drains, or `emit` returns false
  /// (client hung up).  Frames are `{"ok":true,"event":"progress",...}`
  /// with cycle counts, completed/running task counts, queue position,
  /// and the highest attempt number; the returned value is the job's
  /// final status object (no "event" field), which the server sends as
  /// the stream's last line.  `emit` is invoked without internal locks
  /// held, so it may block on a slow socket without stalling workers.
  json::Value watch(const std::string& job_id, std::uint64_t every_ms,
                    const std::function<bool(const json::Value&)>& emit);

  /// Daemon-level status: queue depth, running tasks, retry/timeout/
  /// quarantine/cache counters, draining flag.
  json::Value status() const;

  /// Registers the same numbers as "serve.*" metrics.
  void export_metrics(MetricsRegistry& reg) const;

  /// Graceful drain: stop admitting and dequeuing, cancel running tasks
  /// cooperatively, and return once every worker settled.  Idempotent.
  /// The scheduler stays queryable (status/job/wait) afterwards.
  void drain();
  bool draining() const;

  /// Jobs recovered from the ledger that are being re-run (for startup
  /// logging; 0 on a fresh ledger).
  std::size_t recovered_jobs() const { return recovered_jobs_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t recovered_jobs_ = 0;
};

}  // namespace nocs::serve
