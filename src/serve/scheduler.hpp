// Crash-safe job scheduler: the heart of the serve daemon.
//
// Jobs expand into tasks that run on a shared common/parallel ThreadPool
// with per-job priority lanes.  Robustness is the contract:
//
//  - admission control: bounded job and task queues; a full queue is an
//    explicit 429-style reject, never unbounded memory growth;
//  - write-ahead ledger: submissions are durable before they are
//    acknowledged, task completions before they are aggregated, so a
//    `kill -9` at any point resumes with no lost or duplicated tasks;
//  - supervision: a watchdog thread enforces per-task wall-clock
//    timeouts via cancellation tokens, retries failures with
//    capped-exponential backoff, and quarantines a job whose task keeps
//    failing after max_attempts;
//  - result cache: completed jobs are cached by spec fingerprint, so an
//    identical resubmission replays the stored JSON bit-identically for
//    zero simulation cycles;
//  - graceful drain: stop admitting, cancel running tasks cooperatively
//    (simulation runners checkpoint via CheckpointConfig), and leave the
//    ledger positioned so the next start finishes the campaign.
//
// The scheduler is transport- and workload-agnostic: the server wires in
// the socket front end, serve/runner.hpp the actual simulations, and
// tests wire in synthetic runners to exercise every failure path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "serve/ledger.hpp"
#include "serve/protocol.hpp"

namespace nocs::serve {

/// Scheduler capacity and supervision policy (CLI `serve_*` keys).
struct ServeLimits {
  int workers = 2;                    ///< pool worker threads
  std::size_t max_jobs = 64;          ///< non-terminal jobs admitted at once
  std::size_t max_pending_tasks = 1024;  ///< queued-but-not-running tasks
  int max_attempts = 3;               ///< attempts before quarantine
  std::uint64_t task_timeout_ms = 0;  ///< per-attempt wall clock (0 = off)
  std::uint64_t backoff_base_ms = 100;   ///< first retry delay
  std::uint64_t backoff_cap_ms = 5000;   ///< exponential backoff ceiling
  std::uint64_t supervise_every_ms = 20;  ///< watchdog poll period
  std::uint64_t wait_default_ms = 60000;  ///< `wait` op default timeout

  /// Reads `serve_workers=`, `serve_max_jobs=`, `serve_max_pending=`,
  /// `serve_max_attempts=`, `serve_task_timeout_ms=`,
  /// `serve_backoff_ms=`, `serve_backoff_cap_ms=` (validated: throws
  /// std::invalid_argument on non-positive workers/attempts).
  static ServeLimits from_config(const Config& cfg);
};

/// Result of one task attempt.
struct TaskOutcome {
  enum class Status {
    kOk,         ///< result is valid
    kCancelled,  ///< stopped at the cancellation token (timeout or drain)
    kError,      ///< attempt failed; retry or quarantine per policy
  };
  Status status = Status::kError;
  json::Value result;  ///< kOk only
  std::string error;   ///< kError only

  static TaskOutcome ok(json::Value r);
  static TaskOutcome cancelled();
  static TaskOutcome failed(std::string why);
};

/// Executes one task attempt.  Must poll `cancel` and return kCancelled
/// promptly once it fires — both the timeout watchdog and graceful drain
/// ride on that token.
using TaskRunner = std::function<TaskOutcome(
    const JobSpec& spec, const std::string& job_id, std::size_t task_index,
    int attempt, const CancellationToken& cancel)>;

/// Combines a completed job's per-task results into its final result.
using Aggregator = std::function<json::Value(
    const JobSpec& spec, const std::vector<json::Value>& task_results)>;

/// submit() outcome, mapped onto wire replies by the server.
struct SubmitOutcome {
  enum class Code {
    kAccepted,  ///< durably ledgered and queued
    kCached,    ///< identical completed job: result replayed, zero cycles
    kRejected,  ///< admission control (429)
    kDraining,  ///< daemon is shutting down (503)
  };
  Code code = Code::kRejected;
  std::string job_id;      ///< kAccepted: the new job; kCached: the donor
  json::Value cached;      ///< kCached: the stored result
  std::string error;       ///< kRejected / kDraining
};

class JobScheduler {
 public:
  /// Starts workers and the supervisor.  `ledger` may be null (a purely
  /// in-memory scheduler, used by some tests); with a ledger, its
  /// replayed records are recovered first: terminal jobs seed the result
  /// cache, interrupted jobs re-enqueue their unfinished tasks.
  JobScheduler(const ServeLimits& limits, TaskRunner runner,
               Aggregator aggregate, Ledger* ledger);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  SubmitOutcome submit(const JobSpec& spec);

  /// Status object for one job ({"ok":false,...} 404-style when unknown).
  json::Value job_status(const std::string& job_id) const;

  /// Blocks until the job is terminal or `timeout_ms` elapsed (0 uses
  /// ServeLimits::wait_default_ms), then returns its status object.
  json::Value wait(const std::string& job_id, std::uint64_t timeout_ms);

  /// Daemon-level status: queue depth, running tasks, retry/timeout/
  /// quarantine/cache counters, draining flag.
  json::Value status() const;

  /// Registers the same numbers as "serve.*" metrics.
  void export_metrics(MetricsRegistry& reg) const;

  /// Graceful drain: stop admitting and dequeuing, cancel running tasks
  /// cooperatively, and return once every worker settled.  Idempotent.
  /// The scheduler stays queryable (status/job/wait) afterwards.
  void drain();
  bool draining() const;

  /// Jobs recovered from the ledger that are being re-run (for startup
  /// logging; 0 on a fresh ledger).
  std::size_t recovered_jobs() const { return recovered_jobs_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t recovered_jobs_ = 0;
};

}  // namespace nocs::serve
