// Write-ahead job ledger: the serve daemon's source of truth.
//
// Every state transition that must survive a crash is appended as one
// JSON record inside a checksummed snapshot::append_record frame *before*
// the transition is acknowledged to a client: `submit` before the accept
// reply, `task` after each task completes, `done`/`failed` when a job
// reaches a terminal state.  Startup replays the log: terminal jobs seed
// the result cache, non-terminal jobs are re-enqueued minus their
// already-recorded tasks — so a `kill -9` at any byte loses at most the
// record that was mid-append (the frame checksum catches it, and the
// damaged tail is truncated away before new appends).
//
// Record types (all objects with a "type" field):
//   {"type":"open","magic":"nocs-serve-ledger","version":1}
//   {"type":"submit","job":"job-3","spec":{"kind":...,"params":{...},
//    "priority":"normal"},"fingerprint":"serve:..."}
//   {"type":"task","job":"job-3","task":2,"result":{...}}
//   {"type":"done","job":"job-3","result":{...}}
//   {"type":"failed","job":"job-3","error":"..."}
//
// Compaction.  The log grows by one record per completed task; a
// long-lived daemon would otherwise replay (and store) every task of
// every finished campaign forever.  compact() rewrites the file as a
// snapshot of live state — per job: the `submit` record, then either its
// terminal record (task records of finished jobs are dead weight) or its
// completed `task` records — using the atomic tmp + rename pattern
// (`<path>.compact.tmp`), so a kill -9 at any instant leaves either the
// complete old log or the complete new one.  Record payload bytes are
// copied verbatim, never re-serialized, so a replay after compaction is
// byte-identical to one before it.  With a threshold (`compact_bytes`),
// append() self-compacts when the file crosses it *and* has at least
// doubled since the last compaction (the regrowth guard keeps steady
// appends from turning every write into an O(file) rewrite).
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace nocs::serve {

/// Current ledger format version (the "open" record's `version`).
inline constexpr int kLedgerVersion = 1;

/// Append-only, checksummed, replayable record log with snapshot
/// compaction.
class Ledger {
 public:
  /// Opens (creating if absent) the ledger at `path`: removes a stale
  /// compaction temp file, scans the existing records, truncates any
  /// damaged tail so the file is clean again, and positions for
  /// appending.  Throws std::runtime_error when the file cannot be
  /// opened for appending or is not a serve ledger — except when the
  /// damaged-tail truncation itself fails, which leaves the ledger open
  /// read-only (`healthy() == false`): the valid prefix still replays,
  /// but every append is refused rather than buried after corrupt bytes.
  /// `compact_bytes` > 0 arms automatic compaction at that file size
  /// (0 = only explicit compact() calls).
  explicit Ledger(const std::string& path, std::uint64_t compact_bytes = 0);
  ~Ledger();

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  const std::string& path() const { return path_; }

  /// Records replayed from disk at open (excluding the "open" header),
  /// in append order.  Unparseable-JSON records inside valid frames are
  /// skipped during the scan (logged), not fatal.
  const std::vector<json::Value>& replayed() const { return replayed_; }

  /// True when the open-time scan found and truncated a damaged tail.
  bool truncated_on_open() const { return truncated_on_open_; }

  /// False once the ledger has failed closed: the damaged tail could not
  /// be truncated at open, or an append suffered a short write.  An
  /// unhealthy ledger refuses all further appends (the daemon surfaces
  /// 503 on submit) because acknowledging work it cannot persist would
  /// silently break crash recovery.
  bool healthy() const;

  /// Appends one record and flushes it to the device before returning.
  /// Thread-safe.  Returns false (after logging) when the ledger is
  /// unhealthy or the write fails — a failed write marks the ledger
  /// unhealthy, since the file now ends in a torn frame.
  bool append(const json::Value& record);

  /// Rewrites the log as snapshot + tail (see the header comment).
  /// Thread-safe; returns false after logging when compaction cannot
  /// complete (the old log remains intact and appendable in that case,
  /// unless reopening after the rename failed — then the ledger fails
  /// closed).
  bool compact();

  /// Records appended by this process (not counting replayed ones).
  std::size_t appended_count() const;

  /// Current on-disk size in bytes (updated after every append/compact).
  std::uint64_t size_bytes() const;

  /// Number of completed compactions in this process lifetime.
  std::size_t compactions() const;

 private:
  bool compact_locked();

  std::string path_;
  std::string tmp_path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::vector<json::Value> replayed_;
  bool truncated_on_open_ = false;
  bool healthy_ = true;
  std::size_t appended_ = 0;
  std::uint64_t compact_bytes_ = 0;
  std::uint64_t size_bytes_ = 0;
  std::uint64_t last_compacted_bytes_ = 0;
  std::size_t compactions_ = 0;
};

}  // namespace nocs::serve
