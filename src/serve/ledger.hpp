// Write-ahead job ledger: the serve daemon's source of truth.
//
// Every state transition that must survive a crash is appended as one
// JSON record inside a checksummed snapshot::append_record frame *before*
// the transition is acknowledged to a client: `submit` before the accept
// reply, `task` after each task completes, `done`/`failed` when a job
// reaches a terminal state.  Startup replays the log: terminal jobs seed
// the result cache, non-terminal jobs are re-enqueued minus their
// already-recorded tasks — so a `kill -9` at any byte loses at most the
// record that was mid-append (the frame checksum catches it, and the
// damaged tail is truncated away before new appends).
//
// Record types (all objects with a "type" field):
//   {"type":"open","magic":"nocs-serve-ledger","version":1}
//   {"type":"submit","job":"job-3","spec":{"kind":...,"params":{...},
//    "priority":"normal"},"fingerprint":"serve:..."}
//   {"type":"task","job":"job-3","task":2,"result":{...}}
//   {"type":"done","job":"job-3","result":{...}}
//   {"type":"failed","job":"job-3","error":"..."}
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace nocs::serve {

/// Current ledger format version (the "open" record's `version`).
inline constexpr int kLedgerVersion = 1;

/// Append-only, checksummed, replayable record log.
class Ledger {
 public:
  /// Opens (creating if absent) the ledger at `path`: scans the existing
  /// records, truncates any damaged tail so the file is clean again, and
  /// positions for appending.  Throws std::runtime_error when the file
  /// cannot be opened for appending or is not a serve ledger.
  explicit Ledger(const std::string& path);
  ~Ledger();

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  const std::string& path() const { return path_; }

  /// Records replayed from disk at open (excluding the "open" header),
  /// in append order.  Unparseable-JSON records inside valid frames are
  /// skipped during the scan (logged), not fatal.
  const std::vector<json::Value>& replayed() const { return replayed_; }

  /// True when the open-time scan found and truncated a damaged tail.
  bool truncated_on_open() const { return truncated_on_open_; }

  /// Appends one record and flushes it to the device before returning.
  /// Thread-safe.  Returns false (after logging) on a write failure —
  /// the caller decides whether to keep serving without durability.
  bool append(const json::Value& record);

  /// Records appended by this process (not counting replayed ones).
  std::size_t appended_count() const;

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::vector<json::Value> replayed_;
  bool truncated_on_open_ = false;
  std::size_t appended_ = 0;
};

}  // namespace nocs::serve
