#include "serve/runner.hpp"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "power/noc_power.hpp"
#include "sprint/network_builder.hpp"

namespace nocs::serve {

namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string snapshot_path(const std::string& dir, const std::string& job_id,
                          std::size_t index) {
  return dir + "/" + job_id + ".task" + std::to_string(index) + ".nocsnap";
}

noc::NetworkParams params_from(const Config& cfg) {
  noc::NetworkParams p;
  p.num_classes = static_cast<int>(cfg.get_int("classes", 1));
  p.pipeline_stages = static_cast<int>(cfg.get_int("pipeline", 5));
  p.validate();
  return p;
}

/// Runs `attempt_run(allow_restore)`, retrying once from scratch when the
/// first attempt blew up while a snapshot existed — a stale or corrupt
/// per-task snapshot must cost one fresh run, never quarantine the job.
template <typename Fn>
TaskOutcome with_snapshot_recovery(const std::string& snap, Fn attempt_run) {
  try {
    return attempt_run(true);
  } catch (const std::exception& e) {
    if (!snap.empty() && file_exists(snap)) {
      log_message(LogLevel::kWarn,
                  "serve: discarding unusable snapshot %s (%s); re-running "
                  "the task from scratch",
                  snap.c_str(), e.what());
      std::remove(snap.c_str());
      return attempt_run(false);
    }
    throw;
  }
}

/// kind=simulate: one cycle-accurate run, result shaped like the CLI's
/// `mode=simulate report=` document (minus the "mode" key).
TaskOutcome run_simulate(const JobSpec& spec, const std::string& snap,
                         const TaskContext& ctx) {
  const Config cfg = params_config(spec);
  const noc::NetworkParams params = params_from(cfg);
  const int level = static_cast<int>(cfg.get_int("level", 4));
  const std::string traffic = cfg.get_string("traffic", "uniform");
  const std::uint64_t seed = cfg.get_int("seed", 1);
  const bool full = cfg.get_string("scheme", "noc") == "full";
  const bool protocol = cfg.get_bool("protocol", false);
  const int sim_threads = static_cast<int>(cfg.get_int("sim_threads", 0));
  noc::SimConfig sim;
  sim.warmup = cfg.get_int("warmup", 2000);
  sim.measure = cfg.get_int("measure", 10000);
  sim.injection_rate = cfg.get_double("injection", 0.1);
  const fault::FaultParams fparams = fault::FaultParams::from_config(cfg);
  const Cycle watchdog = static_cast<Cycle>(cfg.get_int("watchdog", 50000));
  cfg.reject_unknown();

  return with_snapshot_recovery(snap, [&](bool allow_restore) {
    sprint::NetworkBundle b =
        full ? sprint::make_full_sprinting_network(params, level, traffic,
                                                   seed)
             : sprint::make_noc_sprinting_network(params, level, traffic,
                                                  seed);
    if (params.num_classes >= 2 && protocol) b.network->set_request_reply(1, 5);
    b.network->set_sim_threads(sim_threads);
    std::unique_ptr<fault::FaultInjector> injector;
    noc::SimConfig point_sim = sim;
    if (fparams.enabled) {
      injector =
          std::make_unique<fault::FaultInjector>(params.shape(), fparams);
      const noc::ProtectionParams prot = fparams.protection();
      b.network->enable_resilience(injector.get(), &prot);
      point_sim.watchdog_cycles = watchdog;
    }
    noc::CheckpointConfig ckpt;
    ckpt.stop_flag = ctx.cancel.flag();
    ckpt.on_progress = ctx.report_progress;
    if (!snap.empty()) {
      ckpt.save_path = snap;
      if (allow_restore && file_exists(snap)) ckpt.restore_path = snap;
    }
    if (injector != nullptr) ckpt.extras.emplace_back("fault", injector.get());

    const noc::SimResults r = run_simulation(*b.network, point_sim, ckpt);
    if (r.interrupted) return TaskOutcome::cancelled();
    if (!snap.empty()) std::remove(snap.c_str());

    json::Value doc = noc::to_json(r);
    doc.set("scheme", full ? "full" : "noc");
    doc.set("level", level);
    doc.set("traffic", traffic);
    doc.set("injection_rate", point_sim.injection_rate);
    doc.set("seed", static_cast<std::uint64_t>(seed));
    const auto rp = power::RouterPowerParams::from_network(params);
    const power::RouterPowerModel router_model(rp);
    const power::LinkPowerModel link_model(params.flit_bytes * 8, 2.5,
                                           rp.tech, rp.op);
    const auto power_est = power::estimate_noc_power(
        *b.network, router_model, link_model, r.cycles);
    json::Value pw = json::Value::object();
    pw.set("total_mw", power_est.total() * 1e3);
    pw.set("routers_mw", power_est.routers.total() * 1e3);
    pw.set("links_mw",
           (power_est.link_dynamic + power_est.link_leakage) * 1e3);
    doc.set("power", std::move(pw));
    return TaskOutcome::ok(std::move(doc));
  });
}

/// kind=sweep, task `index`: the index-th rate of the sweep, run exactly
/// as `mode=sweep` runs it (same per-task seed, same warmup/measure), so
/// the aggregated points match a direct sweep report bit for bit.
TaskOutcome run_sweep_point(const JobSpec& spec, std::size_t index,
                            const std::string& snap,
                            const TaskContext& ctx) {
  const Config cfg = params_config(spec);
  const noc::NetworkParams params = params_from(cfg);
  const int level = static_cast<int>(cfg.get_int("level", 4));
  const std::string traffic = cfg.get_string("traffic", "uniform");
  const std::uint64_t seed = cfg.get_int("seed", 1);
  const int sim_threads = static_cast<int>(cfg.get_int("sim_threads", 0));
  const std::vector<double> rates =
      parse_rates(cfg.get_string("rates", "0.05:0.05:0.5"));
  cfg.reject_unknown();
  NOCS_EXPECTS(index < rates.size());
  const double rate = rates[index];

  return with_snapshot_recovery(snap, [&](bool allow_restore) {
    sprint::NetworkBundle b = sprint::make_noc_sprinting_network(
        params, level, traffic, task_seed(seed, index));
    b.network->set_sim_threads(sim_threads);
    noc::SimConfig sim;
    sim.warmup = 1000;
    sim.measure = 6000;
    sim.injection_rate = rate;
    noc::CheckpointConfig ckpt;
    ckpt.stop_flag = ctx.cancel.flag();
    ckpt.on_progress = ctx.report_progress;
    if (!snap.empty()) {
      ckpt.save_path = snap;
      if (allow_restore && file_exists(snap)) ckpt.restore_path = snap;
    }
    const noc::SimResults r = run_simulation(*b.network, sim, ckpt);
    if (r.interrupted) return TaskOutcome::cancelled();
    if (!snap.empty()) std::remove(snap.c_str());
    json::Value p = noc::to_json(r);
    p.set("injection_rate", rate);
    return TaskOutcome::ok(std::move(p));
  });
}

/// kind=selftest: no simulator, just deterministic sleep/fail/hang knobs
/// so tests and smoke checks can exercise retry, timeout, and drain paths
/// in milliseconds.
TaskOutcome run_selftest(const JobSpec& spec, const TaskContext& ctx) {
  const Config cfg = params_config(spec);
  (void)cfg.get_int("tasks", 1);  // consumed by task_count
  const long long sleep_ms = cfg.get_int("sleep_ms", 5);
  const long long fail_attempts = cfg.get_int("fail_attempts", 0);
  const bool hang = cfg.get_bool("hang", false);
  cfg.reject_unknown();

  if (ctx.attempt <= fail_attempts)
    return TaskOutcome::failed("selftest: induced failure on attempt " +
                               std::to_string(ctx.attempt));
  const auto slice = std::chrono::milliseconds(1);
  if (hang) {
    while (!ctx.cancel.stop_requested()) std::this_thread::sleep_for(slice);
    return TaskOutcome::cancelled();
  }
  for (long long slept = 0; slept < sleep_ms; ++slept) {
    if (ctx.cancel.stop_requested()) return TaskOutcome::cancelled();
    std::this_thread::sleep_for(slice);
    // Progress in "cycles" of one ms each: gives watch streams something
    // real to report without touching the simulator.
    if (ctx.report_progress)
      ctx.report_progress(static_cast<std::uint64_t>(slept + 1));
  }
  json::Value doc = json::Value::object();
  doc.set("task", static_cast<double>(ctx.task_index));
  doc.set("attempt", ctx.attempt);
  return TaskOutcome::ok(std::move(doc));
}

}  // namespace

TaskRunner make_sim_runner(std::string state_dir) {
  return [dir = std::move(state_dir)](const JobSpec& spec,
                                      const TaskContext& ctx) -> TaskOutcome {
    if (spec.kind == "selftest") return run_selftest(spec, ctx);
    const std::string snap =
        dir.empty() ? "" : snapshot_path(dir, ctx.job_id, ctx.task_index);
    if (spec.kind == "sweep")
      return run_sweep_point(spec, ctx.task_index, snap, ctx);
    return run_simulate(spec, snap, ctx);
  };
}

Aggregator make_sim_aggregator() {
  return [](const JobSpec& spec,
            const std::vector<json::Value>& results) -> json::Value {
    if (spec.kind == "simulate") {
      json::Value doc = results.at(0);
      doc.set("kind", "simulate");
      return doc;
    }
    json::Value doc = json::Value::object();
    doc.set("kind", spec.kind);
    json::Value arr = json::Value::array();
    for (const json::Value& r : results) arr.push_back(r);
    if (spec.kind == "sweep") {
      const Config cfg = params_config(spec);
      doc.set("level", static_cast<int>(cfg.get_int("level", 4)));
      doc.set("traffic", cfg.get_string("traffic", "uniform"));
      doc.set("seed", static_cast<std::uint64_t>(cfg.get_int("seed", 1)));
      doc.set("points", std::move(arr));
    } else {
      doc.set("tasks", std::move(arr));
    }
    return doc;
  };
}

}  // namespace nocs::serve
