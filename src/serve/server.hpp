// Socket front end of the serve daemon: line-delimited JSON over TCP on
// 127.0.0.1 (one request line in, one reply line out, in order), wired to
// the crash-safe JobScheduler.  The listener polls the process shutdown
// flag, so SIGTERM/SIGINT (or the `drain` op) turns into a graceful
// drain: running simulations checkpoint, the ledger stays consistent, and
// the next start resumes the campaign.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/json.hpp"
#include "serve/scheduler.hpp"

namespace nocs::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< bind address (loopback by default)
  int port = 0;                    ///< 0 = kernel-assigned ephemeral port
  /// State directory: job ledger (`ledger.nsrl`) plus per-task drain
  /// snapshots live here; created when missing.
  std::string dir = "serve-state";
  /// When set, the bound port is written here (one line) after listen —
  /// how scripts find an ephemeral port.
  std::string port_file;
  int max_connections = 32;  ///< concurrent clients; excess get a 429
  /// Ledger auto-compaction threshold in bytes: once the write-ahead log
  /// grows past it (and has at least doubled since the last rewrite), it
  /// is rewritten as snapshot + tail.  0 disables auto-compaction.
  std::uint64_t ledger_compact_bytes = 4u << 20;
  ServeLimits limits;

  /// Reads `serve_host=`, `serve_port=`, `serve_dir=`, `serve_port_file=`,
  /// `serve_max_connections=`, `serve_ledger_compact_bytes=` plus every
  /// ServeLimits key.
  static ServerOptions from_config(const Config& cfg);
};

/// Owns the ledger, the scheduler (recovery runs in the constructor), and
/// the listening socket.  Construction throws std::runtime_error when the
/// state directory or socket cannot be set up.
class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int port() const;  ///< actual bound port (after ephemeral assignment)
  JobScheduler& scheduler();

  /// Accept/serve loop; returns after a shutdown request (signal or
  /// `drain` op) once the scheduler has drained.
  void run();

  /// One protocol line to one reply — the transport-free core of the
  /// connection loop, exposed so tests can drive the full daemon without
  /// sockets.  Thread-safe.  A `watch` request blocks like it does on a
  /// socket but only the final status is returned (no transport to
  /// stream the intermediate frames over); pass an emit callback via
  /// handle_line's streaming sibling in Impl for those.
  json::Value handle_line(const std::string& line);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nocs::serve
