// Network interface (NI): packetizes traffic into flits, injects them into
// the local router port under credit flow control, and ejects/records
// arriving packets.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/channel.hpp"
#include "noc/counters.hpp"
#include "noc/fault_hooks.hpp"
#include "noc/flit.hpp"
#include "noc/local_agent.hpp"
#include "noc/params.hpp"
#include "noc/stats_collector.hpp"
#include "noc/traffic.hpp"

namespace nocs::noc {

class NetworkInterface {
 public:
  NetworkInterface(NodeId id, const NetworkParams& params,
                   StatsCollector* stats);

  NodeId id() const { return id_; }

  /// Repoints the statistics collector (the sharded tick gives every NI
  /// its shard's deferring collector; serial mode points back at the
  /// master).  Safe between ticks only.
  void set_stats(StatsCollector* stats) {
    NOCS_EXPECTS(stats != nullptr);
    stats_ = stats;
  }

  /// Wires the four local channels between this NI and its router.
  void connect(Pipe<Flit>* to_router, Pipe<Credit>* credit_from_router,
               Pipe<Flit>* from_router, Pipe<Credit>* credit_to_router);

  /// Marks this NI as an active traffic endpoint with the given logical id
  /// and endpoint table (logical id -> physical node).  Inactive NIs only
  /// eject (they never generate packets).
  void set_endpoint(int logical_id, const std::vector<NodeId>* endpoints,
                    const TrafficPattern* traffic);
  void clear_endpoint();
  bool is_active_endpoint() const { return traffic_ != nullptr; }

  /// Offered load in flits/cycle for this node.
  void set_injection_rate(double flits_per_cycle) {
    NOCS_EXPECTS(flits_per_cycle >= 0.0);
    injection_rate_ = flits_per_cycle;
    if (wake_cb_) wake_cb_();
  }

  void set_seed(std::uint64_t seed) { rng_.reseed(seed); }

  /// Enables request-reply protocol mode: generated packets become
  /// `request_length`-flit requests on class 0, and every request this NI
  /// ejects triggers a `reply_length`-flit reply on class 1 back to the
  /// requester (the shape of cache request/data traffic).  Requires
  /// params.num_classes >= 2.
  void set_request_reply(int request_length, int reply_length);

  // --- end-to-end protection (fault resilience) -----------------------------

  /// Turns on per-packet checksum verification, ACK/NACK-driven
  /// retransmission with capped exponential backoff, and duplicate
  /// filtering.  Off by default; fault-free runs are bit-identical.
  void enable_protection(const ProtectionParams& prot);

  /// Oracle consulted for injection-time packet drops (may be null).
  void set_fault_oracle(FaultOracle* oracle) { oracle_ = oracle; }

  // --- node-local agent (memory controllers etc.) ---------------------------

  /// Attaches a node-local agent: every ejected data/multicast tail is
  /// delivered through agent->on_packet(), the agent is ticked between
  /// ejection and injection each cycle, and its pending work keeps this
  /// NI hot and un-drained.  Pass nullptr to detach.  Incompatible with
  /// end-to-end protection mode (the agent would observe retransmitted
  /// duplicates).
  void set_agent(LocalAgent* agent) {
    NOCS_EXPECTS(agent == nullptr || !protection_);
    agent_ = agent;
    if (agent != nullptr && wake_cb_) wake_cb_();
  }
  LocalAgent* agent() const { return agent_; }

  // --- multicast ------------------------------------------------------------

  /// Points this NI at the network's shared multicast group table
  /// (required before send_multicast; relays also resolve member
  /// subranges through it).
  void set_multicast_table(const std::vector<std::vector<NodeId>>* groups) {
    mcast_groups_ = groups;
  }

  /// Selects tree multicast (true) or the serial-unicast fallback (false,
  /// the `multicast=off` bit-identity reference).
  void set_multicast_enabled(bool enabled) { multicast_ = enabled; }

  /// Router counters charged for multicast replications at this node
  /// (wired by Network to the co-located router).
  void set_mc_counters(RouterCounters* counters) { mc_counters_ = counters; }

  /// Sends one `length`-flit payload to every member of multicast group
  /// `group` except this node.  With multicast enabled the packet travels
  /// a deterministic source-rooted tree: the source addresses the median
  /// member of the sorted member list, and each receiver re-injects
  /// copies toward the medians of the two remaining subranges (descriptor
  /// packed into Flit::ack_for), so every member receives exactly one
  /// copy and replication work is spread over the tree instead of the
  /// source link.  With multicast disabled the same delivery set is
  /// produced by serial unicasts in ascending member order.  Returns the
  /// id of the first packet enqueued (0 when the group contains no other
  /// members).  Incompatible with protection mode.
  PacketId send_multicast(Cycle now, int group, int msg_class = 0,
                          int length = 0);

  /// Data packets sent but not yet acknowledged (protection mode only).
  std::size_t unacked_count() const { return unacked_.size(); }

  /// Advances one cycle: eject, generate, inject.
  void tick(Cycle now);

  /// Directly enqueues one packet to `dst` (used by tests and the CMP
  /// trace-driven mode); returns its packet id.  `msg_class` selects the
  /// virtual network; `length` <= 0 means params.packet_length.
  PacketId send_packet(Cycle now, NodeId dst, int msg_class = 0,
                       int length = 0);

  /// Number of packets waiting in the source queue (saturation signal).
  std::size_t source_queue_depth() const { return source_queue_.size(); }

  /// True when nothing is queued, mid-injection, awaiting an ACK, or
  /// pending inside the attached agent.
  bool idle() const {
    return source_queue_.empty() && !sending_ && unacked_.empty() &&
           (agent_ == nullptr || agent_->idle());
  }

  // --- active-node fast path (see Router's invariant) ----------------------

  /// True when the NI must be ticked next cycle regardless of channel
  /// arrivals: it may generate traffic stochastically, or it holds queued /
  /// in-flight packets.  NIs keep no per-cycle counters, so skipped cycles
  /// need no lazy accounting.
  bool busy_next_cycle() const {
    if (traffic_ != nullptr && injection_rate_ > 0.0) return true;
    // An agent mid-service must keep ticking even while the NI itself has
    // nothing queued (its completion will enqueue a reply later).
    if (agent_ != nullptr && agent_->busy_next_cycle()) return true;
    // Unacked packets keep the NI ticking so retransmission timers fire.
    return !idle();
  }

  /// Ready time of the earliest pending flit/credit from the router, or
  /// kNoPendingEvent.
  Cycle next_input_event() const {
    Cycle earliest = kNoPendingEvent;
    if (from_router_ != nullptr) {
      const Cycle t = from_router_->next_ready_time();
      if (t < earliest) earliest = t;
    }
    if (credit_from_router_ != nullptr) {
      const Cycle t = credit_from_router_->next_ready_time();
      if (t < earliest) earliest = t;
    }
    return earliest;
  }

  /// Callback invoked when new work appears outside tick() (direct
  /// send_packet, endpoint/rate configuration).
  void set_wake_callback(std::function<void()> cb) { wake_cb_ = std::move(cb); }

  /// Re-arms the active-node fast path after work appeared out of band —
  /// required whenever the attached agent receives work not routed through
  /// this NI (a local DRAM access, a restored in-service request), since a
  /// cold node with a busy agent would otherwise never tick again.
  void wake() {
    if (wake_cb_) wake_cb_();
  }

  std::uint64_t total_generated() const { return total_generated_; }
  std::uint64_t total_ejected_flits() const { return total_ejected_flits_; }

  // --- checkpoint/restore ---------------------------------------------------
  //
  // Dynamic state only: RNG position, source queue, in-flight injection,
  // credits, and protection bookkeeping.  Endpoint/traffic/protection
  // configuration is re-applied by the caller before load_state.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct PendingPacket {
    PacketId id;
    NodeId dst;
    Cycle created;
    bool measured;
    int msg_class;
    int length;
    PacketKind kind = PacketKind::kData;
    PacketId ack_for = 0;
  };

  /// Sender-side retransmission record for one unacknowledged data packet.
  struct Unacked {
    PendingPacket pkt;
    Cycle deadline = 0;  ///< when the next timeout retransmission fires
    int retries = 0;
  };

  /// Receiver-side state of one packet mid-ejection (protection mode).
  struct RxPacket {
    bool corrupted = false;
    int measured_flits = 0;
  };

  static void save_pending(snapshot::Writer& w, const PendingPacket& p);
  static PendingPacket load_pending(snapshot::Reader& r);

  /// Packs/unpacks the multicast tree descriptor carried in Flit::ack_for:
  /// group id (24 bits) | subrange lo (20 bits) | subrange hi (20 bits).
  static PacketId pack_mcast(int group, int lo, int hi);
  static void unpack_mcast(PacketId d, int* group, int* lo, int* hi);

  /// Enqueues the tree segments covering members[lo..hi] of `group`
  /// (inclusive), skipping this node itself.  `relay` marks re-injected
  /// copies (charged to mc_counters_).
  void send_mcast_range(Cycle now, int group, int lo, int hi, Cycle created,
                        bool measured, int msg_class, int length, bool relay);
  void handle_mcast(Cycle now, const Flit& f);

  void eject(Cycle now);
  void eject_protected(Cycle now, const Flit& f);
  void generate(Cycle now);
  void inject(Cycle now);
  void check_timeouts(Cycle now);
  void queue_retransmit(Cycle now, Unacked& u);
  void send_control(Cycle now, NodeId dst, PacketKind kind, PacketId ack_for,
                    int msg_class);
  Cycle backoff(int retries) const;

  NodeId id_;
  NetworkParams params_;
  StatsCollector* stats_;

  Pipe<Flit>* to_router_ = nullptr;
  Pipe<Credit>* credit_from_router_ = nullptr;
  Pipe<Flit>* from_router_ = nullptr;
  Pipe<Credit>* credit_to_router_ = nullptr;

  int logical_id_ = -1;
  const std::vector<NodeId>* endpoints_ = nullptr;
  const TrafficPattern* traffic_ = nullptr;
  double injection_rate_ = 0.0;
  Rng rng_;

  std::deque<PendingPacket> source_queue_;
  std::vector<int> credits_;  // per-VC credits for the router's local port

  bool sending_ = false;
  PendingPacket current_{};
  int flits_sent_ = 0;
  VcId current_vc_ = -1;
  Cycle head_injected_ = 0;
  int vc_rr_ = 0;

  bool request_reply_ = false;
  int request_length_ = 1;
  int reply_length_ = 5;

  LocalAgent* agent_ = nullptr;
  const std::vector<std::vector<NodeId>>* mcast_groups_ = nullptr;
  bool multicast_ = false;
  RouterCounters* mc_counters_ = nullptr;

  // End-to-end protection state (all empty/inert unless enabled).
  // std::map keeps timeout-scan iteration order deterministic.
  bool protection_ = false;
  ProtectionParams prot_;
  FaultOracle* oracle_ = nullptr;
  std::map<PacketId, Unacked> unacked_;
  Cycle next_deadline_ = kNoPendingEvent;  ///< earliest unacked deadline
  std::map<PacketId, RxPacket> rx_state_;  ///< packets mid-ejection
  std::unordered_set<PacketId> delivered_; ///< duplicate filter

  std::function<void()> wake_cb_;

  std::uint64_t total_generated_ = 0;
  std::uint64_t total_ejected_flits_ = 0;
  PacketId next_packet_id_ = 1;
};

}  // namespace nocs::noc
