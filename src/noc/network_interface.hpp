// Network interface (NI): packetizes traffic into flits, injects them into
// the local router port under credit flow control, and ejects/records
// arriving packets.
#pragma once

#include <deque>
#include <functional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/channel.hpp"
#include "noc/flit.hpp"
#include "noc/params.hpp"
#include "noc/stats_collector.hpp"
#include "noc/traffic.hpp"

namespace nocs::noc {

class NetworkInterface {
 public:
  NetworkInterface(NodeId id, const NetworkParams& params,
                   StatsCollector* stats);

  NodeId id() const { return id_; }

  /// Wires the four local channels between this NI and its router.
  void connect(Pipe<Flit>* to_router, Pipe<Credit>* credit_from_router,
               Pipe<Flit>* from_router, Pipe<Credit>* credit_to_router);

  /// Marks this NI as an active traffic endpoint with the given logical id
  /// and endpoint table (logical id -> physical node).  Inactive NIs only
  /// eject (they never generate packets).
  void set_endpoint(int logical_id, const std::vector<NodeId>* endpoints,
                    const TrafficPattern* traffic);
  void clear_endpoint();
  bool is_active_endpoint() const { return traffic_ != nullptr; }

  /// Offered load in flits/cycle for this node.
  void set_injection_rate(double flits_per_cycle) {
    NOCS_EXPECTS(flits_per_cycle >= 0.0);
    injection_rate_ = flits_per_cycle;
    if (wake_cb_) wake_cb_();
  }

  void set_seed(std::uint64_t seed) { rng_.reseed(seed); }

  /// Enables request-reply protocol mode: generated packets become
  /// `request_length`-flit requests on class 0, and every request this NI
  /// ejects triggers a `reply_length`-flit reply on class 1 back to the
  /// requester (the shape of cache request/data traffic).  Requires
  /// params.num_classes >= 2.
  void set_request_reply(int request_length, int reply_length);

  /// Advances one cycle: eject, generate, inject.
  void tick(Cycle now);

  /// Directly enqueues one packet to `dst` (used by tests and the CMP
  /// trace-driven mode); returns its packet id.  `msg_class` selects the
  /// virtual network; `length` <= 0 means params.packet_length.
  PacketId send_packet(Cycle now, NodeId dst, int msg_class = 0,
                       int length = 0);

  /// Number of packets waiting in the source queue (saturation signal).
  std::size_t source_queue_depth() const { return source_queue_.size(); }

  /// True when nothing is queued or mid-injection.
  bool idle() const { return source_queue_.empty() && !sending_; }

  // --- active-node fast path (see Router's invariant) ----------------------

  /// True when the NI must be ticked next cycle regardless of channel
  /// arrivals: it may generate traffic stochastically, or it holds queued /
  /// in-flight packets.  NIs keep no per-cycle counters, so skipped cycles
  /// need no lazy accounting.
  bool busy_next_cycle() const {
    if (traffic_ != nullptr && injection_rate_ > 0.0) return true;
    return !idle();
  }

  /// Ready time of the earliest pending flit/credit from the router, or
  /// kNoPendingEvent.
  Cycle next_input_event() const {
    Cycle earliest = kNoPendingEvent;
    if (from_router_ != nullptr) {
      const Cycle t = from_router_->next_ready_time();
      if (t < earliest) earliest = t;
    }
    if (credit_from_router_ != nullptr) {
      const Cycle t = credit_from_router_->next_ready_time();
      if (t < earliest) earliest = t;
    }
    return earliest;
  }

  /// Callback invoked when new work appears outside tick() (direct
  /// send_packet, endpoint/rate configuration).
  void set_wake_callback(std::function<void()> cb) { wake_cb_ = std::move(cb); }

  std::uint64_t total_generated() const { return total_generated_; }
  std::uint64_t total_ejected_flits() const { return total_ejected_flits_; }

 private:
  struct PendingPacket {
    PacketId id;
    NodeId dst;
    Cycle created;
    bool measured;
    int msg_class;
    int length;
  };

  void eject(Cycle now);
  void generate(Cycle now);
  void inject(Cycle now);

  NodeId id_;
  NetworkParams params_;
  StatsCollector* stats_;

  Pipe<Flit>* to_router_ = nullptr;
  Pipe<Credit>* credit_from_router_ = nullptr;
  Pipe<Flit>* from_router_ = nullptr;
  Pipe<Credit>* credit_to_router_ = nullptr;

  int logical_id_ = -1;
  const std::vector<NodeId>* endpoints_ = nullptr;
  const TrafficPattern* traffic_ = nullptr;
  double injection_rate_ = 0.0;
  Rng rng_;

  std::deque<PendingPacket> source_queue_;
  std::vector<int> credits_;  // per-VC credits for the router's local port

  bool sending_ = false;
  PendingPacket current_{};
  int flits_sent_ = 0;
  VcId current_vc_ = -1;
  Cycle head_injected_ = 0;
  int vc_rr_ = 0;

  bool request_reply_ = false;
  int request_length_ = 1;
  int reply_length_ = 5;

  std::function<void()> wake_cb_;

  std::uint64_t total_generated_ = 0;
  std::uint64_t total_ejected_flits_ = 0;
  PacketId next_packet_id_ = 1;
};

}  // namespace nocs::noc
