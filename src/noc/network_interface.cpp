#include "noc/network_interface.hpp"

#include <algorithm>

#include "common/trace.hpp"

namespace nocs::noc {

NetworkInterface::NetworkInterface(NodeId id, const NetworkParams& params,
                                   StatsCollector* stats)
    : id_(id),
      params_(params),
      stats_(stats),
      rng_(0x9e3779b9u + static_cast<std::uint64_t>(id)),
      credits_(static_cast<std::size_t>(params.num_vcs), params.vc_depth) {
  NOCS_EXPECTS(stats != nullptr);
}

void NetworkInterface::connect(Pipe<Flit>* to_router,
                               Pipe<Credit>* credit_from_router,
                               Pipe<Flit>* from_router,
                               Pipe<Credit>* credit_to_router) {
  to_router_ = to_router;
  credit_from_router_ = credit_from_router;
  from_router_ = from_router;
  credit_to_router_ = credit_to_router;
}

void NetworkInterface::set_endpoint(int logical_id,
                                    const std::vector<NodeId>* endpoints,
                                    const TrafficPattern* traffic) {
  NOCS_EXPECTS(endpoints != nullptr && traffic != nullptr);
  NOCS_EXPECTS(logical_id >= 0 &&
               logical_id < static_cast<int>(endpoints->size()));
  NOCS_EXPECTS((*endpoints)[static_cast<std::size_t>(logical_id)] == id_);
  logical_id_ = logical_id;
  endpoints_ = endpoints;
  traffic_ = traffic;
  if (wake_cb_) wake_cb_();
}

void NetworkInterface::clear_endpoint() {
  logical_id_ = -1;
  endpoints_ = nullptr;
  traffic_ = nullptr;
}

void NetworkInterface::set_request_reply(int request_length,
                                         int reply_length) {
  NOCS_EXPECTS(params_.num_classes >= 2);
  NOCS_EXPECTS(request_length >= 1 && reply_length >= 1);
  request_reply_ = true;
  request_length_ = request_length;
  reply_length_ = reply_length;
}

void NetworkInterface::enable_protection(const ProtectionParams& prot) {
  prot.validate();
  protection_ = true;
  prot_ = prot;
}

PacketId NetworkInterface::send_packet(Cycle now, NodeId dst, int msg_class,
                                       int length) {
  NOCS_EXPECTS(dst != id_);
  NOCS_EXPECTS(msg_class >= 0 && msg_class < params_.num_classes);
  if (length <= 0) length = params_.packet_length;
  const PacketId pid =
      (static_cast<PacketId>(id_) << 48) | next_packet_id_++;
  const PendingPacket pkt{pid,       dst,       now, stats_->measuring(),
                          msg_class, length,    PacketKind::kData, 0};
  source_queue_.push_back(pkt);
  ++total_generated_;
  if (stats_->measuring()) stats_->on_packet_generated();
  if (protection_) {
    // Track until acknowledged; the first timeout fires after the base
    // ACK window, then backs off exponentially up to the cap.
    const Cycle deadline = now + backoff(0);
    unacked_.emplace(pid, Unacked{pkt, deadline, 0});
    next_deadline_ = std::min(next_deadline_, deadline);
  }
  if (wake_cb_) wake_cb_();
  return pid;
}

PacketId NetworkInterface::pack_mcast(int group, int lo, int hi) {
  NOCS_EXPECTS(group >= 0 && group < (1 << 24));
  NOCS_EXPECTS(lo >= 0 && lo < (1 << 20) && hi >= 0 && hi < (1 << 20));
  return (static_cast<PacketId>(group) << 40) |
         (static_cast<PacketId>(lo) << 20) | static_cast<PacketId>(hi);
}

void NetworkInterface::unpack_mcast(PacketId d, int* group, int* lo,
                                    int* hi) {
  *group = static_cast<int>(d >> 40);
  *lo = static_cast<int>((d >> 20) & 0xFFFFF);
  *hi = static_cast<int>(d & 0xFFFFF);
}

PacketId NetworkInterface::send_multicast(Cycle now, int group, int msg_class,
                                          int length) {
  NOCS_EXPECTS(mcast_groups_ != nullptr);
  NOCS_EXPECTS(group >= 0 &&
               group < static_cast<int>(mcast_groups_->size()));
  NOCS_EXPECTS(msg_class >= 0 && msg_class < params_.num_classes);
  // Tree relays re-inject copies outside the sender's retransmission
  // bookkeeping, so the two features do not compose.
  NOCS_EXPECTS(!protection_);
  if (length <= 0) length = params_.packet_length;

  const std::vector<NodeId>& members =
      (*mcast_groups_)[static_cast<std::size_t>(group)];
  const PacketId first = (static_cast<PacketId>(id_) << 48) | next_packet_id_;
  if (!multicast_) {
    // Serial-unicast fallback: same delivery set, ascending member order.
    bool sent = false;
    for (const NodeId m : members) {
      if (m == id_) continue;
      send_packet(now, m, msg_class, length);
      sent = true;
    }
    return sent ? first : 0;
  }
  // A member-source must not receive its own broadcast (the fallback skips
  // it too).  Members are sorted, so splitting the range around the
  // source's index keeps every transmitted subrange source-free — no relay
  // can route a copy back.
  const int n = static_cast<int>(members.size());
  const auto self = std::lower_bound(members.begin(), members.end(), id_);
  if (self != members.end() && *self == id_) {
    const int s = static_cast<int>(self - members.begin());
    send_mcast_range(now, group, 0, s - 1, now, stats_->measuring(), msg_class,
                     length, /*relay=*/false);
    send_mcast_range(now, group, s + 1, n - 1, now, stats_->measuring(),
                     msg_class, length, /*relay=*/false);
  } else {
    send_mcast_range(now, group, 0, n - 1, now, stats_->measuring(), msg_class,
                     length, /*relay=*/false);
  }
  return next_packet_id_ > (first & 0xFFFFFFFFFFFFull) ? first : 0;
}

void NetworkInterface::send_mcast_range(Cycle now, int group, int lo, int hi,
                                        Cycle created, bool measured,
                                        int msg_class, int length,
                                        bool relay) {
  if (lo > hi) return;
  const std::vector<NodeId>& members =
      (*mcast_groups_)[static_cast<std::size_t>(group)];
  const int mid = lo + (hi - lo) / 2;
  const NodeId dst = members[static_cast<std::size_t>(mid)];
  if (dst == id_) {
    // This node is the subrange median (the origin sending into its own
    // group): nothing to deliver to itself, recurse into both halves.
    send_mcast_range(now, group, lo, mid - 1, created, measured, msg_class,
                     length, relay);
    send_mcast_range(now, group, mid + 1, hi, created, measured, msg_class,
                     length, relay);
    return;
  }
  PendingPacket pkt;
  pkt.id = (static_cast<PacketId>(id_) << 48) | next_packet_id_++;
  pkt.dst = dst;
  pkt.created = created;
  pkt.measured = measured;
  pkt.msg_class = msg_class;
  pkt.length = length;
  pkt.kind = PacketKind::kMcast;
  pkt.ack_for = pack_mcast(group, lo, hi);
  source_queue_.push_back(pkt);
  ++total_generated_;
  if (relay) {
    // Replicated copy: attribute it on the co-located router so power
    // models can report the multicast-replication share explicitly.
    if (mc_counters_ != nullptr) {
      ++mc_counters_->mc_replications;
      mc_counters_->mc_flits += static_cast<std::uint64_t>(length);
    }
  } else if (measured) {
    stats_->on_packet_generated();
  }
  if (wake_cb_) wake_cb_();
}

void NetworkInterface::handle_mcast(Cycle now, const Flit& f) {
  // Delivery statistics mirror the plain data path; `created` is
  // propagated through the tree, so packet latency measures source ->
  // member end to end (hops are per-segment).
  if (f.measured) {
    stats_->on_flit_ejected();
    if (f.is_tail)
      stats_->on_packet_ejected(static_cast<double>(now - f.created),
                                static_cast<double>(now - f.injected), f.hops,
                                f.msg_class);
  }
  if (!f.is_tail) return;
  int group = 0, lo = 0, hi = 0;
  unpack_mcast(f.ack_for, &group, &lo, &hi);
  NOCS_EXPECTS(mcast_groups_ != nullptr &&
               group < static_cast<int>(mcast_groups_->size()));
  const std::vector<NodeId>& members =
      (*mcast_groups_)[static_cast<std::size_t>(group)];
  const int mid = lo + (hi - lo) / 2;
  NOCS_EXPECTS(members[static_cast<std::size_t>(mid)] == id_);
  const int length = f.index + 1;
  send_mcast_range(now, group, lo, mid - 1, f.created, f.measured,
                   f.msg_class, length, /*relay=*/true);
  send_mcast_range(now, group, mid + 1, hi, f.created, f.measured,
                   f.msg_class, length, /*relay=*/true);
  if (agent_ != nullptr) agent_->on_packet(now, f);
}

Cycle NetworkInterface::backoff(int retries) const {
  const int shift = std::min(retries, 16);
  const long long b = static_cast<long long>(prot_.ack_timeout) << shift;
  return static_cast<Cycle>(
      std::min<long long>(b, static_cast<long long>(prot_.max_backoff)));
}

void NetworkInterface::send_control(Cycle now, NodeId dst, PacketKind kind,
                                    PacketId ack_for, int msg_class) {
  // Control packets are never measured, never tracked for retransmission,
  // and never re-acknowledged: a lost ACK/NACK is recovered by the data
  // sender's timeout (the duplicate filter absorbs the re-delivery).
  PendingPacket pkt;
  pkt.id = (static_cast<PacketId>(id_) << 48) | next_packet_id_++;
  pkt.dst = dst;
  pkt.created = now;
  pkt.measured = false;
  pkt.msg_class = msg_class;
  pkt.length = 1;
  pkt.kind = kind;
  pkt.ack_for = ack_for;
  source_queue_.push_back(pkt);
  if (kind == PacketKind::kAck)
    ++stats_->resilience().acks_sent;
  else
    ++stats_->resilience().nacks_sent;
  if (wake_cb_) wake_cb_();
}

void NetworkInterface::queue_retransmit(Cycle now, Unacked& u) {
  ++u.retries;
  ++stats_->resilience().retransmissions;
  u.deadline = now + backoff(u.retries);
  next_deadline_ = std::min(next_deadline_, u.deadline);
  source_queue_.push_back(u.pkt);
  if (trace::enabled()) {
    json::Value args = json::Value::object();
    args.set("packet", static_cast<double>(u.pkt.id & 0xFFFFFFFFFFFFull));
    args.set("dst", u.pkt.dst);
    args.set("retries", u.retries);
    trace::instant("retransmit", "ni", trace::kSimPid, id_,
                   static_cast<double>(now), std::move(args));
  }
}

void NetworkInterface::check_timeouts(Cycle now) {
  if (unacked_.empty() || now < next_deadline_) return;
  next_deadline_ = kNoPendingEvent;
  for (auto& [pid, u] : unacked_) {
    if (u.deadline <= now) {
      ++stats_->resilience().timeouts;
      queue_retransmit(now, u);
    }
    next_deadline_ = std::min(next_deadline_, u.deadline);
  }
}

void NetworkInterface::tick(Cycle now) {
  // Credits freed by the router's local input port.
  if (credit_from_router_ != nullptr) {
    while (credit_from_router_->ready(now)) {
      const Credit c = credit_from_router_->pop(now);
      ++credits_[static_cast<std::size_t>(c.vc)];
      NOCS_ENSURES(credits_[static_cast<std::size_t>(c.vc)] <=
                   params_.vc_depth);
    }
  }
  eject(now);
  if (protection_) check_timeouts(now);
  // The agent runs after ejection (a request delivered this cycle can
  // start service immediately) and before injection (a reply it enqueues
  // can enter the network this cycle).
  if (agent_ != nullptr) agent_->tick(now);
  generate(now);
  inject(now);
}

void NetworkInterface::eject(Cycle now) {
  if (from_router_ == nullptr) return;
  while (from_router_->ready(now)) {
    const Flit f = from_router_->pop(now);
    NOCS_EXPECTS(f.dst == id_);
    // The ejection buffer drains instantly; return the credit right away.
    credit_to_router_->push(now, Credit{f.vc});
    ++total_ejected_flits_;
    if (f.kind == PacketKind::kMcast) {
      // Tree segment: record, forward the remaining subranges, deliver.
      handle_mcast(now, f);
      continue;
    }
    if (protection_) {
      eject_protected(now, f);
      continue;
    }
    if (f.measured) {
      stats_->on_flit_ejected();
      if (f.is_tail) {
        stats_->on_packet_ejected(
            static_cast<double>(now - f.created),
            static_cast<double>(now - f.injected), f.hops, f.msg_class);
      }
    }
    // Node-local agent delivery (memory controllers consume class-0
    // requests here and enqueue replies from their tick).
    if (agent_ != nullptr && f.is_tail) agent_->on_packet(now, f);
    // Protocol mode: a completed request triggers a data reply on the
    // response class — the dependence that makes class partitioning
    // necessary for protocol-deadlock freedom.
    if (request_reply_ && f.is_tail && f.msg_class == 0)
      send_packet(now, f.src, /*msg_class=*/1, reply_length_);
  }
}

void NetworkInterface::eject_protected(Cycle now, const Flit& f) {
  if (f.kind != PacketKind::kData) {
    // Single-flit control packet.  A corrupted one is ignored — the data
    // sender's timeout covers a lost ACK/NACK.
    if (f.corrupted) return;
    if (f.kind == PacketKind::kAck) {
      unacked_.erase(f.ack_for);
    } else {
      const auto it = unacked_.find(f.ack_for);
      if (it != unacked_.end()) queue_retransmit(now, it->second);
    }
    return;
  }
  RxPacket& rx = rx_state_[f.packet];
  rx.corrupted |= f.corrupted;
  if (f.measured) ++rx.measured_flits;
  if (!f.is_tail) return;
  const RxPacket done = rx;
  rx_state_.erase(f.packet);
  if (done.corrupted) {
    // Checksum failure over the whole packet: discard and request a
    // retransmission straight away instead of waiting out the timeout.
    ++stats_->resilience().corrupted_packets;
    if (trace::enabled())
      trace::instant("packet_corrupted", "ni", trace::kSimPid, id_,
                     static_cast<double>(now));
    send_control(now, f.src, PacketKind::kNack, f.packet, f.msg_class);
    return;
  }
  // Acknowledge every clean copy — a duplicate means the previous ACK was
  // lost or overtaken by the sender's timeout, so it must be re-sent.
  send_control(now, f.src, PacketKind::kAck, f.packet, f.msg_class);
  if (!delivered_.insert(f.packet).second) {
    ++stats_->resilience().duplicates;
    return;
  }
  // Goodput is recorded only here, on the first successful delivery, so
  // corrupted/duplicate copies never inflate the measured statistics.
  if (done.measured_flits > 0) {
    for (int i = 0; i < done.measured_flits; ++i) stats_->on_flit_ejected();
    stats_->on_packet_ejected(static_cast<double>(now - f.created),
                              static_cast<double>(now - f.injected), f.hops,
                              f.msg_class);
  }
  if (request_reply_ && f.msg_class == 0)
    send_packet(now, f.src, /*msg_class=*/1, reply_length_);
}

void NetworkInterface::generate(Cycle now) {
  if (traffic_ == nullptr || injection_rate_ <= 0.0) return;
  // Bernoulli packet injection: offered load (flits/cycle) divided by the
  // packet length gives the per-cycle packet probability.  In protocol
  // mode the generated packets are short class-0 requests (the replies
  // they trigger add further load on class 1).
  const int gen_length =
      request_reply_ ? request_length_ : params_.packet_length;
  const double p = injection_rate_ / static_cast<double>(gen_length);
  if (!rng_.bernoulli(p)) return;
  const int logical_dst = traffic_->dest(logical_id_, rng_);
  NOCS_EXPECTS(logical_dst != logical_id_);
  send_packet(now, (*endpoints_)[static_cast<std::size_t>(logical_dst)],
              /*msg_class=*/0, gen_length);
}

void NetworkInterface::inject(Cycle now) {
  if (to_router_ == nullptr) return;
  if (!sending_) {
    if (source_queue_.empty()) return;
    // Injection-time fault drops: the whole packet vanishes before it ever
    // enters the network.  It stays in unacked_, so the retransmission
    // timeout recovers it.
    if (protection_ && oracle_ != nullptr) {
      while (!source_queue_.empty() &&
             source_queue_.front().kind == PacketKind::kData &&
             oracle_->drop_packet(id_, now)) {
        ++stats_->resilience().dropped_packets;
        source_queue_.pop_front();
      }
      if (source_queue_.empty()) return;
    }
    // Pick a VC with a free credit *within the packet's class partition*,
    // round-robin for fairness.
    const int cls = source_queue_.front().msg_class;
    const VcId base = params_.first_vc_of(cls);
    const int span = params_.vcs_per_class();
    VcId chosen = -1;
    for (int k = 1; k <= span; ++k) {
      const VcId v = base + (vc_rr_ + k) % span;
      if (credits_[static_cast<std::size_t>(v)] > 0) {
        chosen = v;
        break;
      }
    }
    if (chosen < 0) return;  // this class's local-port VCs backpressured
    vc_rr_ = chosen - base;
    sending_ = true;
    current_ = source_queue_.front();
    source_queue_.pop_front();
    flits_sent_ = 0;
    current_vc_ = chosen;
    head_injected_ = now;
  }

  if (credits_[static_cast<std::size_t>(current_vc_)] <= 0) return;

  Flit f;
  f.packet = current_.id;
  f.index = flits_sent_;
  f.is_head = flits_sent_ == 0;
  f.is_tail = flits_sent_ == current_.length - 1;
  f.src = id_;
  f.dst = current_.dst;
  f.vc = current_vc_;
  f.msg_class = current_.msg_class;
  f.created = current_.created;
  f.injected = head_injected_;  // every flit carries the head's entry time
  f.measured = current_.measured;
  f.kind = current_.kind;
  f.ack_for = current_.ack_for;

  --credits_[static_cast<std::size_t>(current_vc_)];
  to_router_->push(now, f);
  ++flits_sent_;
  if (f.is_tail) {
    sending_ = false;
    current_vc_ = -1;
  }
}

void NetworkInterface::save_pending(snapshot::Writer& w,
                                    const PendingPacket& p) {
  w.u64(p.id);
  w.i64(p.dst);
  w.u64(p.created);
  w.b(p.measured);
  w.i64(p.msg_class);
  w.i64(p.length);
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u64(p.ack_for);
}

NetworkInterface::PendingPacket NetworkInterface::load_pending(
    snapshot::Reader& r) {
  PendingPacket p{};
  p.id = r.u64();
  p.dst = static_cast<NodeId>(r.i64());
  p.created = r.u64();
  p.measured = r.b();
  p.msg_class = static_cast<int>(r.i64());
  p.length = static_cast<int>(r.i64());
  p.kind = static_cast<PacketKind>(r.u8());
  p.ack_for = r.u64();
  return p;
}

void NetworkInterface::save_state(snapshot::Writer& w) const {
  w.begin_section("ni");
  for (const std::uint64_t s : rng_.state()) w.u64(s);

  w.i64(static_cast<std::int64_t>(source_queue_.size()));
  for (const PendingPacket& p : source_queue_) save_pending(w, p);

  w.i64(static_cast<std::int64_t>(credits_.size()));
  for (const int c : credits_) w.i64(c);

  w.b(sending_);
  save_pending(w, current_);
  w.i64(flits_sent_);
  w.i64(current_vc_);
  w.u64(head_injected_);
  w.i64(vc_rr_);

  w.i64(static_cast<std::int64_t>(unacked_.size()));
  for (const auto& [pid, u] : unacked_) {
    w.u64(pid);
    save_pending(w, u.pkt);
    w.u64(u.deadline);
    w.i64(u.retries);
  }
  w.u64(next_deadline_);

  w.i64(static_cast<std::int64_t>(rx_state_.size()));
  for (const auto& [pid, rx] : rx_state_) {
    w.u64(pid);
    w.b(rx.corrupted);
    w.i64(rx.measured_flits);
  }

  // The duplicate filter is an unordered_set; serialize sorted so equal
  // states produce byte-identical snapshots.
  std::vector<PacketId> delivered(delivered_.begin(), delivered_.end());
  std::sort(delivered.begin(), delivered.end());
  w.i64(static_cast<std::int64_t>(delivered.size()));
  for (const PacketId pid : delivered) w.u64(pid);

  w.u64(total_generated_);
  w.u64(total_ejected_flits_);
  w.u64(next_packet_id_);
  w.end_section();
}

void NetworkInterface::load_state(snapshot::Reader& r) {
  r.begin_section("ni");
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& s : rng_state) s = r.u64();
  rng_.set_state(rng_state);

  source_queue_.clear();
  const auto queued = r.i64();
  for (std::int64_t i = 0; i < queued; ++i)
    source_queue_.push_back(load_pending(r));

  const auto num_credits = r.i64();
  if (num_credits != static_cast<std::int64_t>(credits_.size()))
    throw snapshot::SnapshotError(
        "NI credit vector size in checkpoint disagrees with num_vcs");
  for (int& c : credits_) c = static_cast<int>(r.i64());

  sending_ = r.b();
  current_ = load_pending(r);
  flits_sent_ = static_cast<int>(r.i64());
  current_vc_ = static_cast<VcId>(r.i64());
  head_injected_ = r.u64();
  vc_rr_ = static_cast<int>(r.i64());

  unacked_.clear();
  const auto num_unacked = r.i64();
  for (std::int64_t i = 0; i < num_unacked; ++i) {
    const PacketId pid = r.u64();
    Unacked u{};
    u.pkt = load_pending(r);
    u.deadline = r.u64();
    u.retries = static_cast<int>(r.i64());
    unacked_.emplace(pid, u);
  }
  next_deadline_ = r.u64();

  rx_state_.clear();
  const auto num_rx = r.i64();
  for (std::int64_t i = 0; i < num_rx; ++i) {
    const PacketId pid = r.u64();
    RxPacket rx{};
    rx.corrupted = r.b();
    rx.measured_flits = static_cast<int>(r.i64());
    rx_state_.emplace(pid, rx);
  }

  delivered_.clear();
  const auto num_delivered = r.i64();
  for (std::int64_t i = 0; i < num_delivered; ++i) delivered_.insert(r.u64());

  total_generated_ = r.u64();
  total_ejected_flits_ = r.u64();
  next_packet_id_ = r.u64();
  r.end_section();
}

}  // namespace nocs::noc
