// Routing-function interface and the baseline dimension-order router.
//
// The paper's contribution — CDOR, convex dimension-order routing with two
// connectivity bits per switch — implements this same interface and lives in
// src/sprint/cdor.hpp; the network core is routing-agnostic.
#pragma once

#include <memory>

#include "common/geometry.hpp"

namespace nocs::noc {

/// Computes the output port a head flit takes at router `cur` towards
/// `dst`.  Deterministic single-path routing (one port per (cur,dst) pair),
/// matching both DOR and CDOR in the paper.
class RoutingFunction {
 public:
  virtual ~RoutingFunction() = default;

  /// Returns the output port; `Port::kLocal` when cur == dst.
  /// Precondition: `dst` must be reachable from `cur` under this function.
  virtual Port route(Coord cur, Coord dst) const = 0;

  /// Fault fallback: the link behind `blocked` (the port route() returned)
  /// is marked faulty — return an alternative output port, or `blocked`
  /// itself when no detour is safe (the packet then rides the faulty link
  /// and end-to-end retransmission recovers any corruption).  The default
  /// declines to detour; CDOR overrides it with its deadlock-free convex
  /// detour (the same NE-turn its staircase argument already admits).
  virtual Port reroute(Coord cur, Coord dst, Port blocked) const {
    (void)cur;
    (void)dst;
    return blocked;
  }

  /// Human-readable name for logs/tables.
  virtual const char* name() const = 0;
};

/// Classic X-Y dimension-order routing on a full 2-D mesh: exhaust the X
/// offset, then the Y offset.  Deadlock-free because only EN/ES/WN/WS turns
/// occur (no NE/NW/SE/SW), which breaks both abstract cycles.
class XyRouting final : public RoutingFunction {
 public:
  Port route(Coord cur, Coord dst) const override {
    if (dst.x > cur.x) return Port::kEast;
    if (dst.x < cur.x) return Port::kWest;
    if (dst.y > cur.y) return Port::kSouth;
    if (dst.y < cur.y) return Port::kNorth;
    return Port::kLocal;
  }

  const char* name() const override { return "xy-dor"; }
};

/// Y-X dimension-order routing (exhaust Y first); used in routing tests and
/// as an ablation baseline.
class YxRouting final : public RoutingFunction {
 public:
  Port route(Coord cur, Coord dst) const override {
    if (dst.y > cur.y) return Port::kSouth;
    if (dst.y < cur.y) return Port::kNorth;
    if (dst.x > cur.x) return Port::kEast;
    if (dst.x < cur.x) return Port::kWest;
    return Port::kLocal;
  }

  const char* name() const override { return "yx-dor"; }
};

}  // namespace nocs::noc
