#include "noc/topology.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace nocs::noc {
namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("topology: " + msg);
}

}  // namespace

// --- mutation helpers -------------------------------------------------------

void Topology::add_link(NodeId src, NodeId dst, int src_port, int dst_port,
                        int latency, int width) {
  if (!valid(src) || !valid(dst)) fail("link endpoint out of range");
  auto& sp = num_ports_[static_cast<std::size_t>(src)];
  auto& dp = num_ports_[static_cast<std::size_t>(dst)];
  auto next_free = [this](NodeId node, bool out) {
    // Smallest port >= 1 not already used in the given direction.
    std::unordered_set<int> used;
    for (const TopoLink& l : links_) {
      if (out && l.src == node) used.insert(l.src_port);
      if (!out && l.dst == node) used.insert(l.dst_port);
    }
    int p = 1;
    while (used.count(p)) ++p;
    return p;
  };
  if (src_port < 0) src_port = next_free(src, /*out=*/true);
  if (dst_port < 0) dst_port = next_free(dst, /*out=*/false);
  sp = std::max(sp, src_port + 1);
  dp = std::max(dp, dst_port + 1);
  links_.push_back(TopoLink{src, dst, src_port, dst_port, latency, width});
}

void Topology::add_pair(NodeId a, NodeId b, int latency, int width) {
  add_link(a, b, /*src_port=*/-1, /*dst_port=*/-1, latency, width);
  add_link(b, a, /*src_port=*/-1, /*dst_port=*/-1, latency, width);
}

void Topology::rebuild_index() {
  const auto n = coords_.size();
  out_index_.assign(n, {});
  in_index_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    out_index_[i].assign(static_cast<std::size_t>(num_ports_[i]), -1);
    in_index_[i].assign(static_cast<std::size_t>(num_ports_[i]), -1);
  }
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const TopoLink& lk = links_[l];
    out_index_[static_cast<std::size_t>(lk.src)]
              [static_cast<std::size_t>(lk.src_port)] = static_cast<int>(l);
    in_index_[static_cast<std::size_t>(lk.dst)]
             [static_cast<std::size_t>(lk.dst_port)] = static_cast<int>(l);
  }
}

// --- generators -------------------------------------------------------------

Topology Topology::mesh(int width, int height) {
  if (width < 1 || height < 1) fail("mesh dimensions must be >= 1");
  Topology t;
  t.kind_ = "mesh";
  t.mesh_w_ = width;
  t.mesh_h_ = height;
  const MeshShape shape{width, height};
  const int n = shape.size();
  t.coords_.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) t.coords_.push_back(shape.coord_of(id));
  // Every mesh node gets the full 5 directional port slots even at edges:
  // the router's arbitration loops iterate over all slots, so the slot
  // count (not the degree) is what mesh bit-identity depends on.
  t.num_ports_.assign(static_cast<std::size_t>(n), kNumPorts);
  // Exact legacy construction order: ascending node id, east pair then
  // south pair, forward link then reverse link.
  for (NodeId a = 0; a < n; ++a) {
    const Coord ca = shape.coord_of(a);
    for (Port p : {Port::kEast, Port::kSouth}) {
      const Coord cb = step(ca, p);
      if (!shape.contains(cb)) continue;
      const NodeId b = shape.id_of(cb);
      t.add_link(a, b, static_cast<int>(p), static_cast<int>(opposite(p)), 0,
                 1);
      t.add_link(b, a, static_cast<int>(opposite(p)), static_cast<int>(p), 0,
                 1);
    }
  }
  t.rebuild_index();
  t.validate();
  return t;
}

Topology Topology::torus(int width, int height) {
  if (width < 3 || height < 1) fail("torus needs width >= 3");
  if (height != 1 && height < 3) fail("torus needs height 1 or >= 3");
  Topology t;
  t.kind_ = "torus";
  const MeshShape shape{width, height};
  const int n = shape.size();
  for (NodeId id = 0; id < n; ++id) t.coords_.push_back(shape.coord_of(id));
  t.num_ports_.assign(static_cast<std::size_t>(n), kNumPorts);
  // Mesh links in the legacy order, then the wrap-around links (west edge
  // to east edge per row, north edge to south edge per column) reusing the
  // directional port slots that are free at the edges.
  for (NodeId a = 0; a < n; ++a) {
    const Coord ca = shape.coord_of(a);
    for (Port p : {Port::kEast, Port::kSouth}) {
      const Coord cb = step(ca, p);
      if (!shape.contains(cb)) continue;
      const NodeId b = shape.id_of(cb);
      t.add_link(a, b, static_cast<int>(p), static_cast<int>(opposite(p)), 0,
                 1);
      t.add_link(b, a, static_cast<int>(opposite(p)), static_cast<int>(p), 0,
                 1);
    }
  }
  for (int y = 0; y < height; ++y) {
    const NodeId west = shape.id_of({0, y});
    const NodeId east = shape.id_of({width - 1, y});
    t.add_link(east, west, static_cast<int>(Port::kEast),
               static_cast<int>(Port::kWest), 0, 1);
    t.add_link(west, east, static_cast<int>(Port::kWest),
               static_cast<int>(Port::kEast), 0, 1);
  }
  if (height >= 3) {
    for (int x = 0; x < width; ++x) {
      const NodeId north = shape.id_of({x, 0});
      const NodeId south = shape.id_of({x, height - 1});
      t.add_link(south, north, static_cast<int>(Port::kSouth),
                 static_cast<int>(Port::kNorth), 0, 1);
      t.add_link(north, south, static_cast<int>(Port::kNorth),
                 static_cast<int>(Port::kSouth), 0, 1);
    }
  }
  t.rebuild_index();
  t.validate();
  return t;
}

Topology Topology::ring_circulant(int n, int skip) {
  if (n < 4) fail("ring_circulant needs >= 4 nodes");
  if (skip < 2 || 2 * skip > n)
    fail("ring_circulant skip must be in [2, n/2]");
  Topology t;
  t.kind_ = "ring_circulant";
  // Perimeter layout: walk clockwise around the boundary of the smallest
  // square that fits n nodes, so Euclidean floorplan distance tracks ring
  // position and Algorithm 1 grows contiguous arcs.
  int side = 2;
  while (4 * (side - 1) < n) ++side;
  std::vector<Coord> perimeter;
  for (int x = 0; x < side; ++x) perimeter.push_back({x, 0});
  for (int y = 1; y < side; ++y) perimeter.push_back({side - 1, y});
  for (int x = side - 2; x >= 0; --x) perimeter.push_back({x, side - 1});
  for (int y = side - 2; y >= 1; --y) perimeter.push_back({0, y});
  for (NodeId id = 0; id < n; ++id)
    t.coords_.push_back(perimeter[static_cast<std::size_t>(id)]);
  t.num_ports_.assign(static_cast<std::size_t>(n), 1);
  // Ring links first (ascending id), then chords; ports auto-assigned.
  for (NodeId a = 0; a < n; ++a) t.add_pair(a, (a + 1) % n);
  const bool diameter_chord = (2 * skip == n);
  for (NodeId a = 0; a < n; ++a) {
    const NodeId b = (a + skip) % n;
    if (diameter_chord && b < a) continue;  // each diameter chord once
    t.add_pair(a, b);
  }
  t.rebuild_index();
  t.validate();
  return t;
}

Topology Topology::hamming(int rows, int cols) {
  if (rows < 2 || cols < 2) fail("hamming needs rows, cols >= 2");
  if (rows + cols - 2 + 1 > kMaxPorts)
    fail("hamming degree exceeds the per-node port limit");
  Topology t;
  t.kind_ = "hamming";
  const MeshShape shape{cols, rows};
  const int n = shape.size();
  for (NodeId id = 0; id < n; ++id) t.coords_.push_back(shape.coord_of(id));
  t.num_ports_.assign(static_cast<std::size_t>(n), 1);
  // Row cliques then column cliques, each pair once, ascending ids.
  for (NodeId a = 0; a < n; ++a) {
    const Coord ca = shape.coord_of(a);
    for (NodeId b = a + 1; b < n; ++b) {
      const Coord cb = shape.coord_of(b);
      if (ca.y == cb.y || ca.x == cb.x) t.add_pair(a, b);
    }
  }
  t.rebuild_index();
  t.validate();
  return t;
}

Topology Topology::make(const std::string& kind, int width, int height,
                        int skip) {
  if (kind == "mesh") return mesh(width, height);
  if (kind == "torus") return torus(width, height);
  if (kind == "ring_circulant") {
    const int n = width * height;
    return ring_circulant(n, skip > 0 ? skip : std::max(2, n / 4));
  }
  if (kind == "hamming") return hamming(height, width);
  fail("unknown topology kind '" + kind +
       "' (expected mesh|torus|ring_circulant|hamming|file)");
}

// --- text format ------------------------------------------------------------
//
// Documented in docs/TOPOLOGY.md.  Line-oriented; '#' starts a comment.
//   topology <name>
//   nodes <count>
//   node <id> <x> <y> [ports <count>]
//   link <src> <dst> [latency <cycles>] [width <w>]       (bidirectional)
//   link <src> <dst> oneway [latency <cycles>] [width <w>]

Topology Topology::parse(const std::string& text) {
  Topology t;
  t.kind_ = "file";
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_nodes = false;
  std::vector<bool> node_defined;
  auto err = [&](const std::string& msg) {
    fail("line " + std::to_string(lineno) + ": " + msg);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line
    if (word == "topology") {
      std::string name;
      if (!(ls >> name)) err("'topology' needs a name");
      t.kind_ = "file:" + name;
    } else if (word == "nodes") {
      int count = 0;
      if (!(ls >> count) || count < 1) err("'nodes' needs a count >= 1");
      if (saw_nodes) err("duplicate 'nodes' directive");
      saw_nodes = true;
      t.coords_.assign(static_cast<std::size_t>(count), Coord{0, 0});
      t.num_ports_.assign(static_cast<std::size_t>(count), 1);
      node_defined.assign(static_cast<std::size_t>(count), false);
    } else if (word == "node") {
      if (!saw_nodes) err("'node' before 'nodes'");
      int id = 0, x = 0, y = 0;
      if (!(ls >> id >> x >> y)) err("'node' needs: id x y");
      if (!t.valid(id)) err("node id out of range");
      if (node_defined[static_cast<std::size_t>(id)])
        err("duplicate node " + std::to_string(id));
      node_defined[static_cast<std::size_t>(id)] = true;
      t.coords_[static_cast<std::size_t>(id)] = Coord{x, y};
      std::string opt;
      while (ls >> opt) {
        if (opt == "ports") {
          int ports = 0;
          if (!(ls >> ports) || ports < 1 || ports > kMaxPorts)
            err("'ports' needs a count in [1, " + std::to_string(kMaxPorts) +
                "]");
          t.num_ports_[static_cast<std::size_t>(id)] = ports;
        } else {
          err("unknown node option '" + opt + "'");
        }
      }
    } else if (word == "link") {
      if (!saw_nodes) err("'link' before 'nodes'");
      int src = 0, dst = 0;
      if (!(ls >> src >> dst)) err("'link' needs: src dst");
      if (!t.valid(src) || !t.valid(dst)) err("link endpoint out of range");
      if (src == dst) err("self link");
      bool oneway = false;
      int latency = 0, width = 1;
      std::string opt;
      while (ls >> opt) {
        if (opt == "oneway") {
          oneway = true;
        } else if (opt == "latency") {
          if (!(ls >> latency) || latency < 1)
            err("'latency' needs a cycle count >= 1");
        } else if (opt == "width") {
          if (!(ls >> width) || width < 1) err("'width' needs a value >= 1");
        } else {
          err("unknown link option '" + opt + "'");
        }
      }
      if (oneway) {
        t.add_link(src, dst, -1, -1, latency, width);
      } else {
        t.add_link(src, dst, -1, -1, latency, width);
        t.add_link(dst, src, -1, -1, latency, width);
      }
    } else {
      err("unknown directive '" + word + "'");
    }
  }
  if (!saw_nodes) fail("missing 'nodes' directive");
  for (std::size_t i = 0; i < node_defined.size(); ++i) {
    if (!node_defined[i]) fail("node " + std::to_string(i) + " never defined");
  }
  t.rebuild_index();
  t.validate();
  return t;
}

Topology Topology::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("topology: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::string Topology::to_text() const {
  std::ostringstream out;
  std::string name = kind_;
  if (name.rfind("file:", 0) == 0) name = name.substr(5);
  if (name != "file" && !name.empty()) out << "topology " << name << "\n";
  out << "nodes " << num_nodes() << "\n";
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Coord c = coord(id);
    out << "node " << id << " " << c.x << " " << c.y;
    out << " ports " << num_ports(id);
    out << "\n";
  }
  // Emit forward+reverse pairs as a single bidirectional line when they
  // are adjacent in the table and symmetric; otherwise emit oneway lines.
  std::vector<bool> emitted(links_.size(), false);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (emitted[i]) continue;
    const TopoLink& l = links_[i];
    const std::size_t j = i + 1;
    const bool paired = j < links_.size() && !emitted[j] &&
                        links_[j].src == l.dst && links_[j].dst == l.src &&
                        links_[j].latency == l.latency &&
                        links_[j].width == l.width;
    out << "link " << l.src << " " << l.dst;
    if (!paired) out << " oneway";
    if (l.latency > 0) out << " latency " << l.latency;
    if (l.width != 1) out << " width " << l.width;
    out << "\n";
    emitted[i] = true;
    if (paired) emitted[j] = true;
  }
  return out.str();
}

// --- queries ----------------------------------------------------------------

int Topology::max_ports() const {
  int m = 0;
  for (int p : num_ports_) m = std::max(m, p);
  return m;
}

int Topology::link_out(NodeId node, int port) const {
  NOCS_EXPECTS(valid(node));
  const auto& row = out_index_[static_cast<std::size_t>(node)];
  if (port < 0 || port >= static_cast<int>(row.size())) return -1;
  return row[static_cast<std::size_t>(port)];
}

int Topology::link_in(NodeId node, int port) const {
  NOCS_EXPECTS(valid(node));
  const auto& row = in_index_[static_cast<std::size_t>(node)];
  if (port < 0 || port >= static_cast<int>(row.size())) return -1;
  return row[static_cast<std::size_t>(port)];
}

int Topology::port_to(NodeId src, NodeId dst) const {
  NOCS_EXPECTS(valid(src));
  for (int l : out_index_[static_cast<std::size_t>(src)]) {
    if (l >= 0 && links_[static_cast<std::size_t>(l)].dst == dst)
      return links_[static_cast<std::size_t>(l)].src_port;
  }
  return -1;
}

std::vector<int> Topology::connected_ports(NodeId node) const {
  std::vector<int> ports;
  for (int p = 1; p < num_ports(node); ++p) {
    if (link_out(node, p) >= 0) ports.push_back(p);
  }
  return ports;
}

int Topology::out_degree(NodeId node) const {
  int d = 0;
  for (int p = 1; p < num_ports(node); ++p) {
    if (link_out(node, p) >= 0) ++d;
  }
  return d;
}

bool Topology::connected() const {
  if (num_nodes() == 0) return false;
  std::vector<NodeId> all(static_cast<std::size_t>(num_nodes()));
  for (NodeId id = 0; id < num_nodes(); ++id)
    all[static_cast<std::size_t>(id)] = id;
  return connected_subgraph(all);
}

bool Topology::connected_subgraph(const std::vector<NodeId>& nodes) const {
  if (nodes.empty()) return false;
  std::vector<bool> in_set(static_cast<std::size_t>(num_nodes()), false);
  for (NodeId id : nodes) {
    NOCS_EXPECTS(valid(id));
    in_set[static_cast<std::size_t>(id)] = true;
  }
  std::vector<bool> seen(static_cast<std::size_t>(num_nodes()), false);
  std::deque<NodeId> frontier{nodes.front()};
  seen[static_cast<std::size_t>(nodes.front())] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (int p = 1; p < num_ports(cur); ++p) {
      const NodeId nb = neighbor(cur, p);
      if (nb == kInvalidNode) continue;
      const auto idx = static_cast<std::size_t>(nb);
      if (!in_set[idx] || seen[idx]) continue;
      seen[idx] = true;
      ++reached;
      frontier.push_back(nb);
    }
  }
  return reached == nodes.size();
}

std::uint64_t Topology::fingerprint() const {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (char c : kind_) mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  mix(static_cast<std::uint64_t>(num_nodes()));
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Coord c = coord(id);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(c.x)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(c.y)));
    mix(static_cast<std::uint64_t>(num_ports(id)));
  }
  for (const TopoLink& l : links_) {
    mix(static_cast<std::uint64_t>(l.src));
    mix(static_cast<std::uint64_t>(l.dst));
    mix(static_cast<std::uint64_t>(l.src_port));
    mix(static_cast<std::uint64_t>(l.dst_port));
    mix(static_cast<std::uint64_t>(l.latency));
    mix(static_cast<std::uint64_t>(l.width));
  }
  return h;
}

void Topology::validate() const {
  if (num_nodes() < 1) fail("no nodes");
  if (coords_.size() != num_ports_.size()) fail("node table size mismatch");
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const int np = num_ports(id);
    if (np < 1 || np > kMaxPorts)
      fail("node " + std::to_string(id) + " has invalid port count " +
           std::to_string(np));
  }
  std::unordered_set<std::uint64_t> seen_pairs;
  std::unordered_set<std::uint64_t> seen_out, seen_in;
  for (const TopoLink& l : links_) {
    if (!valid(l.src) || !valid(l.dst)) fail("link endpoint out of range");
    if (l.src == l.dst) fail("self link at node " + std::to_string(l.src));
    if (l.src_port < 1 || l.src_port >= num_ports(l.src))
      fail("link src port out of range at node " + std::to_string(l.src));
    if (l.dst_port < 1 || l.dst_port >= num_ports(l.dst))
      fail("link dst port out of range at node " + std::to_string(l.dst));
    if (l.latency < 0) fail("negative link latency");
    if (l.width < 1) fail("link width must be >= 1");
    const auto pair_key = (static_cast<std::uint64_t>(l.src) << 32) |
                          static_cast<std::uint32_t>(l.dst);
    if (!seen_pairs.insert(pair_key).second)
      fail("duplicate link " + std::to_string(l.src) + " -> " +
           std::to_string(l.dst));
    const auto out_key = (static_cast<std::uint64_t>(l.src) << 32) |
                         static_cast<std::uint32_t>(l.src_port);
    if (!seen_out.insert(out_key).second)
      fail("node " + std::to_string(l.src) + " output port " +
           std::to_string(l.src_port) + " used twice");
    const auto in_key = (static_cast<std::uint64_t>(l.dst) << 32) |
                        static_cast<std::uint32_t>(l.dst_port);
    if (!seen_in.insert(in_key).second)
      fail("node " + std::to_string(l.dst) + " input port " +
           std::to_string(l.dst_port) + " used twice");
  }
  // Channels are paired wires: every directed link must have a reverse.
  for (const TopoLink& l : links_) {
    const auto rev_key = (static_cast<std::uint64_t>(l.dst) << 32) |
                         static_cast<std::uint32_t>(l.src);
    if (!seen_pairs.count(rev_key))
      fail("link " + std::to_string(l.src) + " -> " + std::to_string(l.dst) +
           " has no reverse link");
  }
  if (num_nodes() > 1 && !connected()) fail("graph is not connected");
}

}  // namespace nocs::noc
