#include "noc/router.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace nocs::noc {

Router::Router(NodeId id, const NetworkParams& params,
               const RoutingFunction* routing)
    : id_(id),
      coord_(params.shape().coord_of(id)),
      params_(params),
      policy_(nullptr),
      nports_(kNumPorts) {
  NOCS_EXPECTS(routing != nullptr);
  params_.validate();
  const MeshShape shape = params_.shape();
  owned_policy_ = std::make_unique<MeshRoutingPolicy>(routing, shape);
  policy_ = owned_policy_.get();
  out_neighbor_.assign(static_cast<std::size_t>(nports_), kInvalidNode);
  for (int p = 1; p < nports_; ++p) {
    const Coord nc = step(coord_, static_cast<Port>(p));
    if (shape.contains(nc))
      out_neighbor_[static_cast<std::size_t>(p)] = shape.id_of(nc);
  }
  init_structures();
}

Router::Router(NodeId id, const NetworkParams& params, const Topology& topo,
               const RoutingPolicy* policy)
    : id_(id),
      coord_(topo.coord(id)),
      params_(params),
      policy_(policy),
      nports_(topo.num_ports(id)) {
  NOCS_EXPECTS(policy != nullptr);
  params_.validate();
  out_neighbor_.assign(static_cast<std::size_t>(nports_), kInvalidNode);
  for (int p = 1; p < nports_; ++p)
    out_neighbor_[static_cast<std::size_t>(p)] = topo.neighbor(id, p);
  init_structures();
}

void Router::init_structures() {
  flit_in_.assign(static_cast<std::size_t>(nports_), nullptr);
  credit_out_.assign(static_cast<std::size_t>(nports_), nullptr);
  flit_out_.assign(static_cast<std::size_t>(nports_), nullptr);
  credit_in_.assign(static_cast<std::size_t>(nports_), nullptr);
  sa_input_rr_.assign(static_cast<std::size_t>(nports_), 0);
  sa_output_rr_.assign(static_cast<std::size_t>(nports_), 0);
  va_rr_.assign(static_cast<std::size_t>(nports_), 0);
  active_by_port_.assign(static_cast<std::size_t>(nports_), 0);
  const auto n = static_cast<std::size_t>(nports_ * params_.num_vcs);
  flit_arena_.resize(n * static_cast<std::size_t>(params_.vc_depth));
  input_vcs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    input_vcs_.emplace_back(
        flit_arena_.data() + i * static_cast<std::size_t>(params_.vc_depth),
        params_.vc_depth);
    input_vcs_.back().port = static_cast<int>(i) / params_.num_vcs;
  }
  output_vcs_.resize(n);
  for (auto& ovc : output_vcs_) ovc.credits = params_.vc_depth;
}

void Router::connect_input(int port, Pipe<Flit>* flit_in,
                           Pipe<Credit>* credit_out) {
  flit_in_[static_cast<std::size_t>(port)] = flit_in;
  credit_out_[static_cast<std::size_t>(port)] = credit_out;
}

void Router::connect_output(int port, Pipe<Flit>* flit_out,
                            Pipe<Credit>* credit_in) {
  flit_out_[static_cast<std::size_t>(port)] = flit_out;
  credit_in_[static_cast<std::size_t>(port)] = credit_in;
}

void Router::set_gated(bool gated) {
  if (gated) {
    NOCS_EXPECTS(drained());
    state_ = PowerState::kGated;
  } else {
    state_ = PowerState::kActive;
    idle_streak_ = 0;
  }
  if (wake_cb_) wake_cb_();
}

void Router::sync_counters(Cycle now) const {
  if (counted_until_ >= now) return;
  const std::uint64_t gap = now - counted_until_;
  counted_until_ = now;
  // Only quiescent routers are ever skipped: each skipped cycle is a pure
  // leakage cycle in the state the router was left in.
  if (state_ == PowerState::kGated) {
    counters_.gated_cycles += gap;
  } else {
    counters_.active_cycles += gap;
    counters_.idle_active_cycles += gap;
  }
}

Cycle Router::next_input_event() const {
  Cycle earliest = kNoPendingEvent;
  for (int p = 0; p < nports_; ++p) {
    if (const auto* pipe = flit_in_[static_cast<std::size_t>(p)]) {
      const Cycle t = pipe->next_ready_time();
      if (t < earliest) earliest = t;
    }
    if (const auto* pipe = credit_in_[static_cast<std::size_t>(p)]) {
      const Cycle t = pipe->next_ready_time();
      if (t < earliest) earliest = t;
    }
  }
  return earliest;
}

void Router::set_stage(InputVc& ivc, InputVc::Stage next) {
  if (ivc.stage == next) return;
  switch (ivc.stage) {
    case InputVc::Stage::kIdle: ++active_packets_; break;
    case InputVc::Stage::kRouting: --routing_pending_; break;
    case InputVc::Stage::kVcAlloc: --vca_pending_; break;
    case InputVc::Stage::kActive:
      --active_by_port_[static_cast<std::size_t>(ivc.port)];
      break;
  }
  switch (next) {
    case InputVc::Stage::kIdle: --active_packets_; break;
    case InputVc::Stage::kRouting: ++routing_pending_; break;
    case InputVc::Stage::kVcAlloc: ++vca_pending_; break;
    case InputVc::Stage::kActive:
      ++active_by_port_[static_cast<std::size_t>(ivc.port)];
      break;
  }
  ivc.stage = next;
}

bool Router::drained() const {
  for (const auto& ivc : input_vcs_)
    if (!ivc.buf.empty() || ivc.stage != InputVc::Stage::kIdle) return false;
  for (const auto& ovc : output_vcs_)
    if (ovc.allocated) return false;
  return st_grants_.empty();
}

int Router::buffered_flits() const {
  int n = 0;
  for (const auto& ivc : input_vcs_) n += ivc.buf.size();
  return n;
}

int Router::total_output_credits() const {
  int n = 0;
  for (const auto& ovc : output_vcs_) n += ovc.credits;
  return n;
}

bool Router::any_input_pending(Cycle now) const {
  for (int p = 0; p < nports_; ++p) {
    const auto* pipe = flit_in_[static_cast<std::size_t>(p)];
    if (pipe != nullptr && pipe->ready(now)) return true;
  }
  return false;
}

void Router::tick(Cycle now) {
  // Credit leakage cycles skipped since the last tick, then claim this one.
  sync_counters(now);
  counted_until_ = now + 1;

  if (oracle_ != nullptr && oracle_->router_stuck(id_, now)) {
    // Fail-stop freeze: nothing is consumed or forwarded, not even credits.
    // Upstream back-pressure wedges; the watchdog detects it and the sprint
    // controller degrades around the node — there is no in-network cure.
    ++counters_.active_cycles;
    ++counters_.idle_active_cycles;
    return;
  }

  // Credits are consumed even while gated: they only update bookkeeping for
  // flits that left downstream buffers before we gated.
  receive_credits(now);

  if (state_ == PowerState::kGated) {
    ++counters_.gated_cycles;
    if (any_input_pending(now)) {
      // A flit knocked on a dark router.  Under NoC-sprinting's CDOR this
      // never happens (the routing function avoids the dark region), so the
      // arrival is a protocol violation unless wake-on-arrival is enabled.
      NOCS_EXPECTS(allow_wakeup_ || dynamic_gating_);
      ++counters_.wake_events;
      state_ = PowerState::kWaking;
      wake_remaining_ = params_.wakeup_latency;
      wake_attempts_ = 0;
      if (wake_remaining_ == 0) {
        if (oracle_ != nullptr) {
          // Even a zero-latency wake takes one cycle so the attempt can be
          // judged (and fail) in the kWaking branch below.
          wake_remaining_ = 1;
        } else {
          state_ = PowerState::kActive;
          idle_streak_ = 0;
        }
      }
    }
    return;
  }

  if (state_ == PowerState::kWaking) {
    ++counters_.waking_cycles;
    if (--wake_remaining_ <= 0) {
      ++wake_attempts_;
      if (oracle_ != nullptr &&
          oracle_->wake_fails(id_, wake_attempts_, now)) {
        // The rail failed to charge; retry after the oracle's penalty.
        ++counters_.wake_failures;
        wake_remaining_ = std::max(1, oracle_->wake_retry_latency());
      } else {
        state_ = PowerState::kActive;
        idle_streak_ = 0;
        wake_attempts_ = 0;
      }
    }
    return;
  }

  ++counters_.active_cycles;
  const std::uint64_t moves_before =
      counters_.xbar_traversals + counters_.buffer_writes;

  if (params_.pipeline_stages == 5) {
    // Reverse-order stage evaluation: one stage per flit per cycle.
    stage_switch_traversal(now);
    stage_switch_allocation(now);
    stage_vc_allocation(now);
    stage_route_compute(now);
    receive_flits(now);  // BW happens last so RC runs the following cycle
  } else {
    // Three-stage pipeline: RC is computed inline at buffer write
    // (lookahead routing), and VA runs *before* SA within the cycle so a
    // VC can win both back to back (speculative allocation):
    //   BW+RC at t, VA+SA at t+1, ST at t+2.
    stage_switch_traversal(now);
    stage_vc_allocation(now);
    stage_switch_allocation(now);
    receive_flits(now);
  }

  const bool moved =
      (counters_.xbar_traversals + counters_.buffer_writes) != moves_before;
  if (!moved) ++counters_.idle_active_cycles;

  if (dynamic_gating_) update_dynamic_gating(now);
}

void Router::update_dynamic_gating(Cycle now) {
  const bool idle = drained() && !any_input_pending(now);
  idle_streak_ = idle ? idle_streak_ + 1 : 0;
  if (idle_streak_ >= static_cast<Cycle>(params_.gate_idle_threshold)) {
    state_ = PowerState::kGated;
    idle_streak_ = 0;
  }
}

void Router::receive_credits(Cycle now) {
  for (int p = 0; p < nports_; ++p) {
    auto* pipe = credit_in_[static_cast<std::size_t>(p)];
    if (pipe == nullptr) continue;
    while (pipe->ready(now)) {
      const Credit c = pipe->pop(now);
      NOCS_EXPECTS(c.vc >= 0 && c.vc < params_.num_vcs);
      auto& ovc = out_vc(p, c.vc);
      ++ovc.credits;
      NOCS_ENSURES(ovc.credits <= params_.vc_depth);
    }
  }
}

void Router::receive_flits(Cycle now) {
  for (int p = 0; p < nports_; ++p) {
    auto* pipe = flit_in_[static_cast<std::size_t>(p)];
    if (pipe == nullptr) continue;
    while (pipe->ready(now)) {
      Flit f = pipe->pop(now);
      NOCS_EXPECTS(f.vc >= 0 && f.vc < params_.num_vcs);
      auto& ivc = in_vc(p, f.vc);
      NOCS_ENSURES(!ivc.buf.full());  // credit flow control guarantees space
      if (ivc.stage == InputVc::Stage::kIdle) {
        NOCS_EXPECTS(f.is_head);
        // Flits must arrive on a VC of their own class (partition
        // discipline upheld by the upstream allocator / NI).
        NOCS_EXPECTS(params_.class_of_vc(f.vc) == f.msg_class);
        begin_packet(ivc, f, now);
      }
      ivc.buf.push(f);
      ++counters_.buffer_writes;
    }
  }
}

void Router::begin_packet(InputVc& ivc, const Flit& head, Cycle now) {
  ivc.msg_class = head.msg_class;
  if (params_.pipeline_stages == 3) {
    // Lookahead: route compute folded into buffer write.
    ivc.out_port =
        fault_aware_port(policy_->route_port(id_, head.dst), head.dst, now);
    set_stage(ivc, InputVc::Stage::kVcAlloc);
  } else {
    set_stage(ivc, InputVc::Stage::kRouting);
  }
}

int Router::fault_aware_port(int preferred, NodeId dst, Cycle now) {
  if (oracle_ == nullptr || preferred == 0) return preferred;
  // Routing never points off a disconnected port, so the neighbor exists.
  const NodeId nbr = out_neighbor_[static_cast<std::size_t>(preferred)];
  if (!oracle_->link_down(id_, nbr, now)) return preferred;
  const int alt = policy_->reroute_port(id_, dst, preferred);
  if (alt == preferred) return preferred;  // no safe detour: ride it out
  const NodeId alt_nbr = out_neighbor_[static_cast<std::size_t>(alt)];
  if (oracle_->link_down(id_, alt_nbr, now)) return preferred;
  ++counters_.reroutes;
  return alt;
}

void Router::stage_route_compute(Cycle now) {
  if (routing_pending_ == 0) return;
  for (int p = 0; p < nports_; ++p) {
    for (int v = 0; v < params_.num_vcs; ++v) {
      auto& ivc = in_vc(p, v);
      if (ivc.stage != InputVc::Stage::kRouting) continue;
      NOCS_EXPECTS(!ivc.buf.empty() && ivc.buf.front().is_head);
      const NodeId dst = ivc.buf.front().dst;
      ivc.out_port = policy_->route_port(id_, dst);
      // The routing policy may only select the local port or a connected
      // output (cur == dst must map to port 0).
      NOCS_ENSURES(ivc.out_port >= 0 && ivc.out_port < nports_);
      NOCS_ENSURES(ivc.out_port == 0 ||
                   out_neighbor_[static_cast<std::size_t>(ivc.out_port)] !=
                       kInvalidNode);
      ivc.out_port = fault_aware_port(ivc.out_port, dst, now);
      set_stage(ivc, InputVc::Stage::kVcAlloc);
    }
  }
}

void Router::stage_vc_allocation(Cycle) {
  // Separable output-side allocation: for each output port, hand free VCs
  // to requesting input VCs in round-robin order over (port, vc) requester
  // slots.  Each input VC holds at most one request, so no input-side
  // conflict resolution is needed.
  if (vca_pending_ == 0) return;
  const int nv = params_.num_vcs;
  const int slots = nports_ * nv;
  // One pass over the slots finds every requested output port (the per-port
  // "any requester?" scans this replaces were the stage's main cost).
  // kMaxPorts <= 32 keeps the mask in one word.
  unsigned req_mask = 0;
  for (int s = 0; s < slots; ++s) {
    const auto& ivc = input_vcs_[static_cast<std::size_t>(s)];
    if (ivc.stage == InputVc::Stage::kVcAlloc)
      req_mask |= 1u << ivc.out_port;
  }
  for (int op = 0; op < nports_; ++op) {
    if ((req_mask & (1u << op)) == 0) continue;

    for (int ov = 0; ov < nv; ++ov) {
      auto& target = out_vc(op, ov);
      if (target.allocated) continue;
      // Round-robin over requester slots starting after the last grant.
      // VC partitioning: an output VC may only go to a requester of the
      // same message class (protocol-deadlock avoidance).
      const int ov_class = params_.class_of_vc(ov);
      int& rr = va_rr_[static_cast<std::size_t>(op)];
      int granted_slot = -1;
      for (int k = 1; k <= slots; ++k) {
        const int s = (rr + k) % slots;
        auto& ivc = input_vcs_[static_cast<std::size_t>(s)];
        if (ivc.stage == InputVc::Stage::kVcAlloc && ivc.out_port == op &&
            ivc.msg_class == ov_class) {
          granted_slot = s;
          break;
        }
      }
      if (granted_slot < 0) continue;  // no requesters of this VC's class
      rr = granted_slot;
      auto& ivc = input_vcs_[static_cast<std::size_t>(granted_slot)];
      target.allocated = true;
      target.owner_port = granted_slot / nv;
      target.owner_vc = granted_slot % nv;
      ivc.out_vc = ov;
      set_stage(ivc, InputVc::Stage::kActive);
      ++counters_.vc_allocs;
    }
  }
}

void Router::stage_switch_allocation(Cycle) {
  if (active_packets_ == 0) return;
  const int nv = params_.num_vcs;

  // Stage 1 (input arbitration): each input port nominates one active VC
  // that has a buffered flit and a downstream credit.  Ports with no
  // active VC are skipped outright — the round-robin pointer only moves on
  // a nomination, so skipping them cannot change any arbitration outcome.
  std::vector<int> nominee(static_cast<std::size_t>(nports_), -1);
  unsigned out_mask = 0;  // output ports some nominee targets
  for (int p = 0; p < nports_; ++p) {
    if (active_by_port_[static_cast<std::size_t>(p)] == 0) continue;
    int& rr = sa_input_rr_[static_cast<std::size_t>(p)];
    int v = rr;
    for (int k = 1; k <= nv; ++k) {
      if (++v >= nv) v = 0;
      const auto& ivc = in_vc(p, v);
      if (ivc.stage != InputVc::Stage::kActive || ivc.buf.empty()) continue;
      const auto& ovc = out_vc(ivc.out_port, ivc.out_vc);
      if (ovc.credits <= 0) continue;
      nominee[static_cast<std::size_t>(p)] = v;
      out_mask |= 1u << ivc.out_port;
      rr = v;
      break;
    }
  }
  if (out_mask == 0) return;

  // Stage 2 (output arbitration): each targeted output port grants one
  // nominee (un-targeted ports would scan and grant nothing).
  std::vector<bool> output_claimed(static_cast<std::size_t>(nports_), false);
  std::vector<bool> input_granted(static_cast<std::size_t>(nports_), false);
  for (int op = 0; op < nports_; ++op) {
    if ((out_mask & (1u << op)) == 0) continue;
    int& rr = sa_output_rr_[static_cast<std::size_t>(op)];
    int p = rr;
    for (int k = 1; k <= nports_; ++k) {
      if (++p >= nports_) p = 0;
      if (input_granted[static_cast<std::size_t>(p)]) continue;
      const int v = nominee[static_cast<std::size_t>(p)];
      if (v < 0) continue;
      const auto& ivc = in_vc(p, v);
      if (ivc.out_port != op) continue;
      if (output_claimed[static_cast<std::size_t>(op)]) break;
      output_claimed[static_cast<std::size_t>(op)] = true;
      input_granted[static_cast<std::size_t>(p)] = true;
      st_grants_.push_back(Grant{p, v});
      ++counters_.sa_arbitrations;
      rr = p;
      break;
    }
  }
}

void Router::stage_switch_traversal(Cycle now) {
  for (const Grant& g : st_grants_) {
    auto& ivc = in_vc(g.in_port, g.in_vc);
    NOCS_EXPECTS(ivc.stage == InputVc::Stage::kActive && !ivc.buf.empty());
    Flit f = ivc.buf.pop();
    ++counters_.buffer_reads;
    ++counters_.xbar_traversals;

    const int op = ivc.out_port;
    auto& ovc = out_vc(op, ivc.out_vc);
    NOCS_EXPECTS(ovc.allocated && ovc.owner_port == g.in_port &&
                 ovc.owner_vc == g.in_vc);
    NOCS_EXPECTS(ovc.credits > 0);
    --ovc.credits;

    // Return a credit upstream for the buffer slot we just freed.
    auto* credit_pipe = credit_out_[static_cast<std::size_t>(g.in_port)];
    if (credit_pipe != nullptr)
      credit_pipe->push(now, Credit{static_cast<VcId>(g.in_vc)});

    f.vc = ivc.out_vc;
    if (op != 0) {
      ++f.hops;
      ++counters_.link_flits;
      if (oracle_ != nullptr) {
        const NodeId nbr = out_neighbor_[static_cast<std::size_t>(op)];
        if (oracle_->corrupt_link_flit(id_, nbr, now)) {
          f.corrupted = true;
          ++counters_.flits_corrupted;
        }
      }
    }
    auto* out_pipe = flit_out_[static_cast<std::size_t>(op)];
    NOCS_EXPECTS(out_pipe != nullptr);
    out_pipe->push(now, f);

    if (f.is_tail) {
      ovc.allocated = false;
      ovc.owner_port = -1;
      ovc.owner_vc = -1;
      ivc.out_vc = -1;
      if (ivc.buf.empty()) {
        set_stage(ivc, InputVc::Stage::kIdle);
      } else {
        // The next packet's head is already buffered behind the tail.
        NOCS_EXPECTS(ivc.buf.front().is_head);
        begin_packet(ivc, ivc.buf.front(), now);
      }
    }
  }
  st_grants_.clear();
}

namespace {

void save_counters(snapshot::Writer& w, const RouterCounters& c) {
  w.u64(c.buffer_writes);
  w.u64(c.buffer_reads);
  w.u64(c.xbar_traversals);
  w.u64(c.vc_allocs);
  w.u64(c.sa_arbitrations);
  w.u64(c.link_flits);
  w.u64(c.active_cycles);
  w.u64(c.gated_cycles);
  w.u64(c.waking_cycles);
  w.u64(c.wake_events);
  w.u64(c.idle_active_cycles);
  w.u64(c.flits_corrupted);
  w.u64(c.reroutes);
  w.u64(c.wake_failures);
  w.u64(c.mc_replications);
  w.u64(c.mc_flits);
}

void load_counters(snapshot::Reader& r, RouterCounters& c) {
  c.buffer_writes = r.u64();
  c.buffer_reads = r.u64();
  c.xbar_traversals = r.u64();
  c.vc_allocs = r.u64();
  c.sa_arbitrations = r.u64();
  c.link_flits = r.u64();
  c.active_cycles = r.u64();
  c.gated_cycles = r.u64();
  c.waking_cycles = r.u64();
  c.wake_events = r.u64();
  c.idle_active_cycles = r.u64();
  c.flits_corrupted = r.u64();
  c.reroutes = r.u64();
  c.wake_failures = r.u64();
  c.mc_replications = r.u64();
  c.mc_flits = r.u64();
}

}  // namespace

void Router::save_state(snapshot::Writer& w) const {
  w.begin_section("router");
  w.u8(static_cast<std::uint8_t>(state_));
  w.i64(wake_remaining_);
  w.i64(wake_attempts_);
  w.u64(idle_streak_);

  for (const InputVc& ivc : input_vcs_) {
    ivc.buf.save_state(w);
    w.u8(static_cast<std::uint8_t>(ivc.stage));
    w.u8(static_cast<std::uint8_t>(ivc.out_port));
    w.i64(ivc.out_vc);
    w.i64(ivc.msg_class);
  }
  for (const OutputVc& ovc : output_vcs_) {
    w.b(ovc.allocated);
    w.i64(ovc.owner_port);
    w.i64(ovc.owner_vc);
    w.i64(ovc.credits);
  }

  w.i64(static_cast<std::int64_t>(st_grants_.size()));
  for (const Grant& g : st_grants_) {
    w.i64(g.in_port);
    w.i64(g.in_vc);
  }

  for (int i = 0; i < nports_; ++i) {
    w.i64(sa_input_rr_[static_cast<std::size_t>(i)]);
    w.i64(sa_output_rr_[static_cast<std::size_t>(i)]);
    w.i64(va_rr_[static_cast<std::size_t>(i)]);
  }

  save_counters(w, counters_);
  w.u64(counted_until_);
  w.end_section();
}

void Router::load_state(snapshot::Reader& r) {
  r.begin_section("router");
  state_ = static_cast<PowerState>(r.u8());
  wake_remaining_ = static_cast<int>(r.i64());
  wake_attempts_ = static_cast<int>(r.i64());
  idle_streak_ = r.u64();

  for (InputVc& ivc : input_vcs_) {
    ivc.buf.load_state(r);
    ivc.stage = static_cast<InputVc::Stage>(r.u8());
    ivc.out_port = static_cast<int>(r.u8());
    ivc.out_vc = static_cast<VcId>(r.i64());
    ivc.msg_class = static_cast<int>(r.i64());
  }
  for (OutputVc& ovc : output_vcs_) {
    ovc.allocated = r.b();
    ovc.owner_port = static_cast<int>(r.i64());
    ovc.owner_vc = static_cast<int>(r.i64());
    ovc.credits = static_cast<int>(r.i64());
  }

  st_grants_.clear();
  const auto num_grants = r.i64();
  for (std::int64_t i = 0; i < num_grants; ++i) {
    Grant g{};
    g.in_port = static_cast<int>(r.i64());
    g.in_vc = static_cast<int>(r.i64());
    st_grants_.push_back(g);
  }

  for (int i = 0; i < nports_; ++i) {
    sa_input_rr_[static_cast<std::size_t>(i)] = static_cast<int>(r.i64());
    sa_output_rr_[static_cast<std::size_t>(i)] = static_cast<int>(r.i64());
    va_rr_[static_cast<std::size_t>(i)] = static_cast<int>(r.i64());
  }

  load_counters(r, counters_);
  counted_until_ = r.u64();
  r.end_section();

  // The stage tallies driving busy_next_cycle() and the per-stage skip
  // checks are derived state: recompute them from the restored stages
  // rather than trusting redundant bytes that could go inconsistent.
  active_packets_ = 0;
  routing_pending_ = 0;
  vca_pending_ = 0;
  std::fill(active_by_port_.begin(), active_by_port_.end(), 0);
  for (const InputVc& ivc : input_vcs_) {
    switch (ivc.stage) {
      case InputVc::Stage::kIdle: break;
      case InputVc::Stage::kRouting:
        ++active_packets_;
        ++routing_pending_;
        break;
      case InputVc::Stage::kVcAlloc:
        ++active_packets_;
        ++vca_pending_;
        break;
      case InputVc::Stage::kActive:
        ++active_packets_;
        ++active_by_port_[static_cast<std::size_t>(ivc.port)];
        break;
    }
  }
}

}  // namespace nocs::noc
