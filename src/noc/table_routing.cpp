#include "noc/table_routing.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nocs::noc {
namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 2;

/// Strict ordering that orients links: x -> y is an "up" link when y
/// outranks x (closer to the root, ties to the smaller id).
bool outranks(int depth_a, NodeId a, int depth_b, NodeId b) {
  return depth_a < depth_b || (depth_a == depth_b && a < b);
}

}  // namespace

TableRouting TableRouting::up_down(const Topology& topo,
                                   const std::vector<NodeId>& active,
                                   NodeId root) {
  const int n = topo.num_nodes();
  std::vector<bool> in_set(static_cast<std::size_t>(n), false);
  for (NodeId id : active) {
    NOCS_EXPECTS(topo.valid(id));
    in_set[static_cast<std::size_t>(id)] = true;
  }
  if (!topo.valid(root) || !in_set[static_cast<std::size_t>(root)])
    throw std::invalid_argument("up_down: root is not in the active set");

  TableRouting rt;
  rt.num_nodes_ = n;
  rt.name_ = "updown@" + std::to_string(root);
  rt.depth_.assign(static_cast<std::size_t>(n), -1);
  rt.table_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                   -1);

  // BFS rank from the root over the active subgraph.
  std::deque<NodeId> frontier{root};
  rt.depth_[static_cast<std::size_t>(root)] = 0;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (int p : topo.connected_ports(cur)) {
      const NodeId nb = topo.neighbor(cur, p);
      const auto i = static_cast<std::size_t>(nb);
      if (!in_set[i] || rt.depth_[i] >= 0) continue;
      rt.depth_[i] = rt.depth_[static_cast<std::size_t>(cur)] + 1;
      ++reached;
      frontier.push_back(nb);
    }
  }
  if (reached != active.size())
    throw std::invalid_argument(
        "up_down: active subgraph is not connected from the root");

  // Active nodes sorted by rank: processing order for the cost-to-go DP
  // (every node's up neighbors precede it).
  std::vector<NodeId> by_rank(active.begin(), active.end());
  std::sort(by_rank.begin(), by_rank.end(), [&](NodeId a, NodeId b) {
    return outranks(rt.depth_[static_cast<std::size_t>(a)], a,
                    rt.depth_[static_cast<std::size_t>(b)], b);
  });

  auto rank_up = [&](NodeId from, NodeId to) {
    return outranks(rt.depth_[static_cast<std::size_t>(to)], to,
                    rt.depth_[static_cast<std::size_t>(from)], from);
  };

  // One destination at a time: D = all-down distance to d (reverse BFS
  // climbing up links from d), then A = total cost-to-go filled in rank
  // order, recording the chosen port.
  std::vector<int> dist_down(static_cast<std::size_t>(n));
  std::vector<int> cost(static_cast<std::size_t>(n));
  for (NodeId d : by_rank) {
    std::fill(dist_down.begin(), dist_down.end(), kInf);
    std::fill(cost.begin(), cost.end(), kInf);
    dist_down[static_cast<std::size_t>(d)] = 0;
    std::deque<NodeId> q{d};
    while (!q.empty()) {
      const NodeId cur = q.front();
      q.pop_front();
      for (int p : topo.connected_ports(cur)) {
        const NodeId nb = topo.neighbor(cur, p);
        const auto i = static_cast<std::size_t>(nb);
        // Climbing cur -> nb in reverse walks the down link nb -> cur.
        if (!in_set[i] || !rank_up(cur, nb) || dist_down[i] < kInf) continue;
        dist_down[i] = dist_down[static_cast<std::size_t>(cur)] + 1;
        q.push_back(nb);
      }
    }
    for (NodeId x : by_rank) {
      const auto xi = static_cast<std::size_t>(x);
      if (x == d) {
        cost[xi] = 0;
        rt.table_[xi * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(d)] = 0;  // local port
        continue;
      }
      int best_port = -1;
      int best_cost = kInf;
      if (dist_down[xi] < kInf) {
        // Descend: pick the down neighbor one step closer to d.
        for (int p : topo.connected_ports(x)) {
          const NodeId nb = topo.neighbor(x, p);
          const auto i = static_cast<std::size_t>(nb);
          if (!in_set[i] || rank_up(x, nb)) continue;
          if (dist_down[i] == dist_down[xi] - 1) {
            best_port = p;
            best_cost = dist_down[xi];
            break;  // ascending port scan: smallest port wins ties
          }
        }
      } else {
        // Climb: up neighbors outrank x, so their costs are final.
        for (int p : topo.connected_ports(x)) {
          const NodeId nb = topo.neighbor(x, p);
          const auto i = static_cast<std::size_t>(nb);
          if (!in_set[i] || !rank_up(x, nb)) continue;
          if (cost[i] < kInf && cost[i] + 1 < best_cost) {
            best_port = p;
            best_cost = cost[i] + 1;
          }
        }
      }
      NOCS_ENSURES(best_port >= 0);  // connected subgraph: a hop must exist
      cost[xi] = best_cost;
      rt.table_[xi * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(d)] = best_port;
    }
  }
  return rt;
}

int TableRouting::route_port(NodeId cur, NodeId dst) const {
  NOCS_EXPECTS(cur >= 0 && cur < num_nodes_ && dst >= 0 && dst < num_nodes_);
  const int port = table_[static_cast<std::size_t>(cur) *
                              static_cast<std::size_t>(num_nodes_) +
                          static_cast<std::size_t>(dst)];
  NOCS_EXPECTS(port >= 0);  // routed pairs only (both endpoints active)
  return port;
}

DeadlockCheckResult check_deadlock_free(const Topology& topo,
                                        const RoutingPolicy& policy,
                                        const std::vector<NodeId>& active) {
  DeadlockCheckResult res;
  const int n = topo.num_nodes();
  std::vector<bool> in_set(static_cast<std::size_t>(n), false);
  for (NodeId id : active) in_set[static_cast<std::size_t>(id)] = true;

  const int num_links = static_cast<int>(topo.links().size());
  // dep[a] = set of links some route enters immediately after link a.
  std::vector<std::vector<int>> dep(static_cast<std::size_t>(num_links));
  std::vector<bool> used(static_cast<std::size_t>(num_links), false);

  auto fail = [&res](std::string msg) {
    res.ok = false;
    res.detail = std::move(msg);
    return res;
  };

  for (NodeId src : active) {
    for (NodeId dst : active) {
      if (src == dst) continue;
      NodeId cur = src;
      int prev_link = -1;
      int hops = 0;
      while (cur != dst) {
        if (++hops > n) {
          return fail("route " + std::to_string(src) + " -> " +
                      std::to_string(dst) + " does not terminate");
        }
        const int port = policy.route_port(cur, dst);
        if (port == 0) {
          return fail("route " + std::to_string(src) + " -> " +
                      std::to_string(dst) + " ejects early at node " +
                      std::to_string(cur));
        }
        const int link = topo.link_out(cur, port);
        if (link < 0) {
          return fail("route " + std::to_string(src) + " -> " +
                      std::to_string(dst) + " uses disconnected port " +
                      std::to_string(port) + " at node " +
                      std::to_string(cur));
        }
        const NodeId next = topo.links()[static_cast<std::size_t>(link)].dst;
        if (!in_set[static_cast<std::size_t>(next)]) {
          return fail("route " + std::to_string(src) + " -> " +
                      std::to_string(dst) + " enters dark node " +
                      std::to_string(next));
        }
        used[static_cast<std::size_t>(link)] = true;
        if (prev_link >= 0) {
          auto& out = dep[static_cast<std::size_t>(prev_link)];
          if (std::find(out.begin(), out.end(), link) == out.end())
            out.push_back(link);
        }
        prev_link = link;
        cur = next;
      }
    }
  }

  for (int l = 0; l < num_links; ++l) {
    if (used[static_cast<std::size_t>(l)]) ++res.channels_used;
    res.dependencies += static_cast<int>(dep[static_cast<std::size_t>(l)].size());
  }

  // Iterative three-color DFS over the channel-dependency graph.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(static_cast<std::size_t>(num_links),
                                  kWhite);
  std::vector<std::pair<int, std::size_t>> stack;
  for (int start = 0; start < num_links; ++start) {
    if (color[static_cast<std::size_t>(start)] != kWhite) continue;
    stack.emplace_back(start, 0);
    color[static_cast<std::size_t>(start)] = kGray;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      const auto& out = dep[static_cast<std::size_t>(node)];
      if (edge < out.size()) {
        const int next = out[edge++];
        if (color[static_cast<std::size_t>(next)] == kGray) {
          const TopoLink& a = topo.links()[static_cast<std::size_t>(node)];
          const TopoLink& b = topo.links()[static_cast<std::size_t>(next)];
          std::ostringstream os;
          os << "channel-dependency cycle through links " << a.src << "->"
             << a.dst << " and " << b.src << "->" << b.dst;
          return fail(os.str());
        }
        if (color[static_cast<std::size_t>(next)] == kWhite) {
          color[static_cast<std::size_t>(next)] = kGray;
          stack.emplace_back(next, 0);
        }
      } else {
        color[static_cast<std::size_t>(node)] = kBlack;
        stack.pop_back();
      }
    }
  }

  res.ok = true;
  return res;
}

}  // namespace nocs::noc
