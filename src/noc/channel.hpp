// Latched fixed-latency channels connecting routers and network interfaces.
//
// All cross-component communication (flits downstream, credits upstream)
// flows through Pipe<T>.  A value pushed at cycle t becomes visible at
// t + latency, so the per-cycle evaluation order of routers cannot change
// simulation results — the property that makes the simulator deterministic
// and the reason we need no global two-phase update.
#pragma once

#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Sentinel ready time meaning "no value pending".
inline constexpr Cycle kNoPendingEvent = ~Cycle{0};

/// Consumer-side wake hook: a pipe notifies its sink when a value is
/// pushed into an empty queue, telling the network when the consuming
/// router/NI next has work.  Pushes into a non-empty queue are not
/// reported — the consumer re-arms from next_ready_time() after it drains
/// the earlier value, so one notification per busy period suffices.
class WakeSink {
 public:
  virtual ~WakeSink() = default;

  /// A value will become receivable at `ready_at`.
  virtual void on_push(Cycle ready_at) = 0;
};

/// FIFO channel with a fixed propagation latency in cycles.
///
/// Storage is a growable ring allocated once: a pipe holds at most one
/// value per cycle of latency in steady state (producers push at most once
/// per cycle), so the initial capacity of latency + 1 almost never grows,
/// and push/pop on the tick hot path stay heap-free (std::deque churned an
/// allocation per chunk as values flowed through).
template <typename T>
class Pipe {
 public:
  explicit Pipe(int latency = 1)
      : latency_(static_cast<Cycle>(latency)),
        slots_(static_cast<std::size_t>(latency) + 1) {
    NOCS_EXPECTS(latency >= 0);
  }

  /// Registers the consumer's wake hook (optional; null disables).
  void set_sink(WakeSink* sink) { sink_ = sink; }

  /// Enqueues `value` at cycle `now`; it becomes receivable at
  /// `now + latency`.
  void push(Cycle now, T value) {
    // FIFO ordering requires monotonically non-decreasing ready times.
    NOCS_ENSURES(count_ == 0 || slots_[last()].first <= now + latency_);
    if (count_ == 0 && sink_ != nullptr) sink_->on_push(now + latency_);
    if (count_ == static_cast<int>(slots_.size())) grow();
    slots_[wrap(head_ + count_)] = {now + latency_, std::move(value)};
    ++count_;
  }

  /// True when a value is receivable at cycle `now`.
  bool ready(Cycle now) const {
    return count_ != 0 && slots_[static_cast<std::size_t>(head_)].first <= now;
  }

  /// Peeks the next receivable value; precondition: ready(now).
  const T& front(Cycle now) const {
    NOCS_EXPECTS(ready(now));
    return slots_[static_cast<std::size_t>(head_)].second;
  }

  /// Removes and returns the next receivable value; precondition: ready(now).
  T pop(Cycle now) {
    NOCS_EXPECTS(ready(now));
    T v = std::move(slots_[static_cast<std::size_t>(head_)].second);
    head_ = static_cast<int>(wrap(head_ + 1));
    --count_;
    return v;
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return static_cast<std::size_t>(count_); }
  int latency() const { return static_cast<int>(latency_); }

  /// Ready time of the oldest pending value, or kNoPendingEvent when empty
  /// (used by idle consumers to re-arm their next wake-up).
  Cycle next_ready_time() const {
    return count_ == 0 ? kNoPendingEvent
                       : slots_[static_cast<std::size_t>(head_)].first;
  }

  /// Checkpoint: in-flight values oldest-first with their absolute ready
  /// times.  The element codec is a callback because Pipe is generic over
  /// the payload (Flit or Credit).
  template <typename SaveElem>
  void save_state(snapshot::Writer& w, SaveElem&& save_elem) const {
    w.begin_section("pipe");
    w.u64(latency_);
    w.i64(count_);
    for (int i = 0; i < count_; ++i) {
      const auto& slot = slots_[wrap(head_ + i)];
      w.u64(slot.first);
      save_elem(w, slot.second);
    }
    w.end_section();
  }

  /// Restores in-flight values without firing the wake sink: the network
  /// restore path marks every consumer hot instead, which subsumes the
  /// per-push notifications.  Ready times are absolute cycles and stay
  /// valid because Network::now() is restored from the same checkpoint.
  template <typename LoadElem>
  void load_state(snapshot::Reader& r, LoadElem&& load_elem) {
    r.begin_section("pipe");
    const Cycle lat = r.u64();
    if (lat != latency_)
      throw snapshot::SnapshotError(
          "pipe latency in checkpoint disagrees with configured topology");
    const int n = static_cast<int>(r.i64());
    if (n < 0) throw snapshot::SnapshotError("negative pipe occupancy");
    if (n > static_cast<int>(slots_.size()))
      slots_.resize(static_cast<std::size_t>(n));
    head_ = 0;
    count_ = n;
    for (int i = 0; i < n; ++i) {
      auto& slot = slots_[static_cast<std::size_t>(i)];
      slot.first = r.u64();
      load_elem(r, slot.second);
    }
    r.end_section();
  }

 private:
  std::size_t wrap(int index) const {
    const int cap = static_cast<int>(slots_.size());
    return static_cast<std::size_t>(index >= cap ? index - cap : index);
  }
  std::size_t last() const { return wrap(head_ + count_ - 1); }

  /// Doubles capacity, unrolling the ring into fresh storage (rare: only
  /// when a consumer lags more pushes behind than the pipe's latency).
  void grow() {
    std::vector<std::pair<Cycle, T>> bigger(slots_.size() * 2);
    for (int i = 0; i < count_; ++i)
      bigger[static_cast<std::size_t>(i)] = std::move(slots_[wrap(head_ + i)]);
    slots_ = std::move(bigger);
    head_ = 0;
  }

  Cycle latency_;
  WakeSink* sink_ = nullptr;
  int head_ = 0;   // index of the oldest value
  int count_ = 0;  // queued values
  std::vector<std::pair<Cycle, T>> slots_;
};

}  // namespace nocs::noc
