// Latched fixed-latency channels connecting routers and network interfaces.
//
// All cross-component communication (flits downstream, credits upstream)
// flows through Pipe<T>.  A value pushed at cycle t becomes visible at
// t + latency, so the per-cycle evaluation order of routers cannot change
// simulation results — the property that makes the simulator deterministic
// and the reason we need no global two-phase update.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// FIFO channel with a fixed propagation latency in cycles.
template <typename T>
class Pipe {
 public:
  explicit Pipe(int latency = 1) : latency_(static_cast<Cycle>(latency)) {
    NOCS_EXPECTS(latency >= 0);
  }

  /// Enqueues `value` at cycle `now`; it becomes receivable at
  /// `now + latency`.
  void push(Cycle now, T value) {
    // FIFO ordering requires monotonically non-decreasing ready times.
    NOCS_ENSURES(queue_.empty() || queue_.back().first <= now + latency_);
    queue_.emplace_back(now + latency_, std::move(value));
  }

  /// True when a value is receivable at cycle `now`.
  bool ready(Cycle now) const {
    return !queue_.empty() && queue_.front().first <= now;
  }

  /// Peeks the next receivable value; precondition: ready(now).
  const T& front(Cycle now) const {
    NOCS_EXPECTS(ready(now));
    return queue_.front().second;
  }

  /// Removes and returns the next receivable value; precondition: ready(now).
  T pop(Cycle now) {
    NOCS_EXPECTS(ready(now));
    T v = std::move(queue_.front().second);
    queue_.pop_front();
    return v;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  int latency() const { return static_cast<int>(latency_); }

 private:
  Cycle latency_;
  std::deque<std::pair<Cycle, T>> queue_;
};

}  // namespace nocs::noc
