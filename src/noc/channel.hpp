// Latched fixed-latency channels connecting routers and network interfaces.
//
// All cross-component communication (flits downstream, credits upstream)
// flows through Pipe<T>.  A value pushed at cycle t becomes visible at
// t + latency, so the per-cycle evaluation order of routers cannot change
// simulation results — the property that makes the simulator deterministic
// and the reason we need no global two-phase update.
//
// That same property makes Pipe the only cross-shard channel of the
// sharded Network::tick, so it is a single-producer/single-consumer
// lock-free ring: the producer owns `pushed_`, the consumer owns
// `popped_`, and each release-publishes its counter so the other side
// observes fully-written slots.  Determinism survives the race window on
// purpose — a value pushed at cycle t is never receivable before t+1
// (latency >= 1), so whether the consumer's same-cycle loads observe it or
// not cannot change what pop/ready return this cycle; by the next phase
// barrier the write is visible everywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Sentinel ready time meaning "no value pending".
inline constexpr Cycle kNoPendingEvent = ~Cycle{0};

/// Consumer-side wake hook: a pipe notifies its sink when a value is
/// pushed into an empty queue, telling the network when the consuming
/// router/NI next has work.  Pushes into a non-empty queue are not
/// reported — the consumer re-arms from next_ready_time() after it drains
/// the earlier value, so one notification per busy period suffices.
class WakeSink {
 public:
  virtual ~WakeSink() = default;

  /// A value will become receivable at `ready_at`.
  virtual void on_push(Cycle ready_at) = 0;
};

/// FIFO channel with a fixed propagation latency in cycles.
///
/// Storage is a power-of-two ring allocated once; `pushed_` and `popped_`
/// are monotonic totals and the slot index is their value masked by the
/// capacity.  Under credit flow control a pipe's occupancy is bounded by
/// the downstream buffering (num_vcs * vc_depth), so the network
/// pre-reserves that bound at construction and push/pop never reallocate —
/// required for the lock-free ring (grow() is only legal while no
/// concurrent consumer exists, i.e. outside the parallel tick phases).
template <typename T>
class Pipe {
 public:
  /// `min_capacity` pre-reserves ring slots beyond the latency+1 default
  /// (rounded up to a power of two); pass the worst-case occupancy when
  /// the pipe crosses shard boundaries.
  explicit Pipe(int latency = 1, int min_capacity = 0)
      : latency_(static_cast<Cycle>(latency)) {
    NOCS_EXPECTS(latency >= 0);
    slots_.resize(round_up_pow2(
        static_cast<std::size_t>(latency + 1 > min_capacity ? latency + 1
                                                            : min_capacity)));
  }

  /// Registers the consumer's wake hook (optional; null disables).
  void set_sink(WakeSink* sink) { sink_ = sink; }

  /// Grows the ring to at least `min_capacity` slots.  Serial contexts
  /// only (construction/wiring time).
  void reserve(int min_capacity) {
    NOCS_EXPECTS(min_capacity >= 1);
    if (static_cast<std::size_t>(min_capacity) > slots_.size())
      regrow(round_up_pow2(static_cast<std::size_t>(min_capacity)));
  }

  /// Enqueues `value` at cycle `now`; it becomes receivable at
  /// `now + latency`.  Producer side of the SPSC ring.
  void push(Cycle now, T value) {
    const std::uint64_t p = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t c = popped_.load(std::memory_order_acquire);
    // FIFO ordering requires monotonically non-decreasing ready times.
    NOCS_ENSURES(p == c || slots_[index(p - 1)].first <= now + latency_);
    if (p - c == slots_.size()) grow();
    if (p == c && sink_ != nullptr) sink_->on_push(now + latency_);
    slots_[index(p)] = {now + latency_, std::move(value)};
    pushed_.store(p + 1, std::memory_order_release);
  }

  /// True when a value is receivable at cycle `now`.  Consumer side.
  bool ready(Cycle now) const {
    const std::uint64_t c = popped_.load(std::memory_order_relaxed);
    const std::uint64_t p = pushed_.load(std::memory_order_acquire);
    return p != c && slots_[index(c)].first <= now;
  }

  /// Peeks the next receivable value; precondition: ready(now).
  const T& front(Cycle now) const {
    NOCS_EXPECTS(ready(now));
    return slots_[index(popped_.load(std::memory_order_relaxed))].second;
  }

  /// Removes and returns the next receivable value; precondition: ready(now).
  T pop(Cycle now) {
    NOCS_EXPECTS(ready(now));
    const std::uint64_t c = popped_.load(std::memory_order_relaxed);
    T v = std::move(slots_[index(c)].second);
    popped_.store(c + 1, std::memory_order_release);
    return v;
  }

  bool empty() const { return size() == 0; }
  std::size_t size() const {
    return static_cast<std::size_t>(pushed_.load(std::memory_order_acquire) -
                                    popped_.load(std::memory_order_acquire));
  }
  int latency() const { return static_cast<int>(latency_); }
  std::size_t capacity() const { return slots_.size(); }

  /// Ready time of the oldest pending value, or kNoPendingEvent when empty
  /// (used by idle consumers to re-arm their next wake-up).
  Cycle next_ready_time() const {
    const std::uint64_t c = popped_.load(std::memory_order_relaxed);
    const std::uint64_t p = pushed_.load(std::memory_order_acquire);
    return p == c ? kNoPendingEvent : slots_[index(c)].first;
  }

  /// Checkpoint: in-flight values oldest-first with their absolute ready
  /// times.  The element codec is a callback because Pipe is generic over
  /// the payload (Flit or Credit).
  template <typename SaveElem>
  void save_state(snapshot::Writer& w, SaveElem&& save_elem) const {
    const std::uint64_t c = popped_.load(std::memory_order_relaxed);
    const std::uint64_t p = pushed_.load(std::memory_order_relaxed);
    w.begin_section("pipe");
    w.u64(latency_);
    w.i64(static_cast<std::int64_t>(p - c));
    for (std::uint64_t i = c; i != p; ++i) {
      const auto& slot = slots_[index(i)];
      w.u64(slot.first);
      save_elem(w, slot.second);
    }
    w.end_section();
  }

  /// Restores in-flight values without firing the wake sink: the network
  /// restore path marks every consumer hot instead, which subsumes the
  /// per-push notifications.  Ready times are absolute cycles and stay
  /// valid because Network::now() is restored from the same checkpoint.
  template <typename LoadElem>
  void load_state(snapshot::Reader& r, LoadElem&& load_elem) {
    r.begin_section("pipe");
    const Cycle lat = r.u64();
    if (lat != latency_)
      throw snapshot::SnapshotError(
          "pipe latency in checkpoint disagrees with configured topology");
    const std::int64_t n = r.i64();
    if (n < 0) throw snapshot::SnapshotError("negative pipe occupancy");
    if (static_cast<std::size_t>(n) > slots_.size())
      regrow(round_up_pow2(static_cast<std::size_t>(n)));
    popped_.store(0, std::memory_order_relaxed);
    pushed_.store(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    for (std::int64_t i = 0; i < n; ++i) {
      auto& slot = slots_[static_cast<std::size_t>(i)];
      slot.first = r.u64();
      load_elem(r, slot.second);
    }
    r.end_section();
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t cap = 1;
    while (cap < v) cap <<= 1;
    return cap;
  }

  std::size_t index(std::uint64_t pos) const {
    return static_cast<std::size_t>(pos) & (slots_.size() - 1);
  }

  /// Doubles capacity, unrolling the ring into fresh storage (rare: only
  /// when a consumer lags more pushes behind than the pre-reserved bound;
  /// never reached on network pipes, which reserve the credit-loop bound).
  void grow() { regrow(slots_.size() * 2); }

  void regrow(std::size_t new_cap) {
    const std::uint64_t c = popped_.load(std::memory_order_relaxed);
    const std::uint64_t p = pushed_.load(std::memory_order_relaxed);
    std::vector<std::pair<Cycle, T>> bigger(new_cap);
    for (std::uint64_t i = c; i != p; ++i)
      bigger[static_cast<std::size_t>(i - c)] = std::move(slots_[index(i)]);
    slots_ = std::move(bigger);
    popped_.store(0, std::memory_order_relaxed);
    pushed_.store(p - c, std::memory_order_relaxed);
  }

  Cycle latency_;
  WakeSink* sink_ = nullptr;
  // Monotonic totals; occupancy = pushed_ - popped_.  Producer-owned and
  // consumer-owned respectively: each is stored by exactly one side.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::vector<std::pair<Cycle, T>> slots_;
};

}  // namespace nocs::noc
