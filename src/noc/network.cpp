#include "noc/network.hpp"

#include <algorithm>

namespace nocs::noc {

Network::Network(const NetworkParams& params, const RoutingFunction* routing,
                 LinkLatencyFn link_latency)
    : params_(params), routing_(routing) {
  params_.validate();
  NOCS_EXPECTS(routing != nullptr);
  const MeshShape shape = params_.shape();
  const int n = shape.size();

  auto latency_of = [&](NodeId from, NodeId to) {
    if (!link_latency) return params_.link_latency;
    const int lat = link_latency(from, to);
    NOCS_EXPECTS(lat >= 1);
    return lat;
  };
  link_latencies_.assign(static_cast<std::size_t>(n),
                         std::vector<int>(static_cast<std::size_t>(n), 0));

  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    routers_.push_back(std::make_unique<Router>(id, params_, routing_));
    nis_.push_back(std::make_unique<NetworkInterface>(id, params_, &stats_));
  }

  auto new_flit_pipe = [&](int latency) {
    flit_pipes_.push_back(std::make_unique<Pipe<Flit>>(latency));
    return flit_pipes_.back().get();
  };
  auto new_credit_pipe = [&]() {
    credit_pipes_.push_back(std::make_unique<Pipe<Credit>>(1));
    return credit_pipes_.back().get();
  };

  // Inter-router links: for each node and each east/south neighbor, create
  // both directions of flit + credit channels.
  for (NodeId id = 0; id < n; ++id) {
    const Coord c = shape.coord_of(id);
    for (Port p : {Port::kEast, Port::kSouth}) {
      const Coord nc = step(c, p);
      if (!shape.contains(nc)) continue;
      const NodeId nid = shape.id_of(nc);
      Router& a = *routers_[static_cast<std::size_t>(id)];
      Router& b = *routers_[static_cast<std::size_t>(nid)];

      const int ab_lat = latency_of(id, nid);
      const int ba_lat = latency_of(nid, id);
      link_latencies_[static_cast<std::size_t>(id)]
                     [static_cast<std::size_t>(nid)] = ab_lat;
      link_latencies_[static_cast<std::size_t>(nid)]
                     [static_cast<std::size_t>(id)] = ba_lat;

      Pipe<Flit>* ab = new_flit_pipe(ab_lat);
      Pipe<Credit>* ab_credit = new_credit_pipe();
      a.connect_output(p, ab, ab_credit);
      b.connect_input(opposite(p), ab, ab_credit);

      Pipe<Flit>* ba = new_flit_pipe(ba_lat);
      Pipe<Credit>* ba_credit = new_credit_pipe();
      b.connect_output(opposite(p), ba, ba_credit);
      a.connect_input(p, ba, ba_credit);
    }
  }

  // Local NI <-> router channels.
  for (NodeId id = 0; id < n; ++id) {
    Router& r = *routers_[static_cast<std::size_t>(id)];
    NetworkInterface& ni = *nis_[static_cast<std::size_t>(id)];

    Pipe<Flit>* inj = new_flit_pipe(1);
    Pipe<Credit>* inj_credit = new_credit_pipe();
    r.connect_input(Port::kLocal, inj, inj_credit);

    Pipe<Flit>* ej = new_flit_pipe(1);
    Pipe<Credit>* ej_credit = new_credit_pipe();
    r.connect_output(Port::kLocal, ej, ej_credit);

    ni.connect(inj, inj_credit, ej, ej_credit);
  }
}

int Network::link_latency(NodeId from, NodeId to) const {
  NOCS_EXPECTS(params_.shape().valid(from) && params_.shape().valid(to));
  const int lat = link_latencies_[static_cast<std::size_t>(from)]
                                 [static_cast<std::size_t>(to)];
  NOCS_EXPECTS(lat > 0);  // adjacent nodes only
  return lat;
}

void Network::set_endpoints(std::vector<NodeId> endpoints,
                            std::unique_ptr<TrafficPattern> traffic) {
  NOCS_EXPECTS(endpoints.size() >= 2);
  NOCS_EXPECTS(traffic != nullptr);
  for (NodeId e : endpoints) NOCS_EXPECTS(params_.shape().valid(e));
  for (auto& ni : nis_) ni->clear_endpoint();
  endpoints_ = std::move(endpoints);
  traffic_ = std::move(traffic);
  for (int logical = 0; logical < static_cast<int>(endpoints_.size());
       ++logical) {
    nis_[static_cast<std::size_t>(endpoints_[static_cast<std::size_t>(
             logical)])]
        ->set_endpoint(logical, &endpoints_, traffic_.get());
  }
}

void Network::gate_dark_region(const std::vector<NodeId>& active) {
  std::vector<bool> is_active(static_cast<std::size_t>(num_nodes()), false);
  for (NodeId id : active) {
    NOCS_EXPECTS(params_.shape().valid(id));
    is_active[static_cast<std::size_t>(id)] = true;
  }
  for (NodeId id = 0; id < num_nodes(); ++id)
    routers_[static_cast<std::size_t>(id)]->set_gated(
        !is_active[static_cast<std::size_t>(id)]);
}

void Network::ungate_all() {
  for (auto& r : routers_) r->set_gated(false);
}

void Network::set_dynamic_gating(bool enabled) {
  for (auto& r : routers_) {
    r->set_dynamic_gating(enabled);
    r->set_allow_wakeup(enabled);
  }
}

void Network::set_injection_rate(double flits_per_cycle_per_node) {
  for (auto& ni : nis_) ni->set_injection_rate(flits_per_cycle_per_node);
}

void Network::set_request_reply(int request_length, int reply_length) {
  for (auto& ni : nis_) ni->set_request_reply(request_length, reply_length);
}

void Network::set_seed(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& ni : nis_) ni->set_seed(sm.next());
}

void Network::tick() {
  for (auto& ni : nis_) ni->tick(now_);
  for (auto& r : routers_) r->tick(now_);
  ++now_;
}

void Network::run(Cycle n) {
  for (Cycle i = 0; i < n; ++i) tick();
}

bool Network::drained() const {
  for (const auto& r : routers_)
    if (!r->drained()) return false;
  for (const auto& ni : nis_)
    if (!ni->idle()) return false;
  for (const auto& p : flit_pipes_)
    if (!p->empty()) return false;
  return true;
}

RouterCounters Network::total_counters() const {
  RouterCounters total;
  for (const auto& r : routers_) total += r->counters();
  return total;
}

std::vector<RouterCounters> Network::per_router_counters() const {
  std::vector<RouterCounters> out;
  out.reserve(routers_.size());
  for (const auto& r : routers_) out.push_back(r->counters());
  return out;
}

void Network::reset_counters() {
  for (auto& r : routers_) r->reset_counters();
}

}  // namespace nocs::noc
