#include "noc/network.hpp"

#include <algorithm>
#include <sstream>

namespace nocs::noc {

namespace {

/// Shard index the current thread is executing a parallel tick phase for,
/// or -1 outside the phases (serial contexts).  Lets schedule() tell
/// own-shard wakes (applied directly) from cross-shard wakes (queued in
/// the producer's outbox).  Thread-local rather than per-network: a thread
/// only ever executes one network's phase at a time.
thread_local int t_current_shard = -1;

}  // namespace

Network::Network(const NetworkParams& params, const RoutingFunction* routing,
                 LinkLatencyFn link_latency)
    : params_(params),
      topo_(Topology::mesh(params.width, params.height)) {
  NOCS_EXPECTS(routing != nullptr);
  params_.validate();
  owned_policy_ =
      std::make_unique<MeshRoutingPolicy>(routing, params_.shape());
  policy_ = owned_policy_.get();
  construct(std::move(link_latency));
}

Network::Network(const NetworkParams& params, const Topology& topo,
                 const RoutingPolicy* policy, LinkLatencyFn link_latency)
    : params_(params), topo_(topo), policy_(policy) {
  NOCS_EXPECTS(policy != nullptr);
  params_.validate();
  NOCS_EXPECTS(topo_.num_nodes() == params_.num_nodes());
  construct(std::move(link_latency));
}

void Network::construct(LinkLatencyFn link_latency) {
  const int n = topo_.num_nodes();

  auto latency_of = [&](NodeId from, NodeId to) {
    if (!link_latency) return params_.link_latency;
    const int lat = link_latency(from, to);
    NOCS_EXPECTS(lat >= 1);
    return lat;
  };
  link_latencies_.assign(static_cast<std::size_t>(n),
                         std::vector<int>(static_cast<std::size_t>(n), 0));

  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    routers_.push_back(
        std::make_unique<Router>(id, params_, topo_, policy_));
    nis_.push_back(std::make_unique<NetworkInterface>(id, params_, &stats_));
  }

  // Fast-path bookkeeping: everything starts hot and cools after the first
  // tick in which it reports no work (rebuild_shards below sets the flags).
  sinks_.resize(static_cast<std::size_t>(2 * n));
  for (NodeId id = 0; id < n; ++id) {
    auto& rs = sinks_[static_cast<std::size_t>(2 * id)];
    rs.net = this;
    rs.enc = static_cast<std::uint32_t>(id) << 1;
    auto& ns = sinks_[static_cast<std::size_t>(2 * id + 1)];
    ns.net = this;
    ns.enc = (static_cast<std::uint32_t>(id) << 1) | 1u;
    routers_[static_cast<std::size_t>(id)]->set_wake_callback(
        [this, id] { mark_hot(static_cast<std::uint32_t>(id) << 1); });
    nis_[static_cast<std::size_t>(id)]->set_wake_callback([this, id] {
      mark_hot((static_cast<std::uint32_t>(id) << 1) | 1u);
    });
  }

  // Credit flow control bounds any pipe's occupancy by the downstream
  // buffering of one port (flits or returning credits for at most
  // num_vcs * vc_depth slots).  Pre-reserving that bound means push/pop
  // never reallocate — required for lock-free operation on pipes that
  // cross shard boundaries.
  const int pipe_capacity = params_.num_vcs * params_.vc_depth + 1;
  int max_latency = 1;
  auto new_flit_pipe = [&](int latency) {
    max_latency = std::max(max_latency, latency);
    flit_pipes_.push_back(std::make_unique<Pipe<Flit>>(latency, pipe_capacity));
    return flit_pipes_.back().get();
  };
  auto new_credit_pipe = [&]() {
    credit_pipes_.push_back(std::make_unique<Pipe<Credit>>(1, pipe_capacity));
    return credit_pipes_.back().get();
  };

  // Inter-router links: one flit + credit channel per directed topology
  // link, instantiated in links() order.  The mesh generator emits links
  // in the historic mesh wiring order (per node ascending, east pair then
  // south pair, forward then reverse), so mesh networks allocate and wire
  // byte-identical pipe sequences to the pre-topology constructor.
  for (const TopoLink& l : topo_.links()) {
    Router& a = *routers_[static_cast<std::size_t>(l.src)];
    Router& b = *routers_[static_cast<std::size_t>(l.dst)];

    const int lat = l.latency > 0 ? l.latency : latency_of(l.src, l.dst);
    link_latencies_[static_cast<std::size_t>(l.src)]
                   [static_cast<std::size_t>(l.dst)] = lat;

    Pipe<Flit>* ab = new_flit_pipe(lat);
    Pipe<Credit>* ab_credit = new_credit_pipe();
    ab->set_sink(router_sink(l.dst));         // dst consumes src's flits
    ab_credit->set_sink(router_sink(l.src));  // src consumes dst's credits
    a.connect_output(l.src_port, ab, ab_credit);
    b.connect_input(l.dst_port, ab, ab_credit);
  }

  // Local NI <-> router channels.
  for (NodeId id = 0; id < n; ++id) {
    Router& r = *routers_[static_cast<std::size_t>(id)];
    NetworkInterface& ni = *nis_[static_cast<std::size_t>(id)];
    // Multicast wiring: every NI can resolve group member lists (the
    // table object outlives the NIs) and charges replication work to its
    // own router's counters (same node, same shard — race-free).
    ni.set_multicast_table(&mcast_groups_);
    ni.set_mc_counters(&r.raw_counters());

    Pipe<Flit>* inj = new_flit_pipe(1);
    Pipe<Credit>* inj_credit = new_credit_pipe();
    inj->set_sink(router_sink(id));    // router consumes injected flits
    inj_credit->set_sink(ni_sink(id)); // NI consumes freed credits
    r.connect_input(Port::kLocal, inj, inj_credit);

    Pipe<Flit>* ej = new_flit_pipe(1);
    Pipe<Credit>* ej_credit = new_credit_pipe();
    ej->set_sink(ni_sink(id));
    ej_credit->set_sink(router_sink(id));
    r.connect_output(Port::kLocal, ej, ej_credit);

    ni.connect(inj, inj_credit, ej, ej_credit);
  }

  // Calendar wheels are sized to cover the farthest-future event a pipe
  // push can produce (max latency), plus slack so `t % size` never aliases
  // `now`.  The initial partition honors NOCS_SIM_THREADS (default 1).
  wheel_slots_ = max_latency + 2;
  set_sim_threads(0);
}

void Network::set_sim_threads(int n) {
  if (n <= 0) n = default_sim_thread_count();
  // Mesh: clamp so every shard owns at least one full mesh row (node ids
  // are row-major, so row-bands are contiguous id ranges).  General
  // topologies shard by contiguous id ranges, so any count up to the node
  // count works; either way results are thread-count independent (pipes
  // guarantee >= 1 cycle of latency between any producer and consumer).
  const int cap = topo_.is_mesh() ? params_.height : topo_.num_nodes();
  sim_threads_ = std::max(1, std::min(n, cap));
  rebuild_shards();
}

void Network::rebuild_shards() {
  const int S = sim_threads_;
  const int n = num_nodes();
  shards_.assign(static_cast<std::size_t>(S), Shard{});
  shard_of_.assign(static_cast<std::size_t>(n), 0);
  for (int s = 0; s < S; ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    if (topo_.is_mesh()) {
      sh.begin = params_.height * s / S * params_.width;
      sh.end = params_.height * (s + 1) / S * params_.width;
    } else {
      sh.begin = n * s / S;
      sh.end = n * (s + 1) / S;
    }
    // Conservative scheduler state: everything hot, wheels empty.  Ticking
    // a quiescent node is a no-op beyond leakage accounting, which
    // sync_counters() reproduces exactly, so this is bit-identical to any
    // previously accumulated wake schedule — nodes with no work simply
    // cool again after one tick.  That property is what makes re-sharding
    // legal at any cycle boundary (including after load_state).
    sh.hot.assign(2 * static_cast<std::size_t>(sh.end - sh.begin), 1);
    sh.active = sh.hot.size();
    sh.wheel.assign(static_cast<std::size_t>(wheel_slots_),
                    std::vector<std::uint32_t>{});
    sh.stats.defer_to(S > 1 ? &stats_ : nullptr);
    for (NodeId id = sh.begin; id < sh.end; ++id)
      shard_of_[static_cast<std::size_t>(id)] = static_cast<std::uint32_t>(s);
  }
  for (NodeId id = 0; id < n; ++id)
    nis_[static_cast<std::size_t>(id)]->set_stats(
        S > 1 ? &shards_[shard_of_[static_cast<std::size_t>(id)]].stats
              : &stats_);
  if (S > 1 && (team_ == nullptr || team_->size() != S))
    team_ = std::make_unique<BarrierTeam>(S);
  else if (S == 1)
    team_.reset();
}

void Network::NodeSink::on_push(Cycle ready_at) {
  net->schedule(enc, ready_at);
}

void Network::schedule(std::uint32_t enc, Cycle ready_at) {
  if (ready_at == kNoPendingEvent) return;
  const std::uint32_t owner = shard_of_[enc >> 1];
  const int cur = t_current_shard;
  if (cur >= 0 && static_cast<std::uint32_t>(cur) != owner) {
    // Cross-shard wake during a parallel tick phase: only the owner may
    // touch its wheel/hot flags, so queue in the producer's outbox; the
    // owner imports it behind the phase barrier.
    shards_[static_cast<std::size_t>(cur)].outbox.push_back({enc, ready_at});
    return;
  }
  schedule_local(shards_[static_cast<std::size_t>(owner)], enc, ready_at);
}

void Network::schedule_local(Shard& sh, std::uint32_t enc, Cycle ready_at) {
  if (ready_at == kNoPendingEvent) return;
  if (ready_at <= now_) {  // already due: activate immediately
    mark_hot(enc);
    return;
  }
  NOCS_EXPECTS(ready_at - now_ < static_cast<Cycle>(sh.wheel.size()));
  sh.wheel[static_cast<std::size_t>(ready_at % sh.wheel.size())].push_back(
      enc);
  ++sh.pending_wakes;
}

int Network::link_latency(NodeId from, NodeId to) const {
  NOCS_EXPECTS(topo_.valid(from) && topo_.valid(to));
  const int lat = link_latencies_[static_cast<std::size_t>(from)]
                                 [static_cast<std::size_t>(to)];
  NOCS_EXPECTS(lat > 0);  // adjacent nodes only
  return lat;
}

void Network::set_endpoints(std::vector<NodeId> endpoints,
                            std::unique_ptr<TrafficPattern> traffic) {
  NOCS_EXPECTS(endpoints.size() >= 2);
  NOCS_EXPECTS(traffic != nullptr);
  for (NodeId e : endpoints) NOCS_EXPECTS(topo_.valid(e));
  for (auto& ni : nis_) ni->clear_endpoint();
  endpoints_ = std::move(endpoints);
  traffic_ = std::move(traffic);
  for (int logical = 0; logical < static_cast<int>(endpoints_.size());
       ++logical) {
    nis_[static_cast<std::size_t>(endpoints_[static_cast<std::size_t>(
             logical)])]
        ->set_endpoint(logical, &endpoints_, traffic_.get());
  }
}

void Network::gate_dark_region(const std::vector<NodeId>& active) {
  std::vector<bool> is_active(static_cast<std::size_t>(num_nodes()), false);
  for (NodeId id : active) {
    NOCS_EXPECTS(topo_.valid(id));
    is_active[static_cast<std::size_t>(id)] = true;
  }
  for (NodeId id = 0; id < num_nodes(); ++id) {
    // Settle skipped-cycle accounting under the old power state before
    // switching; set_gated re-activates the router via its wake callback.
    routers_[static_cast<std::size_t>(id)]->sync_counters(now_);
    routers_[static_cast<std::size_t>(id)]->set_gated(
        !is_active[static_cast<std::size_t>(id)]);
  }
}

void Network::ungate_all() {
  for (auto& r : routers_) {
    r->sync_counters(now_);
    r->set_gated(false);
  }
}

void Network::set_dynamic_gating(bool enabled) {
  for (auto& r : routers_) {
    r->sync_counters(now_);
    r->set_dynamic_gating(enabled);
    r->set_allow_wakeup(enabled);
  }
}

void Network::set_injection_rate(double flits_per_cycle_per_node) {
  for (auto& ni : nis_) ni->set_injection_rate(flits_per_cycle_per_node);
}

void Network::set_request_reply(int request_length, int reply_length) {
  for (auto& ni : nis_) ni->set_request_reply(request_length, reply_length);
}

void Network::set_seed(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& ni : nis_) ni->set_seed(sm.next());
}

int Network::add_multicast_group(std::vector<NodeId> members) {
  NOCS_EXPECTS(!members.empty());
  for (const NodeId m : members) NOCS_EXPECTS(topo_.valid(m));
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  mcast_groups_.push_back(std::move(members));
  return static_cast<int>(mcast_groups_.size()) - 1;
}

void Network::set_multicast(bool enabled) {
  for (auto& ni : nis_) ni->set_multicast_enabled(enabled);
}

void Network::enable_resilience(FaultOracle* oracle,
                                const ProtectionParams* prot) {
  for (auto& r : routers_) r->set_fault_oracle(oracle);
  for (auto& ni : nis_) {
    ni->set_fault_oracle(oracle);
    if (prot != nullptr) ni->enable_protection(*prot);
  }
}

std::uint64_t Network::progress_signature() const {
  std::uint64_t sig = 0;
  for (const auto& r : routers_) {
    // No sync_counters: skipped cycles only accrue cycle counters, which
    // are deliberately excluded from the signature anyway.
    const RouterCounters& c = r->counters();
    sig += c.buffer_writes + c.xbar_traversals + c.link_flits;
  }
  // Ejections count as progress; generation deliberately does not.  NIs
  // keep generating into their (unbounded) source queues even when the
  // network core is wedged, so counting generation would let a hung
  // network look alive for as long as injection stays on.
  for (const auto& ni : nis_) sig += ni->total_ejected_flits();
  return sig;
}

std::string Network::debug_snapshot() const {
  std::ostringstream os;
  os << "network diagnostic @ cycle " << now_ << "\n";
  const char* state_names[] = {"active", "gated", "waking"};
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Router& r = *routers_[static_cast<std::size_t>(id)];
    const NetworkInterface& ni = *nis_[static_cast<std::size_t>(id)];
    const int buffered = r.buffered_flits();
    const std::size_t queued = ni.source_queue_depth();
    const std::size_t unacked = ni.unacked_count();
    const bool quiet = buffered == 0 && queued == 0 && unacked == 0 &&
                       r.power_state() == PowerState::kActive;
    if (quiet) continue;
    const Coord c = topo_.coord(id);
    os << "  node " << id << " (" << c.x << "," << c.y << ")"
       << " state=" << state_names[static_cast<int>(r.power_state())]
       << " buffered_flits=" << buffered
       << " output_credits=" << r.total_output_credits()
       << " ni_queue=" << queued << " ni_unacked=" << unacked << "\n";
  }
  return os.str();
}

void Network::tick() {
  // Serial pre-phase: workload drivers inject here, before any shard
  // thread starts, so driver behavior is identical for any sim_threads.
  if (pre_tick_) pre_tick_(now_);
  const int S = static_cast<int>(shards_.size());
  if (S == 1) {
    // Serial operation is the 1-shard case of the same two phases (no
    // barrier, no outbox traffic, stats recorded directly by the NIs).
    tick_phase1(0);
    tick_phase2(0);
  } else {
    team_->run([this](int s) {
      t_current_shard = s;
      tick_phase1(s);
      t_current_shard = -1;
    });
    team_->run([this](int s) {
      t_current_shard = s;
      tick_phase2(s);
      t_current_shard = -1;
    });
    // Ascending shard order = ascending node id order: replaying each
    // shard's buffered ejection events in this order reproduces the exact
    // floating-point accumulation sequence of the serial loop.
    for (Shard& sh : shards_) sh.stats.drain_deferred();
    for (Shard& sh : shards_) sh.outbox.clear();
  }
  ++now_;
}

void Network::tick_phase1(int s) {
  Shard& sh = shards_[static_cast<std::size_t>(s)];

  // Activate nodes whose wake-up was scheduled for this cycle.  Stale
  // entries (node woke earlier for another reason) are harmless: ticking a
  // quiescent node is a no-op beyond counters sync_counters() reproduces.
  auto& bucket = sh.wheel[static_cast<std::size_t>(now_ % sh.wheel.size())];
  for (const std::uint32_t enc : bucket) mark_hot(enc);
  sh.pending_wakes -= bucket.size();
  bucket.clear();

  // Ascending-id order over hot nodes matches the tick-everything loop, so
  // stats and counters accumulate in the identical order (bit-identical
  // floating-point results).  Pushes this phase have ready times strictly
  // after now_ (latency >= 1), so they only ever append to wheels/outboxes,
  // never flip a hot flag — hot flags stay owner-written.
  const std::size_t base = 2 * static_cast<std::size_t>(sh.begin);
  for (NodeId id = sh.begin; id < sh.end; ++id)
    if (sh.hot[2 * static_cast<std::size_t>(id) - base + 1] != 0)
      nis_[static_cast<std::size_t>(id)]->tick(now_);
  for (NodeId id = sh.begin; id < sh.end; ++id)
    if (sh.hot[2 * static_cast<std::size_t>(id) - base] != 0)
      routers_[static_cast<std::size_t>(id)]->tick(now_);
}

void Network::tick_phase2(int s) {
  Shard& sh = shards_[static_cast<std::size_t>(s)];

  // Import wake-ups other shards produced for our nodes this cycle.  Fixed
  // scan order (ascending producer shard) keeps wheel bucket contents
  // deterministic; bucket order cannot affect results anyway because
  // mark_hot is idempotent.
  if (shards_.size() > 1) {
    for (const Shard& other : shards_) {
      if (&other == &sh) continue;
      for (const WakeEvent& e : other.outbox)
        if (shard_of_[e.enc >> 1] == static_cast<std::uint32_t>(s))
          schedule_local(sh, e.enc, e.at);
    }
  }

  // Cool nodes reporting no work; re-arm their wake-up at the earliest
  // pending input event (all pipe latencies are >= 1, so after this cycle's
  // producers ran every pending event is strictly in the future; the phase
  // barrier made all cross-shard pushes visible).
  const std::size_t base = 2 * static_cast<std::size_t>(sh.begin);
  for (NodeId id = sh.begin; id < sh.end; ++id) {
    const std::size_t ridx = 2 * static_cast<std::size_t>(id) - base;
    const auto i = static_cast<std::size_t>(id);
    if (sh.hot[ridx + 1] != 0 && !nis_[i]->busy_next_cycle()) {
      sh.hot[ridx + 1] = 0;
      --sh.active;
      schedule_local(sh, (static_cast<std::uint32_t>(id) << 1) | 1u,
                     nis_[i]->next_input_event());
    }
    if (sh.hot[ridx] != 0 && !routers_[i]->busy_next_cycle()) {
      sh.hot[ridx] = 0;
      --sh.active;
      schedule_local(sh, static_cast<std::uint32_t>(id) << 1,
                     routers_[i]->next_input_event());
    }
  }
}

void Network::run(Cycle n) {
  for (Cycle i = 0; i < n; ++i) tick();
}

bool Network::drained() const {
  // Short circuit on the live activity counters: no hot entity and no
  // pending wake means nothing holds or awaits a flit anywhere — a
  // non-empty pipe implies a hot consumer or a queued wake-up, and a
  // router holding flits reports busy_next_cycle() and stays hot.  The
  // converse does not hold (dynamic gating keeps idle routers hot, credit
  // pipes re-arm wakes after the last flit drains), so a nonzero count
  // still falls through to the full scan.
  std::uint64_t live = 0;
  for (const Shard& sh : shards_) live += sh.active + sh.pending_wakes;
  if (live == 0) {
    NOCS_ASSERT(drained_slow());
    return true;
  }
  return drained_slow();
}

bool Network::drained_slow() const {
  for (const auto& r : routers_)
    if (!r->drained()) return false;
  for (const auto& ni : nis_)
    if (!ni->idle()) return false;
  for (const auto& p : flit_pipes_)
    if (!p->empty()) return false;
  return true;
}

RouterCounters Network::total_counters() const {
  RouterCounters total;
  for (const auto& r : routers_) {
    r->sync_counters(now_);
    total += r->counters();
  }
  return total;
}

std::vector<RouterCounters> Network::per_router_counters() const {
  std::vector<RouterCounters> out;
  out.reserve(routers_.size());
  for (const auto& r : routers_) {
    r->sync_counters(now_);
    out.push_back(r->counters());
  }
  return out;
}

void Network::reset_counters() {
  for (auto& r : routers_) {
    // Advance the lazy accounting to `now` first so the zeroed counters
    // cover exactly the cycles from this point on.
    r->sync_counters(now_);
    r->reset_counters();
  }
}

void Network::save_state(snapshot::Writer& w) const {
  // Per-shard deferring collectors are drained into the master at every
  // tick boundary, so between ticks they must be empty — the checkpoint
  // only serializes the master and stays thread-count independent.
  for (const Shard& sh : shards_)
    NOCS_EXPECTS(!sh.stats.deferring() || sh.stats.deferred_empty());

  w.begin_section("network");

  // Topology/configuration fingerprint: restore verifies the destination
  // network was built from the same parameters, otherwise the serialized
  // per-VC and per-pipe state would be reinterpreted against the wrong
  // structures.
  w.i64(params_.width);
  w.i64(params_.height);
  w.i64(params_.num_vcs);
  w.i64(params_.vc_depth);
  w.i64(params_.packet_length);
  w.i64(params_.link_latency);
  w.i64(params_.wakeup_latency);
  w.i64(params_.gate_idle_threshold);
  w.i64(params_.pipeline_stages);
  w.i64(params_.num_classes);
  // Graph fingerprint (format v3): a snapshot can only be restored into a
  // network wired from the identical topology — same nodes, coordinates,
  // ports, and link table in the same order.
  w.u64(topo_.fingerprint());
  w.i64(static_cast<std::int64_t>(endpoints_.size()));
  for (const NodeId e : endpoints_) w.i64(e);
  w.i64(static_cast<std::int64_t>(flit_pipes_.size()));
  w.i64(static_cast<std::int64_t>(credit_pipes_.size()));

  w.u64(now_);
  for (const auto& r : routers_) r->save_state(w);
  for (const auto& ni : nis_) ni->save_state(w);
  const auto save_flit = [](snapshot::Writer& sw, const Flit& f) {
    save(sw, f);
  };
  const auto save_credit = [](snapshot::Writer& sw, const Credit& c) {
    save(sw, c);
  };
  for (const auto& p : flit_pipes_) p->save_state(w, save_flit);
  for (const auto& p : credit_pipes_) p->save_state(w, save_credit);
  stats_.save_state(w);
  w.end_section();
}

void Network::load_state(snapshot::Reader& r) {
  r.begin_section("network");

  const bool fingerprint_ok =
      r.i64() == params_.width && r.i64() == params_.height &&
      r.i64() == params_.num_vcs && r.i64() == params_.vc_depth &&
      r.i64() == params_.packet_length && r.i64() == params_.link_latency &&
      r.i64() == params_.wakeup_latency &&
      r.i64() == params_.gate_idle_threshold &&
      r.i64() == params_.pipeline_stages && r.i64() == params_.num_classes;
  if (!fingerprint_ok)
    throw snapshot::SnapshotError(
        "checkpoint network parameters disagree with this network's "
        "configuration");
  if (r.u64() != topo_.fingerprint())
    throw snapshot::SnapshotError(
        "checkpoint topology fingerprint disagrees with this network's "
        "graph");
  const auto num_endpoints = r.i64();
  if (num_endpoints != static_cast<std::int64_t>(endpoints_.size()))
    throw snapshot::SnapshotError(
        "checkpoint endpoint count disagrees with this network's "
        "configuration");
  for (const NodeId e : endpoints_)
    if (r.i64() != e)
      throw snapshot::SnapshotError(
          "checkpoint endpoint set disagrees with this network's "
          "configuration");
  if (r.i64() != static_cast<std::int64_t>(flit_pipes_.size()) ||
      r.i64() != static_cast<std::int64_t>(credit_pipes_.size()))
    throw snapshot::SnapshotError(
        "checkpoint channel count disagrees with this network's topology");

  now_ = r.u64();
  for (auto& rt : routers_) rt->load_state(r);
  for (auto& ni : nis_) ni->load_state(r);
  const auto load_flit = [](snapshot::Reader& sr, Flit& f) { load(sr, f); };
  const auto load_credit = [](snapshot::Reader& sr, Credit& c) {
    load(sr, c);
  };
  for (auto& p : flit_pipes_) p->load_state(r, load_flit);
  for (auto& p : credit_pipes_) p->load_state(r, load_credit);
  stats_.load_state(r);
  r.end_section();

  // Reset the fast-path scheduler conservatively: mark every node hot and
  // drop all pending wake-ups (rebuild_shards does exactly that, keeping
  // the current thread count).  Ticking a quiescent node is a no-op beyond
  // leakage accounting, which sync_counters() reproduces exactly, so this
  // is bit-identical to resuming the saved wheel — nodes with no work
  // simply cool again after one tick.  It also makes restoring under a
  // different sim_threads than the checkpoint was written with exact.
  rebuild_shards();
}

}  // namespace nocs::noc
