// Table-driven deadlock-free routing for arbitrary topologies, plus the
// startup channel-dependency-graph check every policy must pass.
//
// Up*/down* (Autonet): orient every link "up" toward a root by BFS rank
// (depth, then node id); a legal route climbs zero or more up links, then
// descends zero or more down links.  No route ever turns down-then-up, so
// every channel-dependency cycle would need an up link depended on by a
// down link — impossible — and the network is deadlock-free on any
// connected graph, including the powered subgraph at any sprint level.
//
// The table is built per (topology, active set): routes are confined to
// active nodes, so a dark router is never on any path (the generalization
// of CDOR's guarantee that gated mesh regions see no traffic).
#pragma once

#include <string>
#include <vector>

#include "noc/routing_policy.hpp"
#include "noc/topology.hpp"

namespace nocs::noc {

/// Precomputed next-hop table over a topology's active subgraph.
class TableRouting final : public RoutingPolicy {
 public:
  /// Builds the up*/down* table for the induced subgraph over `active`
  /// rooted at `root` (must be active).  The subgraph must be connected;
  /// throws std::invalid_argument otherwise.
  ///
  /// Next-hop construction guarantees the up*-then-down* shape per route:
  /// for destination d, D(x) = shortest all-down distance x -> d (infinite
  /// when x is not above d); while D is infinite the route climbs the up
  /// neighbor with the smallest cost-to-go A(x) = 1 + min over up
  /// neighbors A(y) (ties to the smallest port), and once D is finite it
  /// descends the down neighbor with D(y) = D(x) - 1.  D finite is closed
  /// under that descent, so no route turns upward again.
  static TableRouting up_down(const Topology& topo,
                              const std::vector<NodeId>& active, NodeId root);

  int route_port(NodeId cur, NodeId dst) const override;
  const char* name() const override { return name_.c_str(); }

  /// BFS depth of an active node from the root (-1 for dark nodes).
  int depth(NodeId id) const { return depth_[static_cast<std::size_t>(id)]; }

 private:
  TableRouting() = default;

  int num_nodes_ = 0;
  std::string name_;
  std::vector<int> table_;  ///< [cur * num_nodes + dst] -> port, -1 = no route
  std::vector<int> depth_;
};

/// Verdict of the channel-dependency-graph deadlock check.
struct DeadlockCheckResult {
  bool ok = false;
  std::string detail;  ///< human-readable failure description when !ok
  int channels_used = 0;
  int dependencies = 0;
};

/// Startup deadlock-freedom check: walks the route of every ordered pair
/// of active nodes under `policy`, verifying that each route terminates
/// within num_nodes hops, never leaves the active set, and that the
/// channel-dependency graph (link -> next link along some route) is
/// acyclic — the classic Dally/Seitz sufficient condition for wormhole
/// deadlock freedom.  Works for any RoutingPolicy, including
/// MeshRoutingPolicy-wrapped CDOR, so every topology x sprint-level
/// combination can be certified before the network is built.
DeadlockCheckResult check_deadlock_free(const Topology& topo,
                                        const RoutingPolicy& policy,
                                        const std::vector<NodeId>& active);

}  // namespace nocs::noc
