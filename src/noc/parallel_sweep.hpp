// Parallel drivers for embarrassingly-parallel simulation batches: the
// injection-rate sweeps behind the latency-throughput curves and the
// random-mapping samplers of the Figure 11 methodology.
//
// Each task builds its own Network inside the caller-supplied runner — the
// simulator is single-threaded by design, so parallelism comes from running
// independent simulations, never from sharing one.  Every task receives a
// deterministic seed derived from (base_seed, task index) via
// nocs::task_seed(), which makes the batch bit-identical to running the
// same runner serially in task order, regardless of thread count or
// completion order.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "noc/simulator.hpp"

namespace nocs::noc {

/// One unit of parallel work: which point it is and the seed to use.
struct SweepTask {
  std::size_t index = 0;         ///< position in the batch
  double injection_rate = 0.0;   ///< offered load for this task
  std::uint64_t seed = 0;        ///< deterministic per-task seed
};

/// Builds a fresh Network, seeds it with `task.seed`, runs one simulation
/// at `task.injection_rate`, and returns the results.
using SweepRunner = std::function<SimResults(const SweepTask&)>;

/// Runs `run` once per rate (task i gets rates[i] and
/// task_seed(base_seed, i)) across `num_threads` workers (0 = default
/// thread count) and returns the points in rate order.
std::vector<SweepPoint> parallel_sweep_injection(
    const SweepRunner& run, const std::vector<double>& rates,
    std::uint64_t base_seed, int num_threads = 0);

/// Runs `run` for `num_samples` tasks at a fixed injection rate (task i
/// gets task_seed(base_seed, i)) and returns results in task order — the
/// random-mapping sampling loop of fig11.
std::vector<SimResults> parallel_samples(const SweepRunner& run,
                                         std::size_t num_samples,
                                         double injection_rate,
                                         std::uint64_t base_seed,
                                         int num_threads = 0);

// --- resumable batches ------------------------------------------------------
//
// The resumable variants pair a batch with a snapshot::TaskManifest: tasks
// already recorded in the manifest are replayed from their stored results
// (the JSON layer round-trips doubles bit-exactly) instead of re-simulated,
// and each finished task is recorded immediately, so a killed sweep
// restarts from the last completed task.  A null or disabled manifest
// degrades to the plain parallel batch.

/// Canonical manifest fingerprint for an injection sweep: task count, base
/// seed, and every rate, formatted bit-exactly.  Reusing a manifest whose
/// fingerprint differs (rates, seed, or count changed) starts fresh.
std::string sweep_fingerprint(const std::vector<double>& rates,
                              std::uint64_t base_seed);

/// parallel_sweep_injection with per-task resume through `manifest`.
///
/// `stop` (optional) is a cooperative shutdown flag (common/shutdown's
/// process flag, or a CancellationToken's): once set, no new task starts,
/// and a task interrupted mid-run (the runner wired the same flag into
/// its CheckpointConfig) is *not* recorded — its `results.interrupted`
/// stays true in the returned vector, and tasks never started keep
/// default results with `interrupted` set.  The manifest therefore only
/// ever holds complete, bit-exact task results.
std::vector<SweepPoint> resumable_sweep_injection(
    const SweepRunner& run, const std::vector<double>& rates,
    std::uint64_t base_seed, snapshot::TaskManifest* manifest,
    int num_threads = 0, const std::atomic<bool>* stop = nullptr);

/// parallel_samples with per-task resume through `manifest` (same `stop`
/// semantics as resumable_sweep_injection).
std::vector<SimResults> resumable_samples(const SweepRunner& run,
                                          std::size_t num_samples,
                                          double injection_rate,
                                          std::uint64_t base_seed,
                                          snapshot::TaskManifest* manifest,
                                          int num_threads = 0,
                                          const std::atomic<bool>* stop =
                                              nullptr);

}  // namespace nocs::noc
