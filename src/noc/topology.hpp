// General interconnect topology: nodes with floorplan coordinates, ports,
// and a directed link table with per-link latency and width.
//
// The paper evaluates fine-grained sprinting on a 2-D mesh only; ROADMAP
// item 5 asks the broader question — *which* interconnect should a
// sprinting chip have.  This class is the pivot: network construction,
// routing, sprint-set selection, and the power/thermal floorplan all read
// the graph from here, so a mesh, a torus, a ring-circulant, a Hamming
// graph, or a hand-written topology file flow through the identical
// simulation machinery.
//
// Conventions:
//  * Port 0 of every node is the local (NI) port; ports 1..num_ports-1
//    attach directed links.  A node may have at most kMaxPorts ports (the
//    router's arbitration masks are 32-bit).
//  * Every directed link has a reverse link (channels are paired wires);
//    generators and the file parser create both directions together, and
//    validate() enforces the pairing.
//  * Link order IS construction order: the network instantiates channel
//    pipes by walking links() front to back, so two Topology objects with
//    the same link sequence wire byte-identical networks.  The mesh
//    generator reproduces the legacy mesh construction order exactly
//    (ascending node id, east pair then south pair, forward then reverse),
//    which is what keeps mesh simulations bit-identical to the
//    pre-topology code.
//  * Each node carries an integer floorplan coordinate.  Sprint-set
//    selection orders nodes by squared Euclidean floorplan distance
//    (Algorithm 1 generalized), and the thermal layer rasterizes node
//    power at these coordinates.
//  * Link `latency` 0 means "use NetworkParams::link_latency"; an explicit
//    value >= 1 overrides it per link (physical floorplans, repeated
//    wires).  `width` is the link's flit-parallel wire width multiplier
//    (reserved for the power model; 1 = the baseline flit width).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Hard cap on ports per node (router arbitration masks are 32-bit; port 0
/// is local).
inline constexpr int kMaxPorts = 32;

/// One directed link of the topology graph.
struct TopoLink {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int src_port = 0;  ///< output port index at src (>= 1)
  int dst_port = 0;  ///< input port index at dst (>= 1)
  int latency = 0;   ///< cycles; 0 = NetworkParams::link_latency
  int width = 1;     ///< flit-parallel width multiplier (power model)

  friend bool operator==(const TopoLink&, const TopoLink&) = default;
};

/// An interconnect graph.  Build through the static generators or the
/// file-format parser; after construction the object is immutable in
/// practice (the network, routing tables, and snapshots all borrow it).
class Topology {
 public:
  /// The legacy 2-D mesh.  Ports use the fixed directional indices of the
  /// Port enum (local=0, north=1, east=2, south=3, west=4) and every node
  /// has 5 port slots (edge nodes simply leave some disconnected), so a
  /// mesh Topology wires a network byte-identical to the pre-topology
  /// mesh constructor.
  static Topology mesh(int width, int height);

  /// 2-D torus: the mesh plus wrap-around links in both dimensions (every
  /// node has degree 4).  Same directional port indices as the mesh.
  static Topology torus(int width, int height);

  /// Ring-circulant C_n(1, skip): node i links to i+-1 (ring) and i+-skip
  /// (chords).  Nodes are laid out clockwise around the perimeter of the
  /// smallest square that fits them, so floorplan distance reflects the
  /// physical ring.  skip in [2, n/2]; when 2*skip == n the two chord
  /// directions coincide and the node degree drops to 3.
  static Topology ring_circulant(int n, int skip);

  /// Hamming graph H(2; rows, cols) (the rook's graph): nodes on a rows x
  /// cols grid, each linked to every other node in its row and in its
  /// column.  The dense end of the Sparse-Hamming design space (arxiv
  /// 2211.13980): diameter 2 at the cost of degree rows+cols-2.
  static Topology hamming(int rows, int cols);

  /// Parses the text format documented in docs/TOPOLOGY.md.  Throws
  /// std::invalid_argument with a line-numbered message on malformed
  /// input; the returned topology has passed validate().
  static Topology parse(const std::string& text);

  /// Reads and parses a topology file.  Throws std::invalid_argument on
  /// parse errors and std::runtime_error when the file cannot be read.
  static Topology from_file(const std::string& path);

  /// Canonical text form (parse(to_text()) reconstructs an identical
  /// topology, including link order).
  std::string to_text() const;

  /// Builds a topology by name: "mesh", "torus" (width x height),
  /// "ring_circulant" (n = width*height nodes, chord `skip`), "hamming"
  /// (height rows x width cols).  Unknown names throw
  /// std::invalid_argument.
  static Topology make(const std::string& kind, int width, int height,
                       int skip = 0);

  // --- shape ----------------------------------------------------------------

  const std::string& kind() const { return kind_; }
  int num_nodes() const { return static_cast<int>(coords_.size()); }
  bool valid(NodeId id) const { return id >= 0 && id < num_nodes(); }

  /// Floorplan coordinate of a node.
  Coord coord(NodeId id) const {
    NOCS_EXPECTS(valid(id));
    return coords_[static_cast<std::size_t>(id)];
  }

  /// Port slots of a node, local port included.  Some slots of a
  /// generated topology may be disconnected (mesh edges).
  int num_ports(NodeId id) const {
    NOCS_EXPECTS(valid(id));
    return num_ports_[static_cast<std::size_t>(id)];
  }

  /// Largest num_ports() over all nodes.
  int max_ports() const;

  /// Directed links in construction order.
  const std::vector<TopoLink>& links() const { return links_; }

  /// Index into links() of the link leaving `node` through `port`, or -1
  /// when the port slot is disconnected (or the local port).
  int link_out(NodeId node, int port) const;

  /// Index into links() of the link arriving at `node` through `port`, or
  /// -1 when disconnected.
  int link_in(NodeId node, int port) const;

  /// The neighbor reached from `node` through output `port`
  /// (kInvalidNode when the slot is disconnected).
  NodeId neighbor(NodeId node, int port) const {
    const int l = link_out(node, port);
    return l < 0 ? kInvalidNode : links_[static_cast<std::size_t>(l)].dst;
  }

  /// Output port at `src` of the direct link src -> dst, or -1 when the
  /// nodes are not adjacent.
  int port_to(NodeId src, NodeId dst) const;

  /// Output ports of `node` that have a connected link, ascending.
  std::vector<int> connected_ports(NodeId node) const;

  /// Out-degree of a node (connected output ports).
  int out_degree(NodeId node) const;

  /// True when this topology is a generated mesh (the sprint layer uses
  /// the paper's exact Algorithm 1 + CDOR specializations on meshes).
  bool is_mesh() const { return kind_ == "mesh"; }

  /// Mesh dimensions; only meaningful when is_mesh().
  MeshShape mesh_shape() const {
    NOCS_EXPECTS(is_mesh());
    return MeshShape{mesh_w_, mesh_h_};
  }

  /// True when every node can reach every other over directed links.
  bool connected() const;

  /// True when the induced subgraph over `nodes` is connected.
  bool connected_subgraph(const std::vector<NodeId>& nodes) const;

  /// FNV-1a over kind, coordinates, port counts, and the full link table.
  /// Checkpoints embed this so a snapshot can never be restored into a
  /// network wired from a different graph.
  std::uint64_t fingerprint() const;

  /// Checks every structural invariant (port ranges, reverse-link pairing,
  /// no self links, no duplicate (src,dst) pairs, connectivity) and throws
  /// std::invalid_argument naming the first violation.  Generators and
  /// parse() call this; hand-assembled topologies should too.
  void validate() const;

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  Topology() = default;

  /// Appends a directed link, growing the node's port count as needed.
  /// Port index chosen automatically (next free slot) when `src_port` is
  /// -1.
  void add_link(NodeId src, NodeId dst, int src_port, int dst_port,
                int latency, int width);
  /// Appends the directed pair src->dst, dst->src on auto-assigned ports.
  void add_pair(NodeId a, NodeId b, int latency = 0, int width = 1);
  void rebuild_index();

  std::string kind_;
  std::vector<Coord> coords_;
  std::vector<int> num_ports_;
  std::vector<TopoLink> links_;
  /// [node] -> port -> link index (out/in), -1 = disconnected.
  std::vector<std::vector<int>> out_index_;
  std::vector<std::vector<int>> in_index_;
  int mesh_w_ = 0;
  int mesh_h_ = 0;
};

}  // namespace nocs::noc
