#include "noc/traffic.hpp"

#include <stdexcept>

namespace nocs::noc {

int UniformTraffic::pick(int src, Rng& rng) const {
  // Draw from the k-1 endpoints other than src.  uniform_int(b) returns
  // [0, b), so d is in [0, k-1) and the shift maps it onto
  // [0, k) \ {src} without ever producing src.
  const int d = static_cast<int>(rng.uniform_int(
      static_cast<std::uint64_t>(k_ - 1)));
  return d >= src ? d + 1 : d;
}

PermutationTraffic::PermutationTraffic(int num_endpoints,
                                       std::vector<int> perm, std::string name)
    : TrafficPattern(num_endpoints),
      perm_(std::move(perm)),
      name_(std::move(name)) {
  NOCS_EXPECTS(static_cast<int>(perm_.size()) == k_);
  for (int d : perm_) NOCS_EXPECTS(d >= 0 && d < k_);
}

int PermutationTraffic::pick(int src, Rng&) const {
  const int d = perm_[static_cast<std::size_t>(src)];
  return d == src ? (src + 1) % k_ : d;
}

HotspotTraffic::HotspotTraffic(int num_endpoints, int hot, double hot_fraction)
    : TrafficPattern(num_endpoints), hot_(hot), hot_fraction_(hot_fraction) {
  NOCS_EXPECTS(hot >= 0 && hot < num_endpoints);
  NOCS_EXPECTS(hot_fraction >= 0.0 && hot_fraction <= 1.0);
}

int HotspotTraffic::pick(int src, Rng& rng) const {
  // The hot endpoint itself never draws the bernoulli (it cannot target
  // itself); its packets use the uniform remainder, which excludes the
  // source by the same shifted-draw construction as UniformTraffic.
  if (src != hot_ && rng.bernoulli(hot_fraction_)) return hot_;
  const int d = static_cast<int>(rng.uniform_int(
      static_cast<std::uint64_t>(k_ - 1)));
  return d >= src ? d + 1 : d;
}

namespace {

int bits_for(int k) {
  int b = 0;
  while ((1 << b) < k) ++b;
  return b < 1 ? 1 : b;
}

}  // namespace

std::unique_ptr<TrafficPattern> make_permutation(const std::string& kind,
                                                 int num_endpoints) {
  const int k = num_endpoints;
  const int b = bits_for(k);
  // The classic BookSim permutations are bijections on b-bit ids, i.e. on
  // [0, 2^b).  For non-power-of-two endpoint counts (sprint levels like 6
  // or 12) some images land in [k, 2^b); folding them back with modulo —
  // the obvious fix — silently destroys bijectivity and concentrates
  // traffic on a few destinations on exactly the small meshes where every
  // endpoint matters.  Cycle-walking keeps the map a true permutation of
  // [0, k): apply the b-bit bijection repeatedly until the image falls
  // inside [0, k).  The walk terminates because the orbit of s under a
  // bijection returns to s (< k) eventually, and injectivity on [0, k) is
  // inherited from the underlying bijection.  Power-of-two k never walks
  // (every image is already in range), so the established patterns are
  // unchanged.
  const auto apply = [&](int s) {
    int d = 0;
    if (kind == "transpose") {
      // Swap the high and low halves of the id bits.
      const int half = b / 2;
      const int lo = s & ((1 << half) - 1);
      const int hi = s >> half;
      d = (lo << (b - half)) | hi;
    } else if (kind == "bitcomp") {
      d = (~s) & ((1 << b) - 1);
    } else if (kind == "bitrev") {
      for (int i = 0; i < b; ++i)
        if (s & (1 << i)) d |= 1 << (b - 1 - i);
    } else if (kind == "shuffle") {
      d = ((s << 1) | (s >> (b - 1))) & ((1 << b) - 1);
    } else {
      throw std::invalid_argument("unknown permutation: " + kind);
    }
    return d;
  };
  std::vector<int> perm(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    int d = apply(s);
    while (d >= k) d = apply(d);
    perm[static_cast<std::size_t>(s)] = d;
  }
  return std::make_unique<PermutationTraffic>(k, std::move(perm), kind);
}

std::unique_ptr<TrafficPattern> make_traffic(const std::string& kind,
                                             int num_endpoints) {
  if (kind == "uniform")
    return std::make_unique<UniformTraffic>(num_endpoints);
  if (kind == "neighbor")
    return std::make_unique<NeighborTraffic>(num_endpoints);
  if (kind == "hotspot")
    return std::make_unique<HotspotTraffic>(num_endpoints, 0, 0.2);
  if (kind == "cache") {
    // Cache-shaped destinations: address-interleaved LLC banks (uniform
    // over endpoints) plus memory-controller traffic concentrated at the
    // master node (logical 0).  Pair with request-reply protocol mode.
    return std::make_unique<HotspotTraffic>(num_endpoints, 0, 0.15);
  }
  return make_permutation(kind, num_endpoints);
}

}  // namespace nocs::noc
