// Per-VC flit buffer with fixed capacity (credit-based flow control keeps
// it from overflowing; overflow is therefore a protocol bug and asserts).
#pragma once

#include <deque>

#include "common/assert.hpp"
#include "noc/flit.hpp"

namespace nocs::noc {

/// FIFO buffer holding the flits of (at most) one in-flight packet per VC.
class VcBuffer {
 public:
  explicit VcBuffer(int capacity) : capacity_(capacity) {
    NOCS_EXPECTS(capacity >= 1);
  }

  bool empty() const { return flits_.empty(); }
  bool full() const { return static_cast<int>(flits_.size()) >= capacity_; }
  int size() const { return static_cast<int>(flits_.size()); }
  int capacity() const { return capacity_; }

  /// Appends a flit; credit-based flow control guarantees space.
  void push(const Flit& f) {
    NOCS_ENSURES(!full());
    flits_.push_back(f);
  }

  const Flit& front() const {
    NOCS_EXPECTS(!empty());
    return flits_.front();
  }

  Flit pop() {
    NOCS_EXPECTS(!empty());
    Flit f = flits_.front();
    flits_.pop_front();
    return f;
  }

 private:
  int capacity_;
  std::deque<Flit> flits_;
};

}  // namespace nocs::noc
