// Per-VC flit buffer with fixed capacity (credit-based flow control keeps
// it from overflowing; overflow is therefore a protocol bug and asserts).
//
// Implemented as a fixed-capacity ring over storage allocated once at
// construction: pushing and popping flits on the simulator's hottest path
// never touches the heap (std::deque allocates/frees chunks as flits flow
// through, which dominated Network::tick profiles).  A buffer can own its
// storage (standalone/tests) or view a slice of an external arena — the
// router allocates one contiguous Flit arena for all its VCs, so a
// router's entire buffered state is one cache-friendly block instead of
// ports * vcs separate heap allocations.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "noc/flit.hpp"

namespace nocs::noc {

/// FIFO buffer holding the flits of (at most) one in-flight packet per VC.
class VcBuffer {
 public:
  explicit VcBuffer(int capacity)
      : capacity_(capacity), owned_(static_cast<std::size_t>(capacity)),
        slots_(owned_.data()) {
    NOCS_EXPECTS(capacity >= 1);
  }

  /// Non-owning view over `capacity` slots of an external arena, which
  /// must outlive the buffer and not be resized while it is alive.
  VcBuffer(Flit* storage, int capacity) : capacity_(capacity), slots_(storage) {
    NOCS_EXPECTS(storage != nullptr && capacity >= 1);
  }

  // Copies deep-copy into owned storage (an arena view degrades to an
  // owning buffer — aliasing a copy would corrupt the original).  Moves of
  // owning buffers keep their heap block, so arena pointers stay valid.
  VcBuffer(const VcBuffer& o)
      : capacity_(o.capacity_), head_(o.head_), count_(o.count_),
        owned_(o.slots_, o.slots_ + o.capacity_), slots_(owned_.data()) {}
  VcBuffer& operator=(const VcBuffer& o) {
    if (this != &o) {
      capacity_ = o.capacity_;
      head_ = o.head_;
      count_ = o.count_;
      owned_.assign(o.slots_, o.slots_ + o.capacity_);
      slots_ = owned_.data();
    }
    return *this;
  }
  VcBuffer(VcBuffer&&) = default;
  VcBuffer& operator=(VcBuffer&&) = default;

  bool empty() const { return count_ == 0; }
  bool full() const { return count_ >= capacity_; }
  int size() const { return count_; }
  int capacity() const { return capacity_; }

  /// Appends a flit; credit-based flow control guarantees space.
  void push(const Flit& f) {
    NOCS_ENSURES(!full());
    slots_[wrap(head_ + count_)] = f;
    ++count_;
  }

  const Flit& front() const {
    NOCS_EXPECTS(!empty());
    return slots_[static_cast<std::size_t>(head_)];
  }

  Flit pop() {
    NOCS_EXPECTS(!empty());
    Flit f = slots_[static_cast<std::size_t>(head_)];
    head_ = static_cast<int>(wrap(head_ + 1));
    --count_;
    return f;
  }

  /// Checkpoint: buffered flits oldest-first.  The ring phase (head index)
  /// is not part of the observable state, so load_state rebuilds the queue
  /// from slot 0 — contents and order are what must round-trip.
  void save_state(snapshot::Writer& w) const {
    w.begin_section("vc_buffer");
    w.i64(count_);
    for (int i = 0; i < count_; ++i) save(w, slots_[wrap(head_ + i)]);
    w.end_section();
  }

  void load_state(snapshot::Reader& r) {
    r.begin_section("vc_buffer");
    const int n = static_cast<int>(r.i64());
    if (n < 0 || n > capacity_)
      throw snapshot::SnapshotError(
          "vc buffer occupancy in checkpoint exceeds configured capacity");
    head_ = 0;
    count_ = n;
    for (int i = 0; i < n; ++i) load(r, slots_[static_cast<std::size_t>(i)]);
    r.end_section();
  }

 private:
  std::size_t wrap(int index) const {
    // Capacity is the VC depth (typically 4, not always a power of two),
    // so wrap with a compare instead of a mask or modulo.
    return static_cast<std::size_t>(index >= capacity_ ? index - capacity_
                                                       : index);
  }

  int capacity_;
  int head_ = 0;   // index of the oldest flit
  int count_ = 0;  // buffered flits
  std::vector<Flit> owned_;  // empty when viewing an external arena
  Flit* slots_;
};

}  // namespace nocs::noc
