// Flit and packet descriptors for the wormhole network.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace nocs::noc {

/// Unique packet identifier (monotonic per simulation).
using PacketId = std::uint64_t;

/// Packet role under end-to-end protection.  Data packets are checked and
/// acknowledged; ACK/NACK are single-flit control packets carrying the
/// acknowledged packet id in `ack_for`.  Without a fault oracle every
/// packet is kData and the control fields stay inert.
enum class PacketKind : std::uint8_t { kData = 0, kAck = 1, kNack = 2 };

/// One flow-control unit.  Packets are wormhole-switched: the head flit
/// carries routing state, body/tail flits follow the head's path on the
/// same VC.
struct Flit {
  PacketId packet = 0;    ///< owning packet id
  int index = 0;          ///< position within the packet (0 = head)
  bool is_head = false;
  bool is_tail = false;

  NodeId src = kInvalidNode;  ///< injecting node
  NodeId dst = kInvalidNode;  ///< destination node

  VcId vc = -1;           ///< VC assigned on the current link
  int msg_class = 0;      ///< message class (virtual network)

  Cycle created = 0;      ///< cycle the packet was generated at the source
  Cycle injected = 0;     ///< cycle the flit entered the network (left NI)
  int hops = 0;           ///< router-to-router hops traversed so far
  bool measured = false;  ///< generated inside the measurement window

  // End-to-end protection state (inert without a fault oracle).
  bool corrupted = false;            ///< a link fault flipped payload bits
  PacketKind kind = PacketKind::kData;
  PacketId ack_for = 0;              ///< packet id an ACK/NACK refers to
};

/// Credit returned upstream when a flit leaves a VC buffer.
struct Credit {
  VcId vc = -1;
};

}  // namespace nocs::noc
