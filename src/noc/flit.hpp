// Flit and packet descriptors for the wormhole network.
#pragma once

#include <cstdint>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Unique packet identifier (monotonic per simulation).
using PacketId = std::uint64_t;

/// Packet role under end-to-end protection.  Data packets are checked and
/// acknowledged; ACK/NACK are single-flit control packets carrying the
/// acknowledged packet id in `ack_for`.  Without a fault oracle every
/// packet is kData and the control fields stay inert.  kMcast marks one
/// segment of a source-rooted multicast tree: `ack_for` carries the packed
/// (group, lo, hi) descriptor of the member subrange the receiver must
/// forward to (see NetworkInterface::send_multicast).
enum class PacketKind : std::uint8_t {
  kData = 0,
  kAck = 1,
  kNack = 2,
  kMcast = 3,
};

/// One flow-control unit.  Packets are wormhole-switched: the head flit
/// carries routing state, body/tail flits follow the head's path on the
/// same VC.
struct Flit {
  PacketId packet = 0;    ///< owning packet id
  int index = 0;          ///< position within the packet (0 = head)
  bool is_head = false;
  bool is_tail = false;

  NodeId src = kInvalidNode;  ///< injecting node
  NodeId dst = kInvalidNode;  ///< destination node

  VcId vc = -1;           ///< VC assigned on the current link
  int msg_class = 0;      ///< message class (virtual network)

  Cycle created = 0;      ///< cycle the packet was generated at the source
  Cycle injected = 0;     ///< cycle the flit entered the network (left NI)
  int hops = 0;           ///< router-to-router hops traversed so far
  bool measured = false;  ///< generated inside the measurement window

  // End-to-end protection state (inert without a fault oracle).
  bool corrupted = false;            ///< a link fault flipped payload bits
  PacketKind kind = PacketKind::kData;
  PacketId ack_for = 0;              ///< packet id an ACK/NACK refers to
};

/// Credit returned upstream when a flit leaves a VC buffer.
struct Credit {
  VcId vc = -1;
};

/// Checkpoint serialization for the two wire types.  Field-by-field rather
/// than memcpy so the on-disk format is independent of struct padding.
inline void save(snapshot::Writer& w, const Flit& f) {
  w.u64(f.packet);
  w.i64(f.index);
  w.b(f.is_head);
  w.b(f.is_tail);
  w.i64(f.src);
  w.i64(f.dst);
  w.i64(f.vc);
  w.i64(f.msg_class);
  w.u64(f.created);
  w.u64(f.injected);
  w.i64(f.hops);
  w.b(f.measured);
  w.b(f.corrupted);
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.u64(f.ack_for);
}

inline void load(snapshot::Reader& r, Flit& f) {
  f.packet = r.u64();
  f.index = static_cast<int>(r.i64());
  f.is_head = r.b();
  f.is_tail = r.b();
  f.src = static_cast<NodeId>(r.i64());
  f.dst = static_cast<NodeId>(r.i64());
  f.vc = static_cast<VcId>(r.i64());
  f.msg_class = static_cast<int>(r.i64());
  f.created = r.u64();
  f.injected = r.u64();
  f.hops = static_cast<int>(r.i64());
  f.measured = r.b();
  f.corrupted = r.b();
  f.kind = static_cast<PacketKind>(r.u8());
  f.ack_for = r.u64();
}

inline void save(snapshot::Writer& w, const Credit& c) { w.i64(c.vc); }

inline void load(snapshot::Reader& r, Credit& c) {
  c.vc = static_cast<VcId>(r.i64());
}

}  // namespace nocs::noc
