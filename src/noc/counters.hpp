// Event counters harvested from routers/links and fed to the power models.
// DSENT-style power estimation is event-based: each buffer write/read,
// crossbar traversal, allocation, and link flit has an energy cost, and
// leakage accrues per powered-on cycle.
#pragma once

#include <cstdint>
#include <string>

#include "common/metrics.hpp"

namespace nocs::noc {

/// Activity of one router over a measurement window.
struct RouterCounters {
  std::uint64_t buffer_writes = 0;     ///< flits written into input VCs
  std::uint64_t buffer_reads = 0;      ///< flits read out of input VCs
  std::uint64_t xbar_traversals = 0;   ///< flits through the crossbar
  std::uint64_t vc_allocs = 0;         ///< successful VC allocations
  std::uint64_t sa_arbitrations = 0;   ///< switch-allocator grant events
  std::uint64_t link_flits = 0;        ///< flits sent on non-local out links
  std::uint64_t active_cycles = 0;     ///< cycles powered on
  std::uint64_t gated_cycles = 0;      ///< cycles power-gated
  std::uint64_t waking_cycles = 0;     ///< cycles spent in wake-up transition
  std::uint64_t wake_events = 0;       ///< number of wake-ups
  std::uint64_t idle_active_cycles = 0;  ///< powered on but no flit movement

  // Fault-injection activity (zero on a fault-free run).
  std::uint64_t flits_corrupted = 0;  ///< flits hit by a link fault here
  std::uint64_t reroutes = 0;         ///< packets detoured off a faulty link
  std::uint64_t wake_failures = 0;    ///< failed power-gate wake attempts

  // Multicast replication activity at this node's NI (zero unless tree
  // multicast is in use).  A relay that forwards a multicast segment to
  // its subranges re-injects copies through this router, so the copies'
  // buffer/crossbar/link traffic is already in the counters above; these
  // two attribute that replicated share explicitly.
  std::uint64_t mc_replications = 0;  ///< packets re-injected by the relay
  std::uint64_t mc_flits = 0;         ///< flits of those replicated packets

  RouterCounters& operator+=(const RouterCounters& o) {
    buffer_writes += o.buffer_writes;
    buffer_reads += o.buffer_reads;
    xbar_traversals += o.xbar_traversals;
    vc_allocs += o.vc_allocs;
    sa_arbitrations += o.sa_arbitrations;
    link_flits += o.link_flits;
    active_cycles += o.active_cycles;
    gated_cycles += o.gated_cycles;
    waking_cycles += o.waking_cycles;
    wake_events += o.wake_events;
    idle_active_cycles += o.idle_active_cycles;
    flits_corrupted += o.flits_corrupted;
    reroutes += o.reroutes;
    wake_failures += o.wake_failures;
    mc_replications += o.mc_replications;
    mc_flits += o.mc_flits;
    return *this;
  }

  /// Registers every counter under "<prefix>.<field>" (default "router").
  void export_metrics(MetricsRegistry& reg,
                      const std::string& prefix = "router") const {
    reg.counter(prefix + ".buffer_writes").set(buffer_writes);
    reg.counter(prefix + ".buffer_reads").set(buffer_reads);
    reg.counter(prefix + ".xbar_traversals").set(xbar_traversals);
    reg.counter(prefix + ".vc_allocs").set(vc_allocs);
    reg.counter(prefix + ".sa_arbitrations").set(sa_arbitrations);
    reg.counter(prefix + ".link_flits").set(link_flits);
    reg.counter(prefix + ".active_cycles").set(active_cycles);
    reg.counter(prefix + ".gated_cycles").set(gated_cycles);
    reg.counter(prefix + ".waking_cycles").set(waking_cycles);
    reg.counter(prefix + ".wake_events").set(wake_events);
    reg.counter(prefix + ".idle_active_cycles").set(idle_active_cycles);
    reg.counter(prefix + ".flits_corrupted").set(flits_corrupted);
    reg.counter(prefix + ".reroutes").set(reroutes);
    reg.counter(prefix + ".wake_failures").set(wake_failures);
    reg.counter(prefix + ".mc_replications").set(mc_replications);
    reg.counter(prefix + ".mc_flits").set(mc_flits);
  }
};

}  // namespace nocs::noc
