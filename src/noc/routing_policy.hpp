// Topology-agnostic routing interface.
//
// RoutingFunction (routing.hpp) speaks mesh coordinates and directional
// ports — the vocabulary of the paper's CDOR.  Arbitrary graphs have
// neither, so the router core routes through this node-id/port-index
// interface instead; MeshRoutingPolicy adapts any RoutingFunction onto it
// (the mesh specialization, returning bit-identical decisions), and
// TableRouting (table_routing.hpp) implements it for arbitrary topologies
// with precomputed up*/down* next-hop tables.
#pragma once

#include <memory>

#include "common/geometry.hpp"
#include "noc/routing.hpp"

namespace nocs::noc {

/// Computes the output port index a head flit takes at router `cur`
/// towards `dst`.  Deterministic single-path routing: one port per
/// (cur,dst) pair.  Port 0 is always the local (NI) port.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Returns the output port index; 0 (local) when cur == dst.
  /// Precondition: `dst` must be reachable from `cur` under this policy.
  virtual int route_port(NodeId cur, NodeId dst) const = 0;

  /// Fault fallback mirroring RoutingFunction::reroute: the link behind
  /// `blocked` is down — return an alternative output port, or `blocked`
  /// itself when no safe detour exists.
  virtual int reroute_port(NodeId cur, NodeId dst, int blocked) const {
    (void)cur;
    (void)dst;
    return blocked;
  }

  /// Human-readable name for logs/tables.
  virtual const char* name() const = 0;
};

/// Adapts a coordinate-based RoutingFunction (XY/YX DOR, CDOR) to the
/// node-id interface on a mesh.  Directional Port indices already are the
/// mesh's port indices, so the adapter is a pure coordinate translation
/// and mesh networks routed through it stay bit-identical to networks
/// routed through the RoutingFunction directly.
class MeshRoutingPolicy final : public RoutingPolicy {
 public:
  /// Borrows `fn` (must outlive the policy).
  MeshRoutingPolicy(const RoutingFunction* fn, MeshShape shape)
      : fn_(fn), shape_(shape) {
    NOCS_EXPECTS(fn != nullptr);
  }

  /// Owns `fn`.
  MeshRoutingPolicy(std::unique_ptr<RoutingFunction> fn, MeshShape shape)
      : owned_(std::move(fn)), fn_(owned_.get()), shape_(shape) {
    NOCS_EXPECTS(fn_ != nullptr);
  }

  int route_port(NodeId cur, NodeId dst) const override {
    return static_cast<int>(
        fn_->route(shape_.coord_of(cur), shape_.coord_of(dst)));
  }

  int reroute_port(NodeId cur, NodeId dst, int blocked) const override {
    return static_cast<int>(fn_->reroute(shape_.coord_of(cur),
                                         shape_.coord_of(dst),
                                         static_cast<Port>(blocked)));
  }

  const char* name() const override { return fn_->name(); }

  const RoutingFunction& mesh_function() const { return *fn_; }

 private:
  std::unique_ptr<RoutingFunction> owned_;
  const RoutingFunction* fn_;
  MeshShape shape_;
};

}  // namespace nocs::noc
