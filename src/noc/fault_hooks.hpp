// Fault-injection hooks the network core consults when resilience is
// enabled.
//
// The simulator core stays fault-agnostic: routers and network interfaces
// talk to an abstract FaultOracle, and src/fault/ provides the concrete
// deterministic injector.  This keeps the dependency one-way (nocs_fault
// links nocs_noc, never the reverse) and means a null oracle — the default —
// leaves every hot path bit-identical to the fault-free simulator.
//
// Fault model (what each hook represents physically):
//  * corrupt_link_flit — a transient bit flip on the wire.  Flow control is
//    unaffected (the flit still occupies buffers and returns credits); the
//    receiving NI's end-to-end checksum catches it at packet granularity.
//  * link_down — a link marked faulty for an interval.  Traffic already
//    committed to the link still crosses (corrupted); route computation
//    detours new packets around it when the routing function knows a safe
//    convex alternative.
//  * drop_packet — a whole packet lost at the source interface (e.g. an
//    injection-queue overrun).  Recovered purely by the sender's
//    retransmission timeout, exercising the no-NACK path.
//  * wake_fails — a power-gate wake-up attempt that did not restore the
//    rail; the router retries after wake_retry_latency cycles.
//  * router_stuck — a fail-stop router that freezes entirely (no credits,
//    no forwarding).  There is no in-network recovery; the watchdog detects
//    the wedge and the sprint controller degrades around the node.
#pragma once

#include "common/assert.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Queried by routers/NIs each time a fault could strike.  Non-const hooks
/// may draw from injector-owned RNG streams; implementations must keep
/// draws per-entity so outcomes are independent of which other entities
/// are queried (determinism across configurations and thread counts).
class FaultOracle {
 public:
  virtual ~FaultOracle() = default;

  /// A flit is crossing the directed link `from`->`to` at `now`; true
  /// means it arrives corrupted.
  virtual bool corrupt_link_flit(NodeId from, NodeId to, Cycle now) = 0;

  /// True while the directed link `from`->`to` is marked faulty at `now`
  /// (route computation should prefer a detour).
  virtual bool link_down(NodeId from, NodeId to, Cycle now) = 0;

  /// A whole packet is about to leave `src`'s source queue at `now`; true
  /// means it is silently lost before injection.
  virtual bool drop_packet(NodeId src, Cycle now) = 0;

  /// Wake-up attempt number `attempt` (1-based) of router `node` completed
  /// at `now`; true means the rail failed to charge and the router must
  /// retry.
  virtual bool wake_fails(NodeId node, int attempt, Cycle now) = 0;

  /// Extra cycles a failed wake-up costs before the next attempt.
  virtual int wake_retry_latency() const = 0;

  /// True while router `node` is stuck (fail-stop: consumes nothing,
  /// forwards nothing).
  virtual bool router_stuck(NodeId node, Cycle now) = 0;
};

/// End-to-end protection knobs for the network interfaces (active only
/// when a fault oracle is attached).
struct ProtectionParams {
  int ack_timeout = 256;   ///< cycles before an unacked packet retransmits
  int max_backoff = 4096;  ///< cap on the exponential backoff (cycles)

  void validate() const {
    NOCS_EXPECTS(ack_timeout >= 1 && max_backoff >= ack_timeout);
  }
};

}  // namespace nocs::noc
