// Simulation driver implementing the standard warmup / measure / drain
// methodology plus injection-rate sweeps for latency-throughput curves
// (the experiments behind Figure 11 of the paper).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/snapshot.hpp"
#include "noc/counters.hpp"
#include "noc/network.hpp"

namespace nocs::noc {

/// Phase lengths and load for one simulation run.
struct SimConfig {
  Cycle warmup = 2000;       ///< cycles before measurement starts
  Cycle measure = 10000;     ///< measurement window length
  Cycle drain_max = 100000;  ///< drain budget after the window closes
  double injection_rate = 0.1;  ///< flits/cycle per active endpoint
  /// Livelock/deadlock watchdog: abort the run and capture a diagnostic
  /// snapshot once no flit makes progress for this many cycles while the
  /// network is not drained.  0 disables the watchdog (the default, so
  /// fault-free runs are untouched).
  Cycle watchdog_cycles = 0;
  /// Cycles between per-window trace samples (counter events for in-flight
  /// packets, hot routers, per-router occupancy).  Only read while a trace
  /// session is active; with tracing off the run is bit-identical
  /// regardless of this value.
  Cycle trace_sample = 256;
};

/// Aggregated results of one run.
struct SimResults {
  double avg_packet_latency = 0.0;   ///< creation -> tail eject (cycles)
  double avg_network_latency = 0.0;  ///< head inject -> tail eject (cycles)
  double p50_latency = 0.0;          ///< median packet latency
  double p99_latency = 0.0;          ///< tail latency
  double avg_hops = 0.0;
  std::uint64_t packets_generated = 0;
  std::uint64_t packets_ejected = 0;
  /// Measurement-window throughput: measurement-tagged flits ejected per
  /// measurement cycle per active endpoint (drain cycles add no tagged
  /// load and are excluded from the normalization).
  double accepted_rate = 0.0;
  bool saturated = false;      ///< drain budget exhausted (unstable load)
  /// True when some packet latency exceeded the latency histogram's
  /// initial range (the histogram grew to cover it), i.e. the reported
  /// tail quantiles come from a coarsened-but-complete distribution — the
  /// telltale of a run at or past saturation.
  bool histogram_saturated = false;
  double max_packet_latency = 0.0;  ///< worst measured packet latency
  bool hung = false;           ///< watchdog fired (livelock/deadlock)
  std::string diagnostic;      ///< per-router snapshot when `hung`
  /// True when the run stopped at CheckpointConfig::stop_at instead of
  /// finishing; the statistics cover only the cycles simulated so far.
  bool interrupted = false;
  Cycle cycles = 0;            ///< total cycles simulated
  RouterCounters counters;     ///< summed router activity (whole run)
  ResilienceCounters resilience;  ///< end-to-end protection activity

  /// Registers the run's statistics into `reg` ("sim.*" gauges/counters
  /// plus the router/resilience counter families).
  void export_metrics(MetricsRegistry& reg) const;
};

/// Serializes every SimResults field (including resilience counters and
/// the watchdog diagnostic) as a JSON object — the payload of `report=`
/// run reports.
json::Value to_json(const SimResults& r);

/// Inverse of to_json: rebuilds a SimResults from its JSON form.  Exact
/// (bit-identical doubles — the JSON layer round-trips numbers through
/// shortest-representation formatting); used by resumable sweeps to
/// replay completed tasks from a manifest.
SimResults sim_results_from_json(const json::Value& v);

/// Writes `v` to `path` (pretty-printed, trailing newline); false after
/// logging when the file cannot be opened.  Thin alias of
/// json::write_file so report call sites read uniformly.
bool write_report(const std::string& path, const json::Value& v);

/// Checkpoint/restore policy for one run (all off by default, in which
/// case run_simulation behaves exactly as without it).
struct CheckpointConfig {
  /// Snapshot file written by periodic autosave and at stop_at ("" = off).
  std::string save_path;
  /// Autosave period: a checkpoint is written whenever the simulation
  /// cycle is a multiple of `every` (0 = off; requires save_path).
  Cycle every = 0;
  /// Snapshot to resume from ("" = off).  The network must be constructed
  /// and configured (endpoints, seed, gating, faults) exactly as in the
  /// checkpointed run; the SimConfig must match the one recorded in the
  /// file.  Throws snapshot::SnapshotError on any mismatch or corruption.
  std::string restore_path;
  /// Absolute cycle at which to stop the run (writing save_path first when
  /// set), marking the results `interrupted`.  0 = run to completion.
  /// Combined with restore_path this is how bit-identical resume is
  /// verified: run to cycle N, stop, restore, continue, compare.
  Cycle stop_at = 0;
  /// Optional cooperative stop flag (the process shutdown flag installed
  /// by common/shutdown, or a serve-job CancellationToken's flag).
  /// Polled at chunk boundaries (a few thousand cycles at most); once set
  /// the run writes save_path (when configured) and returns with
  /// `interrupted`, exactly like hitting stop_at.  Polling never perturbs
  /// simulation state, so an uninterrupted run is bit-identical with or
  /// without the flag wired up.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Optional progress observer, invoked with the current cycle at the
  /// same chunk boundaries that poll `stop_flag`.  Purely observational:
  /// it sees the simulation, it never steers it, so results are
  /// bit-identical with or without a hook installed.  Called from the
  /// simulating thread — keep it cheap (the serve daemon stores into an
  /// atomic and returns).
  std::function<void(Cycle)> on_progress;
  /// Extra components serialized into/restored from the same snapshot
  /// under their given names, in order (e.g. {"fault", &injector}).  The
  /// pointers must outlive the run.
  std::vector<std::pair<std::string, snapshot::Serializable*>> extras;
};

/// Runs warmup, a measurement window, and a drain phase on `net`, which
/// must already be configured (endpoints, traffic, gating).  Counters are
/// reset at the start so power estimates cover exactly this run.
SimResults run_simulation(Network& net, const SimConfig& cfg);

/// As above with checkpoint/restore: optionally resumes from a snapshot,
/// autosaves periodically (atomic tmp + rename), and can stop early at a
/// fixed cycle.  A restored run continues the warmup/measure/drain state
/// machine exactly where it stopped and produces results bit-identical to
/// a run that never stopped.
SimResults run_simulation(Network& net, const SimConfig& cfg,
                          const CheckpointConfig& ckpt);

/// One point of a load sweep.
struct SweepPoint {
  double injection_rate = 0.0;
  SimResults results;
};

/// Sweeps injection rate over `rates`, rebuilding statistics per point.
/// Stops early (marking remaining points saturated) once a point saturates,
/// since latency is unbounded beyond saturation.
std::vector<SweepPoint> sweep_injection(Network& net, SimConfig cfg,
                                        const std::vector<double>& rates,
                                        bool stop_at_saturation = false);

}  // namespace nocs::noc
