// Cycle-accurate wormhole router with virtual channels, credit-based flow
// control, a classic five-stage pipeline, and a power-gating state machine.
//
// Pipeline (Table 1: "classic five-stage"): a flit written into an input
// buffer at cycle t (BW) has its route computed at t+1 (RC, head only),
// wins a virtual channel at t+2 (VA), arbitrates for the switch at t+3
// (SA), and traverses the crossbar at t+4 (ST), reaching the next router
// after one further link cycle (LT).  The stages are evaluated in reverse
// order inside tick() so each flit advances at most one stage per cycle.
//
// Power gating: a router can be statically gated (NoC-sprinting's dark
// region — no traffic may ever arrive, enforced by assertion) or
// dynamically gated (gate after `gate_idle_threshold` idle cycles, wake on
// arrival after `wakeup_latency` cycles), which models the conventional
// power-gating schemes the paper compares against.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "noc/buffer.hpp"
#include "noc/channel.hpp"
#include "noc/counters.hpp"
#include "noc/fault_hooks.hpp"
#include "noc/flit.hpp"
#include "noc/params.hpp"
#include "noc/routing.hpp"
#include "noc/routing_policy.hpp"
#include "noc/topology.hpp"

namespace nocs::noc {

/// Power state of a router.
enum class PowerState { kActive, kGated, kWaking };

class Router {
 public:
  /// Mesh router: 5 directional port slots, routed by a coordinate-based
  /// RoutingFunction (wrapped in an internally owned MeshRoutingPolicy).
  Router(NodeId id, const NetworkParams& params,
         const RoutingFunction* routing);

  /// General router: one port slot per topology port of node `id`, routed
  /// by `policy` (must outlive the router).  A mesh topology with a
  /// MeshRoutingPolicy reproduces the mesh constructor bit for bit.
  Router(NodeId id, const NetworkParams& params, const Topology& topo,
         const RoutingPolicy* policy);

  NodeId id() const { return id_; }
  Coord coord() const { return coord_; }
  int num_ports() const { return nports_; }

  /// Wires one input direction: flits arrive on `flit_in`, credits are
  /// returned upstream on `credit_out`.  Null pointers mark a disconnected
  /// port (mesh edge).
  void connect_input(int port, Pipe<Flit>* flit_in, Pipe<Credit>* credit_out);
  void connect_input(Port p, Pipe<Flit>* flit_in, Pipe<Credit>* credit_out) {
    connect_input(static_cast<int>(p), flit_in, credit_out);
  }

  /// Wires one output direction: flits leave on `flit_out`, credits come
  /// back on `credit_in`.
  void connect_output(int port, Pipe<Flit>* flit_out, Pipe<Credit>* credit_in);
  void connect_output(Port p, Pipe<Flit>* flit_out, Pipe<Credit>* credit_in) {
    connect_output(static_cast<int>(p), flit_out, credit_in);
  }

  /// Advances the router by one cycle.
  void tick(Cycle now);

  // --- power gating -------------------------------------------------------

  /// Statically gates/ungates the router (configuration time; buffers must
  /// be empty).  A statically gated router asserts if a flit arrives unless
  /// wake-on-arrival is allowed.
  void set_gated(bool gated);

  /// Enables wake-on-arrival plus idle-timeout gating (the conventional
  /// dynamic scheme).  Off by default.
  void set_dynamic_gating(bool enabled) {
    dynamic_gating_ = enabled;
    if (wake_cb_) wake_cb_();
  }

  /// Allows a statically gated router to wake on arrival rather than
  /// asserting (used by the dynamic scheme and fault-injection tests).
  void set_allow_wakeup(bool allowed) { allow_wakeup_ = allowed; }

  PowerState power_state() const { return state_; }

  // --- fault injection ------------------------------------------------------

  /// Attaches the fault oracle (null detaches).  With an oracle the router
  /// corrupts flits on faulty links, detours new packets off down links via
  /// RoutingFunction::reroute, retries failed power-gate wake-ups, and can
  /// freeze entirely while the oracle reports it stuck.
  void set_fault_oracle(FaultOracle* oracle) {
    oracle_ = oracle;
    if (wake_cb_) wake_cb_();
  }

  // --- active-router fast path ---------------------------------------------
  //
  // The network skips a router's tick() while the router self-reports no
  // work.  Invariant: a router must report busy_next_cycle() whenever it
  // holds flits, owns an output VC, has switch grants in flight, is mid
  // wake-up, or runs the dynamic-gating idle counter.  Skipped cycles are
  // pure no-ops except leakage accounting, which sync_counters() credits
  // lazily so counters stay bit-identical to ticking every cycle.

  /// True when the router must be ticked next cycle regardless of channel
  /// arrivals (arrivals re-activate a skipped router via WakeSink).
  bool busy_next_cycle() const {
    if (state_ == PowerState::kWaking) return true;
    if (dynamic_gating_ && state_ != PowerState::kGated) return true;
    return active_packets_ > 0 || !st_grants_.empty();
  }

  /// Ready time of the earliest pending value on any input flit/credit
  /// pipe, or kNoPendingEvent; a skipped router is re-ticked at this cycle.
  Cycle next_input_event() const;

  /// Credits the leakage counters for cycles [counted_until, now) during
  /// which tick() was skipped: gated cycles while gated, idle active
  /// cycles while powered on.  Called by the network before counters are
  /// read and at the head of tick().
  void sync_counters(Cycle now) const;

  /// Callback invoked when a configuration change (gating mode) may
  /// require the network to re-activate this router.
  void set_wake_callback(std::function<void()> cb) { wake_cb_ = std::move(cb); }

  /// True when no flit is buffered and no output VC is held.
  bool drained() const;

  // --- instrumentation -----------------------------------------------------

  const RouterCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = RouterCounters{}; }

  /// Mutable counters for the co-located NI's multicast replication
  /// attribution (mc_replications/mc_flits).  NI and router of one node
  /// always live on the same shard, so these writes never race the
  /// router's own counter updates.
  RouterCounters& raw_counters() { return counters_; }

  /// Total flits currently buffered (used by drain checks and tests).
  int buffered_flits() const;

  /// Sum of downstream credits across all output VCs (tests use this to
  /// verify credit conservation: after a full drain it must equal
  /// ports * vcs * vc_depth again).
  int total_output_credits() const;

  // --- checkpoint/restore ---------------------------------------------------
  //
  // Dynamic state only: buffered flits, pipeline stages, VC allocations,
  // in-flight switch grants, arbitration pointers, power-gating FSM, and
  // counters.  Configuration (id, params, routing, wiring, gating mode) is
  // reconstructed by the caller before load_state.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct InputVc {
    explicit InputVc(int depth) : buf(depth) {}
    InputVc(Flit* storage, int depth) : buf(storage, depth) {}
    VcBuffer buf;
    enum class Stage { kIdle, kRouting, kVcAlloc, kActive } stage =
        Stage::kIdle;
    int port = 0;       ///< owning input port (fixed at construction)
    int out_port = 0;   ///< output port index (0 = local)
    VcId out_vc = -1;
    int msg_class = 0;  ///< class of the packet currently in flight
  };

  struct OutputVc {
    bool allocated = false;
    int owner_port = -1;  ///< input port holding this output VC
    int owner_vc = -1;    ///< input VC holding this output VC
    int credits = 0;      ///< downstream buffer credits
  };

  struct Grant {
    int in_port;
    int in_vc;
  };

  void receive_credits(Cycle now);
  void receive_flits(Cycle now);
  void begin_packet(InputVc& ivc, const Flit& head, Cycle now);
  /// Applies the link-fault detour: when the preferred output's link is
  /// down, asks the routing policy for a safe alternative.
  int fault_aware_port(int preferred, NodeId dst, Cycle now);
  void set_stage(InputVc& ivc, InputVc::Stage next);
  void stage_switch_traversal(Cycle now);
  void stage_switch_allocation(Cycle now);
  void stage_vc_allocation(Cycle now);
  void stage_route_compute(Cycle now);
  bool any_input_pending(Cycle now) const;
  void update_dynamic_gating(Cycle now);

  InputVc& in_vc(int port, int vc) {
    return input_vcs_[static_cast<std::size_t>(port * params_.num_vcs + vc)];
  }
  const InputVc& in_vc(int port, int vc) const {
    return input_vcs_[static_cast<std::size_t>(port * params_.num_vcs + vc)];
  }
  OutputVc& out_vc(int port, int vc) {
    return output_vcs_[static_cast<std::size_t>(port * params_.num_vcs + vc)];
  }
  const OutputVc& out_vc(int port, int vc) const {
    return output_vcs_[static_cast<std::size_t>(port * params_.num_vcs + vc)];
  }

  /// Shared tail of both constructors (nports_, coord_, out_neighbor_ are
  /// already set when it runs).
  void init_structures();

  NodeId id_;
  Coord coord_;
  NetworkParams params_;
  const RoutingPolicy* policy_;
  std::unique_ptr<RoutingPolicy> owned_policy_;  ///< mesh-ctor adapter
  int nports_ = kNumPorts;
  /// Neighbor node behind each output port (kInvalidNode when the slot is
  /// disconnected or local) — all the router needs to know of the graph.
  std::vector<NodeId> out_neighbor_;

  std::vector<Pipe<Flit>*> flit_in_;
  std::vector<Pipe<Credit>*> credit_out_;
  std::vector<Pipe<Flit>*> flit_out_;
  std::vector<Pipe<Credit>*> credit_in_;

  // One contiguous block backing every input VC's ring (allocated before
  // input_vcs_ and never resized, so the per-VC views stay valid).
  std::vector<Flit> flit_arena_;
  std::vector<InputVc> input_vcs_;    // [port][vc] flattened
  std::vector<OutputVc> output_vcs_;  // [port][vc] flattened

  std::vector<Grant> st_grants_;      // SA winners, executed next cycle

  // Round-robin fairness pointers.
  std::vector<int> sa_input_rr_;   // per input port, over VCs
  std::vector<int> sa_output_rr_;  // per output port, over inputs
  std::vector<int> va_rr_;         // per output port, over reqs

  PowerState state_ = PowerState::kActive;
  bool dynamic_gating_ = false;
  bool allow_wakeup_ = false;
  int wake_remaining_ = 0;
  int wake_attempts_ = 0;  ///< attempts of the wake-up currently in flight
  Cycle idle_streak_ = 0;
  FaultOracle* oracle_ = nullptr;

  // Work tracking for the skip fast path and for skipping empty pipeline
  // stages: counts of input VCs per non-idle stage.
  int active_packets_ = 0;   // input VCs with stage != kIdle
  int routing_pending_ = 0;  // input VCs in kRouting
  int vca_pending_ = 0;      // input VCs in kVcAlloc
  std::vector<int> active_by_port_;  // kActive VCs per in-port
  std::function<void()> wake_cb_;

  // Lazily synced so skipped cycles can be credited on demand from const
  // accessors (counter reads happen through const Network paths).
  mutable RouterCounters counters_;
  mutable Cycle counted_until_ = 0;  // first cycle not yet in counters_
};

}  // namespace nocs::noc
