// Cycle-accurate wormhole router with virtual channels, credit-based flow
// control, a classic five-stage pipeline, and a power-gating state machine.
//
// Pipeline (Table 1: "classic five-stage"): a flit written into an input
// buffer at cycle t (BW) has its route computed at t+1 (RC, head only),
// wins a virtual channel at t+2 (VA), arbitrates for the switch at t+3
// (SA), and traverses the crossbar at t+4 (ST), reaching the next router
// after one further link cycle (LT).  The stages are evaluated in reverse
// order inside tick() so each flit advances at most one stage per cycle.
//
// Power gating: a router can be statically gated (NoC-sprinting's dark
// region — no traffic may ever arrive, enforced by assertion) or
// dynamically gated (gate after `gate_idle_threshold` idle cycles, wake on
// arrival after `wakeup_latency` cycles), which models the conventional
// power-gating schemes the paper compares against.
#pragma once

#include <array>
#include <vector>

#include "common/geometry.hpp"
#include "noc/buffer.hpp"
#include "noc/channel.hpp"
#include "noc/counters.hpp"
#include "noc/flit.hpp"
#include "noc/params.hpp"
#include "noc/routing.hpp"

namespace nocs::noc {

/// Power state of a router.
enum class PowerState { kActive, kGated, kWaking };

class Router {
 public:
  Router(NodeId id, const NetworkParams& params,
         const RoutingFunction* routing);

  NodeId id() const { return id_; }
  Coord coord() const { return coord_; }

  /// Wires one input direction: flits arrive on `flit_in`, credits are
  /// returned upstream on `credit_out`.  Null pointers mark a disconnected
  /// port (mesh edge).
  void connect_input(Port p, Pipe<Flit>* flit_in, Pipe<Credit>* credit_out);

  /// Wires one output direction: flits leave on `flit_out`, credits come
  /// back on `credit_in`.
  void connect_output(Port p, Pipe<Flit>* flit_out, Pipe<Credit>* credit_in);

  /// Advances the router by one cycle.
  void tick(Cycle now);

  // --- power gating -------------------------------------------------------

  /// Statically gates/ungates the router (configuration time; buffers must
  /// be empty).  A statically gated router asserts if a flit arrives unless
  /// wake-on-arrival is allowed.
  void set_gated(bool gated);

  /// Enables wake-on-arrival plus idle-timeout gating (the conventional
  /// dynamic scheme).  Off by default.
  void set_dynamic_gating(bool enabled) { dynamic_gating_ = enabled; }

  /// Allows a statically gated router to wake on arrival rather than
  /// asserting (used by the dynamic scheme and fault-injection tests).
  void set_allow_wakeup(bool allowed) { allow_wakeup_ = allowed; }

  PowerState power_state() const { return state_; }

  /// True when no flit is buffered and no output VC is held.
  bool drained() const;

  // --- instrumentation -----------------------------------------------------

  const RouterCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = RouterCounters{}; }

  /// Total flits currently buffered (used by drain checks and tests).
  int buffered_flits() const;

  /// Sum of downstream credits across all output VCs (tests use this to
  /// verify credit conservation: after a full drain it must equal
  /// ports * vcs * vc_depth again).
  int total_output_credits() const;

 private:
  struct InputVc {
    explicit InputVc(int depth) : buf(depth) {}
    VcBuffer buf;
    enum class Stage { kIdle, kRouting, kVcAlloc, kActive } stage =
        Stage::kIdle;
    Port out_port = Port::kLocal;
    VcId out_vc = -1;
    int msg_class = 0;  ///< class of the packet currently in flight
  };

  struct OutputVc {
    bool allocated = false;
    int owner_port = -1;  ///< input port holding this output VC
    int owner_vc = -1;    ///< input VC holding this output VC
    int credits = 0;      ///< downstream buffer credits
  };

  struct Grant {
    int in_port;
    int in_vc;
  };

  void receive_credits(Cycle now);
  void receive_flits(Cycle now);
  void begin_packet(InputVc& ivc, const Flit& head);
  void stage_switch_traversal(Cycle now);
  void stage_switch_allocation(Cycle now);
  void stage_vc_allocation(Cycle now);
  void stage_route_compute(Cycle now);
  bool any_input_pending(Cycle now) const;
  void update_dynamic_gating(Cycle now);

  InputVc& in_vc(int port, int vc) {
    return input_vcs_[static_cast<std::size_t>(port * params_.num_vcs + vc)];
  }
  const InputVc& in_vc(int port, int vc) const {
    return input_vcs_[static_cast<std::size_t>(port * params_.num_vcs + vc)];
  }
  OutputVc& out_vc(int port, int vc) {
    return output_vcs_[static_cast<std::size_t>(port * params_.num_vcs + vc)];
  }
  const OutputVc& out_vc(int port, int vc) const {
    return output_vcs_[static_cast<std::size_t>(port * params_.num_vcs + vc)];
  }

  NodeId id_;
  Coord coord_;
  NetworkParams params_;
  MeshShape shape_;
  const RoutingFunction* routing_;

  std::array<Pipe<Flit>*, kNumPorts> flit_in_{};
  std::array<Pipe<Credit>*, kNumPorts> credit_out_{};
  std::array<Pipe<Flit>*, kNumPorts> flit_out_{};
  std::array<Pipe<Credit>*, kNumPorts> credit_in_{};

  std::vector<InputVc> input_vcs_;    // [port][vc] flattened
  std::vector<OutputVc> output_vcs_;  // [port][vc] flattened

  std::vector<Grant> st_grants_;      // SA winners, executed next cycle

  // Round-robin fairness pointers.
  std::array<int, kNumPorts> sa_input_rr_{};   // per input port, over VCs
  std::array<int, kNumPorts> sa_output_rr_{};  // per output port, over inputs
  std::array<int, kNumPorts> va_rr_{};         // per output port, over reqs

  PowerState state_ = PowerState::kActive;
  bool dynamic_gating_ = false;
  bool allow_wakeup_ = false;
  int wake_remaining_ = 0;
  Cycle idle_streak_ = 0;

  RouterCounters counters_;
};

}  // namespace nocs::noc
