// Shared latency/throughput statistics collector for one simulation.
#pragma once

#include <array>
#include <vector>

#include "common/metrics.hpp"
#include "common/snapshot.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Upper bound on message classes tracked separately by the collector.
inline constexpr int kMaxStatClasses = 4;

/// End-to-end protection activity (all zero on a fault-free run).  Bumped
/// by the network interfaces; retransmissions and control packets add
/// offered load but never touch the packet-latency statistics.
struct ResilienceCounters {
  std::uint64_t retransmissions = 0;    ///< data packets re-queued (any cause)
  std::uint64_t timeouts = 0;           ///< retransmissions due to ACK timeout
  std::uint64_t corrupted_packets = 0;  ///< packets discarded by the checksum
  std::uint64_t dropped_packets = 0;    ///< packets lost at injection (faults)
  std::uint64_t duplicates = 0;         ///< re-deliveries the filter removed
  std::uint64_t acks_sent = 0;
  std::uint64_t nacks_sent = 0;

  ResilienceCounters& operator+=(const ResilienceCounters& o) {
    retransmissions += o.retransmissions;
    timeouts += o.timeouts;
    corrupted_packets += o.corrupted_packets;
    dropped_packets += o.dropped_packets;
    duplicates += o.duplicates;
    acks_sent += o.acks_sent;
    nacks_sent += o.nacks_sent;
    return *this;
  }

  std::uint64_t total() const {
    return retransmissions + timeouts + corrupted_packets + dropped_packets +
           duplicates + acks_sent + nacks_sent;
  }

  /// Registers every counter under "resilience.<field>".
  void export_metrics(MetricsRegistry& reg) const {
    reg.counter("resilience.retransmissions").set(retransmissions);
    reg.counter("resilience.timeouts").set(timeouts);
    reg.counter("resilience.corrupted_packets").set(corrupted_packets);
    reg.counter("resilience.dropped_packets").set(dropped_packets);
    reg.counter("resilience.duplicates").set(duplicates);
    reg.counter("resilience.acks_sent").set(acks_sent);
    reg.counter("resilience.nacks_sent").set(nacks_sent);
  }
};

/// Gathers packet-level statistics from all network interfaces.  The
/// simulator toggles `set_measuring()` around the measurement window;
/// packets generated while measuring are tagged and only they contribute
/// to latency statistics (the standard warmup/measure/drain methodology).
class StatsCollector {
 public:
  // 2-cycle bins to 1024 initially; the histogram grows (bins merge
  // pairwise) rather than clamping, so saturated-run tails stay honest.
  StatsCollector() : latency_hist_(2.0, 512, /*auto_grow=*/true) {}

  void reset() { *this = StatsCollector{}; }

  void set_measuring(bool m) { measuring_ = m; }
  bool measuring() const {
    return master_ != nullptr ? master_->measuring() : measuring_;
  }

  // --- sharded-tick support --------------------------------------------------
  //
  // Order matters for bit-identical floating-point results: RunningStat's
  // Welford update is not associative, so per-shard accumulators cannot
  // simply be merged.  Instead a shard's collector *defers*: ejection
  // events are buffered verbatim and the commutative integer counters
  // accumulate locally; after the cycle barrier the network drains every
  // shard in ascending shard order, replaying the events into the master
  // in exactly the order the serial ascending-node-id loop would have
  // produced.  The measuring flag is read through to the master (it is
  // only toggled between ticks, so the concurrent reads are race-free).

  /// Puts this collector in deferred mode feeding `master` (null returns
  /// to direct mode).
  void defer_to(StatsCollector* master) { master_ = master; }
  bool deferring() const { return master_ != nullptr; }

  /// True when nothing is buffered (between ticks this must hold — the
  /// network drains every shard at the end of each cycle).
  bool deferred_empty() const {
    return generated_ == 0 && flits_ejected_ == 0 && deferred_ejects_.empty() &&
           resilience_.total() == 0;
  }

  /// Replays everything buffered since the last drain into the master.
  void drain_deferred() {
    StatsCollector& m = *master_;
    m.generated_ += generated_;
    generated_ = 0;
    m.flits_ejected_ += flits_ejected_;
    flits_ejected_ = 0;
    for (const DeferredEject& e : deferred_ejects_)
      m.on_packet_ejected(e.packet_latency, e.network_latency, e.hops,
                          e.msg_class);
    deferred_ejects_.clear();
    m.resilience_ += resilience_;
    resilience_ = ResilienceCounters{};
  }

  /// Called by the source NI when a measured packet is generated.
  void on_packet_generated() { ++generated_; }

  /// Called by the destination NI when a measured packet's tail ejects.
  /// `packet_latency` = tail eject - generation (includes source queueing);
  /// `network_latency` = tail eject - head injection.
  void on_packet_ejected(double packet_latency, double network_latency,
                         int hops, int msg_class = 0) {
    if (master_ != nullptr) {
      deferred_ejects_.push_back(
          {packet_latency, network_latency, hops, msg_class});
      return;
    }
    ++ejected_;
    packet_latency_.add(packet_latency);
    network_latency_.add(network_latency);
    hops_.add(static_cast<double>(hops));
    latency_hist_.add(packet_latency);
    // Classes outside [0, kMaxStatClasses) land in the trailing
    // "unclassified" bucket instead of being silently dropped, so
    // per-class totals always sum to the overall packet count.
    const std::size_t cls =
        (msg_class >= 0 && msg_class < kMaxStatClasses)
            ? static_cast<std::size_t>(msg_class)
            : static_cast<std::size_t>(kMaxStatClasses);
    class_latency_[cls].add(packet_latency);
  }

  /// Per-message-class packet latency (e.g. class 0 = requests, class 1 =
  /// data replies in protocol mode).
  const RunningStat& class_latency(int msg_class) const {
    NOCS_EXPECTS(msg_class >= 0 && msg_class < kMaxStatClasses);
    return class_latency_[static_cast<std::size_t>(msg_class)];
  }

  /// Latency of packets whose class fell outside [0, kMaxStatClasses).
  const RunningStat& unclassified_latency() const {
    return class_latency_[static_cast<std::size_t>(kMaxStatClasses)];
  }

  /// Packet-latency quantile (e.g. 0.99 for the tail latency interactive
  /// workloads care about), interpolated from the latency histogram.
  double latency_quantile(double q) const { return latency_hist_.quantile(q); }

  /// The underlying packet-latency histogram.
  const Histogram& latency_histogram() const { return latency_hist_; }

  /// True when some packet latency exceeded the histogram's initial range
  /// (it grew to cover the tail — quantiles are correct but coarser).
  bool histogram_saturated() const { return latency_hist_.range_extended(); }

  /// Called per measured flit ejected (throughput accounting).
  void on_flit_ejected() { ++flits_ejected_; }

  std::uint64_t generated_packets() const { return generated_; }
  std::uint64_t ejected_packets() const { return ejected_; }
  std::uint64_t ejected_flits() const { return flits_ejected_; }

  /// True once every measured packet has been drained.
  bool all_drained() const { return ejected_ >= generated_; }

  const RunningStat& packet_latency() const { return packet_latency_; }
  const RunningStat& network_latency() const { return network_latency_; }
  const RunningStat& hops() const { return hops_; }

  ResilienceCounters& resilience() { return resilience_; }
  const ResilienceCounters& resilience() const { return resilience_; }

  /// Registers packet/latency statistics (and the resilience counters)
  /// into `reg` under "noc.*" / "resilience.*".
  void export_metrics(MetricsRegistry& reg) const {
    reg.counter("noc.packets_generated").set(generated_);
    reg.counter("noc.packets_ejected").set(ejected_);
    reg.counter("noc.flits_ejected").set(flits_ejected_);
    reg.counter("noc.unclassified_packets").set(unclassified_latency().count());
    reg.gauge("noc.packet_latency.mean").set(packet_latency_.mean());
    reg.gauge("noc.packet_latency.max").set(packet_latency_.max());
    reg.gauge("noc.packet_latency.p50").set(latency_quantile(0.5));
    reg.gauge("noc.packet_latency.p99").set(latency_quantile(0.99));
    reg.gauge("noc.network_latency.mean").set(network_latency_.mean());
    reg.gauge("noc.hops.mean").set(hops_.mean());
    resilience_.export_metrics(reg);
  }

  /// Checkpoint/restore of the full accumulator state, including the
  /// measuring flag — restoring mid-measure resumes tagging correctly.
  void save_state(snapshot::Writer& w) const {
    w.begin_section("stats");
    w.b(measuring_);
    w.u64(generated_);
    w.u64(ejected_);
    w.u64(flits_ejected_);
    packet_latency_.save_state(w);
    network_latency_.save_state(w);
    hops_.save_state(w);
    latency_hist_.save_state(w);
    for (const RunningStat& s : class_latency_) s.save_state(w);
    w.u64(resilience_.retransmissions);
    w.u64(resilience_.timeouts);
    w.u64(resilience_.corrupted_packets);
    w.u64(resilience_.dropped_packets);
    w.u64(resilience_.duplicates);
    w.u64(resilience_.acks_sent);
    w.u64(resilience_.nacks_sent);
    w.end_section();
  }

  void load_state(snapshot::Reader& r) {
    r.begin_section("stats");
    measuring_ = r.b();
    generated_ = r.u64();
    ejected_ = r.u64();
    flits_ejected_ = r.u64();
    packet_latency_.load_state(r);
    network_latency_.load_state(r);
    hops_.load_state(r);
    latency_hist_.load_state(r);
    for (RunningStat& s : class_latency_) s.load_state(r);
    resilience_.retransmissions = r.u64();
    resilience_.timeouts = r.u64();
    resilience_.corrupted_packets = r.u64();
    resilience_.dropped_packets = r.u64();
    resilience_.duplicates = r.u64();
    resilience_.acks_sent = r.u64();
    resilience_.nacks_sent = r.u64();
    r.end_section();
  }

 private:
  struct DeferredEject {
    double packet_latency;
    double network_latency;
    int hops;
    int msg_class;
  };

  bool measuring_ = false;
  StatsCollector* master_ = nullptr;  ///< non-null = deferred (shard) mode
  std::vector<DeferredEject> deferred_ejects_;
  std::uint64_t generated_ = 0;
  std::uint64_t ejected_ = 0;
  std::uint64_t flits_ejected_ = 0;
  RunningStat packet_latency_;
  RunningStat network_latency_;
  RunningStat hops_;
  Histogram latency_hist_;
  // One slot per tracked class plus the trailing unclassified bucket.
  std::array<RunningStat, kMaxStatClasses + 1> class_latency_;
  ResilienceCounters resilience_;
};

}  // namespace nocs::noc
