// Shared latency/throughput statistics collector for one simulation.
#pragma once

#include <array>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Upper bound on message classes tracked separately by the collector.
inline constexpr int kMaxStatClasses = 4;

/// End-to-end protection activity (all zero on a fault-free run).  Bumped
/// by the network interfaces; retransmissions and control packets add
/// offered load but never touch the packet-latency statistics.
struct ResilienceCounters {
  std::uint64_t retransmissions = 0;    ///< data packets re-queued (any cause)
  std::uint64_t timeouts = 0;           ///< retransmissions due to ACK timeout
  std::uint64_t corrupted_packets = 0;  ///< packets discarded by the checksum
  std::uint64_t dropped_packets = 0;    ///< packets lost at injection (faults)
  std::uint64_t duplicates = 0;         ///< re-deliveries the filter removed
  std::uint64_t acks_sent = 0;
  std::uint64_t nacks_sent = 0;
};

/// Gathers packet-level statistics from all network interfaces.  The
/// simulator toggles `set_measuring()` around the measurement window;
/// packets generated while measuring are tagged and only they contribute
/// to latency statistics (the standard warmup/measure/drain methodology).
class StatsCollector {
 public:
  StatsCollector() : latency_hist_(2.0, 512) {}  // 2-cycle bins to 1024

  void reset() { *this = StatsCollector{}; }

  void set_measuring(bool m) { measuring_ = m; }
  bool measuring() const { return measuring_; }

  /// Called by the source NI when a measured packet is generated.
  void on_packet_generated() { ++generated_; }

  /// Called by the destination NI when a measured packet's tail ejects.
  /// `packet_latency` = tail eject - generation (includes source queueing);
  /// `network_latency` = tail eject - head injection.
  void on_packet_ejected(double packet_latency, double network_latency,
                         int hops, int msg_class = 0) {
    ++ejected_;
    packet_latency_.add(packet_latency);
    network_latency_.add(network_latency);
    hops_.add(static_cast<double>(hops));
    latency_hist_.add(packet_latency);
    if (msg_class >= 0 && msg_class < kMaxStatClasses)
      class_latency_[static_cast<std::size_t>(msg_class)].add(packet_latency);
  }

  /// Per-message-class packet latency (e.g. class 0 = requests, class 1 =
  /// data replies in protocol mode).
  const RunningStat& class_latency(int msg_class) const {
    NOCS_EXPECTS(msg_class >= 0 && msg_class < kMaxStatClasses);
    return class_latency_[static_cast<std::size_t>(msg_class)];
  }

  /// Packet-latency quantile (e.g. 0.99 for the tail latency interactive
  /// workloads care about), estimated from 2-cycle histogram bins.
  double latency_quantile(double q) const { return latency_hist_.quantile(q); }

  /// Called per measured flit ejected (throughput accounting).
  void on_flit_ejected() { ++flits_ejected_; }

  std::uint64_t generated_packets() const { return generated_; }
  std::uint64_t ejected_packets() const { return ejected_; }
  std::uint64_t ejected_flits() const { return flits_ejected_; }

  /// True once every measured packet has been drained.
  bool all_drained() const { return ejected_ >= generated_; }

  const RunningStat& packet_latency() const { return packet_latency_; }
  const RunningStat& network_latency() const { return network_latency_; }
  const RunningStat& hops() const { return hops_; }

  ResilienceCounters& resilience() { return resilience_; }
  const ResilienceCounters& resilience() const { return resilience_; }

 private:
  bool measuring_ = false;
  std::uint64_t generated_ = 0;
  std::uint64_t ejected_ = 0;
  std::uint64_t flits_ejected_ = 0;
  RunningStat packet_latency_;
  RunningStat network_latency_;
  RunningStat hops_;
  Histogram latency_hist_;
  std::array<RunningStat, kMaxStatClasses> class_latency_;
  ResilienceCounters resilience_;
};

}  // namespace nocs::noc
