// Synthetic traffic patterns over an arbitrary set of active endpoints.
//
// Fine-grained sprinting activates k of the N mesh nodes; traffic is
// generated between *logical* endpoints 0..k-1 and mapped onto physical
// nodes through an endpoint table.  For NoC-sprinting the table is the
// convex prefix from Algorithm 1; for the paper's full-sprinting baseline
// it is a random k-subset of the full mesh (averaged over samples), with
// every router powered on for forwarding.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Destination selector over logical endpoint ids [0, k).
///
/// Self-send policy (explicit, enforced): dest() never returns `src`.  A
/// node has no network path to itself — NetworkInterface::send_packet
/// asserts dst != self — so every pattern must resolve self-mappings
/// internally (uniform draws exclude the source, permutations redirect a
/// fixed point to the next endpoint, ring successors rely on k >= 2).
/// The public dest() is a non-virtual wrapper that checks the contract on
/// every draw; implementations override pick().  The checks cost nothing
/// measurable next to the simulation and turn a subtle small-mesh traffic
/// bug (self-addressed packets aborting deep inside the NI) into an
/// immediate contract failure at the pattern that produced it.
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Returns the logical destination for a packet injected by logical
  /// source `src` in [0, k); the result is in [0, k) and never `src`.
  int dest(int src, Rng& rng) const {
    NOCS_EXPECTS(src >= 0 && src < k_);
    const int d = pick(src, rng);
    NOCS_ENSURES(d >= 0 && d < k_);
    NOCS_ENSURES(d != src);
    return d;
  }

  virtual const char* name() const = 0;

  int num_endpoints() const { return k_; }

 protected:
  explicit TrafficPattern(int num_endpoints) : k_(num_endpoints) {
    NOCS_EXPECTS(num_endpoints >= 2);
  }

  /// Implementation hook behind the dest() contract checks.
  virtual int pick(int src, Rng& rng) const = 0;

  int k_;
};

/// Uniform-random: every other endpoint equally likely (the pattern used in
/// the paper's Figure 11 sweeps).
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(int num_endpoints) : TrafficPattern(num_endpoints) {}
  const char* name() const override { return "uniform"; }

 protected:
  int pick(int src, Rng& rng) const override;
};

/// Permutation traffic: dst = perm[src]; self-mappings redirected to the
/// next endpoint.  Base for transpose / bit-complement / bit-reverse /
/// shuffle.
class PermutationTraffic : public TrafficPattern {
 public:
  PermutationTraffic(int num_endpoints, std::vector<int> perm,
                     std::string name);
  const char* name() const override { return name_.c_str(); }

 protected:
  int pick(int src, Rng& rng) const override;

 private:
  std::vector<int> perm_;
  std::string name_;
};

/// Hotspot: a fraction of packets goes to one hot endpoint, the rest are
/// uniform.  Models the master-node pressure (memory controller) the paper
/// discusses.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(int num_endpoints, int hot, double hot_fraction);
  const char* name() const override { return "hotspot"; }

 protected:
  int pick(int src, Rng& rng) const override;

 private:
  int hot_;
  double hot_fraction_;
};

/// Nearest-neighbor ring: dst = (src + 1) mod k.
class NeighborTraffic final : public TrafficPattern {
 public:
  explicit NeighborTraffic(int num_endpoints)
      : TrafficPattern(num_endpoints) {}
  const char* name() const override { return "neighbor"; }

 protected:
  int pick(int src, Rng&) const override { return (src + 1) % k_; }
};

/// Builds the classic BookSim permutations on ceil(log2 k)-bit ids; for
/// non-power-of-two k, out-of-range images are folded back by cycle
/// walking (re-applying the bijection), which preserves the permutation
/// property.  `kind` is one of "transpose", "bitcomp", "bitrev",
/// "shuffle".
std::unique_ptr<TrafficPattern> make_permutation(const std::string& kind,
                                                 int num_endpoints);

/// Factory over all pattern names ("uniform", "neighbor", "hotspot",
/// "transpose", "bitcomp", "bitrev", "shuffle").
std::unique_ptr<TrafficPattern> make_traffic(const std::string& kind,
                                             int num_endpoints);

}  // namespace nocs::noc
