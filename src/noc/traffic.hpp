// Synthetic traffic patterns over an arbitrary set of active endpoints.
//
// Fine-grained sprinting activates k of the N mesh nodes; traffic is
// generated between *logical* endpoints 0..k-1 and mapped onto physical
// nodes through an endpoint table.  For NoC-sprinting the table is the
// convex prefix from Algorithm 1; for the paper's full-sprinting baseline
// it is a random k-subset of the full mesh (averaged over samples), with
// every router powered on for forwarding.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace nocs::noc {

/// Destination selector over logical endpoint ids [0, k).
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Returns the logical destination for a packet injected by logical
  /// source `src`; must not return `src` itself.
  virtual int dest(int src, Rng& rng) const = 0;

  virtual const char* name() const = 0;

 protected:
  explicit TrafficPattern(int num_endpoints) : k_(num_endpoints) {
    NOCS_EXPECTS(num_endpoints >= 2);
  }
  int k_;
};

/// Uniform-random: every other endpoint equally likely (the pattern used in
/// the paper's Figure 11 sweeps).
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(int num_endpoints) : TrafficPattern(num_endpoints) {}
  int dest(int src, Rng& rng) const override;
  const char* name() const override { return "uniform"; }
};

/// Permutation traffic: dst = perm[src]; self-mappings redirected to the
/// next endpoint.  Base for transpose / bit-complement / bit-reverse /
/// shuffle.
class PermutationTraffic : public TrafficPattern {
 public:
  PermutationTraffic(int num_endpoints, std::vector<int> perm,
                     std::string name);
  int dest(int src, Rng& rng) const override;
  const char* name() const override { return name_.c_str(); }

 private:
  std::vector<int> perm_;
  std::string name_;
};

/// Hotspot: a fraction of packets goes to one hot endpoint, the rest are
/// uniform.  Models the master-node pressure (memory controller) the paper
/// discusses.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(int num_endpoints, int hot, double hot_fraction);
  int dest(int src, Rng& rng) const override;
  const char* name() const override { return "hotspot"; }

 private:
  int hot_;
  double hot_fraction_;
};

/// Nearest-neighbor ring: dst = (src + 1) mod k.
class NeighborTraffic final : public TrafficPattern {
 public:
  explicit NeighborTraffic(int num_endpoints)
      : TrafficPattern(num_endpoints) {}
  int dest(int src, Rng&) const override { return (src + 1) % k_; }
  const char* name() const override { return "neighbor"; }
};

/// Builds the classic BookSim permutations on ceil(log2 k)-bit ids, with
/// out-of-range results folded back with modulo.  `kind` is one of
/// "transpose", "bitcomp", "bitrev", "shuffle".
std::unique_ptr<TrafficPattern> make_permutation(const std::string& kind,
                                                 int num_endpoints);

/// Factory over all pattern names ("uniform", "neighbor", "hotspot",
/// "transpose", "bitcomp", "bitrev", "shuffle").
std::unique_ptr<TrafficPattern> make_traffic(const std::string& kind,
                                             int num_endpoints);

}  // namespace nocs::noc
