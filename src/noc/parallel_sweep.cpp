#include "noc/parallel_sweep.hpp"

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace nocs::noc {

std::vector<SweepPoint> parallel_sweep_injection(
    const SweepRunner& run, const std::vector<double>& rates,
    std::uint64_t base_seed, int num_threads) {
  NOCS_EXPECTS(run != nullptr);
  std::vector<SweepPoint> points(rates.size());
  ParallelFor(
      rates.size(),
      [&](std::size_t i) {
        const SweepTask task{i, rates[i], task_seed(base_seed, i)};
        const trace::HostScope span(
            "sweep[" + std::to_string(i) +
                "] rate=" + std::to_string(rates[i]),
            "sweep", static_cast<int>(i));
        points[i].injection_rate = rates[i];
        points[i].results = run(task);
      },
      num_threads);
  return points;
}

std::vector<SimResults> parallel_samples(const SweepRunner& run,
                                         std::size_t num_samples,
                                         double injection_rate,
                                         std::uint64_t base_seed,
                                         int num_threads) {
  NOCS_EXPECTS(run != nullptr);
  std::vector<SimResults> results(num_samples);
  ParallelFor(
      num_samples,
      [&](std::size_t i) {
        const SweepTask task{i, injection_rate, task_seed(base_seed, i)};
        const trace::HostScope span("sample[" + std::to_string(i) + "]",
                                    "sweep", static_cast<int>(i));
        results[i] = run(task);
      },
      num_threads);
  return results;
}

std::string sweep_fingerprint(const std::vector<double>& rates,
                              std::uint64_t base_seed) {
  std::string fp = "sweep:n=" + std::to_string(rates.size()) +
                   ";seed=" + std::to_string(base_seed) + ";rates=";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i != 0) fp += ',';
    fp += json::format_number(rates[i]);
  }
  return fp;
}

namespace {

bool stop_set(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_acquire);
}

}  // namespace

std::vector<SweepPoint> resumable_sweep_injection(
    const SweepRunner& run, const std::vector<double>& rates,
    std::uint64_t base_seed, snapshot::TaskManifest* manifest,
    int num_threads, const std::atomic<bool>* stop) {
  if ((manifest == nullptr || !manifest->enabled()) && stop == nullptr)
    return parallel_sweep_injection(run, rates, base_seed, num_threads);
  NOCS_EXPECTS(run != nullptr);

  std::vector<SweepPoint> points(rates.size());
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    points[i].injection_rate = rates[i];
    if (manifest != nullptr && manifest->completed(i)) {
      points[i].results = sim_results_from_json(manifest->result(i));
    } else {
      points[i].results.interrupted = true;  // cleared when the task runs
      todo.push_back(i);
    }
  }
  ParallelFor(
      todo.size(),
      [&](std::size_t k) {
        const std::size_t i = todo[k];
        if (stop_set(stop)) return;  // shutdown: claim no new work
        const SweepTask task{i, rates[i], task_seed(base_seed, i)};
        const trace::HostScope span(
            "sweep[" + std::to_string(i) +
                "] rate=" + std::to_string(rates[i]),
            "sweep", static_cast<int>(i));
        points[i].results = run(task);
        // A run the shutdown flag cut short is partial — keep it out of
        // the manifest so the resumed sweep redoes it from scratch.
        if (points[i].results.interrupted) return;
        if (manifest != nullptr)
          manifest->record(i, to_json(points[i].results));
      },
      num_threads);
  return points;
}

std::vector<SimResults> resumable_samples(const SweepRunner& run,
                                          std::size_t num_samples,
                                          double injection_rate,
                                          std::uint64_t base_seed,
                                          snapshot::TaskManifest* manifest,
                                          int num_threads,
                                          const std::atomic<bool>* stop) {
  if ((manifest == nullptr || !manifest->enabled()) && stop == nullptr)
    return parallel_samples(run, num_samples, injection_rate, base_seed,
                            num_threads);
  NOCS_EXPECTS(run != nullptr);

  std::vector<SimResults> results(num_samples);
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < num_samples; ++i) {
    if (manifest != nullptr && manifest->completed(i)) {
      results[i] = sim_results_from_json(manifest->result(i));
    } else {
      results[i].interrupted = true;  // cleared when the task runs
      todo.push_back(i);
    }
  }
  ParallelFor(
      todo.size(),
      [&](std::size_t k) {
        const std::size_t i = todo[k];
        if (stop_set(stop)) return;
        const SweepTask task{i, injection_rate, task_seed(base_seed, i)};
        const trace::HostScope span("sample[" + std::to_string(i) + "]",
                                    "sweep", static_cast<int>(i));
        results[i] = run(task);
        if (results[i].interrupted) return;
        if (manifest != nullptr) manifest->record(i, to_json(results[i]));
      },
      num_threads);
  return results;
}

}  // namespace nocs::noc
