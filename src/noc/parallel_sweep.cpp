#include "noc/parallel_sweep.hpp"

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace nocs::noc {

std::vector<SweepPoint> parallel_sweep_injection(
    const SweepRunner& run, const std::vector<double>& rates,
    std::uint64_t base_seed, int num_threads) {
  NOCS_EXPECTS(run != nullptr);
  std::vector<SweepPoint> points(rates.size());
  ParallelFor(
      rates.size(),
      [&](std::size_t i) {
        const SweepTask task{i, rates[i], task_seed(base_seed, i)};
        const trace::HostScope span(
            "sweep[" + std::to_string(i) +
                "] rate=" + std::to_string(rates[i]),
            "sweep", static_cast<int>(i));
        points[i].injection_rate = rates[i];
        points[i].results = run(task);
      },
      num_threads);
  return points;
}

std::vector<SimResults> parallel_samples(const SweepRunner& run,
                                         std::size_t num_samples,
                                         double injection_rate,
                                         std::uint64_t base_seed,
                                         int num_threads) {
  NOCS_EXPECTS(run != nullptr);
  std::vector<SimResults> results(num_samples);
  ParallelFor(
      num_samples,
      [&](std::size_t i) {
        const SweepTask task{i, injection_rate, task_seed(base_seed, i)};
        const trace::HostScope span("sample[" + std::to_string(i) + "]",
                                    "sweep", static_cast<int>(i));
        results[i] = run(task);
      },
      num_threads);
  return results;
}

}  // namespace nocs::noc
