#include "noc/simulator.hpp"

#include <algorithm>

#include "common/trace.hpp"

namespace nocs::noc {

namespace {

/// One per-window trace sample: in-flight packets, hot routers,
/// cumulative retransmissions, and per-router buffer occupancy.
void emit_trace_sample(const Network& net) {
  const double ts = static_cast<double>(net.now());
  const StatsCollector& s = net.stats();

  json::Value activity = json::Value::object();
  const auto generated = s.generated_packets();
  const auto ejected = s.ejected_packets();
  activity.set("in_flight",
               generated > ejected
                   ? static_cast<double>(generated - ejected)
                   : 0.0);
  activity.set("hot_routers", static_cast<double>(net.hot_routers()));
  trace::counter("network_activity", trace::kSimPid, ts, std::move(activity));

  json::Value retx = json::Value::object();
  retx.set("retransmissions",
           static_cast<double>(s.resilience().retransmissions));
  trace::counter("retransmissions", trace::kSimPid, ts, std::move(retx));

  // Per-router occupancy renders as one stacked counter track; cap the
  // series count so large meshes do not bloat the trace.
  if (net.num_nodes() <= 64) {
    json::Value occ = json::Value::object();
    for (NodeId id = 0; id < net.num_nodes(); ++id)
      occ.set("r" + std::to_string(id),
              static_cast<double>(net.router(id).buffered_flits()));
    trace::counter("router_occupancy", trace::kSimPid, ts, std::move(occ));
  }
}

}  // namespace

SimResults run_simulation(Network& net, const SimConfig& cfg) {
  return run_simulation(net, cfg, CheckpointConfig{});
}

SimResults run_simulation(Network& net, const SimConfig& cfg,
                          const CheckpointConfig& ckpt) {
  NOCS_EXPECTS(cfg.measure > 0);

  // Run progress through the warmup (0) / measure (1) / drain (2) state
  // machine.  All of it is serialized into checkpoints so a restored run
  // continues exactly where the saved one stopped.
  int phase = 0;
  Cycle done_in_phase = 0;
  Cycle drained_cycles = 0;
  bool hung = false;
  std::string diagnostic;
  std::uint64_t last_sig = 0;
  Cycle last_change = net.now();

  const bool restoring = !ckpt.restore_path.empty();
  if (!restoring) {
    net.reset_counters();
    net.stats().reset();
  }
  net.set_injection_rate(cfg.injection_rate);

  // Tracing is observational only: when no session is active every hook
  // below is a single predictable branch and the run takes the exact seed
  // code paths (bit-identical results).
  const bool tracing = trace::enabled();
  const Cycle sample_every =
      tracing && cfg.trace_sample > 0 ? cfg.trace_sample : 0;
  if (tracing) {
    trace::process_name(trace::kSimPid, "simulation (ts = cycles)");
    trace::process_name(trace::kHostPid, "host (ts = wall clock us)");
    trace::process_name(trace::kCtrlPid, "online controller (ts = bursts)");
  }

  // Livelock/deadlock watchdog: sample the flit-movement signature every
  // `poll` cycles; if it sits still for watchdog_cycles while flits are
  // still in flight, declare the run hung and capture a diagnostic.  With
  // watchdog_cycles == 0 and no tracing the phase chunks below reduce to
  // net.run(n) and the fault-free path is untouched.
  const Cycle poll =
      cfg.watchdog_cycles > 0
          ? std::max<Cycle>(1, std::min<Cycle>(cfg.watchdog_cycles / 4, 256))
          : 0;
  auto watchdog_check = [&]() {
    const std::uint64_t sig = net.progress_signature();
    if (sig != last_sig) {
      last_sig = sig;
      last_change = net.now();
    } else if (net.now() - last_change >= cfg.watchdog_cycles &&
               !net.drained()) {
      hung = true;
      diagnostic = net.debug_snapshot();
      if (tracing)
        trace::instant("watchdog_fired", "sim.fault", trace::kSimPid, 0,
                       static_cast<double>(net.now()));
    }
  };

  auto save_checkpoint = [&]() {
    snapshot::Writer w;
    // SimConfig echo: restoring under different phase lengths or load
    // would silently desynchronize the state machine, so restore verifies
    // this section against its own SimConfig.
    w.begin_section("config");
    w.u64(cfg.warmup);
    w.u64(cfg.measure);
    w.u64(cfg.drain_max);
    w.f64(cfg.injection_rate);
    w.u64(cfg.watchdog_cycles);
    w.end_section();
    w.begin_section("progress");
    w.i64(phase);
    w.u64(done_in_phase);
    w.u64(drained_cycles);
    w.b(hung);
    w.str(diagnostic);
    w.u64(last_sig);
    w.u64(last_change);
    w.end_section();
    net.save_state(w);
    w.i64(static_cast<std::int64_t>(ckpt.extras.size()));
    for (const auto& [name, comp] : ckpt.extras) {
      w.str(name);
      comp->save_state(w);
    }
    snapshot::save_file(ckpt.save_path, w);
  };

  if (restoring) {
    snapshot::Reader r = snapshot::load_file(ckpt.restore_path);
    r.begin_section("config");
    const bool config_ok =
        r.u64() == cfg.warmup && r.u64() == cfg.measure &&
        r.u64() == cfg.drain_max && r.f64() == cfg.injection_rate &&
        r.u64() == cfg.watchdog_cycles;
    if (!config_ok)
      throw snapshot::SnapshotError(
          "checkpoint was taken under a different SimConfig (warmup/"
          "measure/drain/injection/watchdog); refusing to resume");
    r.end_section();
    r.begin_section("progress");
    phase = static_cast<int>(r.i64());
    done_in_phase = r.u64();
    drained_cycles = r.u64();
    hung = r.b();
    diagnostic = r.str();
    last_sig = r.u64();
    last_change = r.u64();
    r.end_section();
    net.load_state(r);
    if (r.i64() != static_cast<std::int64_t>(ckpt.extras.size()))
      throw snapshot::SnapshotError(
          "checkpoint extra-component count disagrees with this run's "
          "CheckpointConfig");
    for (const auto& [name, comp] : ckpt.extras) {
      if (r.str() != name)
        throw snapshot::SnapshotError(
            "checkpoint extra-component order/name disagrees with this "
            "run's CheckpointConfig");
      comp->load_state(r);
    }
    if (r.remaining() != 0)
      throw snapshot::SnapshotError(
          "checkpoint has unread payload after all components");
  } else if (poll != 0) {
    last_sig = net.progress_signature();
  }

  auto run_chunk = [&](Cycle n) {
    if (poll == 0 && sample_every == 0) {
      net.run(n);
      return;
    }
    for (Cycle i = 0; i < n && !hung; ++i) {
      net.tick();
      if (poll != 0 && net.now() % poll == 0) watchdog_check();
      if (sample_every != 0 && net.now() % sample_every == 0)
        emit_trace_sample(net);
    }
  };

  const Cycle ckpt_every =
      !ckpt.save_path.empty() && ckpt.every > 0 ? ckpt.every : 0;
  bool interrupted = false;

  // Writes a periodic/stop checkpoint when the current cycle is a
  // boundary; returns true when the run must stop here.  Called only at
  // chunk boundaries, *after* phase transitions, so a snapshot taken
  // exactly at the end of warmup restores into the measure phase with the
  // measuring flag already on.
  auto checkpoint_boundary = [&]() {
    if (ckpt.on_progress) ckpt.on_progress(net.now());
    const bool stop_requested =
        ckpt.stop_flag != nullptr &&
        ckpt.stop_flag->load(std::memory_order_acquire);
    const bool at_stop =
        (ckpt.stop_at != 0 && net.now() >= ckpt.stop_at) || stop_requested;
    const bool at_period =
        ckpt_every != 0 && net.now() % ckpt_every == 0;
    if (!ckpt.save_path.empty() && (at_period || at_stop)) save_checkpoint();
    return at_stop;
  };

  const Cycle phase_lengths[2] = {cfg.warmup, cfg.measure};
  auto apply_transitions = [&]() {
    while (phase < 2 && done_in_phase >= phase_lengths[phase]) {
      const Cycle len = phase_lengths[phase];
      if (tracing)
        trace::complete(phase == 0 ? "warmup" : "measure", "sim.phase",
                        trace::kSimPid, 0,
                        static_cast<double>(net.now() - len),
                        static_cast<double>(len));
      net.stats().set_measuring(phase == 0);
      done_in_phase -= len;
      ++phase;
    }
  };

  apply_transitions();  // cfg.warmup == 0, or restored at a boundary
  while (!hung && !interrupted && phase < 2) {
    Cycle stride = phase_lengths[phase] - done_in_phase;
    if (ckpt_every != 0)
      stride = std::min(stride, ckpt_every - net.now() % ckpt_every);
    if (ckpt.stop_at > net.now())
      stride = std::min(stride, ckpt.stop_at - net.now());
    // Keep chunks short enough that a stop request is noticed within a
    // few thousand cycles; re-chunking net.run() never changes results.
    if (ckpt.stop_flag != nullptr) stride = std::min<Cycle>(stride, 2048);
    const Cycle before = net.now();
    run_chunk(stride);
    done_in_phase += net.now() - before;
    apply_transitions();
    if (checkpoint_boundary()) interrupted = true;
  }

  // Drain: keep injecting background (unmeasured) traffic so the network
  // stays under load while the tagged packets finish.
  if (!hung && !interrupted && phase == 2) {
    const Cycle drain_start = net.now() - drained_cycles;
    while (!net.stats().all_drained() && drained_cycles < cfg.drain_max &&
           !hung && !interrupted) {
      net.tick();
      ++drained_cycles;
      if (poll != 0 && net.now() % poll == 0) watchdog_check();
      if (sample_every != 0 && net.now() % sample_every == 0)
        emit_trace_sample(net);
      if (checkpoint_boundary()) interrupted = true;
    }
    if (tracing)
      trace::complete("drain", "sim.phase", trace::kSimPid, 0,
                      static_cast<double>(drain_start),
                      static_cast<double>(net.now() - drain_start));
  }

  SimResults r;
  r.hung = hung;
  r.interrupted = interrupted;
  r.diagnostic = std::move(diagnostic);
  const StatsCollector& s = net.stats();
  r.avg_packet_latency = s.packet_latency().mean();
  r.avg_network_latency = s.network_latency().mean();
  r.p50_latency = s.latency_quantile(0.5);
  r.p99_latency = s.latency_quantile(0.99);
  r.avg_hops = s.hops().mean();
  r.packets_generated = s.generated_packets();
  r.packets_ejected = s.ejected_packets();
  // ejected_flits() counts only measurement-tagged flits (those generated
  // inside the measurement window), so the normalization base is the window
  // length: the drain phase merely lets tagged flits finish and offers no
  // additional tagged load.  Dividing by measure + drain understated
  // throughput whenever draining took a while (i.e. near saturation).
  const auto active = static_cast<double>(net.endpoints().size());
  r.accepted_rate = active > 0
                        ? static_cast<double>(s.ejected_flits()) /
                              (static_cast<double>(cfg.measure) * active)
                        : 0.0;
  r.saturated = !s.all_drained();
  r.histogram_saturated = s.histogram_saturated();
  r.max_packet_latency = s.packet_latency().max();
  // Cycles actually simulated by this run: full phases behind the current
  // one plus progress within it (equals warmup + measure + drained_cycles
  // for any run that reached the drain phase).
  r.cycles = phase == 0 ? done_in_phase
             : phase == 1 ? cfg.warmup + done_in_phase
                          : cfg.warmup + cfg.measure + drained_cycles;
  r.counters = net.total_counters();
  r.resilience = s.resilience();
  return r;
}

void SimResults::export_metrics(MetricsRegistry& reg) const {
  reg.gauge("sim.avg_packet_latency").set(avg_packet_latency);
  reg.gauge("sim.avg_network_latency").set(avg_network_latency);
  reg.gauge("sim.p50_latency").set(p50_latency);
  reg.gauge("sim.p99_latency").set(p99_latency);
  reg.gauge("sim.max_packet_latency").set(max_packet_latency);
  reg.gauge("sim.avg_hops").set(avg_hops);
  reg.gauge("sim.accepted_rate").set(accepted_rate);
  reg.counter("sim.packets_generated").set(packets_generated);
  reg.counter("sim.packets_ejected").set(packets_ejected);
  reg.counter("sim.cycles").set(cycles);
  reg.counter("sim.saturated").set(saturated ? 1 : 0);
  reg.counter("sim.histogram_saturated").set(histogram_saturated ? 1 : 0);
  reg.counter("sim.hung").set(hung ? 1 : 0);
  counters.export_metrics(reg);
  resilience.export_metrics(reg);
}

json::Value to_json(const SimResults& r) {
  json::Value o = json::Value::object();
  o.set("avg_packet_latency", r.avg_packet_latency);
  o.set("avg_network_latency", r.avg_network_latency);
  o.set("p50_latency", r.p50_latency);
  o.set("p99_latency", r.p99_latency);
  o.set("max_packet_latency", r.max_packet_latency);
  o.set("avg_hops", r.avg_hops);
  o.set("packets_generated", r.packets_generated);
  o.set("packets_ejected", r.packets_ejected);
  o.set("accepted_rate", r.accepted_rate);
  o.set("saturated", r.saturated);
  o.set("histogram_saturated", r.histogram_saturated);
  o.set("hung", r.hung);
  if (r.hung) o.set("diagnostic", r.diagnostic);
  o.set("interrupted", r.interrupted);
  o.set("cycles", r.cycles);

  json::Value c = json::Value::object();
  c.set("buffer_writes", r.counters.buffer_writes);
  c.set("buffer_reads", r.counters.buffer_reads);
  c.set("xbar_traversals", r.counters.xbar_traversals);
  c.set("vc_allocs", r.counters.vc_allocs);
  c.set("sa_arbitrations", r.counters.sa_arbitrations);
  c.set("link_flits", r.counters.link_flits);
  c.set("active_cycles", r.counters.active_cycles);
  c.set("gated_cycles", r.counters.gated_cycles);
  c.set("waking_cycles", r.counters.waking_cycles);
  c.set("wake_events", r.counters.wake_events);
  c.set("idle_active_cycles", r.counters.idle_active_cycles);
  c.set("flits_corrupted", r.counters.flits_corrupted);
  c.set("reroutes", r.counters.reroutes);
  c.set("wake_failures", r.counters.wake_failures);
  c.set("mc_replications", r.counters.mc_replications);
  c.set("mc_flits", r.counters.mc_flits);
  o.set("counters", std::move(c));

  json::Value res = json::Value::object();
  res.set("retransmissions", r.resilience.retransmissions);
  res.set("timeouts", r.resilience.timeouts);
  res.set("corrupted_packets", r.resilience.corrupted_packets);
  res.set("dropped_packets", r.resilience.dropped_packets);
  res.set("duplicates", r.resilience.duplicates);
  res.set("acks_sent", r.resilience.acks_sent);
  res.set("nacks_sent", r.resilience.nacks_sent);
  o.set("resilience", std::move(res));
  return o;
}

SimResults sim_results_from_json(const json::Value& v) {
  SimResults r;
  r.avg_packet_latency = v.at("avg_packet_latency").as_number();
  r.avg_network_latency = v.at("avg_network_latency").as_number();
  r.p50_latency = v.at("p50_latency").as_number();
  r.p99_latency = v.at("p99_latency").as_number();
  r.max_packet_latency = v.at("max_packet_latency").as_number();
  r.avg_hops = v.at("avg_hops").as_number();
  r.packets_generated =
      static_cast<std::uint64_t>(v.at("packets_generated").as_number());
  r.packets_ejected =
      static_cast<std::uint64_t>(v.at("packets_ejected").as_number());
  r.accepted_rate = v.at("accepted_rate").as_number();
  r.saturated = v.at("saturated").as_bool();
  r.histogram_saturated = v.at("histogram_saturated").as_bool();
  r.hung = v.at("hung").as_bool();
  if (const json::Value* d = v.find("diagnostic")) r.diagnostic = d->as_string();
  if (const json::Value* i = v.find("interrupted"))
    r.interrupted = i->as_bool();
  r.cycles = static_cast<Cycle>(v.at("cycles").as_number());

  const json::Value& c = v.at("counters");
  const auto u64_of = [](const json::Value& field) {
    return static_cast<std::uint64_t>(field.as_number());
  };
  r.counters.buffer_writes = u64_of(c.at("buffer_writes"));
  r.counters.buffer_reads = u64_of(c.at("buffer_reads"));
  r.counters.xbar_traversals = u64_of(c.at("xbar_traversals"));
  r.counters.vc_allocs = u64_of(c.at("vc_allocs"));
  r.counters.sa_arbitrations = u64_of(c.at("sa_arbitrations"));
  r.counters.link_flits = u64_of(c.at("link_flits"));
  r.counters.active_cycles = u64_of(c.at("active_cycles"));
  r.counters.gated_cycles = u64_of(c.at("gated_cycles"));
  r.counters.waking_cycles = u64_of(c.at("waking_cycles"));
  r.counters.wake_events = u64_of(c.at("wake_events"));
  r.counters.idle_active_cycles = u64_of(c.at("idle_active_cycles"));
  r.counters.flits_corrupted = u64_of(c.at("flits_corrupted"));
  r.counters.reroutes = u64_of(c.at("reroutes"));
  r.counters.wake_failures = u64_of(c.at("wake_failures"));
  r.counters.mc_replications = u64_of(c.at("mc_replications"));
  r.counters.mc_flits = u64_of(c.at("mc_flits"));

  const json::Value& res = v.at("resilience");
  r.resilience.retransmissions = u64_of(res.at("retransmissions"));
  r.resilience.timeouts = u64_of(res.at("timeouts"));
  r.resilience.corrupted_packets = u64_of(res.at("corrupted_packets"));
  r.resilience.dropped_packets = u64_of(res.at("dropped_packets"));
  r.resilience.duplicates = u64_of(res.at("duplicates"));
  r.resilience.acks_sent = u64_of(res.at("acks_sent"));
  r.resilience.nacks_sent = u64_of(res.at("nacks_sent"));
  return r;
}

bool write_report(const std::string& path, const json::Value& v) {
  return json::write_file(path, v);
}

std::vector<SweepPoint> sweep_injection(Network& net, SimConfig cfg,
                                        const std::vector<double>& rates,
                                        bool stop_at_saturation) {
  std::vector<SweepPoint> points;
  points.reserve(rates.size());
  bool saturated = false;
  for (double rate : rates) {
    SweepPoint pt;
    pt.injection_rate = rate;
    if (saturated && stop_at_saturation) {
      pt.results.saturated = true;
    } else {
      cfg.injection_rate = rate;
      pt.results = run_simulation(net, cfg);
      saturated = saturated || pt.results.saturated;
    }
    points.push_back(pt);
  }
  return points;
}

}  // namespace nocs::noc
