#include "noc/simulator.hpp"

#include <algorithm>

#include "common/trace.hpp"

namespace nocs::noc {

namespace {

/// One per-window trace sample: in-flight packets, hot routers,
/// cumulative retransmissions, and per-router buffer occupancy.
void emit_trace_sample(const Network& net) {
  const double ts = static_cast<double>(net.now());
  const StatsCollector& s = net.stats();

  json::Value activity = json::Value::object();
  const auto generated = s.generated_packets();
  const auto ejected = s.ejected_packets();
  activity.set("in_flight",
               generated > ejected
                   ? static_cast<double>(generated - ejected)
                   : 0.0);
  activity.set("hot_routers", static_cast<double>(net.hot_routers()));
  trace::counter("network_activity", trace::kSimPid, ts, std::move(activity));

  json::Value retx = json::Value::object();
  retx.set("retransmissions",
           static_cast<double>(s.resilience().retransmissions));
  trace::counter("retransmissions", trace::kSimPid, ts, std::move(retx));

  // Per-router occupancy renders as one stacked counter track; cap the
  // series count so large meshes do not bloat the trace.
  if (net.num_nodes() <= 64) {
    json::Value occ = json::Value::object();
    for (NodeId id = 0; id < net.num_nodes(); ++id)
      occ.set("r" + std::to_string(id),
              static_cast<double>(net.router(id).buffered_flits()));
    trace::counter("router_occupancy", trace::kSimPid, ts, std::move(occ));
  }
}

}  // namespace

SimResults run_simulation(Network& net, const SimConfig& cfg) {
  NOCS_EXPECTS(cfg.measure > 0);
  net.reset_counters();
  net.stats().reset();
  net.set_injection_rate(cfg.injection_rate);

  // Tracing is observational only: when no session is active every hook
  // below is a single predictable branch and the run takes the exact seed
  // code paths (bit-identical results).
  const bool tracing = trace::enabled();
  const Cycle sample_every =
      tracing && cfg.trace_sample > 0 ? cfg.trace_sample : 0;
  if (tracing) {
    trace::process_name(trace::kSimPid, "simulation (ts = cycles)");
    trace::process_name(trace::kHostPid, "host (ts = wall clock us)");
    trace::process_name(trace::kCtrlPid, "online controller (ts = bursts)");
  }

  // Livelock/deadlock watchdog: sample the flit-movement signature every
  // `poll` cycles; if it sits still for watchdog_cycles while flits are
  // still in flight, declare the run hung and capture a diagnostic.  With
  // watchdog_cycles == 0 and no tracing the phase loops below reduce to
  // net.run(n) and the fault-free path is untouched.
  bool hung = false;
  std::string diagnostic;
  std::uint64_t last_sig = 0;
  Cycle last_change = net.now();
  const Cycle poll =
      cfg.watchdog_cycles > 0
          ? std::max<Cycle>(1, std::min<Cycle>(cfg.watchdog_cycles / 4, 256))
          : 0;
  auto watchdog_check = [&]() {
    const std::uint64_t sig = net.progress_signature();
    if (sig != last_sig) {
      last_sig = sig;
      last_change = net.now();
    } else if (net.now() - last_change >= cfg.watchdog_cycles &&
               !net.drained()) {
      hung = true;
      diagnostic = net.debug_snapshot();
      if (tracing)
        trace::instant("watchdog_fired", "sim.fault", trace::kSimPid, 0,
                       static_cast<double>(net.now()));
    }
  };
  auto run_phase = [&](Cycle n) {
    if (poll == 0 && sample_every == 0) {
      net.run(n);
      return;
    }
    for (Cycle i = 0; i < n && !hung; ++i) {
      net.tick();
      if (poll != 0 && net.now() % poll == 0) watchdog_check();
      if (sample_every != 0 && net.now() % sample_every == 0)
        emit_trace_sample(net);
    }
  };
  auto traced_phase = [&](const char* name, Cycle n) {
    const Cycle start = net.now();
    run_phase(n);
    if (tracing)
      trace::complete(name, "sim.phase", trace::kSimPid, 0,
                      static_cast<double>(start),
                      static_cast<double>(net.now() - start));
  };
  if (poll != 0) last_sig = net.progress_signature();

  traced_phase("warmup", cfg.warmup);

  net.stats().set_measuring(true);
  traced_phase("measure", cfg.measure);
  net.stats().set_measuring(false);

  // Drain: keep injecting background (unmeasured) traffic so the network
  // stays under load while the tagged packets finish.
  const Cycle drain_start = net.now();
  Cycle drained_cycles = 0;
  while (!net.stats().all_drained() && drained_cycles < cfg.drain_max &&
         !hung) {
    net.tick();
    ++drained_cycles;
    if (poll != 0 && net.now() % poll == 0) watchdog_check();
    if (sample_every != 0 && net.now() % sample_every == 0)
      emit_trace_sample(net);
  }
  if (tracing)
    trace::complete("drain", "sim.phase", trace::kSimPid, 0,
                    static_cast<double>(drain_start),
                    static_cast<double>(net.now() - drain_start));

  SimResults r;
  r.hung = hung;
  r.diagnostic = std::move(diagnostic);
  const StatsCollector& s = net.stats();
  r.avg_packet_latency = s.packet_latency().mean();
  r.avg_network_latency = s.network_latency().mean();
  r.p50_latency = s.latency_quantile(0.5);
  r.p99_latency = s.latency_quantile(0.99);
  r.avg_hops = s.hops().mean();
  r.packets_generated = s.generated_packets();
  r.packets_ejected = s.ejected_packets();
  // ejected_flits() counts only measurement-tagged flits (those generated
  // inside the measurement window), so the normalization base is the window
  // length: the drain phase merely lets tagged flits finish and offers no
  // additional tagged load.  Dividing by measure + drain understated
  // throughput whenever draining took a while (i.e. near saturation).
  const auto active = static_cast<double>(net.endpoints().size());
  r.accepted_rate = active > 0
                        ? static_cast<double>(s.ejected_flits()) /
                              (static_cast<double>(cfg.measure) * active)
                        : 0.0;
  r.saturated = !s.all_drained();
  r.histogram_saturated = s.histogram_saturated();
  r.max_packet_latency = s.packet_latency().max();
  r.cycles = cfg.warmup + cfg.measure + drained_cycles;
  r.counters = net.total_counters();
  r.resilience = s.resilience();
  return r;
}

void SimResults::export_metrics(MetricsRegistry& reg) const {
  reg.gauge("sim.avg_packet_latency").set(avg_packet_latency);
  reg.gauge("sim.avg_network_latency").set(avg_network_latency);
  reg.gauge("sim.p50_latency").set(p50_latency);
  reg.gauge("sim.p99_latency").set(p99_latency);
  reg.gauge("sim.max_packet_latency").set(max_packet_latency);
  reg.gauge("sim.avg_hops").set(avg_hops);
  reg.gauge("sim.accepted_rate").set(accepted_rate);
  reg.counter("sim.packets_generated").set(packets_generated);
  reg.counter("sim.packets_ejected").set(packets_ejected);
  reg.counter("sim.cycles").set(cycles);
  reg.counter("sim.saturated").set(saturated ? 1 : 0);
  reg.counter("sim.histogram_saturated").set(histogram_saturated ? 1 : 0);
  reg.counter("sim.hung").set(hung ? 1 : 0);
  counters.export_metrics(reg);
  resilience.export_metrics(reg);
}

json::Value to_json(const SimResults& r) {
  json::Value o = json::Value::object();
  o.set("avg_packet_latency", r.avg_packet_latency);
  o.set("avg_network_latency", r.avg_network_latency);
  o.set("p50_latency", r.p50_latency);
  o.set("p99_latency", r.p99_latency);
  o.set("max_packet_latency", r.max_packet_latency);
  o.set("avg_hops", r.avg_hops);
  o.set("packets_generated", r.packets_generated);
  o.set("packets_ejected", r.packets_ejected);
  o.set("accepted_rate", r.accepted_rate);
  o.set("saturated", r.saturated);
  o.set("histogram_saturated", r.histogram_saturated);
  o.set("hung", r.hung);
  if (r.hung) o.set("diagnostic", r.diagnostic);
  o.set("cycles", r.cycles);

  json::Value c = json::Value::object();
  c.set("buffer_writes", r.counters.buffer_writes);
  c.set("buffer_reads", r.counters.buffer_reads);
  c.set("xbar_traversals", r.counters.xbar_traversals);
  c.set("vc_allocs", r.counters.vc_allocs);
  c.set("sa_arbitrations", r.counters.sa_arbitrations);
  c.set("link_flits", r.counters.link_flits);
  c.set("active_cycles", r.counters.active_cycles);
  c.set("gated_cycles", r.counters.gated_cycles);
  c.set("waking_cycles", r.counters.waking_cycles);
  c.set("wake_events", r.counters.wake_events);
  c.set("idle_active_cycles", r.counters.idle_active_cycles);
  c.set("flits_corrupted", r.counters.flits_corrupted);
  c.set("reroutes", r.counters.reroutes);
  c.set("wake_failures", r.counters.wake_failures);
  o.set("counters", std::move(c));

  json::Value res = json::Value::object();
  res.set("retransmissions", r.resilience.retransmissions);
  res.set("timeouts", r.resilience.timeouts);
  res.set("corrupted_packets", r.resilience.corrupted_packets);
  res.set("dropped_packets", r.resilience.dropped_packets);
  res.set("duplicates", r.resilience.duplicates);
  res.set("acks_sent", r.resilience.acks_sent);
  res.set("nacks_sent", r.resilience.nacks_sent);
  o.set("resilience", std::move(res));
  return o;
}

bool write_report(const std::string& path, const json::Value& v) {
  return json::write_file(path, v);
}

std::vector<SweepPoint> sweep_injection(Network& net, SimConfig cfg,
                                        const std::vector<double>& rates,
                                        bool stop_at_saturation) {
  std::vector<SweepPoint> points;
  points.reserve(rates.size());
  bool saturated = false;
  for (double rate : rates) {
    SweepPoint pt;
    pt.injection_rate = rate;
    if (saturated && stop_at_saturation) {
      pt.results.saturated = true;
    } else {
      cfg.injection_rate = rate;
      pt.results = run_simulation(net, cfg);
      saturated = saturated || pt.results.saturated;
    }
    points.push_back(pt);
  }
  return points;
}

}  // namespace nocs::noc
