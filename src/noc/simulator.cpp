#include "noc/simulator.hpp"

namespace nocs::noc {

SimResults run_simulation(Network& net, const SimConfig& cfg) {
  NOCS_EXPECTS(cfg.measure > 0);
  net.reset_counters();
  net.stats().reset();
  net.set_injection_rate(cfg.injection_rate);

  net.run(cfg.warmup);

  net.stats().set_measuring(true);
  net.run(cfg.measure);
  net.stats().set_measuring(false);

  // Drain: keep injecting background (unmeasured) traffic so the network
  // stays under load while the tagged packets finish.
  Cycle drained_cycles = 0;
  while (!net.stats().all_drained() && drained_cycles < cfg.drain_max) {
    net.tick();
    ++drained_cycles;
  }

  SimResults r;
  const StatsCollector& s = net.stats();
  r.avg_packet_latency = s.packet_latency().mean();
  r.avg_network_latency = s.network_latency().mean();
  r.p50_latency = s.latency_quantile(0.5);
  r.p99_latency = s.latency_quantile(0.99);
  r.avg_hops = s.hops().mean();
  r.packets_generated = s.generated_packets();
  r.packets_ejected = s.ejected_packets();
  // ejected_flits() counts only measurement-tagged flits (those generated
  // inside the measurement window), so the normalization base is the window
  // length: the drain phase merely lets tagged flits finish and offers no
  // additional tagged load.  Dividing by measure + drain understated
  // throughput whenever draining took a while (i.e. near saturation).
  const auto active = static_cast<double>(net.endpoints().size());
  r.accepted_rate = active > 0
                        ? static_cast<double>(s.ejected_flits()) /
                              (static_cast<double>(cfg.measure) * active)
                        : 0.0;
  r.saturated = !s.all_drained();
  r.cycles = cfg.warmup + cfg.measure + drained_cycles;
  r.counters = net.total_counters();
  return r;
}

std::vector<SweepPoint> sweep_injection(Network& net, SimConfig cfg,
                                        const std::vector<double>& rates,
                                        bool stop_at_saturation) {
  std::vector<SweepPoint> points;
  points.reserve(rates.size());
  bool saturated = false;
  for (double rate : rates) {
    SweepPoint pt;
    pt.injection_rate = rate;
    if (saturated && stop_at_saturation) {
      pt.results.saturated = true;
    } else {
      cfg.injection_rate = rate;
      pt.results = run_simulation(net, cfg);
      saturated = saturated || pt.results.saturated;
    }
    points.push_back(pt);
  }
  return points;
}

}  // namespace nocs::noc
