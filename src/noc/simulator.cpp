#include "noc/simulator.hpp"

#include <algorithm>

namespace nocs::noc {

SimResults run_simulation(Network& net, const SimConfig& cfg) {
  NOCS_EXPECTS(cfg.measure > 0);
  net.reset_counters();
  net.stats().reset();
  net.set_injection_rate(cfg.injection_rate);

  // Livelock/deadlock watchdog: sample the flit-movement signature every
  // `poll` cycles; if it sits still for watchdog_cycles while flits are
  // still in flight, declare the run hung and capture a diagnostic.  With
  // watchdog_cycles == 0 the phase loops below reduce to net.run(n) and
  // the fault-free path is untouched.
  bool hung = false;
  std::string diagnostic;
  std::uint64_t last_sig = 0;
  Cycle last_change = net.now();
  const Cycle poll =
      cfg.watchdog_cycles > 0
          ? std::max<Cycle>(1, std::min<Cycle>(cfg.watchdog_cycles / 4, 256))
          : 0;
  auto watchdog_check = [&]() {
    const std::uint64_t sig = net.progress_signature();
    if (sig != last_sig) {
      last_sig = sig;
      last_change = net.now();
    } else if (net.now() - last_change >= cfg.watchdog_cycles &&
               !net.drained()) {
      hung = true;
      diagnostic = net.debug_snapshot();
    }
  };
  auto run_phase = [&](Cycle n) {
    if (poll == 0) {
      net.run(n);
      return;
    }
    for (Cycle i = 0; i < n && !hung; ++i) {
      net.tick();
      if (net.now() % poll == 0) watchdog_check();
    }
  };
  if (poll != 0) last_sig = net.progress_signature();

  run_phase(cfg.warmup);

  net.stats().set_measuring(true);
  run_phase(cfg.measure);
  net.stats().set_measuring(false);

  // Drain: keep injecting background (unmeasured) traffic so the network
  // stays under load while the tagged packets finish.
  Cycle drained_cycles = 0;
  while (!net.stats().all_drained() && drained_cycles < cfg.drain_max &&
         !hung) {
    net.tick();
    ++drained_cycles;
    if (poll != 0 && net.now() % poll == 0) watchdog_check();
  }

  SimResults r;
  r.hung = hung;
  r.diagnostic = std::move(diagnostic);
  const StatsCollector& s = net.stats();
  r.avg_packet_latency = s.packet_latency().mean();
  r.avg_network_latency = s.network_latency().mean();
  r.p50_latency = s.latency_quantile(0.5);
  r.p99_latency = s.latency_quantile(0.99);
  r.avg_hops = s.hops().mean();
  r.packets_generated = s.generated_packets();
  r.packets_ejected = s.ejected_packets();
  // ejected_flits() counts only measurement-tagged flits (those generated
  // inside the measurement window), so the normalization base is the window
  // length: the drain phase merely lets tagged flits finish and offers no
  // additional tagged load.  Dividing by measure + drain understated
  // throughput whenever draining took a while (i.e. near saturation).
  const auto active = static_cast<double>(net.endpoints().size());
  r.accepted_rate = active > 0
                        ? static_cast<double>(s.ejected_flits()) /
                              (static_cast<double>(cfg.measure) * active)
                        : 0.0;
  r.saturated = !s.all_drained();
  r.cycles = cfg.warmup + cfg.measure + drained_cycles;
  r.counters = net.total_counters();
  r.resilience = s.resilience();
  return r;
}

std::vector<SweepPoint> sweep_injection(Network& net, SimConfig cfg,
                                        const std::vector<double>& rates,
                                        bool stop_at_saturation) {
  std::vector<SweepPoint> points;
  points.reserve(rates.size());
  bool saturated = false;
  for (double rate : rates) {
    SweepPoint pt;
    pt.injection_rate = rate;
    if (saturated && stop_at_saturation) {
      pt.results.saturated = true;
    } else {
      cfg.injection_rate = rate;
      pt.results = run_simulation(net, cfg);
      saturated = saturated || pt.results.saturated;
    }
    points.push_back(pt);
  }
  return points;
}

}  // namespace nocs::noc
