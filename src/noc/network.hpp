// Mesh network: owns routers, network interfaces, and all connecting
// channels; exposes sprint-region configuration (active endpoints + gated
// dark region) used by the NoC-sprinting controller.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "noc/network_interface.hpp"
#include "noc/params.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/stats_collector.hpp"
#include "noc/traffic.hpp"

namespace nocs::noc {

/// Cycle latency of the directed link from one router to an adjacent one.
/// Lets physical floorplans assign longer latencies to stretched links
/// (or SMART repeated wires collapse them back to one cycle).
using LinkLatencyFn = std::function<int(NodeId from, NodeId to)>;

class Network {
 public:
  /// Builds a width x height mesh.  `routing` must outlive the network.
  /// `link_latency` overrides params.link_latency per directed link when
  /// provided (must return >= 1).
  Network(const NetworkParams& params, const RoutingFunction* routing,
          LinkLatencyFn link_latency = nullptr);

  /// Latency of the directed link between adjacent nodes (cycles).
  int link_latency(NodeId from, NodeId to) const;

  const NetworkParams& params() const { return params_; }
  Cycle now() const { return now_; }
  int num_nodes() const { return params_.num_nodes(); }

  /// Configures the set of active traffic endpoints (logical id i maps to
  /// physical node endpoints[i]) and the traffic pattern among them.  All
  /// other NIs stop generating.
  void set_endpoints(std::vector<NodeId> endpoints,
                     std::unique_ptr<TrafficPattern> traffic);

  /// Statically power-gates every router whose node is not in the active
  /// set, leaving the active sub-network on (NoC-sprinting's scheme).
  /// Requires a drained network.
  void gate_dark_region(const std::vector<NodeId>& active);

  /// Ungates every router.
  void ungate_all();

  /// Enables conventional dynamic power gating (idle-timeout + wake-on-
  /// arrival) on every router.
  void set_dynamic_gating(bool enabled);

  /// Sets the same offered load on every active endpoint (flits/cycle).
  void set_injection_rate(double flits_per_cycle_per_node);

  /// Switches every NI to request-reply protocol mode (short class-0
  /// requests, `reply_length`-flit class-1 data replies).  Requires
  /// params.num_classes >= 2.
  void set_request_reply(int request_length, int reply_length);

  /// Reseeds all NI RNGs deterministically from one master seed.
  void set_seed(std::uint64_t seed);

  /// Advances the whole network by one cycle.
  void tick();

  /// Runs `n` cycles.
  void run(Cycle n);

  Router& router(NodeId id) { return *routers_.at(static_cast<std::size_t>(id)); }
  const Router& router(NodeId id) const {
    return *routers_.at(static_cast<std::size_t>(id));
  }
  NetworkInterface& ni(NodeId id) {
    return *nis_.at(static_cast<std::size_t>(id));
  }

  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }

  /// True when no flit is anywhere in the network (buffers, pipes, NIs).
  bool drained() const;

  /// Sum of all router counters (for power estimation).
  RouterCounters total_counters() const;

  /// Per-router counters indexed by node id.
  std::vector<RouterCounters> per_router_counters() const;

  /// Clears all router counters.
  void reset_counters();

  const std::vector<NodeId>& endpoints() const { return endpoints_; }

 private:
  NetworkParams params_;
  const RoutingFunction* routing_;
  Cycle now_ = 0;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<std::unique_ptr<Pipe<Flit>>> flit_pipes_;
  std::vector<std::unique_ptr<Pipe<Credit>>> credit_pipes_;

  std::vector<NodeId> endpoints_;
  std::unique_ptr<TrafficPattern> traffic_;
  std::vector<std::vector<int>> link_latencies_;  // [from][to], 0 = no link

  StatsCollector stats_;
};

}  // namespace nocs::noc
