// Mesh network: owns routers, network interfaces, and all connecting
// channels; exposes sprint-region configuration (active endpoints + gated
// dark region) used by the NoC-sprinting controller.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "noc/network_interface.hpp"
#include "noc/params.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/stats_collector.hpp"
#include "noc/traffic.hpp"

namespace nocs::noc {

/// Cycle latency of the directed link from one router to an adjacent one.
/// Lets physical floorplans assign longer latencies to stretched links
/// (or SMART repeated wires collapse them back to one cycle).
using LinkLatencyFn = std::function<int(NodeId from, NodeId to)>;

class Network {
 public:
  /// Builds a width x height mesh.  `routing` must outlive the network.
  /// `link_latency` overrides params.link_latency per directed link when
  /// provided (must return >= 1).
  Network(const NetworkParams& params, const RoutingFunction* routing,
          LinkLatencyFn link_latency = nullptr);

  // Channel sinks and wake callbacks capture `this`.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Latency of the directed link between adjacent nodes (cycles).
  int link_latency(NodeId from, NodeId to) const;

  const NetworkParams& params() const { return params_; }
  Cycle now() const { return now_; }
  int num_nodes() const { return params_.num_nodes(); }

  /// Configures the set of active traffic endpoints (logical id i maps to
  /// physical node endpoints[i]) and the traffic pattern among them.  All
  /// other NIs stop generating.
  void set_endpoints(std::vector<NodeId> endpoints,
                     std::unique_ptr<TrafficPattern> traffic);

  /// Statically power-gates every router whose node is not in the active
  /// set, leaving the active sub-network on (NoC-sprinting's scheme).
  /// Requires a drained network.
  void gate_dark_region(const std::vector<NodeId>& active);

  /// Ungates every router.
  void ungate_all();

  /// Enables conventional dynamic power gating (idle-timeout + wake-on-
  /// arrival) on every router.
  void set_dynamic_gating(bool enabled);

  /// Sets the same offered load on every active endpoint (flits/cycle).
  void set_injection_rate(double flits_per_cycle_per_node);

  /// Switches every NI to request-reply protocol mode (short class-0
  /// requests, `reply_length`-flit class-1 data replies).  Requires
  /// params.num_classes >= 2.
  void set_request_reply(int request_length, int reply_length);

  /// Reseeds all NI RNGs deterministically from one master seed.
  void set_seed(std::uint64_t seed);

  // --- fault resilience -----------------------------------------------------

  /// Attaches `oracle` to every router and NI and, when `prot` is non-null,
  /// turns on end-to-end protection (checksum + ACK/NACK retransmission +
  /// duplicate filtering) at every NI.  Pass a null oracle to detach; the
  /// fault-free path is bit-identical when nothing is attached.
  void enable_resilience(FaultOracle* oracle,
                         const ProtectionParams* prot = nullptr);

  /// Flit-movement signature consumed by livelock/deadlock watchdogs: the
  /// value changes whenever any flit moves anywhere (buffer write, crossbar
  /// traversal, NI inject/eject) and stays put while the network is wedged.
  /// Pure cycle counters are excluded so an idle-but-alive network does not
  /// mask a stall.
  std::uint64_t progress_signature() const;

  /// Multi-line per-router diagnostic dump (power state, buffered flits,
  /// output credits, NI queue/unacked depth) for watchdog reports.  Only
  /// non-quiescent nodes are listed.
  std::string debug_snapshot() const;

  /// Advances the whole network by one cycle.
  void tick();

  /// Runs `n` cycles.
  void run(Cycle n);

  // Router accessors flush the lazily-synced leakage counters first so
  // callers always observe the same counts as if every cycle were ticked.
  Router& router(NodeId id) {
    Router& r = *routers_.at(static_cast<std::size_t>(id));
    r.sync_counters(now_);
    return r;
  }
  const Router& router(NodeId id) const {
    const Router& r = *routers_.at(static_cast<std::size_t>(id));
    r.sync_counters(now_);
    return r;
  }
  NetworkInterface& ni(NodeId id) {
    return *nis_.at(static_cast<std::size_t>(id));
  }

  /// Number of routers ticked last cycle (fast-path instrumentation).
  int hot_routers() const {
    int n = 0;
    for (const auto h : router_hot_) n += h;
    return n;
  }

  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }

  /// True when no flit is anywhere in the network (buffers, pipes, NIs).
  bool drained() const;

  /// Sum of all router counters (for power estimation).
  RouterCounters total_counters() const;

  /// Per-router counters indexed by node id.
  std::vector<RouterCounters> per_router_counters() const;

  /// Clears all router counters.
  void reset_counters();

  const std::vector<NodeId>& endpoints() const { return endpoints_; }

  // --- checkpoint/restore ---------------------------------------------------
  //
  // save_state captures the complete dynamic state (current cycle, every
  // router/NI, every in-flight flit and credit, statistics) plus a
  // topology fingerprint.  load_state requires a network constructed and
  // configured (endpoints, seed, gating, rates) exactly as the saved one;
  // it verifies the fingerprint, restores the dynamic state, and resets
  // the fast-path scheduling so the resumed simulation is bit-identical
  // to one that never stopped.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  // --- active-node fast path ----------------------------------------------
  //
  // tick() only visits routers/NIs whose hot flag is set.  A node stays hot
  // while it self-reports work (busy_next_cycle()); when it goes cold the
  // network re-arms a wake-up at the earliest pending event on its input
  // pipes (calendar wheel indexed by cycle modulo its size), and every pipe
  // push into an empty queue schedules the consumer via its NodeSink.  Hot
  // nodes are ticked in ascending node id order, preserving the exact
  // stats/counter accumulation order of the tick-everything loop.

  /// Per-consumer wake hook: routes Pipe push notifications to schedule().
  struct NodeSink final : WakeSink {
    Network* net = nullptr;
    std::uint32_t enc = 0;  ///< node id << 1 | is_ni
    void on_push(Cycle ready_at) override;
  };

  void schedule(std::uint32_t enc, Cycle ready_at);
  void mark_hot(std::uint32_t enc) {
    if ((enc & 1u) != 0)
      ni_hot_[enc >> 1] = 1;
    else
      router_hot_[enc >> 1] = 1;
  }
  WakeSink* router_sink(NodeId id) {
    return &sinks_[static_cast<std::size_t>(2 * id)];
  }
  WakeSink* ni_sink(NodeId id) {
    return &sinks_[static_cast<std::size_t>(2 * id + 1)];
  }

  NetworkParams params_;
  const RoutingFunction* routing_;
  Cycle now_ = 0;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<std::unique_ptr<Pipe<Flit>>> flit_pipes_;
  std::vector<std::unique_ptr<Pipe<Credit>>> credit_pipes_;

  std::vector<NodeId> endpoints_;
  std::unique_ptr<TrafficPattern> traffic_;
  std::vector<std::vector<int>> link_latencies_;  // [from][to], 0 = no link

  std::vector<NodeSink> sinks_;            // [2*id] router, [2*id+1] NI
  std::vector<std::uint8_t> router_hot_;   // ticked this cycle when set
  std::vector<std::uint8_t> ni_hot_;
  std::vector<std::vector<std::uint32_t>> wheel_;  // wake events, t % size

  StatsCollector stats_;
};

}  // namespace nocs::noc
