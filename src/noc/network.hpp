// Mesh network: owns routers, network interfaces, and all connecting
// channels; exposes sprint-region configuration (active endpoints + gated
// dark region) used by the NoC-sprinting controller.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "noc/network_interface.hpp"
#include "noc/params.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/routing_policy.hpp"
#include "noc/stats_collector.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"

namespace nocs::noc {

/// Cycle latency of the directed link from one router to an adjacent one.
/// Lets physical floorplans assign longer latencies to stretched links
/// (or SMART repeated wires collapse them back to one cycle).
using LinkLatencyFn = std::function<int(NodeId from, NodeId to)>;

class Network {
 public:
  /// Builds a width x height mesh.  `routing` must outlive the network.
  /// `link_latency` overrides params.link_latency per directed link when
  /// provided (must return >= 1).  Equivalent to the topology constructor
  /// over Topology::mesh(width, height) with a MeshRoutingPolicy — and
  /// bit-identical to it.
  Network(const NetworkParams& params, const RoutingFunction* routing,
          LinkLatencyFn link_latency = nullptr);

  /// Builds the network over an arbitrary topology graph (the topology is
  /// copied; params.num_nodes() must equal topo.num_nodes()).  `policy`
  /// must outlive the network.  Channel pipes are instantiated in
  /// topo.links() order; per-link latencies > 0 override
  /// params.link_latency (and `link_latency`, which fills the rest).
  Network(const NetworkParams& params, const Topology& topo,
          const RoutingPolicy* policy, LinkLatencyFn link_latency = nullptr);

  // Channel sinks and wake callbacks capture `this`.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Latency of the directed link between adjacent nodes (cycles).
  int link_latency(NodeId from, NodeId to) const;

  /// The interconnect graph this network was wired from.
  const Topology& topology() const { return topo_; }

  /// The routing policy every router consults.
  const RoutingPolicy& routing_policy() const { return *policy_; }

  const NetworkParams& params() const { return params_; }
  Cycle now() const { return now_; }
  int num_nodes() const { return params_.num_nodes(); }

  /// Configures the set of active traffic endpoints (logical id i maps to
  /// physical node endpoints[i]) and the traffic pattern among them.  All
  /// other NIs stop generating.
  void set_endpoints(std::vector<NodeId> endpoints,
                     std::unique_ptr<TrafficPattern> traffic);

  /// Statically power-gates every router whose node is not in the active
  /// set, leaving the active sub-network on (NoC-sprinting's scheme).
  /// Requires a drained network.
  void gate_dark_region(const std::vector<NodeId>& active);

  /// Ungates every router.
  void ungate_all();

  /// Enables conventional dynamic power gating (idle-timeout + wake-on-
  /// arrival) on every router.
  void set_dynamic_gating(bool enabled);

  /// Sets the same offered load on every active endpoint (flits/cycle).
  void set_injection_rate(double flits_per_cycle_per_node);

  /// Switches every NI to request-reply protocol mode (short class-0
  /// requests, `reply_length`-flit class-1 data replies).  Requires
  /// params.num_classes >= 2.
  void set_request_reply(int request_length, int reply_length);

  /// Reseeds all NI RNGs deterministically from one master seed.
  void set_seed(std::uint64_t seed);

  // --- multicast ------------------------------------------------------------

  /// Registers a multicast destination set and returns its group id for
  /// NetworkInterface::send_multicast.  Members are sorted and
  /// deduplicated; the sorted order defines the deterministic tree shape.
  /// Groups are configuration (like endpoints), not dynamic state: a
  /// restored network must re-register the same groups before load_state.
  int add_multicast_group(std::vector<NodeId> members);

  /// Number of registered groups.
  int num_multicast_groups() const {
    return static_cast<int>(mcast_groups_.size());
  }

  /// Sorted members of group `g`.
  const std::vector<NodeId>& multicast_group(int g) const {
    return mcast_groups_.at(static_cast<std::size_t>(g));
  }

  /// Switches every NI between tree multicast (true) and the
  /// serial-unicast fallback (false, the default — `multicast=off` keeps
  /// runs without multicast senders bit-identical to older builds).
  void set_multicast(bool enabled);

  // --- per-cycle hook -------------------------------------------------------

  /// Installs a hook run serially at the top of every tick(), before the
  /// (possibly parallel) simulation phases — the injection point for
  /// closed-loop workload drivers (mem::TileTransferDriver).  Runs on the
  /// calling thread regardless of sim_threads, so anything it does is
  /// bit-identical for any thread count.  Pass nullptr to remove.
  void set_pre_tick_hook(std::function<void(Cycle)> hook) {
    pre_tick_ = std::move(hook);
  }

  // --- fault resilience -----------------------------------------------------

  /// Attaches `oracle` to every router and NI and, when `prot` is non-null,
  /// turns on end-to-end protection (checksum + ACK/NACK retransmission +
  /// duplicate filtering) at every NI.  Pass a null oracle to detach; the
  /// fault-free path is bit-identical when nothing is attached.
  void enable_resilience(FaultOracle* oracle,
                         const ProtectionParams* prot = nullptr);

  /// Flit-movement signature consumed by livelock/deadlock watchdogs: the
  /// value changes whenever any flit moves anywhere (buffer write, crossbar
  /// traversal, NI inject/eject) and stays put while the network is wedged.
  /// Pure cycle counters are excluded so an idle-but-alive network does not
  /// mask a stall.
  std::uint64_t progress_signature() const;

  /// Multi-line per-router diagnostic dump (power state, buffered flits,
  /// output credits, NI queue/unacked depth) for watchdog reports.  Only
  /// non-quiescent nodes are listed.
  std::string debug_snapshot() const;

  /// Advances the whole network by one cycle.
  void tick();

  /// Runs `n` cycles.
  void run(Cycle n);

  // --- intra-simulation parallelism -----------------------------------------

  /// Shards tick() spatially across `n` threads (row-bands of the mesh,
  /// one barrier-synchronized phase pair per cycle).  n <= 0 selects
  /// default_sim_thread_count() (the NOCS_SIM_THREADS environment
  /// variable, else 1 = serial); the value is clamped to the mesh height
  /// so every shard owns at least one full row.  Results are bit-identical
  /// for every thread count — see docs/ARCHITECTURE.md for the argument.
  /// Resets the fast-path scheduler conservatively (all nodes hot), which
  /// is also bit-identical, so the call is legal at any cycle boundary —
  /// including right after load_state with a different thread count than
  /// the checkpoint was written under.
  void set_sim_threads(int n);

  /// Shard count the tick loop actually uses (>= 1; after clamping).
  int sim_threads() const { return static_cast<int>(shards_.size()); }

  // Router accessors flush the lazily-synced leakage counters first so
  // callers always observe the same counts as if every cycle were ticked.
  Router& router(NodeId id) {
    Router& r = *routers_.at(static_cast<std::size_t>(id));
    r.sync_counters(now_);
    return r;
  }
  const Router& router(NodeId id) const {
    const Router& r = *routers_.at(static_cast<std::size_t>(id));
    r.sync_counters(now_);
    return r;
  }
  NetworkInterface& ni(NodeId id) {
    return *nis_.at(static_cast<std::size_t>(id));
  }

  /// Number of routers ticked last cycle (fast-path instrumentation).
  int hot_routers() const {
    int n = 0;
    for (const Shard& sh : shards_)
      for (std::size_t i = 0; i < sh.hot.size(); i += 2) n += sh.hot[i];
    return n;
  }

  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }

  /// True when no flit is anywhere in the network (buffers, pipes, NIs).
  bool drained() const;

  /// Sum of all router counters (for power estimation).
  RouterCounters total_counters() const;

  /// Per-router counters indexed by node id.
  std::vector<RouterCounters> per_router_counters() const;

  /// Clears all router counters.
  void reset_counters();

  const std::vector<NodeId>& endpoints() const { return endpoints_; }

  // --- checkpoint/restore ---------------------------------------------------
  //
  // save_state captures the complete dynamic state (current cycle, every
  // router/NI, every in-flight flit and credit, statistics) plus a
  // topology fingerprint.  load_state requires a network constructed and
  // configured (endpoints, seed, gating, rates) exactly as the saved one;
  // it verifies the fingerprint, restores the dynamic state, and resets
  // the fast-path scheduling so the resumed simulation is bit-identical
  // to one that never stopped.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  // --- active-node fast path + spatial sharding ----------------------------
  //
  // tick() only visits routers/NIs whose hot flag is set.  A node stays hot
  // while it self-reports work (busy_next_cycle()); when it goes cold the
  // network re-arms a wake-up at the earliest pending event on its input
  // pipes (calendar wheel indexed by cycle modulo its size), and every pipe
  // push into an empty queue schedules the consumer via its NodeSink.  Hot
  // nodes are ticked in ascending node id order, preserving the exact
  // stats/counter accumulation order of the tick-everything loop.
  //
  // All of that mutable scheduling state lives per *shard* — a contiguous
  // row-band of node ids (node ids are row-major, so row-bands are
  // contiguous id ranges).  Serial operation is simply the 1-shard case of
  // the same code path.  With S > 1 shards each cycle runs as two
  // barrier-synchronized phases on a BarrierTeam:
  //
  //   phase 1 (tick):       each shard processes its own wheel bucket and
  //                         ticks its hot NIs then hot routers, ascending
  //                         id.  Pushes into neighbor-shard pipes notify
  //                         the consumer via schedule(), which appends the
  //                         wake to the *producer* shard's outbox instead
  //                         of touching foreign wheels.
  //   phase 2 (cool/re-arm): each shard imports wakes addressed to it from
  //                         every outbox (fixed shard order), then cools
  //                         its own quiescent nodes and re-arms their
  //                         wake-ups.  Only owner shards ever write their
  //                         hot flags and wheels.
  //
  // After the second barrier the caller thread drains every shard's
  // deferred statistics into the master collector in ascending shard
  // order, which replays ejection events in exactly the serial ascending-
  // node-id order — bit-identical floating-point accumulation for any
  // thread count (pipes guarantee a ≥1-cycle latency, so shards never
  // observe same-cycle neighbor state; see docs/ARCHITECTURE.md).

  /// Per-consumer wake hook: routes Pipe push notifications to schedule().
  struct NodeSink final : WakeSink {
    Network* net = nullptr;
    std::uint32_t enc = 0;  ///< node id << 1 | is_ni
    void on_push(Cycle ready_at) override;
  };

  /// A wake request produced for a node owned by another shard.
  struct WakeEvent {
    std::uint32_t enc;
    Cycle at;
  };

  /// All per-cycle mutable scheduling state of one row-band, cache-line
  /// aligned so neighbor shards' writes never false-share.
  struct alignas(64) Shard {
    NodeId begin = 0;  ///< first owned node id
    NodeId end = 0;    ///< one past the last owned node id
    /// Hot flags, enc-relative: [2*(id-begin)] router, [2*(id-begin)+1] NI.
    std::vector<std::uint8_t> hot;
    /// Calendar wheel of pending wake-ups, bucket = cycle % size.
    std::vector<std::vector<std::uint32_t>> wheel;
    /// Wakes this shard produced for other shards' nodes this cycle.
    std::vector<WakeEvent> outbox;
    /// Deferring collector fed by this shard's NIs (S > 1 only).
    StatsCollector stats;
    std::uint64_t active = 0;         ///< set hot flags (live entities)
    std::uint64_t pending_wakes = 0;  ///< queued wheel entries
  };

  void schedule(std::uint32_t enc, Cycle ready_at);
  void schedule_local(Shard& sh, std::uint32_t enc, Cycle ready_at);
  void mark_hot(std::uint32_t enc) {
    Shard& sh = shards_[shard_of_[enc >> 1]];
    std::uint8_t& flag =
        sh.hot[static_cast<std::size_t>(enc) -
               2 * static_cast<std::size_t>(static_cast<std::uint32_t>(
                       sh.begin))];
    if (flag == 0) {
      flag = 1;
      ++sh.active;
    }
  }
  WakeSink* router_sink(NodeId id) {
    return &sinks_[static_cast<std::size_t>(2 * id)];
  }
  WakeSink* ni_sink(NodeId id) {
    return &sinks_[static_cast<std::size_t>(2 * id + 1)];
  }

  /// Rebuilds the shard partition for sim_threads_ shards with the
  /// conservative scheduler reset (everything hot, wheels empty).
  void rebuild_shards();
  void tick_phase1(int s);
  void tick_phase2(int s);
  /// Reference O(n) drain scan (the counter short-circuit's slow path).
  bool drained_slow() const;
  /// Shared tail of both constructors: wires routers, NIs, and channels
  /// from topo_ (policy_ must already be set).
  void construct(LinkLatencyFn link_latency);

  NetworkParams params_;
  Topology topo_;
  const RoutingPolicy* policy_ = nullptr;
  std::unique_ptr<RoutingPolicy> owned_policy_;  ///< mesh-ctor adapter
  Cycle now_ = 0;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<std::unique_ptr<Pipe<Flit>>> flit_pipes_;
  std::vector<std::unique_ptr<Pipe<Credit>>> credit_pipes_;

  std::vector<NodeId> endpoints_;
  std::unique_ptr<TrafficPattern> traffic_;
  std::vector<std::vector<int>> link_latencies_;  // [from][to], 0 = no link
  std::vector<std::vector<NodeId>> mcast_groups_;
  std::function<void(Cycle)> pre_tick_;

  std::vector<NodeSink> sinks_;  // [2*id] router, [2*id+1] NI
  int sim_threads_ = 1;
  int wheel_slots_ = 0;  // per-shard wheel size: max link latency + 2
  std::vector<Shard> shards_;
  std::vector<std::uint32_t> shard_of_;  // node id -> owning shard
  std::unique_ptr<BarrierTeam> team_;    // S-1 workers when S > 1

  StatsCollector stats_;
};

}  // namespace nocs::noc
