// Network configuration parameters (Table 1 of the paper).
#pragma once

#include "common/assert.hpp"
#include "common/geometry.hpp"

namespace nocs::noc {

/// Static parameters of the simulated network.  Defaults reproduce Table 1:
/// 4x4 2-D mesh, classic five-stage router pipeline, 4 VCs per port, 4-flit
/// buffers per VC, 5-flit packets, 16-byte flits.
struct NetworkParams {
  int width = 4;             ///< mesh columns
  int height = 4;            ///< mesh rows
  int num_vcs = 4;           ///< virtual channels per input port
  int vc_depth = 4;          ///< flit buffers per VC
  int packet_length = 5;     ///< flits per packet
  int flit_bytes = 16;       ///< flit payload width
  int link_latency = 1;      ///< cycles per link traversal
  int wakeup_latency = 8;    ///< cycles for a gated router to wake
  int gate_idle_threshold = 16;  ///< idle cycles before dynamic gating engages

  /// Router pipeline depth: 5 = classic five-stage (Table 1: BW, RC, VA,
  /// SA, ST); 3 = aggressive pipeline with lookahead route compute folded
  /// into buffer write and speculative VA+SA in one cycle.
  int pipeline_stages = 5;

  /// Message classes (virtual networks).  VCs are partitioned evenly
  /// across classes and the VC allocator never crosses the partition —
  /// the standard protocol-deadlock-avoidance mechanism coherence traffic
  /// (request vs response) requires.  1 = single class (synthetic traffic).
  int num_classes = 1;

  MeshShape shape() const { return MeshShape{width, height}; }
  int num_nodes() const { return width * height; }

  int vcs_per_class() const { return num_vcs / num_classes; }
  /// The message class VC `vc` belongs to.
  int class_of_vc(VcId vc) const { return vc / vcs_per_class(); }
  /// First VC of class `cls`.
  VcId first_vc_of(int cls) const { return cls * vcs_per_class(); }

  /// Validates the invariants every component assumes.
  void validate() const {
    NOCS_EXPECTS(width >= 2 && height >= 1);
    NOCS_EXPECTS(num_vcs >= 1 && vc_depth >= 1);
    NOCS_EXPECTS(packet_length >= 1);
    NOCS_EXPECTS(flit_bytes >= 1);
    NOCS_EXPECTS(link_latency >= 1);
    NOCS_EXPECTS(wakeup_latency >= 0);
    NOCS_EXPECTS(num_classes >= 1 && num_vcs % num_classes == 0);
    NOCS_EXPECTS(pipeline_stages == 3 || pipeline_stages == 5);
  }
};

}  // namespace nocs::noc
