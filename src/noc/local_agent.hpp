// Node-local agent hook: lets a subsystem (e.g. a memory controller from
// src/mem) attach endpoint behavior to a NetworkInterface without the NoC
// layer depending on it — the same inversion fault_hooks.hpp uses for the
// fault injector.
//
// The NI drives the agent entirely from its own tick, so an agent is
// automatically shard-local under the parallel tick (an NI and its agent
// belong to one node) and needs no locking.  Call order within one NI
// tick: ejected tails are delivered through on_packet() first, then
// tick() runs, then the NI injects — so a reply enqueued by either hook
// can enter the network in the same cycle.
#pragma once

#include "common/types.hpp"
#include "noc/flit.hpp"

namespace nocs::noc {

class LocalAgent {
 public:
  virtual ~LocalAgent() = default;

  /// Delivery of one complete packet: called with the tail flit of every
  /// packet this NI ejects (data and multicast alike; ACK/NACK control
  /// packets are not delivered).  The agent filters by msg_class/kind.
  virtual void on_packet(Cycle now, const Flit& tail) = 0;

  /// Advances the agent one cycle (service queues, emit replies).
  virtual void tick(Cycle now) = 0;

  /// True while the agent needs ticking next cycle (pending work keeps
  /// the owning NI hot under the active-node fast path).
  virtual bool busy_next_cycle() const = 0;

  /// True when the agent holds no queued or in-service work.  Folded into
  /// NetworkInterface::idle(), so Network::drained() waits for agents.
  virtual bool idle() const = 0;
};

}  // namespace nocs::noc
