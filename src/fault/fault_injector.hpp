// Deterministic, seed-driven fault injector (the concrete FaultOracle).
//
// Every fault class draws from its own per-entity RNG stream derived from
// one master seed via task_seed(), so outcomes are reproducible and
// independent of query order, of which other entities see traffic, and of
// NOCS_THREADS: node 5's wake-up faults are the same whether or not node 3
// ever injects a packet.  Link outages are lazily materialized interval
// schedules per directed link — link_down() can be asked about any cycle
// in nondecreasing order per link and always answers from the same
// schedule.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "noc/fault_hooks.hpp"

namespace nocs::fault {

/// All fault-injection knobs, parsed from `fault_*` config keys.  With
/// `enabled == false` (key `faults`, default off) nothing is ever injected
/// and seed experiments stay bit-identical.
struct FaultParams {
  bool enabled = false;
  std::uint64_t seed = 1;

  double flip_rate = 0.0;      ///< P(bit flip) per flit per link traversal
  double drop_rate = 0.0;      ///< P(packet lost) at injection, per packet
  double link_down_rate = 0.0; ///< expected outages per link per cycle
  int link_down_cycles = 100;  ///< duration of one link outage

  double wake_fail_prob = 0.0; ///< P(power-gate wake attempt fails)
  int wake_retry = 50;         ///< cycles between wake retries
  int wake_max_retries = 20;   ///< attempts after which a wake always succeeds
                               ///< (< 0: may fail forever — a dead node)

  std::vector<NodeId> stuck;   ///< routers that freeze fail-stop...
  Cycle stuck_from = 0;        ///< ...from this cycle on

  int ack_timeout = 256;       ///< NI protection: base ACK timeout
  int max_backoff = 4096;      ///< NI protection: backoff cap

  /// Reads `faults`, `fault_seed`, `fault_flip_rate`, `fault_drop_rate`,
  /// `fault_link_down_rate`, `fault_link_down_cycles`,
  /// `fault_wake_fail_prob`, `fault_wake_retry`, `fault_wake_max_retries`,
  /// `fault_stuck` (comma-separated node ids), `fault_stuck_from`,
  /// `fault_ack_timeout`, `fault_max_backoff`.
  static FaultParams from_config(const Config& cfg);

  void validate() const;

  noc::ProtectionParams protection() const {
    return noc::ProtectionParams{ack_timeout, max_backoff};
  }
};

/// Concrete deterministic fault oracle.  Attach via
/// Network::enable_resilience(&injector, &params.protection()).
///
/// Serializable so checkpointed faulty runs resume bit-identically: the
/// RNG stream positions and lazily-materialized link-outage schedules are
/// part of the simulation state.
class FaultInjector final : public noc::FaultOracle,
                            public snapshot::Serializable {
 public:
  FaultInjector(const MeshShape& mesh, const FaultParams& params);

  // snapshot::Serializable (dynamic state only; params are re-read from
  // config by the caller before load_state):
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  const FaultParams& params() const { return params_; }

  // FaultOracle:
  bool corrupt_link_flit(NodeId from, NodeId to, Cycle now) override;
  bool link_down(NodeId from, NodeId to, Cycle now) override;
  bool drop_packet(NodeId src, Cycle now) override;
  bool wake_fails(NodeId node, int attempt, Cycle now) override;
  int wake_retry_latency() const override { return params_.wake_retry; }
  bool router_stuck(NodeId node, Cycle now) override;

  /// Nodes configured to freeze (used by degradation planning/tests).
  const std::vector<NodeId>& stuck_nodes() const { return params_.stuck; }

 private:
  /// Lazily-advanced outage schedule of one directed link.
  struct LinkSchedule {
    Rng rng;
    Cycle down_start = 0;  ///< current/next outage interval
    Cycle down_end = 0;    ///< exclusive
    explicit LinkSchedule(std::uint64_t seed) : rng(seed) {}
  };

  std::uint64_t link_key(NodeId from, NodeId to) const {
    return static_cast<std::uint64_t>(from) *
               static_cast<std::uint64_t>(mesh_.size()) +
           static_cast<std::uint64_t>(to);
  }
  LinkSchedule& schedule_for(NodeId from, NodeId to);
  void advance_schedule(LinkSchedule& s, Cycle now);

  MeshShape mesh_;
  FaultParams params_;

  // Decorrelated per-entity streams, all derived from params_.seed.
  std::vector<Rng> flip_rngs_;  ///< one per source node (covers its out-links)
  std::vector<Rng> drop_rngs_;  ///< one per node
  std::vector<Rng> wake_rngs_;  ///< one per node
  // Outage schedules materialize lazily on first query.  Every query for
  // link (from, to) comes from router `from`'s tick, so each entry is
  // mutated by exactly one shard thread — but first-touch *insertion* can
  // rehash the map while another shard inserts or looks up a different
  // link, hence the mutex around schedule_for().  References stay valid
  // across inserts (unordered_map never invalidates them), so the
  // per-entry mutation outside the lock is safe.
  std::mutex schedules_mu_;
  std::unordered_map<std::uint64_t, LinkSchedule> link_schedules_;
  std::unordered_set<NodeId> stuck_set_;
};

}  // namespace nocs::fault
