#include "fault/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace nocs::fault {

namespace {

std::vector<NodeId> parse_node_list(const std::string& s) {
  std::vector<NodeId> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    if (!tok.empty()) {
      std::size_t used = 0;
      const long v = std::stol(tok, &used);
      if (used != tok.size())
        throw std::invalid_argument("bad node id in fault_stuck: '" + tok +
                                    "'");
      out.push_back(static_cast<NodeId>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

FaultParams FaultParams::from_config(const Config& cfg) {
  FaultParams p;
  p.enabled = cfg.get_bool("faults", false);
  p.seed = static_cast<std::uint64_t>(cfg.get_int("fault_seed", 1));
  p.flip_rate = cfg.get_double("fault_flip_rate", 0.0);
  p.drop_rate = cfg.get_double("fault_drop_rate", 0.0);
  p.link_down_rate = cfg.get_double("fault_link_down_rate", 0.0);
  p.link_down_cycles =
      static_cast<int>(cfg.get_int("fault_link_down_cycles", 100));
  p.wake_fail_prob = cfg.get_double("fault_wake_fail_prob", 0.0);
  p.wake_retry = static_cast<int>(cfg.get_int("fault_wake_retry", 50));
  p.wake_max_retries =
      static_cast<int>(cfg.get_int("fault_wake_max_retries", 20));
  p.stuck = parse_node_list(cfg.get_string("fault_stuck", ""));
  p.stuck_from = static_cast<Cycle>(cfg.get_int("fault_stuck_from", 0));
  p.ack_timeout = static_cast<int>(cfg.get_int("fault_ack_timeout", 256));
  p.max_backoff = static_cast<int>(cfg.get_int("fault_max_backoff", 4096));
  p.validate();
  return p;
}

void FaultParams::validate() const {
  NOCS_EXPECTS(flip_rate >= 0.0 && flip_rate <= 1.0);
  NOCS_EXPECTS(drop_rate >= 0.0 && drop_rate <= 1.0);
  NOCS_EXPECTS(link_down_rate >= 0.0 && link_down_rate <= 1.0);
  NOCS_EXPECTS(link_down_cycles >= 1);
  NOCS_EXPECTS(wake_fail_prob >= 0.0 && wake_fail_prob <= 1.0);
  NOCS_EXPECTS(wake_retry >= 1);
  protection().validate();
}

FaultInjector::FaultInjector(const MeshShape& mesh, const FaultParams& params)
    : mesh_(mesh), params_(params) {
  params_.validate();
  const int n = mesh_.size();
  for (NodeId id : params_.stuck) {
    NOCS_EXPECTS(mesh_.valid(id));
    stuck_set_.insert(id);
  }
  // Stream families are spaced far apart in task_seed index space so the
  // per-entity streams never collide.
  flip_rngs_.reserve(static_cast<std::size_t>(n));
  drop_rngs_.reserve(static_cast<std::size_t>(n));
  wake_rngs_.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    const auto i = static_cast<std::uint64_t>(id);
    flip_rngs_.emplace_back(task_seed(params_.seed, 0x10000 + i));
    drop_rngs_.emplace_back(task_seed(params_.seed, 0x20000 + i));
    wake_rngs_.emplace_back(task_seed(params_.seed, 0x30000 + i));
  }
}

FaultInjector::LinkSchedule& FaultInjector::schedule_for(NodeId from,
                                                         NodeId to) {
  const std::uint64_t key = link_key(from, to);
  const std::lock_guard<std::mutex> lock(schedules_mu_);
  const auto it = link_schedules_.find(key);
  if (it != link_schedules_.end()) return it->second;
  return link_schedules_
      .emplace(key, LinkSchedule(task_seed(params_.seed, 0x40000 + key)))
      .first->second;
}

void FaultInjector::advance_schedule(LinkSchedule& s, Cycle now) {
  // Outages arrive with mean inter-arrival 1/rate; the uniform gap keeps
  // the schedule platform-independent (no libm calls).
  const auto mean_gap = static_cast<std::uint64_t>(
      std::max(1.0, 1.0 / params_.link_down_rate));
  while (s.down_end <= now) {
    const Cycle gap =
        1 + static_cast<Cycle>(s.rng.uniform_int(2 * mean_gap));
    s.down_start = s.down_end + gap;
    s.down_end = s.down_start + static_cast<Cycle>(params_.link_down_cycles);
  }
}

bool FaultInjector::link_down(NodeId from, NodeId to, Cycle now) {
  if (params_.link_down_rate <= 0.0) return false;
  LinkSchedule& s = schedule_for(from, to);
  advance_schedule(s, now);
  return s.down_start <= now && now < s.down_end;
}

bool FaultInjector::corrupt_link_flit(NodeId from, NodeId to, Cycle now) {
  // Traffic already committed to a down link crosses, but corrupted.
  if (link_down(from, to, now)) return true;
  if (params_.flip_rate <= 0.0) return false;
  return flip_rngs_[static_cast<std::size_t>(from)].bernoulli(
      params_.flip_rate);
}

bool FaultInjector::drop_packet(NodeId src, Cycle now) {
  (void)now;
  if (params_.drop_rate <= 0.0) return false;
  return drop_rngs_[static_cast<std::size_t>(src)].bernoulli(
      params_.drop_rate);
}

bool FaultInjector::wake_fails(NodeId node, int attempt, Cycle now) {
  (void)now;
  if (params_.wake_fail_prob <= 0.0) return false;
  // Force success after the retry budget so a wake-on-arrival router cannot
  // strand in-flight flits forever (a permanently dead node is modeled with
  // wake_max_retries < 0 instead).
  if (params_.wake_max_retries >= 0 && attempt > params_.wake_max_retries)
    return false;
  return wake_rngs_[static_cast<std::size_t>(node)].bernoulli(
      params_.wake_fail_prob);
}

bool FaultInjector::router_stuck(NodeId node, Cycle now) {
  return now >= params_.stuck_from && stuck_set_.count(node) != 0;
}

void FaultInjector::save_state(snapshot::Writer& w) const {
  w.begin_section("fault_injector");
  const auto save_rngs = [&w](const std::vector<Rng>& rngs) {
    w.i64(static_cast<std::int64_t>(rngs.size()));
    for (const Rng& rng : rngs)
      for (const std::uint64_t s : rng.state()) w.u64(s);
  };
  save_rngs(flip_rngs_);
  save_rngs(drop_rngs_);
  save_rngs(wake_rngs_);

  // unordered_map iteration order is not deterministic; serialize sorted
  // by link key so equal states produce byte-identical snapshots.
  std::vector<std::uint64_t> keys;
  keys.reserve(link_schedules_.size());
  for (const auto& [key, sched] : link_schedules_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  w.i64(static_cast<std::int64_t>(keys.size()));
  for (const std::uint64_t key : keys) {
    const LinkSchedule& s = link_schedules_.at(key);
    w.u64(key);
    for (const std::uint64_t st : s.rng.state()) w.u64(st);
    w.u64(s.down_start);
    w.u64(s.down_end);
  }
  w.end_section();
}

void FaultInjector::load_state(snapshot::Reader& r) {
  r.begin_section("fault_injector");
  const auto load_rngs = [&r](std::vector<Rng>& rngs) {
    const auto n = r.i64();
    if (n != static_cast<std::int64_t>(rngs.size()))
      throw snapshot::SnapshotError(
          "fault injector RNG pool size in checkpoint disagrees with the "
          "mesh size");
    for (Rng& rng : rngs) {
      std::array<std::uint64_t, 4> st{};
      for (auto& s : st) s = r.u64();
      rng.set_state(st);
    }
  };
  load_rngs(flip_rngs_);
  load_rngs(drop_rngs_);
  load_rngs(wake_rngs_);

  link_schedules_.clear();
  const auto num_links = r.i64();
  for (std::int64_t i = 0; i < num_links; ++i) {
    const std::uint64_t key = r.u64();
    LinkSchedule s(0);
    std::array<std::uint64_t, 4> st{};
    for (auto& v : st) v = r.u64();
    s.rng.set_state(st);
    s.down_start = r.u64();
    s.down_end = r.u64();
    link_schedules_.emplace(key, s);
  }
  r.end_section();
}

}  // namespace nocs::fault
