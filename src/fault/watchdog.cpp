#include "fault/watchdog.hpp"

namespace nocs::fault {

Watchdog::Watchdog(const noc::Network& net, Cycle no_progress_limit)
    : net_(net),
      limit_(no_progress_limit),
      last_sig_(net.progress_signature()),
      last_progress_(net.now()) {
  NOCS_EXPECTS(no_progress_limit >= 1);
}

bool Watchdog::poll() {
  if (fired_) return true;
  const std::uint64_t sig = net_.progress_signature();
  if (sig != last_sig_) {
    last_sig_ = sig;
    last_progress_ = net_.now();
    return false;
  }
  // An idle network is not a wedged one: only flits in flight with no
  // movement count as livelock/deadlock.
  if (net_.now() - last_progress_ >= limit_ && !net_.drained()) {
    fired_ = true;
    diagnostic_ = net_.debug_snapshot();
  }
  return fired_;
}

void Watchdog::reset() {
  fired_ = false;
  diagnostic_.clear();
  last_sig_ = net_.progress_signature();
  last_progress_ = net_.now();
}

}  // namespace nocs::fault
