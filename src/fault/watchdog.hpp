// Livelock/deadlock watchdog: samples the network's flit-movement
// signature and fires once nothing has moved for a configured number of
// cycles while flits are still in flight.  run_simulation() embeds the
// same logic; this class serves custom simulation loops (tests, the fuzz
// harness, co-simulation drivers).
#pragma once

#include <string>

#include "noc/network.hpp"

namespace nocs::fault {

class Watchdog {
 public:
  /// Fires after `no_progress_limit` cycles without flit movement.  `net`
  /// must outlive the watchdog.
  Watchdog(const noc::Network& net, Cycle no_progress_limit);

  /// Samples the network at its current cycle; call at any cadence with
  /// nondecreasing net.now().  Returns true once the watchdog has fired
  /// (and keeps returning true; the diagnostic is from the first firing).
  bool poll();

  bool fired() const { return fired_; }

  /// Cycle at which progress was last observed.
  Cycle last_progress() const { return last_progress_; }

  /// Per-router occupancy/credit snapshot captured when the watchdog
  /// fired; empty before that.
  const std::string& diagnostic() const { return diagnostic_; }

  /// Re-arms after a recovery action (keeps the diagnostic history empty).
  void reset();

 private:
  const noc::Network& net_;
  Cycle limit_;
  std::uint64_t last_sig_;
  Cycle last_progress_;
  bool fired_ = false;
  std::string diagnostic_;
};

}  // namespace nocs::fault
