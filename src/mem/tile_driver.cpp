#include "mem/tile_driver.hpp"

#include <algorithm>

namespace nocs::mem {

TileTransferDriver::TileTransferDriver(noc::Network& net, MemSubsystem& mem,
                                       TileSchedule sched,
                                       std::vector<std::vector<NodeId>> groups,
                                       TileDriverOptions opts)
    : net_(&net),
      mem_(&mem),
      sched_(std::move(sched)),
      groups_(std::move(groups)),
      opts_(opts) {
  sched_.validate();
  NOCS_EXPECTS(!groups_.empty());
  NOCS_EXPECTS(opts_.chunk_flits >= 0);
  for (const auto& g : groups_) NOCS_EXPECTS(!g.empty());
  group_ids_.reserve(groups_.size());
  for (const auto& g : groups_)
    group_ids_.push_back(net.add_multicast_group(g));
  net.set_multicast(opts_.multicast);
  advance(/*step=*/false);
}

void TileTransferDriver::install() {
  net_->set_pre_tick_hook([this](Cycle now) { on_pre_tick(now); });
}

void TileTransferDriver::uninstall() { net_->set_pre_tick_hook(nullptr); }

int TileTransferDriver::chunk() const {
  return opts_.chunk_flits > 0 ? opts_.chunk_flits
                               : net_->params().packet_length;
}

int TileTransferDriver::split(int total, int ways) {
  return (total + ways - 1) / ways;
}

int TileTransferDriver::phase_volume(Phase p, const TileLayer& l) const {
  switch (p) {
    case Phase::kFetch: return l.fetch_flits;
    case Phase::kWeights:
      // A broadcast needs someone to broadcast to; with only 1-member
      // groups the phase is structurally empty regardless of volume.
      for (const auto& g : groups_)
        if (g.size() > 1) return l.weight_flits;
      return 0;
    case Phase::kCompute: return l.compute_cycles;
    case Phase::kActs:
      // With a single group every activation would be a self-send.
      return groups_.size() > 1 ? l.act_flits : 0;
    case Phase::kWriteback: return l.writeback_flits;
    case Phase::kDone: return 0;
  }
  NOCS_UNREACHABLE("phase_volume: bad phase");
}

void TileTransferDriver::advance(bool step) {
  const int num_layers = static_cast<int>(sched_.layers.size());
  while (layer_ < num_layers) {
    if (step) {
      if (phase_ == Phase::kWriteback) {
        phase_ = Phase::kFetch;
        ++layer_;
        ++counters_.layers_done;
        if (layer_ >= num_layers) break;
      } else {
        phase_ = static_cast<Phase>(static_cast<std::uint8_t>(phase_) + 1);
      }
    }
    step = true;
    if (layer_ < num_layers &&
        phase_volume(phase_, sched_.layers[static_cast<std::size_t>(layer_)]) >
            0)
      return;
  }
  phase_ = Phase::kDone;
}

void TileTransferDriver::on_pre_tick(Cycle now) {
  if (phase_ == Phase::kDone) return;
  if (issued_) {
    // drained() at the cycle boundary means every packet of the current
    // phase was delivered and every controller finished — the barrier
    // between phases.  A compute phase additionally holds the barrier
    // until the slowest tile's share of the work is done.
    if (!net_->drained()) return;
    if (phase_ == Phase::kCompute && now < compute_until_) return;
    issued_ = false;
    advance(/*step=*/true);
    if (phase_ == Phase::kDone) {
      finish_cycle_ = now;
      return;
    }
  }
  issue(now);
  issued_ = true;
}

void TileTransferDriver::issue(Cycle now) {
  const TileLayer& l = sched_.layers[static_cast<std::size_t>(layer_)];
  switch (phase_) {
    case Phase::kFetch: issue_fetch(now, l); return;
    case Phase::kWeights: issue_weights(now, l); return;
    case Phase::kCompute: issue_compute(now, l); return;
    case Phase::kActs: issue_acts(now, l); return;
    case Phase::kWriteback: issue_writeback(now, l); return;
    case Phase::kDone: break;
  }
  NOCS_UNREACHABLE("issue: bad phase");
}

void TileTransferDriver::dram_request(Cycle now, NodeId tile, bool write,
                                      int flits) {
  const NodeId ctrl = mem_->controller_for(tile, dram_seq_++);
  if (ctrl == tile) {
    // The tile hosts the controller: a genuinely local DRAM access that
    // never enters the mesh (and the NoC asserts on self-addressed
    // packets anyway).
    mem_->controller_at(tile)->enqueue_local(now, write, flits);
    ++counters_.local_accesses;
  } else if (write) {
    net_->ni(tile).send_packet(now, ctrl, kMemRequestClass, flits);
  } else {
    net_->ni(tile).send_packet(now, ctrl, kMemRequestClass, 1);
  }
  if (write)
    ++counters_.dram_writes;
  else
    ++counters_.dram_reads;
}

void TileTransferDriver::issue_fetch(Cycle now, const TileLayer& l) {
  // The layer's total fetch volume splits evenly across the group leaders
  // (more groups = more DRAM-level parallelism, the lever sprinting
  // pulls), each leader issuing one read command per reply burst.
  const int reply = mem_->params().reply_length;
  const int per_group = split(l.fetch_flits, static_cast<int>(groups_.size()));
  const int requests = (per_group + reply - 1) / reply;
  for (const auto& g : groups_)
    for (int i = 0; i < requests; ++i)
      dram_request(now, g.front(), /*write=*/false, reply);
}

void TileTransferDriver::issue_weights(Cycle now, const TileLayer& l) {
  const int c = chunk();
  const int per_group = split(l.weight_flits, static_cast<int>(groups_.size()));
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].size() < 2) continue;  // no one to broadcast to
    int remaining = per_group;
    while (remaining > 0) {
      const int len = std::min(remaining, c);
      net_->ni(groups_[g].front())
          .send_multicast(now, group_ids_[g], kMemReplyClass, len);
      ++counters_.weight_mcasts;
      remaining -= len;
    }
  }
}

void TileTransferDriver::issue_compute(Cycle now, const TileLayer& l) {
  // The layer's compute volume splits across every tile; the barrier
  // waits for the (identical) per-tile share.  No packets move, but the
  // powered sub-network keeps leaking — the cost of sprinting wide.
  int total_tiles = 0;
  for (const auto& g : groups_) total_tiles += static_cast<int>(g.size());
  compute_until_ =
      now + static_cast<Cycle>(split(l.compute_cycles, total_tiles));
  counters_.compute_cycles +=
      static_cast<std::uint64_t>(split(l.compute_cycles, total_tiles));
}

void TileTransferDriver::issue_acts(Cycle now, const TileLayer& l) {
  const int c = chunk();
  int total_tiles = 0;
  for (const auto& g : groups_) total_tiles += static_cast<int>(g.size());
  const int per_tile = split(l.act_flits, total_tiles);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const auto& src_group = groups_[g];
    const auto& dst_group = groups_[(g + 1) % groups_.size()];
    for (std::size_t p = 0; p < src_group.size(); ++p) {
      const NodeId src = src_group[p];
      const NodeId dst = dst_group[p % dst_group.size()];
      if (dst == src) continue;  // groups may overlap; never self-send
      int remaining = per_tile;
      while (remaining > 0) {
        const int len = std::min(remaining, c);
        net_->ni(src).send_packet(now, dst, kMemReplyClass, len);
        ++counters_.act_packets;
        remaining -= len;
      }
    }
  }
}

void TileTransferDriver::issue_writeback(Cycle now, const TileLayer& l) {
  // Write bursts must be >= 2 flits so the controller classifies them as
  // writes (a 1-flit packet is a read command).
  const int c = std::max(chunk(), 2);
  const int per_group =
      split(l.writeback_flits, static_cast<int>(groups_.size()));
  for (const auto& g : groups_) {
    int remaining = per_group;
    while (remaining > 0) {
      const int len = std::max(std::min(remaining, c), 2);
      dram_request(now, g.front(), /*write=*/true, len);
      remaining -= len;
    }
  }
}

void TileTransferDriver::save_state(snapshot::Writer& w) const {
  w.begin_section("tile_driver");
  w.i64(layer_);
  w.u8(static_cast<std::uint8_t>(phase_));
  w.b(issued_);
  w.u64(finish_cycle_);
  w.u64(compute_until_);
  w.u64(dram_seq_);
  w.u64(counters_.dram_reads);
  w.u64(counters_.dram_writes);
  w.u64(counters_.weight_mcasts);
  w.u64(counters_.act_packets);
  w.u64(counters_.local_accesses);
  w.u64(counters_.compute_cycles);
  w.u64(counters_.layers_done);
  w.end_section();
}

void TileTransferDriver::load_state(snapshot::Reader& r) {
  r.begin_section("tile_driver");
  layer_ = static_cast<int>(r.i64());
  phase_ = static_cast<Phase>(r.u8());
  issued_ = r.b();
  finish_cycle_ = r.u64();
  compute_until_ = r.u64();
  dram_seq_ = r.u64();
  counters_.dram_reads = r.u64();
  counters_.dram_writes = r.u64();
  counters_.weight_mcasts = r.u64();
  counters_.act_packets = r.u64();
  counters_.local_accesses = r.u64();
  counters_.compute_cycles = r.u64();
  counters_.layers_done = r.u64();
  r.end_section();
}

}  // namespace nocs::mem
