// Configuration of the memory-traffic subsystem: how many edge DRAM
// controllers exist, where they sit on the mesh boundary, how tiles are
// assigned to them, and the bandwidth/latency of each DRAM channel.
//
// This is the cycle-accurate analogue of the SET-ISCA2023 cost model's
// DRAM ports: controllers are NoC endpoints on boundary nodes, reads are
// 1-flit class-0 requests answered with multi-flit class-1 data replies,
// writes are multi-flit class-0 data packets answered with 1-flit class-1
// acks, and each controller serializes requests behind a bounded-bandwidth
// DRAM channel with a fixed access latency.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/geometry.hpp"
#include "common/types.hpp"

namespace nocs::mem {

/// Where controllers sit and how tiles pick one.
///  - kInterleave: controllers spread evenly around the mesh perimeter;
///    requests round-robin across all controllers (address interleaving).
///  - kNearest: same perimeter spread; every tile always uses its
///    nearest controller (minimum hop distance, ties to the lowest id).
///  - kEdges: controllers packed clockwise from the top-left corner
///    (the SET exemplar's edge DRAM ports); requests interleave.
enum class MemPlacement { kInterleave, kNearest, kEdges };

/// Parses "interleave" / "nearest" / "edges"; throws std::invalid_argument
/// otherwise.
MemPlacement placement_from_string(const std::string& s);
const char* to_string(MemPlacement p);

struct MemParams {
  int ctrls = 0;  ///< number of controllers (0 = subsystem disabled)
  MemPlacement placement = MemPlacement::kInterleave;
  int bandwidth = 2;       ///< DRAM channel bandwidth (flits/cycle)
  int access_latency = 60; ///< fixed DRAM access latency (cycles)
  int reply_length = 8;    ///< data flits returned per read request
  int queue_capacity = 0;  ///< request-queue bound (0 = unbounded)

  /// Reads the `mem_*` config keys (mem_ctrls, mem_placement,
  /// mem_bandwidth, mem_latency, mem_reply, mem_queue) over the defaults
  /// above.
  static MemParams from_config(const Config& cfg);

  void validate() const;
};

/// The `n` boundary nodes hosting the controllers under `placement`:
/// evenly spaced around the perimeter (interleave/nearest) or packed
/// clockwise from the top-left corner (edges).  Deterministic, duplicate-
/// free; requires 1 <= n <= perimeter size.
std::vector<NodeId> controller_sites(const MeshShape& shape, int n,
                                     MemPlacement placement);

/// Every node on the dimension-ordered (X then Y) route from `a` to `b`,
/// inclusive of both.  Used to compute the powered closure a sprint level
/// needs so DRAM traffic never hits a gated router.
std::vector<NodeId> xy_path_nodes(const MeshShape& shape, NodeId a, NodeId b);

}  // namespace nocs::mem
