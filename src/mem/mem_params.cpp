#include "mem/mem_params.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace nocs::mem {

MemPlacement placement_from_string(const std::string& s) {
  if (s == "interleave") return MemPlacement::kInterleave;
  if (s == "nearest") return MemPlacement::kNearest;
  if (s == "edges") return MemPlacement::kEdges;
  throw std::invalid_argument("unknown mem_placement: " + s);
}

const char* to_string(MemPlacement p) {
  switch (p) {
    case MemPlacement::kInterleave: return "interleave";
    case MemPlacement::kNearest: return "nearest";
    case MemPlacement::kEdges: return "edges";
  }
  NOCS_UNREACHABLE("to_string: bad MemPlacement");
}

MemParams MemParams::from_config(const Config& cfg) {
  MemParams p;
  p.ctrls = cfg.get_int("mem_ctrls", p.ctrls);
  p.placement =
      placement_from_string(cfg.get_string("mem_placement", to_string(p.placement)));
  p.bandwidth = cfg.get_int("mem_bandwidth", p.bandwidth);
  p.access_latency = cfg.get_int("mem_latency", p.access_latency);
  p.reply_length = cfg.get_int("mem_reply", p.reply_length);
  p.queue_capacity = cfg.get_int("mem_queue", p.queue_capacity);
  p.validate();
  return p;
}

void MemParams::validate() const {
  NOCS_EXPECTS(ctrls >= 0);
  NOCS_EXPECTS(bandwidth >= 1);
  NOCS_EXPECTS(access_latency >= 0);
  NOCS_EXPECTS(reply_length >= 1);
  NOCS_EXPECTS(queue_capacity >= 0);
}

namespace {

// The mesh perimeter, clockwise from the top-left corner.  Every node
// appears exactly once even on degenerate 1-wide / 1-tall meshes.
std::vector<NodeId> perimeter_nodes(const MeshShape& shape) {
  const int w = shape.width();
  const int h = shape.height();
  std::vector<NodeId> ring;
  ring.reserve(static_cast<std::size_t>(2 * (w + h)));
  for (int x = 0; x < w; ++x) ring.push_back(shape.id_of({x, 0}));
  for (int y = 1; y < h; ++y) ring.push_back(shape.id_of({w - 1, y}));
  if (h > 1)
    for (int x = w - 2; x >= 0; --x) ring.push_back(shape.id_of({x, h - 1}));
  if (w > 1)
    for (int y = h - 2; y >= 1; --y) ring.push_back(shape.id_of({0, y}));
  return ring;
}

}  // namespace

std::vector<NodeId> controller_sites(const MeshShape& shape, int n,
                                     MemPlacement placement) {
  const std::vector<NodeId> ring = perimeter_nodes(shape);
  const int ring_size = static_cast<int>(ring.size());
  NOCS_EXPECTS(n >= 1 && n <= ring_size);
  std::vector<NodeId> sites;
  sites.reserve(static_cast<std::size_t>(n));
  if (placement == MemPlacement::kEdges) {
    for (int i = 0; i < n; ++i) sites.push_back(ring[static_cast<std::size_t>(i)]);
  } else {
    // Evenly spaced: site i at perimeter index floor(i * ring / n).  The
    // stride is >= 1 because n <= ring, so the sites are distinct.
    for (int i = 0; i < n; ++i)
      sites.push_back(ring[static_cast<std::size_t>(i * ring_size / n)]);
  }
  return sites;
}

std::vector<NodeId> xy_path_nodes(const MeshShape& shape, NodeId a, NodeId b) {
  NOCS_EXPECTS(shape.valid(a) && shape.valid(b));
  std::vector<NodeId> path;
  Coord c = shape.coord_of(a);
  const Coord dst = shape.coord_of(b);
  path.push_back(a);
  while (c.x != dst.x) {
    c.x += c.x < dst.x ? 1 : -1;
    path.push_back(shape.id_of(c));
  }
  while (c.y != dst.y) {
    c.y += c.y < dst.y ? 1 : -1;
    path.push_back(shape.id_of(c));
  }
  return path;
}

}  // namespace nocs::mem
