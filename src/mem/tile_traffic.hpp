// Open-loop traffic pattern with the *shape* of the tile-transfer
// workload, for rate sweeps and fuzzing: logical endpoints are split into
// `num_groups` contiguous groups; each source sends to the same-position
// endpoint of the next group (the activation stream), and an optional
// fraction of packets targets the source's own group leader (modelling
// the leader's fetch/weight pressure).
//
// The closed-loop phase machine lives in TileTransferDriver; this pattern
// is the stationary approximation usable anywhere a TrafficPattern is.
#pragma once

#include "noc/traffic.hpp"

namespace nocs::mem {

class TileTraffic final : public noc::TrafficPattern {
 public:
  /// Endpoints [0, k) are split into `num_groups` contiguous blocks of
  /// near-equal size (the first k % num_groups blocks get the extra
  /// member).  `leader_fraction` of draws go to the source's group
  /// leader instead of the next-group peer.  Requires k >= 2 and
  /// 1 <= num_groups <= k.
  TileTraffic(int num_endpoints, int num_groups,
              double leader_fraction = 0.0);

  const char* name() const override { return "tile"; }

  int num_groups() const { return groups_; }
  int group_of(int endpoint) const;
  /// First endpoint of group g (its leader).
  int leader_of(int group) const;

 protected:
  int pick(int src, Rng& rng) const override;

 private:
  int group_size(int group) const;

  int groups_;
  double leader_fraction_;
};

}  // namespace nocs::mem
