// Declarative per-layer transfer schedule for the tile-transfer workload
// (the SET-style inference loop: fetch weights from DRAM, broadcast them
// to the tiles of a group, stream activations to the next group, write
// results back).
//
// Textual form, config-friendly (no '=' so it survives key=value
// parsing): layers separated by '/', fields inside a layer separated by
// ',', each field a letter tag followed by a flit count:
//
//   "w64,a32,f128,b64/w64,a32,f128,b0"
//
//   f  fetch_flits      total DRAM read volume of the layer
//   w  weight_flits     total broadcast volume (leaders -> their groups)
//   c  compute_cycles   total compute volume (tile-cycles) of the layer
//   a  act_flits        total activation volume (tiles -> next group)
//   b  writeback_flits  total DRAM write volume of the layer
//
// Volumes are layer totals: the driver splits fetch/weight/writeback
// evenly across the tile groups and activations across all tiles, so the
// work is fixed and the sprint level decides how many workers share it.
// Omitted fields are zero; a phase with zero volume is skipped.
#pragma once

#include <string>
#include <vector>

namespace nocs::mem {

struct TileLayer {
  int fetch_flits = 0;
  int weight_flits = 0;
  int compute_cycles = 0;
  int act_flits = 0;
  int writeback_flits = 0;
};

struct TileSchedule {
  std::vector<TileLayer> layers;

  /// Parses the textual form above; throws std::invalid_argument on an
  /// unknown tag, a malformed count, or an empty schedule.
  static TileSchedule parse(const std::string& spec);

  /// A small 3-layer default used when no `schedule=` is given.
  static TileSchedule example();

  /// Round-trips through parse().
  std::string to_string() const;

  /// Total flits a single group moves per category, summed over layers.
  long long total_flits() const;

  void validate() const;
};

}  // namespace nocs::mem
