// One edge DRAM controller, attached to a boundary node's network
// interface as a LocalAgent.
//
// The controller consumes class-0 data tails ejected at its node: a
// 1-flit packet is a read command (answered with a reply_length-flit
// class-1 data reply), a multi-flit packet is a write burst (absorbed and
// answered with a 1-flit class-1 ack).  Requests queue FIFO behind a
// single DRAM channel that serves one request at a time in
// access_latency + ceil(data_flits / bandwidth) cycles.  Class-1 and
// multicast traffic ejected at the same node passes through untouched, so
// a controller can share its node with an ordinary compute tile.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/metrics.hpp"
#include "common/snapshot.hpp"
#include "mem/mem_params.hpp"
#include "noc/local_agent.hpp"
#include "noc/network_interface.hpp"

namespace nocs::mem {

/// Message class of read/write requests entering a controller.
inline constexpr int kMemRequestClass = 0;
/// Message class of data replies and write acks leaving a controller.
inline constexpr int kMemReplyClass = 1;

struct MemCounters {
  std::uint64_t reads = 0;        ///< read commands accepted
  std::uint64_t writes = 0;       ///< write bursts accepted
  std::uint64_t read_flits = 0;   ///< data flits returned by reads
  std::uint64_t write_flits = 0;  ///< data flits absorbed by writes
  std::uint64_t replies = 0;      ///< reply/ack packets sent (or local)
  std::uint64_t rejected = 0;     ///< requests dropped by a full queue
  std::uint64_t busy_cycles = 0;  ///< cycles the DRAM channel was serving
  std::uint64_t queue_cycles = 0; ///< sum of occupancy (incl. in service)
  std::uint64_t queue_peak = 0;   ///< max occupancy observed

  MemCounters& operator+=(const MemCounters& o);

  /// Registers "<prefix>.reads" etc. on the registry.
  void export_metrics(MetricsRegistry& reg, const std::string& prefix) const;
};

class MemController final : public noc::LocalAgent {
 public:
  /// `ni` must be the interface of `node`; the caller (MemSubsystem) also
  /// attaches this agent to it.
  MemController(NodeId node, const MemParams& params,
                noc::NetworkInterface* ni);

  // --- LocalAgent -----------------------------------------------------------
  void on_packet(Cycle now, const noc::Flit& tail) override;
  void tick(Cycle now) override;
  bool busy_next_cycle() const override {
    return serving_ || !queue_.empty();
  }
  bool idle() const override { return !serving_ && queue_.empty(); }

  // --------------------------------------------------------------------------

  NodeId node() const { return node_; }
  const MemCounters& counters() const { return counters_; }

  /// Requests queued plus the one in service.
  std::size_t occupancy() const {
    return queue_.size() + (serving_ ? 1u : 0u);
  }

  /// Enqueues a request from this controller's own node without touching
  /// the network (a tile issuing to its co-located controller; the NoC
  /// asserts on self-addressed packets, and a local access genuinely
  /// bypasses the mesh).  The reply is likewise delivered locally.
  void enqueue_local(Cycle now, bool write, int data_flits);

  // Dynamic state only (queue, in-service request, counters); placement
  // and timing parameters are configuration.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct Request {
    NodeId src = kInvalidNode;
    bool write = false;
    int data_flits = 0;   ///< write burst size, or read reply size
    Cycle arrived = 0;
  };

  void accept(Cycle now, const Request& req);
  int service_cycles(const Request& req) const;
  void complete(Cycle now);

  NodeId node_;
  MemParams params_;
  noc::NetworkInterface* ni_;

  std::deque<Request> queue_;
  bool serving_ = false;
  Request current_{};
  Cycle started_ = 0;  ///< cycle service of current_ began
  Cycle finish_ = 0;   ///< cycle current_ completes

  MemCounters counters_;
};

}  // namespace nocs::mem
