#include "mem/mem_controller.hpp"

#include <utility>

#include "common/trace.hpp"

namespace nocs::mem {

MemCounters& MemCounters::operator+=(const MemCounters& o) {
  reads += o.reads;
  writes += o.writes;
  read_flits += o.read_flits;
  write_flits += o.write_flits;
  replies += o.replies;
  rejected += o.rejected;
  busy_cycles += o.busy_cycles;
  queue_cycles += o.queue_cycles;
  if (o.queue_peak > queue_peak) queue_peak = o.queue_peak;
  return *this;
}

void MemCounters::export_metrics(MetricsRegistry& reg,
                                 const std::string& prefix) const {
  reg.counter(prefix + ".reads").set(reads);
  reg.counter(prefix + ".writes").set(writes);
  reg.counter(prefix + ".read_flits").set(read_flits);
  reg.counter(prefix + ".write_flits").set(write_flits);
  reg.counter(prefix + ".replies").set(replies);
  reg.counter(prefix + ".rejected").set(rejected);
  reg.counter(prefix + ".busy_cycles").set(busy_cycles);
  reg.counter(prefix + ".queue_cycles").set(queue_cycles);
  reg.counter(prefix + ".queue_peak").set(queue_peak);
}

MemController::MemController(NodeId node, const MemParams& params,
                             noc::NetworkInterface* ni)
    : node_(node), params_(params), ni_(ni) {
  params_.validate();
  NOCS_EXPECTS(ni != nullptr && ni->id() == node);
}

void MemController::on_packet(Cycle now, const noc::Flit& tail) {
  // Only plain class-0 data packets are memory requests; replies,
  // multicast segments, and other virtual networks pass through to the
  // node's ordinary ejection path untouched.
  if (tail.kind != noc::PacketKind::kData ||
      tail.msg_class != kMemRequestClass)
    return;
  const int length = tail.index + 1;
  Request req;
  req.src = tail.src;
  req.write = length > 1;
  req.data_flits = req.write ? length : params_.reply_length;
  req.arrived = now;
  accept(now, req);
}

void MemController::enqueue_local(Cycle now, bool write, int data_flits) {
  NOCS_EXPECTS(data_flits >= 1);
  Request req;
  req.src = node_;
  req.write = write;
  req.data_flits = write ? data_flits : params_.reply_length;
  req.arrived = now;
  accept(now, req);
  // The request never crossed the NI, so the active-node fast path has no
  // idea this node is busy again.
  ni_->wake();
}

void MemController::accept(Cycle now, const Request& req) {
  (void)now;
  if (params_.queue_capacity > 0 &&
      occupancy() >= static_cast<std::size_t>(params_.queue_capacity)) {
    ++counters_.rejected;
    return;
  }
  queue_.push_back(req);
  if (occupancy() > counters_.queue_peak)
    counters_.queue_peak = occupancy();
}

int MemController::service_cycles(const Request& req) const {
  const int transfer =
      (req.data_flits + params_.bandwidth - 1) / params_.bandwidth;
  const int total = params_.access_latency + transfer;
  return total >= 1 ? total : 1;
}

void MemController::complete(Cycle now) {
  const Request& req = current_;
  if (req.write) {
    ++counters_.writes;
    counters_.write_flits += static_cast<std::uint64_t>(req.data_flits);
  } else {
    ++counters_.reads;
    counters_.read_flits += static_cast<std::uint64_t>(req.data_flits);
  }
  ++counters_.replies;
  // Reads answer with the data burst, writes with a 1-flit ack; a request
  // from the controller's own node completes locally (the NoC rejects
  // self-addressed packets, and a local access never entered the mesh).
  if (req.src != node_) {
    const int reply_len = req.write ? 1 : req.data_flits;
    ni_->send_packet(now, req.src, kMemReplyClass, reply_len);
  }
  if (trace::enabled()) {
    json::Value args = json::Value::object();
    args.set("src", req.src);
    args.set("flits", req.data_flits);
    args.set("queued", static_cast<double>(started_ - req.arrived));
    trace::complete(req.write ? "dram_write" : "dram_read", "mem",
                    trace::kSimPid, static_cast<int>(node_),
                    static_cast<double>(started_),
                    static_cast<double>(now - started_), std::move(args));
  }
  serving_ = false;
}

void MemController::tick(Cycle now) {
  counters_.queue_cycles += occupancy();
  if (serving_) {
    ++counters_.busy_cycles;
    if (now >= finish_) complete(now);
  }
  if (!serving_ && !queue_.empty()) {
    current_ = queue_.front();
    queue_.pop_front();
    serving_ = true;
    started_ = now;
    finish_ = now + static_cast<Cycle>(service_cycles(current_));
  }
}

namespace {

void save_request(snapshot::Writer& w, NodeId src, bool write, int flits,
                  Cycle arrived) {
  w.i64(src);
  w.b(write);
  w.i64(flits);
  w.u64(arrived);
}

}  // namespace

void MemController::save_state(snapshot::Writer& w) const {
  w.begin_section("mem_ctrl");
  w.b(serving_);
  save_request(w, current_.src, current_.write, current_.data_flits,
               current_.arrived);
  w.u64(started_);
  w.u64(finish_);
  w.u64(queue_.size());
  for (const Request& q : queue_)
    save_request(w, q.src, q.write, q.data_flits, q.arrived);
  w.u64(counters_.reads);
  w.u64(counters_.writes);
  w.u64(counters_.read_flits);
  w.u64(counters_.write_flits);
  w.u64(counters_.replies);
  w.u64(counters_.rejected);
  w.u64(counters_.busy_cycles);
  w.u64(counters_.queue_cycles);
  w.u64(counters_.queue_peak);
  w.end_section();
}

namespace {

void load_request(snapshot::Reader& r, NodeId* src, bool* write, int* flits,
                  Cycle* arrived) {
  *src = static_cast<NodeId>(r.i64());
  *write = r.b();
  *flits = static_cast<int>(r.i64());
  *arrived = r.u64();
}

}  // namespace

void MemController::load_state(snapshot::Reader& r) {
  r.begin_section("mem_ctrl");
  serving_ = r.b();
  load_request(r, &current_.src, &current_.write, &current_.data_flits,
               &current_.arrived);
  started_ = r.u64();
  finish_ = r.u64();
  queue_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Request q;
    load_request(r, &q.src, &q.write, &q.data_flits, &q.arrived);
    queue_.push_back(q);
  }
  counters_.reads = r.u64();
  counters_.writes = r.u64();
  counters_.read_flits = r.u64();
  counters_.write_flits = r.u64();
  counters_.replies = r.u64();
  counters_.rejected = r.u64();
  counters_.busy_cycles = r.u64();
  counters_.queue_cycles = r.u64();
  counters_.queue_peak = r.u64();
  r.end_section();
  // The network restored its hot set before this controller regained its
  // queue/in-service state; re-arm the node if we came back busy.
  if (serving_ || !queue_.empty()) ni_->wake();
}

}  // namespace nocs::mem
