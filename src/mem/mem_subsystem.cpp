#include "mem/mem_subsystem.hpp"

#include <limits>
#include <string>

namespace nocs::mem {

MemSubsystem::MemSubsystem(noc::Network& net, const MemParams& params)
    : net_(&net), params_(params) {
  params_.validate();
  NOCS_EXPECTS(params_.ctrls >= 1);
  NOCS_EXPECTS(net.params().num_classes >= 2);
  sites_ = controller_sites(net.params().shape(), params_.ctrls,
                            params_.placement);
  ctrls_.reserve(sites_.size());
  for (NodeId site : sites_) {
    ctrls_.push_back(
        std::make_unique<MemController>(site, params_, &net.ni(site)));
    net.ni(site).set_agent(ctrls_.back().get());
  }
}

MemSubsystem::~MemSubsystem() {
  for (NodeId site : sites_) net_->ni(site).set_agent(nullptr);
}

NodeId MemSubsystem::controller_for(NodeId tile, std::uint64_t seq) const {
  if (params_.placement == MemPlacement::kNearest) {
    const MeshShape shape = net_->params().shape();
    const Coord from = shape.coord_of(tile);
    NodeId best = sites_.front();
    int best_d = std::numeric_limits<int>::max();
    for (NodeId site : sites_) {
      const int d = manhattan(from, shape.coord_of(site));
      if (d < best_d) {
        best_d = d;
        best = site;
      }
    }
    return best;
  }
  return sites_[static_cast<std::size_t>(seq % sites_.size())];
}

MemController* MemSubsystem::controller_at(NodeId node) {
  for (auto& c : ctrls_)
    if (c->node() == node) return c.get();
  return nullptr;
}

bool MemSubsystem::idle() const {
  for (const auto& c : ctrls_)
    if (!c->idle()) return false;
  return true;
}

MemCounters MemSubsystem::total_counters() const {
  MemCounters total;
  for (const auto& c : ctrls_) total += c->counters();
  return total;
}

void MemSubsystem::export_metrics(MetricsRegistry& reg) const {
  for (std::size_t i = 0; i < ctrls_.size(); ++i)
    ctrls_[i]->counters().export_metrics(reg,
                                         "mem.ctrl" + std::to_string(i));
  total_counters().export_metrics(reg, "mem.total");
}

void MemSubsystem::save_state(snapshot::Writer& w) const {
  w.begin_section("mem");
  w.u64(ctrls_.size());
  for (const auto& c : ctrls_) c->save_state(w);
  w.end_section();
}

void MemSubsystem::load_state(snapshot::Reader& r) {
  r.begin_section("mem");
  const std::uint64_t n = r.u64();
  if (n != ctrls_.size())
    throw snapshot::SnapshotError("mem: controller count mismatch");
  for (auto& c : ctrls_) c->load_state(r);
  r.end_section();
}

}  // namespace nocs::mem
