#include "mem/tile_schedule.hpp"

#include <cctype>
#include <stdexcept>

#include "common/assert.hpp"

namespace nocs::mem {

namespace {

// One "<tag><count>" field, e.g. "w64".  Whitespace around fields is
// tolerated so hand-written schedules can breathe.
void apply_field(TileLayer& layer, const std::string& field) {
  std::size_t i = 0;
  while (i < field.size() && std::isspace(static_cast<unsigned char>(field[i])))
    ++i;
  std::size_t end = field.size();
  while (end > i && std::isspace(static_cast<unsigned char>(field[end - 1])))
    --end;
  if (i >= end) return;  // empty field (trailing comma) is harmless
  const char tag = field[i++];
  if (i >= end)
    throw std::invalid_argument("tile schedule: field '" + field +
                                "' has no count");
  long long count = 0;
  for (; i < end; ++i) {
    const char c = field[i];
    if (c < '0' || c > '9')
      throw std::invalid_argument("tile schedule: bad count in '" + field +
                                  "'");
    count = count * 10 + (c - '0');
    if (count > 1'000'000'000)
      throw std::invalid_argument("tile schedule: count overflow in '" +
                                  field + "'");
  }
  switch (tag) {
    case 'f': layer.fetch_flits = static_cast<int>(count); break;
    case 'w': layer.weight_flits = static_cast<int>(count); break;
    case 'c': layer.compute_cycles = static_cast<int>(count); break;
    case 'a': layer.act_flits = static_cast<int>(count); break;
    case 'b': layer.writeback_flits = static_cast<int>(count); break;
    default:
      throw std::invalid_argument(std::string("tile schedule: unknown tag '") +
                                  tag + "'");
  }
}

}  // namespace

TileSchedule TileSchedule::parse(const std::string& spec) {
  TileSchedule sched;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t slash = spec.find('/', start);
    const std::string layer_spec =
        spec.substr(start, slash == std::string::npos ? std::string::npos
                                                      : slash - start);
    TileLayer layer;
    std::size_t fstart = 0;
    while (fstart <= layer_spec.size()) {
      const std::size_t comma = layer_spec.find(',', fstart);
      apply_field(layer, layer_spec.substr(
                             fstart, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - fstart));
      if (comma == std::string::npos) break;
      fstart = comma + 1;
    }
    sched.layers.push_back(layer);
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  sched.validate();
  return sched;
}

TileSchedule TileSchedule::example() {
  // Fetch-heavy first layer, balanced middle, writeback-heavy last —
  // enough total volume to expose DRAM queueing without multi-second
  // runs (volumes are layer totals shared by all groups).
  return parse(
      "f2048,w1024,c24000,a512/f1024,w1024,c24000,a512/"
      "f1024,w512,c16000,a256,b2048");
}

std::string TileSchedule::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const TileLayer& l = layers[i];
    if (i > 0) out += '/';
    out += "f" + std::to_string(l.fetch_flits);
    out += ",w" + std::to_string(l.weight_flits);
    out += ",c" + std::to_string(l.compute_cycles);
    out += ",a" + std::to_string(l.act_flits);
    out += ",b" + std::to_string(l.writeback_flits);
  }
  return out;
}

long long TileSchedule::total_flits() const {
  long long total = 0;
  for (const TileLayer& l : layers)
    total += l.fetch_flits + l.weight_flits + l.act_flits + l.writeback_flits;
  return total;
}

void TileSchedule::validate() const {
  if (layers.empty())
    throw std::invalid_argument("tile schedule: no layers");
  bool any = false;
  for (const TileLayer& l : layers) {
    NOCS_EXPECTS(l.fetch_flits >= 0 && l.weight_flits >= 0 &&
                 l.compute_cycles >= 0 && l.act_flits >= 0 &&
                 l.writeback_flits >= 0);
    if (l.fetch_flits + l.weight_flits + l.compute_cycles + l.act_flits +
            l.writeback_flits > 0)
      any = true;
  }
  if (!any)
    throw std::invalid_argument("tile schedule: all layers empty");
}

}  // namespace nocs::mem
