#include "mem/tile_traffic.hpp"

namespace nocs::mem {

TileTraffic::TileTraffic(int num_endpoints, int num_groups,
                         double leader_fraction)
    : TrafficPattern(num_endpoints),
      groups_(num_groups),
      leader_fraction_(leader_fraction) {
  NOCS_EXPECTS(num_groups >= 1 && num_groups <= num_endpoints);
  NOCS_EXPECTS(leader_fraction >= 0.0 && leader_fraction <= 1.0);
}

int TileTraffic::group_size(int group) const {
  // Blocks of floor(k/G); the first k % G blocks carry one extra member.
  return k_ / groups_ + (group < k_ % groups_ ? 1 : 0);
}

int TileTraffic::leader_of(int group) const {
  NOCS_EXPECTS(group >= 0 && group < groups_);
  const int base = k_ / groups_;
  const int extra = k_ % groups_;
  return group * base + (group < extra ? group : extra);
}

int TileTraffic::group_of(int endpoint) const {
  NOCS_EXPECTS(endpoint >= 0 && endpoint < k_);
  const int base = k_ / groups_;
  const int extra = k_ % groups_;
  // The first `extra` groups span (base + 1) endpoints each.
  const int wide_span = extra * (base + 1);
  if (endpoint < wide_span) return endpoint / (base + 1);
  return extra + (endpoint - wide_span) / base;
}

int TileTraffic::pick(int src, Rng& rng) const {
  const int g = group_of(src);
  if (leader_fraction_ > 0.0 && rng.bernoulli(leader_fraction_)) {
    const int leader = leader_of(g);
    if (leader != src) return leader;
    // The leader itself falls through to its activation peer.
  }
  const int next = (g + 1) % groups_;
  const int pos = src - leader_of(g);
  const int dst = leader_of(next) + pos % group_size(next);
  // With a single group (or heavy overlap on tiny meshes) the peer can be
  // the source; the ring successor keeps the draw total and self-free.
  if (dst == src) return (src + 1) % k_;
  return dst;
}

}  // namespace nocs::mem
