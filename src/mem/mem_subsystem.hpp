// Owns the edge DRAM controllers of one network: places them on the mesh
// boundary per MemParams, attaches each as the LocalAgent of its node's
// network interface, and maps tile requests to controllers under the
// configured placement policy.
#pragma once

#include <memory>
#include <vector>

#include "common/metrics.hpp"
#include "common/snapshot.hpp"
#include "mem/mem_controller.hpp"
#include "mem/mem_params.hpp"
#include "noc/network.hpp"

namespace nocs::mem {

class MemSubsystem final : public snapshot::Serializable {
 public:
  /// Requires params.ctrls >= 1 and net.params().num_classes >= 2 (replies
  /// travel a separate virtual network from requests, the standard
  /// protocol-deadlock guard).  Attaches one controller per site; the
  /// destructor detaches them.
  MemSubsystem(noc::Network& net, const MemParams& params);
  ~MemSubsystem();

  MemSubsystem(const MemSubsystem&) = delete;
  MemSubsystem& operator=(const MemSubsystem&) = delete;

  const MemParams& params() const { return params_; }
  int num_controllers() const { return static_cast<int>(ctrls_.size()); }
  const std::vector<NodeId>& sites() const { return sites_; }
  MemController& controller(int i) { return *ctrls_[static_cast<std::size_t>(i)]; }
  const MemController& controller(int i) const {
    return *ctrls_[static_cast<std::size_t>(i)];
  }

  /// The controller node serving request number `seq` issued by `tile`:
  /// under kNearest the minimum-hop site (ties to the lowest site index),
  /// otherwise sites in round-robin (address interleaving).
  NodeId controller_for(NodeId tile, std::uint64_t seq) const;

  /// The controller hosted at `node`, or nullptr.
  MemController* controller_at(NodeId node);

  /// True when every controller has drained its queue and channel.
  bool idle() const;

  MemCounters total_counters() const;

  /// Registers "mem.ctrl<i>.*" per controller plus the "mem.total.*"
  /// aggregate.
  void export_metrics(MetricsRegistry& reg) const;

  // Serializes every controller's dynamic state, in site order.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  noc::Network* net_;
  MemParams params_;
  std::vector<NodeId> sites_;
  std::vector<std::unique_ptr<MemController>> ctrls_;
};

}  // namespace nocs::mem
