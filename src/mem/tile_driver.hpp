// Replays a TileSchedule over tile groups as real NoC traffic: the
// closed-loop workload behind fig13_membound.
//
// Per layer, four phases run to quiescence in order:
//
//   fetch      each group leader issues DRAM read commands (class 0) to
//              the controllers; the data comes back as class-1 replies.
//   weights    each group leader multicasts the weight volume to the rest
//              of its group (tree multicast, or serial unicast when
//              multicast is off).
//   acts       every tile unicasts its activation volume to the
//              same-position tile of the next group (class 1).
//   writeback  each group leader streams write bursts (class 0) to the
//              controllers and collects the 1-flit acks.
//
// The driver runs from the network's serial pre-tick hook, so its
// decisions depend only on the drained state at each cycle boundary —
// bit-identical for any sim_threads.  A phase's packets are all enqueued
// on its first cycle (NI source queues are unbounded; the network applies
// the backpressure), and the next phase starts on the first cycle the
// network reports drained.
#pragma once

#include <cstdint>
#include <vector>

#include "common/snapshot.hpp"
#include "mem/mem_subsystem.hpp"
#include "mem/tile_schedule.hpp"
#include "noc/network.hpp"

namespace nocs::mem {

struct TileDriverOptions {
  bool multicast = true;  ///< tree multicast for weights (false: fallback)
  int chunk_flits = 0;    ///< packet size for transfers (0: packet_length)
};

struct TileDriverCounters {
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t weight_mcasts = 0;  ///< multicast sends (chunks)
  std::uint64_t act_packets = 0;
  std::uint64_t local_accesses = 0; ///< requests to a co-located controller
  std::uint64_t compute_cycles = 0; ///< barrier cycles spent computing
  std::uint64_t layers_done = 0;
};

class TileTransferDriver final : public snapshot::Serializable {
 public:
  /// `groups` lists the member tiles of each group; member 0 is the group
  /// leader (DRAM interface and weight source).  Registers one multicast
  /// group per tile group on `net` and applies opts.multicast.  Schedule
  /// volumes are layer totals: fetch/weight/writeback split evenly across
  /// groups, activations across all tiles — the work is fixed and the
  /// sprint level decides how many workers share it.
  TileTransferDriver(noc::Network& net, MemSubsystem& mem, TileSchedule sched,
                     std::vector<std::vector<NodeId>> groups,
                     TileDriverOptions opts = {});

  TileTransferDriver(const TileTransferDriver&) = delete;
  TileTransferDriver& operator=(const TileTransferDriver&) = delete;

  /// Installs the phase machine as the network's pre-tick hook.  The hook
  /// stays installed (but inert) after the driver finishes; uninstall (or
  /// destroy the network) before destroying the driver.
  void install();
  void uninstall();

  bool done() const { return phase_ == Phase::kDone; }
  /// Cycle the last phase drained (valid once done()).
  Cycle finished_at() const { return finish_cycle_; }

  int current_layer() const { return layer_; }
  const TileDriverCounters& counters() const { return counters_; }

  // Dynamic state only (phase pointer, sequence counter, counters);
  // groups/schedule/options are configuration and must match at restore.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  enum class Phase : std::uint8_t {
    kFetch = 0,
    kWeights = 1,
    kCompute = 2,  ///< tiles crunch their share; NoC idle, routers leak
    kActs = 3,
    kWriteback = 4,
    kDone = 5,
  };

  void on_pre_tick(Cycle now);
  /// Moves (layer_, phase_) forward until a phase with nonzero volume (or
  /// kDone).  `step` first leaves the current phase.
  void advance(bool step);
  int phase_volume(Phase p, const TileLayer& l) const;
  void issue(Cycle now);
  void issue_fetch(Cycle now, const TileLayer& l);
  void issue_weights(Cycle now, const TileLayer& l);
  void issue_compute(Cycle now, const TileLayer& l);
  void issue_acts(Cycle now, const TileLayer& l);
  void issue_writeback(Cycle now, const TileLayer& l);
  /// Routes one DRAM request from `tile`, going local when the interleave
  /// lands on the tile's own controller.
  void dram_request(Cycle now, NodeId tile, bool write, int flits);
  int chunk() const;
  /// Even split of a layer's total volume across `ways` workers,
  /// rounded up so no flits are dropped.
  static int split(int total, int ways);

  noc::Network* net_;
  MemSubsystem* mem_;
  TileSchedule sched_;
  std::vector<std::vector<NodeId>> groups_;
  TileDriverOptions opts_;
  std::vector<int> group_ids_;  ///< network multicast group per tile group

  int layer_ = 0;
  Phase phase_ = Phase::kFetch;
  bool issued_ = false;
  Cycle finish_cycle_ = 0;
  Cycle compute_until_ = 0;  ///< end of the current compute phase
  std::uint64_t dram_seq_ = 0;  ///< interleaving sequence across requests

  TileDriverCounters counters_;
};

}  // namespace nocs::mem
