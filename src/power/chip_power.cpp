#include "power/chip_power.hpp"

namespace nocs::power {

ChipPowerModel::ChipPowerModel(const ChipPowerParams& params)
    : params_(params) {
  params_.validate();
}

ChipPowerBreakdown ChipPowerModel::breakdown(
    const std::vector<CoreState>& cores,
    const std::vector<bool>& noc_gated) const {
  NOCS_EXPECTS(static_cast<int>(cores.size()) == params_.num_cores);
  NOCS_EXPECTS(static_cast<int>(noc_gated.size()) == params_.num_cores);

  Watts noc = 0.0;
  for (bool gated : noc_gated)
    noc += gated ? params_.noc_gated_node : params_.noc_per_node;
  return breakdown_with_noc(cores, noc);
}

ChipPowerBreakdown ChipPowerModel::breakdown_with_noc(
    const std::vector<CoreState>& cores, Watts noc_watts) const {
  NOCS_EXPECTS(static_cast<int>(cores.size()) == params_.num_cores);
  NOCS_EXPECTS(noc_watts >= 0.0);

  ChipPowerBreakdown b;
  for (CoreState s : cores) {
    switch (s) {
      case CoreState::kActive: b.cores += params_.core_active; break;
      case CoreState::kIdle: b.cores += params_.core_idle; break;
      case CoreState::kGated: b.cores += params_.core_gated; break;
    }
  }
  // L2 tiles stay powered: they hold shared data and the directory, so
  // they cannot be gated with their cores (Section 3.4's LLC discussion).
  b.l2 = params_.l2_tile * params_.num_cores;
  b.noc = noc_watts;
  b.mc = params_.mc_each * params_.num_mcs();
  b.others = params_.others;
  return b;
}

ChipPowerBreakdown ChipPowerModel::nominal() const {
  std::vector<CoreState> cores(static_cast<std::size_t>(params_.num_cores),
                               CoreState::kGated);
  cores[0] = CoreState::kActive;
  const std::vector<bool> noc_gated(
      static_cast<std::size_t>(params_.num_cores), false);
  return breakdown(cores, noc_gated);
}

Watts ChipPowerModel::core_power(int active_cores, CoreState rest) const {
  NOCS_EXPECTS(active_cores >= 0 && active_cores <= params_.num_cores);
  std::vector<CoreState> cores(static_cast<std::size_t>(params_.num_cores),
                               rest);
  for (int i = 0; i < active_cores; ++i)
    cores[static_cast<std::size_t>(i)] = CoreState::kActive;
  Watts total = 0.0;
  for (CoreState s : cores) {
    switch (s) {
      case CoreState::kActive: total += params_.core_active; break;
      case CoreState::kIdle: total += params_.core_idle; break;
      case CoreState::kGated: total += params_.core_gated; break;
    }
  }
  return total;
}

Watts ChipPowerModel::noc_power(int active_nodes) const {
  NOCS_EXPECTS(active_nodes >= 0 && active_nodes <= params_.num_cores);
  return params_.noc_per_node * active_nodes +
         params_.noc_gated_node * (params_.num_cores - active_nodes);
}

}  // namespace nocs::power
