#include "power/noc_power.hpp"

namespace nocs::power {

NocPowerEstimate estimate_noc_power(const noc::Network& net,
                                    const RouterPowerModel& router_model,
                                    const LinkPowerModel& link_model,
                                    Cycle window_cycles) {
  NOCS_EXPECTS(window_cycles > 0);
  NocPowerEstimate est;

  const double window_s = static_cast<double>(window_cycles) /
                          router_model.params().op.frequency;

  std::uint64_t total_link_flits = 0;
  std::uint64_t total_mc_flits = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const noc::Router& r = net.router(id);
    est.routers += router_model.from_counters(r.counters(), window_cycles);
    total_link_flits += r.counters().link_flits;
    total_mc_flits += r.counters().mc_flits;

    // Link leakage: each powered-on cycle of the driving router leaks its
    // outgoing links (out-degree of the node in the topology graph — on a
    // mesh, exactly the old N/E/S/W neighbor count).
    const int degree = net.topology().out_degree(id);
    const double on_fraction =
        static_cast<double>(r.counters().active_cycles +
                            r.counters().waking_cycles) /
        static_cast<double>(window_cycles);
    est.link_leakage += degree * link_model.leakage_power() * on_fraction;
  }

  est.link_dynamic = static_cast<double>(total_link_flits) *
                     link_model.traversal_energy() / window_s;

  // Multicast replication attribution: each relay-re-injected flit costs
  // one buffer write + read + crossbar traversal at the relay's router
  // plus one link traversal.  Expressed through the same event-energy
  // models, so the share is consistent with the terms it is carved from.
  if (total_mc_flits > 0) {
    noc::RouterCounters repl;
    repl.buffer_writes = total_mc_flits;
    repl.buffer_reads = total_mc_flits;
    repl.xbar_traversals = total_mc_flits;
    est.mcast_replication =
        router_model.from_counters(repl, window_cycles).dynamic() +
        static_cast<double>(total_mc_flits) * link_model.traversal_energy() /
            window_s;
  }
  return est;
}

}  // namespace nocs::power
