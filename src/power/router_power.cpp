#include "power/router_power.hpp"

namespace nocs::power {

namespace {

// Reference per-event energies for a canonical 5-port, 128-bit, 2 VC x 4
// wormhole router at 45 nm / 1.0 V (DSENT-magnitude constants).  Buffer
// energies are per bit; crossbar per bit; arbitration per allocation event;
// clock per cycle for the whole router.
constexpr double kBufWriteJPerBit = 5.2e-15;   // 0.67 pJ / 128-bit flit
constexpr double kBufReadJPerBit = 4.6e-15;    // 0.59 pJ / flit
constexpr double kXbarJPerBit = 6.1e-15;       // 0.78 pJ / flit
constexpr double kArbJPerEvent = 1.9e-13;      // 0.19 pJ / grant
constexpr double kClockJPerCycleRef = 5.5e-13; // 0.55 pJ / cycle (ref router)

// Reference leakage (watts) at 45 nm / 1.0 V for the canonical router,
// split by component.  Buffers dominate router leakage in DSENT.
constexpr double kBufLeakPerBitStorage = 2.4e-7;  // W per bit of buffering
constexpr double kXbarLeakPerBitWidth = 1.6e-6;   // W per bit of datapath
constexpr double kArbLeakPerPort = 4.0e-5;        // W per port
constexpr double kClockLeak = 2.0e-4;             // W fixed

// Reference structural scale factors (canonical router used in Fig. 2).
constexpr int kRefPorts = 5;
constexpr int kRefVcs = 2;
constexpr int kRefDepth = 4;

}  // namespace

RouterPowerParams RouterPowerParams::from_network(
    const noc::NetworkParams& net, TechNode tech, OperatingPoint op) {
  RouterPowerParams p;
  p.num_ports = kNumPorts;
  p.num_vcs = net.num_vcs;
  p.vc_depth = net.vc_depth;
  p.flit_bits = net.flit_bytes * 8;
  p.tech = tech;
  p.op = op;
  return p;
}

RouterPowerModel::RouterPowerModel(const RouterPowerParams& params)
    : params_(params) {
  NOCS_EXPECTS(params.num_ports >= 2 && params.num_vcs >= 1 &&
               params.vc_depth >= 1 && params.flit_bits >= 8);
  params.op.validate();

  const double dyn = dynamic_energy_scale(params.tech, params.op.voltage);
  const double leak = leakage_scale(params.tech, params.op.voltage);
  const auto bits = static_cast<double>(params.flit_bits);

  e_buf_write_ = kBufWriteJPerBit * bits * dyn;
  e_buf_read_ = kBufReadJPerBit * bits * dyn;
  // Crossbar energy grows with radix (larger multiplexers).
  const double radix_scale =
      static_cast<double>(params.num_ports) / kRefPorts;
  e_xbar_ = kXbarJPerBit * bits * radix_scale * dyn;
  // Arbitration cost grows with the number of contenders.
  const double arb_scale =
      static_cast<double>(params.num_ports * params.num_vcs) /
      (kRefPorts * kRefVcs);
  e_arb_ = kArbJPerEvent * arb_scale * dyn;
  // Clock tree load grows with total storage (flops in buffers + state).
  const double storage_scale =
      static_cast<double>(params.num_vcs * params.vc_depth) /
      (kRefVcs * kRefDepth);
  e_clock_ = kClockJPerCycleRef * (0.5 + 0.5 * storage_scale) * dyn;

  const double buffer_bits = static_cast<double>(params.num_ports) *
                             params.num_vcs * params.vc_depth * bits;
  leakage_ = (kBufLeakPerBitStorage * buffer_bits +
              kXbarLeakPerBitWidth * bits * radix_scale +
              kArbLeakPerPort * params.num_ports + kClockLeak) *
             leak;
}

RouterPowerBreakdown RouterPowerModel::from_counters(
    const noc::RouterCounters& c, Cycle window_cycles) const {
  NOCS_EXPECTS(window_cycles > 0);
  const double window_s =
      static_cast<double>(window_cycles) / params_.op.frequency;

  RouterPowerBreakdown b;
  b.buffer_dynamic =
      (static_cast<double>(c.buffer_writes) * e_buf_write_ +
       static_cast<double>(c.buffer_reads) * e_buf_read_) / window_s;
  b.crossbar_dynamic =
      static_cast<double>(c.xbar_traversals) * e_xbar_ / window_s;
  b.arbiter_dynamic =
      static_cast<double>(c.vc_allocs + c.sa_arbitrations) * e_arb_ /
      window_s;
  // Clock dynamic only toggles while the router is powered on.
  const double powered =
      static_cast<double>(c.active_cycles + c.waking_cycles);
  b.clock_dynamic = powered * e_clock_ / window_s;
  b.leakage = leakage_ * powered / static_cast<double>(window_cycles);
  return b;
}

RouterPowerBreakdown RouterPowerModel::at_injection(
    double flits_per_cycle) const {
  NOCS_EXPECTS(flits_per_cycle >= 0.0);
  const double f = params_.op.frequency;
  const double events_per_s = flits_per_cycle * f;

  RouterPowerBreakdown b;
  b.buffer_dynamic = events_per_s * (e_buf_write_ + e_buf_read_);
  b.crossbar_dynamic = events_per_s * e_xbar_;
  // Roughly one VC allocation per packet plus one switch grant per flit.
  b.arbiter_dynamic = events_per_s * 1.2 * e_arb_;
  b.clock_dynamic = f * e_clock_;
  b.leakage = leakage_;
  return b;
}

LinkPowerModel::LinkPowerModel(int flit_bits, double length_mm, TechNode tech,
                               OperatingPoint op)
    : length_mm_(length_mm), op_(op) {
  NOCS_EXPECTS(flit_bits >= 8 && length_mm > 0.0);
  op.validate();
  // Repeated-wire energy ~ 0.12 pJ/bit/mm at 45 nm / 1 V; leakage from
  // repeater banks ~ 40 uW per bit-mm reference lane group.
  const double dyn = dynamic_energy_scale(tech, op.voltage);
  const double leak = leakage_scale(tech, op.voltage);
  e_traversal_ = 1.2e-13 * static_cast<double>(flit_bits) * length_mm * dyn;
  leakage_ = 3.0e-6 * static_cast<double>(flit_bits) * length_mm * leak;
}

Watts LinkPowerModel::average_power(double flits_per_cycle,
                                    bool gated) const {
  NOCS_EXPECTS(flits_per_cycle >= 0.0);
  if (gated) return 0.0;
  return flits_per_cycle * op_.frequency * e_traversal_ + leakage_;
}

}  // namespace nocs::power
