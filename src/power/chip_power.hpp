// McPAT-style chip-level power model calibrated to the paper's Figure 3
// (Niagara2-based CMP: cores, tiled L2, memory controllers, NoC, others).
//
// Calibration targets: at nominal operation (one active core, the rest
// power-gated, NoC fully on), the NoC accounts for ~18 % / 26 % / 35 % /
// 42 % of chip power for 4- / 8- / 16- / 32-core chips — the observation
// that motivates NoC-sprinting.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "power/tech.hpp"

namespace nocs::power {

/// Activity state of one core.
enum class CoreState {
  kActive,  ///< sprinting / executing at full V/f
  kIdle,    ///< powered but idle (clock-gated only) — the naive scheme
  kGated,   ///< power-gated dark silicon (tiny residual leakage)
};

/// Per-component chip power in watts.
struct ChipPowerBreakdown {
  Watts cores = 0.0;
  Watts l2 = 0.0;
  Watts noc = 0.0;
  Watts mc = 0.0;
  Watts others = 0.0;

  Watts total() const { return cores + l2 + noc + mc + others; }
};

/// Structural and per-component parameters.  Defaults are the 45 nm
/// Niagara2-like calibration described in DESIGN.md.
struct ChipPowerParams {
  int num_cores = 16;
  Watts core_active = 4.0;   ///< one core at full V/f
  Watts core_idle = 2.5;     ///< powered-but-idle core (no power gating)
  Watts core_gated = 0.05;   ///< gated core residual
  Watts l2_tile = 0.34;      ///< one 256 KB L2 tile (always powered)
  Watts mc_each = 1.5;       ///< one memory controller
  int cores_per_mc = 16;     ///< MC count = max(1, num_cores / cores_per_mc)
  Watts others = 1.0;        ///< PCIe, clocking, misc
  Watts noc_per_node = 0.45; ///< router + links of one node, powered on
  Watts noc_gated_node = 0.01;  ///< gated router residual
  TechNode tech = TechNode::k45nm;
  OperatingPoint op = kReferencePoint;

  int num_mcs() const {
    const int n = num_cores / cores_per_mc;
    return n < 1 ? 1 : n;
  }

  void validate() const {
    NOCS_EXPECTS(num_cores >= 1);
    NOCS_EXPECTS(core_active > 0 && core_idle >= 0 && core_gated >= 0);
    NOCS_EXPECTS(core_idle <= core_active);
    NOCS_EXPECTS(core_gated <= core_idle);
    NOCS_EXPECTS(l2_tile >= 0 && mc_each >= 0 && others >= 0);
    NOCS_EXPECTS(noc_per_node >= 0 && noc_gated_node <= noc_per_node);
    NOCS_EXPECTS(cores_per_mc >= 1);
  }
};

class ChipPowerModel {
 public:
  explicit ChipPowerModel(const ChipPowerParams& params);

  const ChipPowerParams& params() const { return params_; }

  /// Full chip breakdown given per-core states and per-node NoC gating.
  /// Both vectors must have num_cores entries.
  ChipPowerBreakdown breakdown(const std::vector<CoreState>& cores,
                               const std::vector<bool>& noc_gated) const;

  /// Same, but the NoC contribution is supplied externally (e.g. measured
  /// by the cycle-accurate simulator + RouterPowerModel).
  ChipPowerBreakdown breakdown_with_noc(const std::vector<CoreState>& cores,
                                        Watts noc_watts) const;

  /// Nominal operation: core 0 active, all other cores gated, NoC fully
  /// powered (a gated-off node would block packet forwarding — the paper's
  /// key observation).
  ChipPowerBreakdown nominal() const;

  /// Core power (cores component only) with `k` active cores and the rest
  /// in `rest` state — the Figure 8 comparison.
  Watts core_power(int active_cores, CoreState rest) const;

  /// NoC power with `active_nodes` routers on and the rest gated.
  Watts noc_power(int active_nodes) const;

 private:
  ChipPowerParams params_;
};

}  // namespace nocs::power
