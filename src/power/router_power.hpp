// DSENT-style event-based router and link power model.
//
// Dynamic power is accumulated from per-event energies (buffer write/read,
// crossbar traversal, allocator arbitration, clock tree) harvested from the
// cycle-accurate simulator's RouterCounters; leakage accrues per powered-on
// cycle and is eliminated while a router is gated.  Per-event energies are
// specified per flit at the reference point (45 nm, 1.0 V, 2 GHz) for a
// canonical 5-port 128-bit router and scaled by configuration, voltage,
// frequency, and technology node.
#pragma once

#include "common/types.hpp"
#include "noc/counters.hpp"
#include "noc/params.hpp"
#include "power/tech.hpp"

namespace nocs::power {

/// Structural/operating description of one router for power purposes.
struct RouterPowerParams {
  int num_ports = 5;
  int num_vcs = 4;
  int vc_depth = 4;
  int flit_bits = 128;
  TechNode tech = TechNode::k45nm;
  OperatingPoint op = kReferencePoint;

  /// Derives the structural fields from the network configuration.
  static RouterPowerParams from_network(const noc::NetworkParams& net,
                                        TechNode tech = TechNode::k45nm,
                                        OperatingPoint op = kReferencePoint);
};

/// Power split by component, in watts.
struct RouterPowerBreakdown {
  Watts buffer_dynamic = 0.0;
  Watts crossbar_dynamic = 0.0;
  Watts arbiter_dynamic = 0.0;
  Watts clock_dynamic = 0.0;
  Watts leakage = 0.0;

  Watts dynamic() const {
    return buffer_dynamic + crossbar_dynamic + arbiter_dynamic +
           clock_dynamic;
  }
  Watts total() const { return dynamic() + leakage; }

  RouterPowerBreakdown& operator+=(const RouterPowerBreakdown& o) {
    buffer_dynamic += o.buffer_dynamic;
    crossbar_dynamic += o.crossbar_dynamic;
    arbiter_dynamic += o.arbiter_dynamic;
    clock_dynamic += o.clock_dynamic;
    leakage += o.leakage;
    return *this;
  }
};

class RouterPowerModel {
 public:
  explicit RouterPowerModel(const RouterPowerParams& params);

  const RouterPowerParams& params() const { return params_; }

  // --- per-event energies (joules), after all scaling ----------------------
  Joules buffer_write_energy() const { return e_buf_write_; }
  Joules buffer_read_energy() const { return e_buf_read_; }
  Joules crossbar_energy() const { return e_xbar_; }
  Joules arbitration_energy() const { return e_arb_; }
  Joules clock_energy_per_cycle() const { return e_clock_; }

  /// Total router leakage power while powered on (watts).
  Watts leakage_power() const { return leakage_; }

  /// Converts simulator activity over `window_cycles` router cycles into
  /// average power.  Leakage is charged only for active/waking cycles
  /// (gated cycles leak ~0 — the benefit NoC-sprinting harvests).
  RouterPowerBreakdown from_counters(const noc::RouterCounters& counters,
                                     Cycle window_cycles) const;

  /// Analytic power at a steady flit throughput (flits traversing the
  /// router per cycle), used by the Figure 2 reproduction where no
  /// simulation is attached.
  RouterPowerBreakdown at_injection(double flits_per_cycle) const;

 private:
  RouterPowerParams params_;
  Joules e_buf_write_ = 0.0;
  Joules e_buf_read_ = 0.0;
  Joules e_xbar_ = 0.0;
  Joules e_arb_ = 0.0;
  Joules e_clock_ = 0.0;
  Watts leakage_ = 0.0;
};

/// Power model for one inter-router link (repeated wires).
class LinkPowerModel {
 public:
  /// `length_mm` is the physical wire length; the thermal-aware floorplan
  /// lengthens some links, which this model charges for (Section 3.3's
  /// wiring-complexity cost).
  LinkPowerModel(int flit_bits, double length_mm, TechNode tech,
                 OperatingPoint op);

  Joules traversal_energy() const { return e_traversal_; }
  Watts leakage_power() const { return leakage_; }

  /// Average power given flits/cycle crossing the link and whether the
  /// link's drivers are power-gated.
  Watts average_power(double flits_per_cycle, bool gated) const;

  double length_mm() const { return length_mm_; }

 private:
  double length_mm_;
  OperatingPoint op_;
  Joules e_traversal_ = 0.0;
  Watts leakage_ = 0.0;
};

}  // namespace nocs::power
