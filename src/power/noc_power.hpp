// Bridges the cycle-accurate simulator and the DSENT-style power models:
// converts a finished simulation's router counters plus the network's
// gating state into a full NoC power estimate (routers + links).
#pragma once

#include "common/metrics.hpp"
#include "noc/network.hpp"
#include "power/router_power.hpp"

namespace nocs::power {

/// NoC-wide power split.
struct NocPowerEstimate {
  RouterPowerBreakdown routers;  ///< summed over all routers
  Watts link_dynamic = 0.0;
  Watts link_leakage = 0.0;
  /// Dynamic power attributable to multicast tree replication: the
  /// buffer/crossbar work of every relay-re-injected copy (from the
  /// mc_flits counters) plus its first link traversal.  Replicated
  /// copies flow through the ordinary router counters, so this share is
  /// ALREADY included in the terms above — it is an attribution, not an
  /// additional term, and total() deliberately excludes it.  Zero on any
  /// run without tree multicast.
  Watts mcast_replication = 0.0;

  Watts total() const {
    return routers.total() + link_dynamic + link_leakage;
  }

  /// Registers the estimate as "power.noc.*" gauges (watts).
  void export_metrics(MetricsRegistry& reg) const {
    reg.gauge("power.noc.total_w").set(total());
    reg.gauge("power.noc.router_dynamic_w").set(routers.dynamic());
    reg.gauge("power.noc.router_leakage_w").set(routers.leakage);
    reg.gauge("power.noc.link_dynamic_w").set(link_dynamic);
    reg.gauge("power.noc.link_leakage_w").set(link_leakage);
    reg.gauge("power.noc.mcast_replication_w").set(mcast_replication);
  }
};

/// Estimates average NoC power over `window_cycles` from the network's
/// accumulated counters.  Router leakage follows each router's powered-on
/// cycles (gated routers leak ~nothing); a link leaks while its driving
/// router is powered on.
NocPowerEstimate estimate_noc_power(const noc::Network& net,
                                    const RouterPowerModel& router_model,
                                    const LinkPowerModel& link_model,
                                    Cycle window_cycles);

}  // namespace nocs::power
