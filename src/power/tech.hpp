// Technology / voltage / frequency scaling shared by the power models.
//
// The paper evaluates at 45 nm with operating points (1.0 V, 2 GHz),
// (0.9 V, 1.5 GHz) and (0.75 V, 1.0 GHz).  We model first-order scaling:
// dynamic energy per event ~ C * V^2 with C shrinking linearly with feature
// size, dynamic power additionally ~ f; leakage power ~ V with a leakage
// coefficient that grows at smaller nodes (the utilization-wall mechanism
// the introduction describes).
#pragma once

#include "common/assert.hpp"
#include "common/types.hpp"

namespace nocs::power {

/// Supported process nodes.
enum class TechNode { k45nm, k32nm, k22nm };

/// An operating point: supply voltage and clock frequency.
struct OperatingPoint {
  double voltage = 1.0;       ///< volts
  double frequency = 2.0e9;   ///< Hz

  void validate() const {
    NOCS_EXPECTS(voltage > 0.0 && voltage <= 1.5);
    NOCS_EXPECTS(frequency > 0.0);
  }
};

/// Reference point all per-event energies are specified at.
inline constexpr OperatingPoint kReferencePoint{1.0, 2.0e9};

/// Multiplier on dynamic energy per event relative to 45 nm at 1.0 V:
/// capacitance scales ~ linearly with feature size, energy ~ C * V^2.
constexpr double dynamic_energy_scale(TechNode node, double voltage) {
  double cap = 1.0;
  switch (node) {
    case TechNode::k45nm: cap = 1.0; break;
    case TechNode::k32nm: cap = 32.0 / 45.0; break;
    case TechNode::k22nm: cap = 22.0 / 45.0; break;
  }
  return cap * voltage * voltage;
}

/// Multiplier on leakage power relative to 45 nm at 1.0 V.  Leakage scales
/// ~ V (subthreshold current at constant V_th) and worsens with scaling
/// because threshold voltage cannot be reduced (the dark-silicon driver).
constexpr double leakage_scale(TechNode node, double voltage) {
  double base = 1.0;
  switch (node) {
    case TechNode::k45nm: base = 1.0; break;
    case TechNode::k32nm: base = 1.35; break;
    case TechNode::k22nm: base = 1.80; break;
  }
  return base * voltage;
}

/// Name for tables.
constexpr const char* to_string(TechNode node) {
  switch (node) {
    case TechNode::k45nm: return "45nm";
    case TechNode::k32nm: return "32nm";
    case TechNode::k22nm: return "22nm";
  }
  return "?";
}

}  // namespace nocs::power
