// Versioned, deterministic binary serialization for checkpoint/restore.
//
// A snapshot file is a fixed little-endian header (magic "NOCSNAP1",
// format version, payload length, FNV-1a checksum of the payload) followed
// by a flat byte payload produced by Writer and consumed by Reader.  The
// payload is organized into named, length-prefixed sections so a loader
// can verify it is reading the component it expects and so corruption
// never turns into silent misinterpretation — every decode error throws
// SnapshotError.  Files are written atomically (tmp file + rename), which
// makes periodic autosave safe against being killed mid-write.  The format
// is documented in docs/SNAPSHOT_FORMAT.md.
//
// The companion TaskManifest is the sweep-level resume mechanism: a JSON
// ledger of per-task results keyed by task index, rewritten atomically
// after every completion, so an interrupted parallel sweep restarts from
// the last finished task instead of from zero.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace nocs::snapshot {

/// Current snapshot format version.  Bump on any incompatible payload
/// change; load_file rejects files whose version differs (the compat
/// policy, per docs/SNAPSHOT_FORMAT.md, is exact-match — checkpoints are
/// short-lived artifacts of one experiment campaign, not archives).
inline constexpr std::uint32_t kFormatVersion = 3;

/// Magic bytes opening every snapshot file.
inline constexpr char kMagic[8] = {'N', 'O', 'C', 'S', 'N', 'A', 'P', '1'};

/// Thrown on any malformed, truncated, corrupted, or mismatched snapshot.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// FNV-1a 64-bit hash (the payload checksum).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size);

/// Appends typed values to a flat little-endian byte buffer.  Sections
/// frame component payloads: begin_section writes the name and reserves a
/// length slot that end_section patches, so Reader can verify both the
/// component identity and that the component consumed exactly its bytes.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v);  ///< bit pattern, exact round-trip
  void str(const std::string& s);

  void begin_section(const std::string& name);
  void end_section();

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> open_;  ///< offsets of unpatched length slots
};

/// Decodes a Writer payload; throws SnapshotError on underflow or on a
/// section-name/length mismatch instead of returning garbage.
class Reader {
 public:
  explicit Reader(std::vector<std::uint8_t> bytes)
      : buf_(std::move(bytes)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  double f64();
  std::string str();

  /// Enters the section that must come next; throws when the name differs.
  void begin_section(const std::string& name);
  /// Leaves the innermost section; throws when the bytes consumed do not
  /// match the recorded section length.
  void end_section();

  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> ends_;  ///< expected end offsets of open sections
};

/// A component that can serialize its dynamic state.  Configuration
/// (topology, rates, wiring) is *not* serialized — the caller reconstructs
/// the component from the same configuration, then load_state restores the
/// dynamic state on top.
class Serializable {
 public:
  virtual ~Serializable() = default;
  virtual void save_state(Writer& w) const = 0;
  virtual void load_state(Reader& r) = 0;
};

/// Writes header + payload to `path` atomically (path.tmp, fsync-free
/// rename).  Returns false after logging to stderr when the file cannot
/// be written.
bool save_file(const std::string& path, const Writer& w);

// --- append-only record log -------------------------------------------------
//
// The framing under write-ahead ledgers (the serve daemon's job ledger):
// each record is `magic u32 | payload length u64 | FNV-1a-64 checksum u64 |
// payload bytes`, appended and flushed/fsynced one record at a time.  A
// process killed mid-append leaves a truncated or garbage tail;
// scan_records recovers the valid prefix and reports the damage instead
// of failing the whole log, so replay after `kill -9` loses at most the
// record that was being written.

/// Magic opening every log record ("NSRL", little-endian).
inline constexpr std::uint32_t kRecordMagic = 0x4C52534Eu;

/// Writes one framed record to an open binary stream without flushing.
/// The bulk-rewrite path (ledger compaction) frames many records and
/// syncs once at the end; durable appends go through append_record.
bool write_record(std::FILE* f, const std::uint8_t* data, std::size_t size);

/// Appends one framed record to an open (binary, append-mode) stream and
/// flushes it through to the kernel (fflush + fsync).  Returns false on a
/// short write.
bool append_record(std::FILE* f, const std::uint8_t* data, std::size_t size);

/// Result of scanning a record log.
struct RecordScan {
  std::vector<std::vector<std::uint8_t>> records;  ///< valid prefix, in order
  /// Byte length of the valid prefix; truncating the file here makes it
  /// clean again (appending after garbage would hide it mid-file).
  std::size_t valid_bytes = 0;
  bool damaged = false;   ///< a truncated/corrupt tail was dropped
  std::string damage;     ///< human-readable description when `damaged`
};

/// Reads every valid record from the head of `path`.  A missing file is
/// an empty, undamaged scan (first start); truncation, a checksum
/// mismatch, or foreign bytes end the scan at the last good record.
RecordScan scan_records(const std::string& path);

/// Reads and validates a snapshot file: magic, version, payload length,
/// and checksum.  Throws SnapshotError on any mismatch (missing file,
/// truncation, bit rot, foreign format, version skew).
Reader load_file(const std::string& path);

/// Best-effort recovery of a sweep-manifest JSON document that no longer
/// parses (half-written, truncated, or tail-corrupted): verifies the
/// magic and fingerprint textually, then re-parses completed-task records
/// one by one and returns every record of the valid prefix.  An
/// unverifiable fingerprint (or none recovered) yields an empty map.
/// TaskManifest falls back to this instead of discarding the whole
/// ledger, so a damaged manifest costs at most the record being written.
std::map<std::size_t, json::Value> recover_manifest_prefix(
    const std::string& text, const std::string& fingerprint);

/// Per-task completion ledger for resumable parallel sweeps.
///
/// With an empty path the manifest is disabled: completed() is always
/// false and record() is a no-op, so call sites need no branching.  With a
/// path, construction loads any existing ledger whose fingerprint matches
/// (a mismatched fingerprint — different rates, seed, or configuration —
/// is logged and the ledger starts fresh), and record() rewrites the file
/// atomically after every task, making progress survive a kill at any
/// point.  record() is thread-safe; parallel sweep workers call it
/// concurrently.
class TaskManifest {
 public:
  TaskManifest() = default;  ///< disabled
  TaskManifest(const std::string& path, const std::string& fingerprint);

  bool enabled() const { return !path_.empty(); }
  std::size_t completed_count() const;
  bool completed(std::size_t index) const;
  /// The recorded result of a completed task (throws when not completed).
  json::Value result(std::size_t index) const;
  /// Records a task result and persists the ledger (no-op when disabled).
  void record(std::size_t index, json::Value result);

 private:
  void persist_locked() const;

  mutable std::mutex mu_;
  std::string path_;
  std::string fingerprint_;
  std::map<std::size_t, json::Value> results_;
};

}  // namespace nocs::snapshot
