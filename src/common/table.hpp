// Minimal ASCII table formatter for the bench binaries.  Every bench
// regenerates a paper table/figure as rows printed through this class, so
// the output is uniform and diffable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nocs {

/// Column-aligned ASCII table.  Usage:
///   Table t({"benchmark", "level", "speedup"});
///   t.add_row({"dedup", "4", "4.12"});
///   t.print();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table to a string (header, rule, rows).
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

  /// Formats a double with `prec` digits after the decimal point.
  static std::string fmt(double v, int prec = 3);
  /// Formats an integer.
  static std::string fmt(long long v);
  /// Formats a percentage ("12.3%").
  static std::string pct(double fraction, int prec = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nocs
