#include "common/log.hpp"

#include <cstdio>

namespace nocs {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "[error] ";
    case LogLevel::kWarn: return "[warn]  ";
    case LogLevel::kInfo: return "[info]  ";
    case LogLevel::kDebug: return "[debug] ";
  }
  return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(g_level);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  std::fputs(prefix(level), stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace nocs
