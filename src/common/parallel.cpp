#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.hpp"

namespace nocs {

int default_thread_count() {
  if (const char* env = std::getenv("NOCS_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int default_sim_thread_count() {
  if (const char* env = std::getenv("NOCS_SIM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  return 1;
}

namespace {

/// One no-op/pause iteration of a spin-wait loop.
inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

struct BarrierTeam::Impl {
  // Phase hand-off: run() writes `body`, then release-publishes a new
  // epoch; a worker acquire-loads the epoch, so the body pointer (and all
  // state the caller prepared before run()) is visible when it executes.
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<int> remaining{0};
  std::atomic<bool> stopping{false};
  const std::function<void(int)>* body = nullptr;

  // Slow path: workers park here when no phase arrives within the spin
  // budget (network idle between simulations).
  std::mutex mu;
  std::condition_variable cv;

  std::mutex error_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> workers;

  // Spin budget before parking: phases arrive back-to-back mid-simulation,
  // so the fast path almost never parks; ~10^4 pause iterations is a few
  // microseconds — far shorter than one wake-from-cv latency.  On a host
  // with fewer cores than team members spinning steals the timeslice from
  // the thread actually doing the work, so the budget drops to ~zero and
  // waiters yield instead of pausing.
  int spin_limit = 20000;
  bool oversubscribed = false;

  void wait_pause() const {
    if (oversubscribed) std::this_thread::yield();
    else spin_pause();
  }

  void record_error() {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!first_error) first_error = std::current_exception();
  }

  void worker_loop(int shard) {
    std::uint64_t seen = 0;
    for (;;) {
      int spins = 0;
      while (epoch.load(std::memory_order_acquire) == seen) {
        if (stopping.load(std::memory_order_acquire)) return;
        if (++spins >= spin_limit) {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] {
            return epoch.load(std::memory_order_acquire) != seen ||
                   stopping.load(std::memory_order_acquire);
          });
          spins = 0;
          continue;
        }
        wait_pause();
      }
      seen = epoch.load(std::memory_order_acquire);
      try {
        (*body)(shard);
      } catch (...) {
        record_error();
      }
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
};

BarrierTeam::BarrierTeam(int num_shards)
    : impl_(new Impl), num_shards_(num_shards) {
  NOCS_EXPECTS(num_shards >= 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 1 && static_cast<int>(hw) < num_shards) {
    impl_->oversubscribed = true;
    impl_->spin_limit = 1;
  }
  impl_->workers.reserve(static_cast<std::size_t>(num_shards - 1));
  for (int s = 1; s < num_shards; ++s)
    impl_->workers.emplace_back([impl = impl_, s] { impl->worker_loop(s); });
}

BarrierTeam::~BarrierTeam() {
  impl_->stopping.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker between its parked-predicate check
    // and the actual sleep holds `mu`, so taking it here guarantees the
    // notify below lands after the worker is really waiting.
    std::lock_guard<std::mutex> lock(impl_->mu);
  }
  impl_->cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void BarrierTeam::run(const std::function<void(int)>& body) {
  NOCS_EXPECTS(body != nullptr);
  if (num_shards_ == 1) {
    body(0);
    return;
  }
  impl_->body = &body;
  impl_->remaining.store(num_shards_ - 1, std::memory_order_relaxed);
  impl_->epoch.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
  }
  impl_->cv.notify_all();

  try {
    body(0);  // shard 0 runs inline on the calling thread
  } catch (...) {
    impl_->record_error();
  }
  while (impl_->remaining.load(std::memory_order_acquire) != 0)
    impl_->wait_pause();

  if (impl_->first_error) {
    std::exception_ptr err;
    std::swap(err, impl_->first_error);
    std::rethrow_exception(err);
  }
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // signalled when a task is queued
  std::condition_variable idle_cv;   // signalled when a task completes
  // One deque per priority lane, drained high-to-low (see TaskPriority).
  std::deque<std::function<void()>> lanes[3];
  std::vector<std::thread> workers;
  int in_flight = 0;  // queued + currently executing
  bool stopping = false;

  bool any_queued() const {
    return !lanes[0].empty() || !lanes[1].empty() || !lanes[2].empty();
  }

  std::function<void()> pop_locked() {
    for (auto& lane : lanes) {
      if (lane.empty()) continue;
      std::function<void()> task = std::move(lane.front());
      lane.pop_front();
      return task;
    }
    return nullptr;
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return stopping || any_queued(); });
        task = pop_locked();
        if (task == nullptr) return;  // stopping and drained
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu);
        --in_flight;
      }
      idle_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl),
      num_workers_(num_threads <= 0 ? default_thread_count() : num_threads) {
  impl_->workers.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i)
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::submit(std::function<void()> task) {
  submit(TaskPriority::kNormal, std::move(task));
}

void ThreadPool::submit(TaskPriority priority, std::function<void()> task) {
  NOCS_EXPECTS(task != nullptr);
  const auto lane = static_cast<std::size_t>(priority);
  NOCS_EXPECTS(lane < 3);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    NOCS_EXPECTS(!impl_->stopping);
    impl_->lanes[lane].push_back(std::move(task));
    ++impl_->in_flight;
  }
  impl_->work_cv.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->idle_cv.wait(lock, [&] { return impl_->in_flight == 0; });
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 int num_threads) {
  NOCS_EXPECTS(body != nullptr);
  if (n == 0) return;

  int workers = num_threads <= 0 ? default_thread_count() : num_threads;
  if (static_cast<std::size_t>(workers) > n)
    workers = static_cast<int>(n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Dynamic scheduling: each worker repeatedly claims the next index, so
  // uneven task durations (e.g. saturated sweep points) balance out.
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    ThreadPool pool(workers);
    for (int w = 0; w < workers; ++w) pool.submit(drain);
    pool.wait_idle();
  }

  if (first_error) std::rethrow_exception(first_error);
}

void run_tasks(const std::vector<std::function<void()>>& tasks,
               int num_threads) {
  ParallelFor(tasks.size(), [&](std::size_t i) { tasks[i](); }, num_threads);
}

}  // namespace nocs
