#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.hpp"

namespace nocs {

int default_thread_count() {
  if (const char* env = std::getenv("NOCS_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // signalled when a task is queued
  std::condition_variable idle_cv;   // signalled when a task completes
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  int in_flight = 0;  // queued + currently executing
  bool stopping = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu);
        --in_flight;
      }
      idle_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl),
      num_workers_(num_threads <= 0 ? default_thread_count() : num_threads) {
  impl_->workers.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i)
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::submit(std::function<void()> task) {
  NOCS_EXPECTS(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    NOCS_EXPECTS(!impl_->stopping);
    impl_->queue.push_back(std::move(task));
    ++impl_->in_flight;
  }
  impl_->work_cv.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->idle_cv.wait(lock, [&] { return impl_->in_flight == 0; });
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 int num_threads) {
  NOCS_EXPECTS(body != nullptr);
  if (n == 0) return;

  int workers = num_threads <= 0 ? default_thread_count() : num_threads;
  if (static_cast<std::size_t>(workers) > n)
    workers = static_cast<int>(n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Dynamic scheduling: each worker repeatedly claims the next index, so
  // uneven task durations (e.g. saturated sweep points) balance out.
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    ThreadPool pool(workers);
    for (int w = 0; w < workers; ++w) pool.submit(drain);
    pool.wait_idle();
  }

  if (first_error) std::rethrow_exception(first_error);
}

void run_tasks(const std::vector<std::function<void()>>& tasks,
               int num_threads) {
  ParallelFor(tasks.size(), [&](std::size_t i) { tasks[i](); }, num_threads);
}

}  // namespace nocs
