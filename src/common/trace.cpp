#include "common/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

namespace nocs::trace {

namespace {

using Clock = std::chrono::steady_clock;

/// The process-global session.  `active` is the lock-free fast-path guard;
/// the mutex serializes buffer appends and begin/end transitions.
struct Session {
  std::atomic<bool> active{false};
  std::mutex mu;
  std::string path;
  Clock::time_point start;
  std::vector<std::string> events;  ///< pre-rendered JSON objects
  std::uint64_t count = 0;
};

Session& session() {
  static Session s;
  return s;
}

/// Renders one event object.  `dur` < 0 omits the field; `args` null
/// omits it.
std::string render(char ph, const std::string& name, const char* cat,
                   int pid, int tid, double ts, double dur,
                   const json::Value& args) {
  std::string out = "{\"name\":" + json::escape(name);
  out += ",\"ph\":\"";
  out += ph;
  out += '"';
  if (cat != nullptr && cat[0] != '\0')
    out += ",\"cat\":" + json::escape(cat);
  out += ",\"pid\":" + std::to_string(pid);
  out += ",\"tid\":" + std::to_string(tid);
  out += ",\"ts\":" + json::format_number(ts);
  if (dur >= 0.0) out += ",\"dur\":" + json::format_number(dur);
  if (!args.is_null()) out += ",\"args\":" + args.dump();
  if (ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
  out += '}';
  return out;
}

void emit(std::string event) {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active.load(std::memory_order_relaxed)) return;
  s.events.push_back(std::move(event));
  ++s.count;
}

}  // namespace

bool begin(const std::string& path) {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.active.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "trace: session already active (%s)\n",
                 s.path.c_str());
    return false;
  }
  s.path = path;
  s.start = Clock::now();
  s.events.clear();
  s.count = 0;
  s.active.store(true, std::memory_order_release);
  return true;
}

bool end() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active.load(std::memory_order_relaxed)) return false;
  s.active.store(false, std::memory_order_release);
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot write %s\n", s.path.c_str());
    s.events.clear();
    return false;
  }
  std::fputs("{\"traceEvents\": [\n", f);
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    std::fputs(s.events[i].c_str(), f);
    if (i + 1 < s.events.size()) std::fputc(',', f);
    std::fputc('\n', f);
  }
  std::fputs("], \"displayTimeUnit\": \"ms\"}\n", f);
  std::fclose(f);
  s.events.clear();
  return true;
}

bool enabled() {
  return session().active.load(std::memory_order_relaxed);
}

std::uint64_t event_count() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.count;
}

double host_now_us() {
  Session& s = session();
  if (!s.active.load(std::memory_order_relaxed)) return 0.0;
  return std::chrono::duration<double, std::micro>(Clock::now() - s.start)
      .count();
}

void complete(const std::string& name, const char* cat, int pid, int tid,
              double ts, double dur, json::Value args) {
  if (!enabled()) return;
  emit(render('X', name, cat, pid, tid, ts, dur, args));
}

void instant(const std::string& name, const char* cat, int pid, int tid,
             double ts, json::Value args) {
  if (!enabled()) return;
  emit(render('i', name, cat, pid, tid, ts, -1.0, args));
}

void counter(const std::string& name, int pid, double ts,
             json::Value series) {
  if (!enabled()) return;
  emit(render('C', name, "counter", pid, 0, ts, -1.0, series));
}

void process_name(int pid, const std::string& name) {
  if (!enabled()) return;
  json::Value args = json::Value::object();
  args.set("name", name);
  emit(render('M', "process_name", nullptr, pid, 0, 0.0, -1.0, args));
}

void thread_name(int pid, int tid, const std::string& name) {
  if (!enabled()) return;
  json::Value args = json::Value::object();
  args.set("name", name);
  emit(render('M', "thread_name", nullptr, pid, tid, 0.0, -1.0, args));
}

HostScope::HostScope(std::string name, const char* cat, int tid)
    : name_(std::move(name)),
      cat_(cat),
      tid_(tid),
      start_us_(host_now_us()),
      active_(enabled()) {}

HostScope::~HostScope() {
  if (!active_ || !enabled()) return;
  const double now = host_now_us();
  complete(name_, cat_, kHostPid, tid_, start_us_, now - start_us_);
}

}  // namespace nocs::trace
