#include "common/shutdown.hpp"

#include <csignal>

namespace nocs {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<int> g_signal{0};
std::atomic<bool> g_installed{false};

// Async-signal-safe: touches only lock-free atomics and sigaction.
void on_signal(int sig) {
  if (g_shutdown.exchange(true, std::memory_order_acq_rel)) {
    // Second signal: the process is not draining fast enough for the
    // operator — restore the default disposition and die for real.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  g_signal.store(sig, std::memory_order_release);
}

}  // namespace

void install_shutdown_handlers() {
  if (g_installed.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: unblock accept()/read()
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_acquire);
}

const std::atomic<bool>* shutdown_flag() { return &g_shutdown; }

void request_shutdown() { g_shutdown.store(true, std::memory_order_release); }

int shutdown_signal() { return g_signal.load(std::memory_order_acquire); }

void reset_shutdown_for_tests() {
  g_shutdown.store(false, std::memory_order_release);
  g_signal.store(0, std::memory_order_release);
}

}  // namespace nocs
