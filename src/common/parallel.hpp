// Thread-pool parallelism for embarrassingly parallel simulation batches
// (injection-rate sweeps, random-mapping samples, per-benchmark runs).
//
// The simulator itself stays single-threaded and deterministic; parallelism
// lives one level up, where every task builds its own independent Network.
// ParallelFor/run_tasks therefore require task bodies that share no mutable
// state except their own output slot.  Worker count defaults to the
// hardware concurrency and can be overridden with the NOCS_THREADS
// environment variable (benches also accept a threads=N config key that is
// passed through explicitly).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace nocs {

/// Cooperative cancellation: one side requests a stop, any number of
/// workers poll.  Copies share state, so a token handed to a task keeps
/// working after the issuing scope released its copy.  Requesting is
/// sticky — there is no reset; create a fresh token per unit of work.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_stop() { state_->store(true, std::memory_order_release); }
  bool stop_requested() const {
    return state_->load(std::memory_order_acquire);
  }

  /// The underlying flag, for components that poll a raw atomic (e.g.
  /// noc::CheckpointConfig::stop_flag).  Valid as long as any copy of the
  /// token is alive.
  const std::atomic<bool>* flag() const { return state_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Scheduling lane of a ThreadPool task.  Workers always drain kHigh
/// before kNormal before kLow; within a lane tasks run in submission
/// order.  Starvation is accepted by design: the serve scheduler maps
/// client-facing priorities onto these lanes and bounds each lane with
/// admission control instead.
enum class TaskPriority : int { kHigh = 0, kNormal = 1, kLow = 2 };

/// Worker-thread count used when a caller passes num_threads <= 0:
/// the NOCS_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency().  Always >= 1.
int default_thread_count();

/// Intra-simulation shard count used when a caller passes sim_threads <= 0:
/// the NOCS_SIM_THREADS environment variable when set to a positive
/// integer, otherwise 1 (serial tick).  Deliberately *not* the hardware
/// concurrency: sweeps already parallelize across tasks, and nesting both
/// by default would oversubscribe; sharding one simulation is an explicit
/// opt-in.
int default_sim_thread_count();

/// Persistent team of workers for barrier-synchronous sharded execution
/// (the sharded Network::tick).  Each run() call executes body(0) ..
/// body(num_shards-1) concurrently — shard 0 inline on the calling thread,
/// the rest on dedicated workers pinned to their shard index so per-shard
/// caches stay warm — and returns only when every body finished (a full
/// barrier).  Two run() calls therefore never overlap, which is the
/// synchronization the two-phase tick relies on.
///
/// Workers spin briefly waiting for the next phase (phases are issued
/// back-to-back while a simulation runs, so the wait is sub-microsecond)
/// and park on a condition variable when idle longer, so an inactive
/// network does not burn cores.  The first exception thrown by any body is
/// rethrown from run() after the barrier.
class BarrierTeam {
 public:
  /// Spawns num_shards - 1 workers; num_shards must be >= 1 (1 = inline).
  explicit BarrierTeam(int num_shards);
  ~BarrierTeam();

  BarrierTeam(const BarrierTeam&) = delete;
  BarrierTeam& operator=(const BarrierTeam&) = delete;

  int size() const { return num_shards_; }

  /// One barrier phase: runs body(s) for every shard s, returns when all
  /// completed.
  void run(const std::function<void(int)>& body);

 private:
  struct Impl;
  Impl* impl_;
  int num_shards_;
};

/// Fixed-size pool of worker threads draining a shared task queue.
/// Destruction waits for all submitted tasks to finish.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (<= 0 selects default_thread_count()).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return num_workers_; }

  /// Enqueues one task on the normal lane; returns immediately.
  void submit(std::function<void()> task);

  /// Enqueues one task on an explicit priority lane.
  void submit(TaskPriority priority, std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  struct Impl;
  Impl* impl_;
  int num_workers_;
};

/// Runs body(0) .. body(n-1) across up to `num_threads` workers
/// (<= 0 selects default_thread_count()) and returns when all completed.
/// With one worker (or n <= 1) the body runs inline on the calling thread,
/// so a 1-thread ParallelFor is exactly a serial loop.  The first exception
/// thrown by any body is rethrown after all indices finish or are skipped.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 int num_threads = 0);

/// Runs every closure in `tasks` across up to `num_threads` workers.
void run_tasks(const std::vector<std::function<void()>>& tasks,
               int num_threads = 0);

}  // namespace nocs
