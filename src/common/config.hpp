// Small typed key=value configuration store.
//
// Benches and examples accept "key=value" command-line overrides (the same
// interface BookSim exposes); modules read their parameters through this
// class so every knob is discoverable and defaulted in one place.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace nocs {

/// String-keyed configuration with typed accessors and defaults.
class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens (e.g. from argv).  Unparsable tokens throw
  /// std::invalid_argument.
  static Config from_args(int argc, const char* const* argv);

  /// Sets (or overwrites) a key.
  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, long long value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  bool has(const std::string& key) const;

  /// Typed getters returning `def` when the key is absent.  A present but
  /// malformed value throws std::invalid_argument.
  std::string get_string(const std::string& key, const std::string& def) const;
  long long get_int(const std::string& key, long long def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// All keys in sorted order (for dumping effective configuration).
  std::vector<std::string> keys() const;

  /// Marks a key as recognized without reading it (for keys a mode
  /// intentionally ignores).  Getters and has() record automatically.
  void allow(const std::string& key) const { queried_.insert(key); }

  /// Throws std::invalid_argument if any stored key was never queried
  /// through a getter/has()/allow() — i.e. the user set a knob nothing
  /// reads, usually a typo.  The message suggests near misses (edit
  /// distance <= 2) among the recognized keys.  Call after a mode has read
  /// all its parameters.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  /// Keys the program asked about; populated by the const getters, hence
  /// mutable.  A key queried with any accessor counts as recognized.
  mutable std::set<std::string> queried_;
};

}  // namespace nocs
