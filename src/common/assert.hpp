// Lightweight contract-checking macros for the nocsprint libraries.
//
// Following the C++ Core Guidelines (I.6/I.8: prefer Expects()/Ensures()
// style assertions that state preconditions explicitly), we provide macros
// that are always enabled: a cycle-accurate simulator that silently corrupts
// state is worse than one that stops.  The cost is negligible next to the
// simulation work itself.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace nocs::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "nocsprint: %s failed: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace nocs::detail

/// Precondition check: argument/state validation at API boundaries.
#define NOCS_EXPECTS(cond)                                                \
  ((cond) ? (void)0                                                      \
          : ::nocs::detail::contract_failure("precondition", #cond,      \
                                             __FILE__, __LINE__))

/// Postcondition / internal invariant check.
#define NOCS_ENSURES(cond)                                                \
  ((cond) ? (void)0                                                      \
          : ::nocs::detail::contract_failure("invariant", #cond,         \
                                             __FILE__, __LINE__))

/// Marks unreachable control flow (e.g. exhaustive switch fall-through).
#define NOCS_UNREACHABLE(msg)                                             \
  ::nocs::detail::contract_failure("unreachable", msg, __FILE__, __LINE__)

/// Cross-check of a fast-path shortcut against its slow reference
/// computation (e.g. Network::drained()'s activity-counter short circuit
/// re-verified by the full scan).  On by default like the other contracts;
/// define NOCS_DISABLE_SLOW_ASSERTS to compile the re-verification out of
/// release builds where the reference computation's cost matters.
#ifdef NOCS_DISABLE_SLOW_ASSERTS
#define NOCS_ASSERT(cond) ((void)0)
#else
#define NOCS_ASSERT(cond)                                                 \
  ((cond) ? (void)0                                                      \
          : ::nocs::detail::contract_failure("slow-path verify", #cond,  \
                                             __FILE__, __LINE__))
#endif
