// Deterministic pseudo-random number generation for simulation.
//
// We use xoshiro256** seeded through SplitMix64 — fast, high quality, and
// fully reproducible across platforms (unlike std::default_random_engine,
// whose distributions are implementation-defined).  All stochastic parts of
// the simulator (traffic injection, random mappings) draw from this.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace nocs {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministic per-task seed for parallel batches.  Equals the
/// (index + 1)-th output of SplitMix64(base_seed) — SplitMix's state
/// advances by a fixed gamma per draw, so the stream can be indexed in
/// O(1).  Tasks get decorrelated seeds and results are independent of
/// thread count and execution order.
inline std::uint64_t task_seed(std::uint64_t base_seed,
                               std::uint64_t task_index) {
  SplitMix64 sm(base_seed + task_index * 0x9e3779b97f4a7c15ULL);
  return sm.next();
}

/// xoshiro256** generator (Blackman & Vigna).  Satisfies the essentials of
/// UniformRandomBitGenerator but we provide our own distributions to keep
/// results platform-independent.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  /// Re-initializes the state from a single seed value.
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t uniform_int(std::uint64_t bound) {
    NOCS_EXPECTS(bound > 0);
    // Simple modulo with rejection of the biased region.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_range(int lo, int hi) {
    NOCS_EXPECTS(lo <= hi);
    return lo + static_cast<int>(uniform_int(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p in [0,1].
  bool bernoulli(double p) { return uniform() < p; }

  /// Raw xoshiro state, for checkpoint/restore: set_state(state()) resumes
  /// the stream at exactly the next draw.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace nocs
