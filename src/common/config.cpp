#include "common/config.hpp"

#include <cstdlib>
#include <stdexcept>

namespace nocs {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("expected key=value, got: " + tok);
    cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::set_int(const std::string& key, long long value) {
  set(key, std::to_string(value));
}

void Config::set_double(const std::string& key, double value) {
  set(key, std::to_string(value));
}

void Config::set_bool(const std::string& key, bool value) {
  set(key, value ? "true" : "false");
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

long long Config::get_int(const std::string& key, long long def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::size_t pos = 0;
  const long long v = std::stoll(it->second, &pos);
  if (pos != it->second.size())
    throw std::invalid_argument("bad integer for " + key + ": " + it->second);
  return v;
}

double Config::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size())
    throw std::invalid_argument("bad double for " + key + ": " + it->second);
  return v;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  throw std::invalid_argument("bad bool for " + key + ": " + s);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace nocs
