#include "common/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace nocs {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("expected key=value, got: " + tok);
    cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::set_int(const std::string& key, long long value) {
  set(key, std::to_string(value));
}

void Config::set_double(const std::string& key, double value) {
  set(key, std::to_string(value));
}

void Config::set_bool(const std::string& key, bool value) {
  set(key, value ? "true" : "false");
}

bool Config::has(const std::string& key) const {
  queried_.insert(key);
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  queried_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

long long Config::get_int(const std::string& key, long long def) const {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::size_t pos = 0;
  const long long v = std::stoll(it->second, &pos);
  if (pos != it->second.size())
    throw std::invalid_argument("bad integer for " + key + ": " + it->second);
  return v;
}

double Config::get_double(const std::string& key, double def) const {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size())
    throw std::invalid_argument("bad double for " + key + ": " + it->second);
  return v;
}

bool Config::get_bool(const std::string& key, bool def) const {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  throw std::invalid_argument("bad bool for " + key + ": " + s);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

namespace {

/// Levenshtein distance, early-exiting once it must exceed `cap`.
std::size_t edit_distance(const std::string& a, const std::string& b,
                          std::size_t cap) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t diff = la > lb ? la - lb : lb - la;
  if (diff > cap) return cap + 1;
  std::vector<std::size_t> row(lb + 1);
  for (std::size_t j = 0; j <= lb; ++j) row[j] = j;
  for (std::size_t i = 1; i <= la; ++i) {
    std::size_t prev = row[0];  // row[i-1][j-1]
    row[0] = i;
    std::size_t best = row[0];
    for (std::size_t j = 1; j <= lb; ++j) {
      const std::size_t del = row[j] + 1;
      const std::size_t ins = row[j - 1] + 1;
      const std::size_t sub = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev = row[j];
      row[j] = std::min(std::min(del, ins), sub);
      best = std::min(best, row[j]);
    }
    if (best > cap) return cap + 1;
  }
  return row[lb];
}

}  // namespace

void Config::reject_unknown() const {
  std::string msg;
  for (const auto& [key, _] : values_) {
    if (queried_.count(key) != 0) continue;
    if (!msg.empty()) msg += "; ";
    msg += "unknown config key '" + key + "'";
    // Suggest the closest recognized key within edit distance 2.
    const std::size_t cap = 2;
    std::size_t best = cap + 1;
    std::string suggestion;
    for (const std::string& known : queried_) {
      const std::size_t d = edit_distance(key, known, cap);
      if (d < best) {
        best = d;
        suggestion = known;
      }
    }
    if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
  }
  if (!msg.empty()) throw std::invalid_argument(msg);
}

}  // namespace nocs
