#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace nocs::json {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("json: " + what);
}

/// Recursive-descent parser over a NUL-free string.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    // Encode the code point as UTF-8 (surrogate pairs are passed through
    // individually; the emitter never produces them for our ASCII data).
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') fail("bad number '" + tok + "'");
    return Value(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Value::as_bool() const {
  if (type_ != Type::kBool) fail("not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) fail("not a number");
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) fail("not a string");
  return str_;
}

void Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) fail("push_back on a non-array");
  arr_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  fail("size() on a scalar");
}

const Value& Value::at(std::size_t i) const {
  if (type_ != Type::kArray) fail("index into a non-array");
  if (i >= arr_.size()) fail("array index out of range");
  return arr_[i];
}

Value& Value::set(const std::string& key, Value v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) fail("set() on a non-object");
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return val;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return obj_.back().second;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, val] : obj_)
    if (k == key) return &val;
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) fail("missing member '" + key + "'");
  return *v;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (type_ != Type::kObject) fail("members() on a non-object");
  return obj_;
}

std::string format_number(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  char buf[40];
  // Shortest precision that round-trips: most numbers print cleanly at
  // %.15g; fall back to %.17g (always exact for IEEE doubles) when needed.
  std::snprintf(buf, sizeof buf, "%.15g", d);
  if (std::strtod(buf, nullptr) != d)
    std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(num_); break;
    case Type::kString: out += escape(str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        out += escape(obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool write_file(const std::string& path, const Value& v, int indent) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string text = v.dump(indent);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace nocs::json
