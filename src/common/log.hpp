// Leveled logging with a global threshold.  The simulator's hot path never
// formats a suppressed message (callers check `enabled()` or use the macro).
#pragma once

#include <cstdarg>
#include <string>

namespace nocs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global log threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when messages at `level` would be emitted.
bool log_enabled(LogLevel level);

/// printf-style logging to stderr with a level prefix.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace nocs

#define NOCS_LOG_DEBUG(...)                                         \
  do {                                                              \
    if (::nocs::log_enabled(::nocs::LogLevel::kDebug))              \
      ::nocs::log_message(::nocs::LogLevel::kDebug, __VA_ARGS__);   \
  } while (0)

#define NOCS_LOG_INFO(...)                                          \
  do {                                                              \
    if (::nocs::log_enabled(::nocs::LogLevel::kInfo))               \
      ::nocs::log_message(::nocs::LogLevel::kInfo, __VA_ARGS__);    \
  } while (0)

#define NOCS_LOG_WARN(...)                                          \
  do {                                                              \
    if (::nocs::log_enabled(::nocs::LogLevel::kWarn))               \
      ::nocs::log_message(::nocs::LogLevel::kWarn, __VA_ARGS__);    \
  } while (0)
