#include "common/stats.hpp"

#include <cmath>

namespace nocs {

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    NOCS_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double arithmetic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace nocs
