#include "common/stats.hpp"

#include <cmath>

#include "common/snapshot.hpp"

namespace nocs {

void RunningStat::save_state(snapshot::Writer& w) const {
  w.begin_section("running_stat");
  w.u64(count_);
  w.f64(mean_);
  w.f64(m2_);
  w.f64(sum_);
  w.f64(min_);
  w.f64(max_);
  w.end_section();
}

void RunningStat::load_state(snapshot::Reader& r) {
  r.begin_section("running_stat");
  count_ = r.u64();
  mean_ = r.f64();
  m2_ = r.f64();
  sum_ = r.f64();
  min_ = r.f64();
  max_ = r.f64();
  r.end_section();
}

void Histogram::save_state(snapshot::Writer& w) const {
  w.begin_section("histogram");
  w.f64(initial_bin_width_);
  w.f64(bin_width_);
  w.b(auto_grow_);
  w.u64(bins_.size());
  for (const std::uint64_t b : bins_) w.u64(b);
  w.u64(total_);
  w.u64(overflow_);
  w.f64(max_value_);
  w.end_section();
}

void Histogram::load_state(snapshot::Reader& r) {
  r.begin_section("histogram");
  const double initial = r.f64();
  const double width = r.f64();
  const bool grow = r.b();
  const std::uint64_t n = r.u64();
  if (initial != initial_bin_width_ || grow != auto_grow_ ||
      n != bins_.size())
    throw snapshot::SnapshotError(
        "histogram shape mismatch: checkpoint disagrees with the "
        "destination histogram's construction parameters");
  bin_width_ = width;
  for (auto& b : bins_) b = r.u64();
  total_ = r.u64();
  overflow_ = r.u64();
  max_value_ = r.f64();
  r.end_section();
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    NOCS_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double arithmetic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace nocs
