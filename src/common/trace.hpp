// Chrome trace-event emitter (chrome://tracing / Perfetto loadable).
//
// One process-global trace session, off by default: every emit function
// early-returns on a relaxed atomic load when no session is active, so
// instrumentation sprinkled through the simulator costs one predictable
// branch and simulation results stay bit-identical (the trace only
// observes, never steers).
//
// Two virtual processes separate the timelines:
//   pid kSimPid  — simulation time; `ts` is the cycle count (1 cycle
//                  renders as 1 us), tid = node id where meaningful.
//   pid kHostPid — wall-clock microseconds since begin(); used for the
//                  parallel experiment drivers (tid = OS worker).
//   pid kCtrlPid — the online sprint controller; `ts` is the burst index.
//
// Events buffer in memory and are written as one JSON document
// ({"traceEvents": [...]}) by end().  Emission is mutex-serialized so
// parallel sweep workers can trace concurrently.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"

namespace nocs::trace {

inline constexpr int kSimPid = 1;   ///< simulation timeline (ts = cycles)
inline constexpr int kHostPid = 2;  ///< host timeline (ts = wall us)
inline constexpr int kCtrlPid = 3;  ///< controller timeline (ts = bursts)

/// Starts a session writing to `path` on end().  Fails (returning false,
/// logging to stderr) when a session is already active.
bool begin(const std::string& path);

/// Flushes the buffered events to the session's path and ends the
/// session.  False when no session is active or the file cannot be
/// written.
bool end();

/// True while a session is active (the cheap guard for custom emitters).
bool enabled();

/// Events emitted so far in this session.
std::uint64_t event_count();

/// Wall-clock microseconds since begin() (0 when disabled) — the `ts`
/// for kHostPid events.
double host_now_us();

// --- emitters (no-ops when disabled) ---------------------------------------

/// Complete event ("ph":"X"): a named span of `dur` starting at `ts`.
void complete(const std::string& name, const char* cat, int pid, int tid,
              double ts, double dur, json::Value args = json::Value());

/// Instant event ("ph":"i").
void instant(const std::string& name, const char* cat, int pid, int tid,
             double ts, json::Value args = json::Value());

/// Counter event ("ph":"C"): `series` is an object of name -> number;
/// each distinct `name` renders as one counter track.
void counter(const std::string& name, int pid, double ts,
             json::Value series);

/// Metadata: names a virtual process / thread in the viewer.
void process_name(int pid, const std::string& name);
void thread_name(int pid, int tid, const std::string& name);

/// RAII complete-event span on the host timeline (kHostPid).
class HostScope {
 public:
  HostScope(std::string name, const char* cat, int tid = 0);
  ~HostScope();

  HostScope(const HostScope&) = delete;
  HostScope& operator=(const HostScope&) = delete;

 private:
  std::string name_;
  const char* cat_;
  int tid_;
  double start_us_;
  bool active_;
};

}  // namespace nocs::trace
