// 2-D mesh geometry: coordinates, distance metrics, and index mapping.
//
// The paper places the coordinate origin at the *top-left* corner of the
// mesh (Section 3.2), with x growing eastwards and y growing southwards.
// All nocsprint code uses that convention.
#pragma once

#include <cmath>
#include <compare>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace nocs {

/// Integer coordinate of a node in the 2-D mesh.  (0,0) is the top-left
/// corner; x indexes columns (east positive), y indexes rows (south
/// positive).
struct Coord {
  int x = 0;
  int y = 0;

  friend auto operator<=>(const Coord&, const Coord&) = default;
};

/// Squared Euclidean distance between two coordinates.  Algorithm 1 of the
/// paper sorts by Euclidean distance; comparing squares avoids floating
/// point entirely and preserves the ordering.
constexpr int euclidean_sq(Coord a, Coord b) {
  const int dx = a.x - b.x;
  const int dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance (used by the floorplanner's weighted sums, which are
/// genuinely real-valued).
inline double euclidean(Coord a, Coord b) {
  return std::sqrt(static_cast<double>(euclidean_sq(a, b)));
}

/// Manhattan distance.  The paper calls this the "Hamming distance" between
/// nodes (number of mesh hops); we keep both names.
constexpr int manhattan(Coord a, Coord b) {
  const int dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const int dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// Alias matching the paper's terminology (Algorithm 4 weights are the
/// inverse of this metric in *logical* mesh space).
constexpr int hamming(Coord a, Coord b) { return manhattan(a, b); }

/// Dimensions and index mapping of a W x H mesh.
///
/// Node ids are row-major from the top-left corner: node 0 is (0,0), node 1
/// is (1,0), ..., node W-1 is (W-1,0), node W is (0,1), matching Figure 5a
/// of the paper.
class MeshShape {
 public:
  MeshShape(int width, int height) : width_(width), height_(height) {
    NOCS_EXPECTS(width >= 1 && height >= 1);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  int size() const { return width_ * height_; }

  bool contains(Coord c) const {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

  bool valid(NodeId id) const { return id >= 0 && id < size(); }

  Coord coord_of(NodeId id) const {
    NOCS_EXPECTS(valid(id));
    return Coord{id % width_, id / width_};
  }

  NodeId id_of(Coord c) const {
    NOCS_EXPECTS(contains(c));
    return c.y * width_ + c.x;
  }

  /// All node ids in row-major order.
  std::vector<NodeId> all_nodes() const {
    std::vector<NodeId> v(static_cast<std::size_t>(size()));
    for (int i = 0; i < size(); ++i) v[static_cast<std::size_t>(i)] = i;
    return v;
  }

  friend bool operator==(const MeshShape&, const MeshShape&) = default;

 private:
  int width_;
  int height_;
};

/// The five router ports of a 2-D mesh router.  `kLocal` connects the
/// network interface of the attached tile.
enum class Port : int { kLocal = 0, kNorth = 1, kEast = 2, kSouth = 3, kWest = 4 };

inline constexpr int kNumPorts = 5;

/// Opposite mesh direction (north <-> south, east <-> west).  The local
/// port has no opposite.
constexpr Port opposite(Port p) {
  switch (p) {
    case Port::kNorth: return Port::kSouth;
    case Port::kSouth: return Port::kNorth;
    case Port::kEast: return Port::kWest;
    case Port::kWest: return Port::kEast;
    case Port::kLocal: break;
  }
  NOCS_UNREACHABLE("opposite(kLocal)");
}

/// Coordinate displacement of one hop through port `p` (top-left origin:
/// north is -y, south is +y).
constexpr Coord step(Coord c, Port p) {
  switch (p) {
    case Port::kNorth: return Coord{c.x, c.y - 1};
    case Port::kSouth: return Coord{c.x, c.y + 1};
    case Port::kEast: return Coord{c.x + 1, c.y};
    case Port::kWest: return Coord{c.x - 1, c.y};
    case Port::kLocal: return c;
  }
  NOCS_UNREACHABLE("step: bad port");
}

/// Human-readable port name for traces and test failure messages.
std::string to_string(Port p);

/// Human-readable "(x,y)" form.
std::string to_string(Coord c);

}  // namespace nocs
