#include "common/metrics.hpp"

namespace nocs {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      double bin_width, int num_bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(name, Histogram(bin_width, num_bins, /*auto_grow=*/true))
             .first;
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

json::Value MetricsRegistry::to_json() const {
  json::Value root = json::Value::object();
  json::Value counters = json::Value::object();
  for (const auto& [name, c] : counters_) counters.set(name, c.value());
  json::Value gauges = json::Value::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g.value());
  json::Value histograms = json::Value::object();
  for (const auto& [name, h] : histograms_) {
    json::Value summary = json::Value::object();
    summary.set("count", h.total());
    summary.set("bin_width", h.bin_width());
    summary.set("num_bins", h.num_bins());
    summary.set("range_extended", h.range_extended());
    if (h.total() > 0) {
      summary.set("max", h.max_value());
      summary.set("p50", h.quantile(0.5));
      summary.set("p90", h.quantile(0.9));
      summary.set("p99", h.quantile(0.99));
    }
    histograms.set(name, std::move(summary));
  }
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return json::write_file(path, to_json());
}

namespace {

std::string exposition_name(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == '.' || c == '-') c = '_';
  return out;
}

}  // namespace

std::string MetricsRegistry::to_text() const {
  std::string out;
  for (const auto& [name, c] : counters_)
    out += exposition_name(name) + ' ' + std::to_string(c.value()) + '\n';
  for (const auto& [name, g] : gauges_)
    out += exposition_name(name) + ' ' + json::format_number(g.value()) + '\n';
  for (const auto& [name, h] : histograms_) {
    const std::string base = exposition_name(name);
    out += base + "_count " + std::to_string(h.total()) + '\n';
    if (h.total() > 0) {
      out += base + "_max " + json::format_number(h.max_value()) + '\n';
      out += base + "_p50 " + json::format_number(h.quantile(0.5)) + '\n';
      out += base + "_p90 " + json::format_number(h.quantile(0.9)) + '\n';
      out += base + "_p99 " + json::format_number(h.quantile(0.99)) + '\n';
    }
  }
  return out;
}

}  // namespace nocs
