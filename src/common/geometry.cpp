#include "common/geometry.hpp"

namespace nocs {

std::string to_string(Port p) {
  switch (p) {
    case Port::kLocal: return "local";
    case Port::kNorth: return "north";
    case Port::kEast: return "east";
    case Port::kSouth: return "south";
    case Port::kWest: return "west";
  }
  return "?";
}

std::string to_string(Coord c) {
  return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}

}  // namespace nocs
