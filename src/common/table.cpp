#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace nocs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NOCS_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  NOCS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::fmt(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::pct(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, fraction * 100.0);
  return buf;
}

}  // namespace nocs
