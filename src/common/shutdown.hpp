// Process-wide graceful-shutdown flag driven by OS signals.
//
// install_shutdown_handlers() arms SIGINT and SIGTERM to set a sticky
// atomic flag instead of killing the process, so long-running drivers
// (batch simulations, sweeps, the serve daemon) can notice the request at
// their next cooperative boundary, flush checkpoints/ledgers, and exit
// cleanly.  A second signal restores the default disposition and
// re-raises, so a wedged process still dies on repeated Ctrl-C.
//
// The flag is exposed as a raw `const std::atomic<bool>*` so it plugs
// directly into noc::CheckpointConfig::stop_flag and the sweep drivers'
// stop parameter without extra adapters.
#pragma once

#include <atomic>

namespace nocs {

/// Arms SIGINT/SIGTERM to set the shutdown flag (idempotent; the second
/// and later calls are no-ops).  Handlers are installed without
/// SA_RESTART so blocking syscalls in the caller return EINTR and loops
/// re-check the flag promptly.
void install_shutdown_handlers();

/// True once any armed signal has been delivered (or request_shutdown()
/// was called).
bool shutdown_requested();

/// The flag itself, for components that poll a raw atomic.  Never null;
/// valid for the process lifetime.
const std::atomic<bool>* shutdown_flag();

/// Sets the flag programmatically — the serve daemon's `drain` op takes
/// the exact same path as SIGTERM.
void request_shutdown();

/// The signal number that triggered shutdown (0 when none yet, or when
/// request_shutdown() was used).
int shutdown_signal();

/// Clears the flag and recorded signal.  Tests only: production code
/// treats shutdown as sticky.
void reset_shutdown_for_tests();

}  // namespace nocs
