// Statistics accumulators used across the simulator and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace nocs::snapshot {
class Writer;
class Reader;
}  // namespace nocs::snapshot

namespace nocs {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStat& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(count_ + o.count_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(count_) *
                       static_cast<double>(o.count_) / n;
    mean_ = (mean_ * static_cast<double>(count_) +
             o.mean_ * static_cast<double>(o.count_)) / n;
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  void reset() { *this = RunningStat{}; }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Checkpoint/restore: exact (bit-identical) accumulator state.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin-count histogram starting at [0, bin_width * num_bins).
/// Values beyond the last bin either grow the range (auto-grow mode:
/// adjacent bins merge pairwise, doubling the bin width, so memory stays
/// fixed while the range covers the largest sample) or are clamped into
/// the last bin with an overflow count.  Either way `range_extended()`
/// reports that samples exceeded the initial range, so tail quantiles at
/// saturation are never silently understated.  Used for latency
/// distributions.
class Histogram {
 public:
  Histogram(double bin_width, int num_bins, bool auto_grow = false)
      : bin_width_(bin_width),
        initial_bin_width_(bin_width),
        auto_grow_(auto_grow),
        bins_(static_cast<std::size_t>(num_bins), 0) {
    NOCS_EXPECTS(bin_width > 0 && num_bins > 0);
  }

  void add(double x) {
    max_value_ = std::max(max_value_, x);
    auto idx = static_cast<std::size_t>(std::max(0.0, x / bin_width_));
    if (idx >= bins_.size()) {
      if (auto_grow_) {
        do {
          collapse();
        } while (static_cast<std::size_t>(x / bin_width_) >= bins_.size());
        idx = static_cast<std::size_t>(x / bin_width_);
      } else {
        idx = bins_.size() - 1;
        ++overflow_;
      }
    }
    ++bins_[idx];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bin(int i) const {
    return bins_.at(static_cast<std::size_t>(i));
  }
  int num_bins() const { return static_cast<int>(bins_.size()); }
  double bin_width() const { return bin_width_; }

  /// Adds clamped into the last bin (always 0 in auto-grow mode).
  std::uint64_t overflow() const { return overflow_; }
  /// Largest sample seen (-inf when empty).
  double max_value() const { return max_value_; }
  /// True when any sample landed beyond the initial range — the histogram
  /// grew (auto-grow) or clamped (fixed); tail quantiles are then coarser
  /// (grow) or capped (fixed) and callers should surface that.
  bool range_extended() const {
    return overflow_ > 0 || bin_width_ != initial_bin_width_;
  }

  /// Value below which a fraction `q` (0..1) of the samples fall,
  /// interpolated within the containing bin (sample ranks spread uniformly
  /// across the bin).  q=0 is the lower edge of the first occupied bin;
  /// q=1 the upper edge of the last occupied one.
  double quantile(double q) const {
    NOCS_EXPECTS(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return 0.0;
    // ceil(q * total): the smallest rank whose sample bounds fraction q
    // from above.  Truncation would bias every quantile up to a bin low.
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(total_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      if (bins_[i] == 0) continue;
      if (q == 0.0) return static_cast<double>(i) * bin_width_;
      const std::uint64_t before = seen;
      seen += bins_[i];
      if (seen >= target) {
        const double frac = static_cast<double>(target - before) /
                            static_cast<double>(bins_[i]);
        return (static_cast<double>(i) + frac) * bin_width_;
      }
    }
    return static_cast<double>(bins_.size()) * bin_width_;
  }

  /// Checkpoint/restore.  load_state requires a histogram constructed with
  /// the same initial bin width and bin count (it restores the grown bin
  /// width and counts on top).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  /// Merges adjacent bin pairs, doubling the bin width: same samples, half
  /// the resolution, twice the range, constant memory.
  void collapse() {
    const std::size_t n = bins_.size();
    const std::size_t merged = (n + 1) / 2;
    for (std::size_t i = 0; i < merged; ++i) {
      const std::size_t lo = 2 * i;
      const std::size_t hi = 2 * i + 1;
      bins_[i] = bins_[lo] + (hi < n ? bins_[hi] : 0);
    }
    std::fill(bins_.begin() + static_cast<std::ptrdiff_t>(merged),
              bins_.end(), 0);
    bin_width_ *= 2.0;
  }

  double bin_width_;
  double initial_bin_width_;
  bool auto_grow_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
  double max_value_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean over a sequence of positive values; the conventional way
/// to average speedups across benchmarks.
double geometric_mean(const std::vector<double>& xs);

/// Arithmetic mean; 0 for an empty sequence.
double arithmetic_mean(const std::vector<double>& xs);

}  // namespace nocs
