// Statistics accumulators used across the simulator and benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace nocs {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStat& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(count_ + o.count_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(count_) *
                       static_cast<double>(o.count_) / n;
    mean_ = (mean_ * static_cast<double>(count_) +
             o.mean_ * static_cast<double>(o.count_)) / n;
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  void reset() { *this = RunningStat{}; }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [0, bin_width * num_bins); values beyond the
/// last bin are clamped into it.  Used for latency distributions.
class Histogram {
 public:
  Histogram(double bin_width, int num_bins)
      : bin_width_(bin_width), bins_(static_cast<std::size_t>(num_bins), 0) {
    NOCS_EXPECTS(bin_width > 0 && num_bins > 0);
  }

  void add(double x) {
    auto idx = static_cast<std::size_t>(std::max(0.0, x / bin_width_));
    if (idx >= bins_.size()) idx = bins_.size() - 1;
    ++bins_[idx];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bin(int i) const {
    return bins_.at(static_cast<std::size_t>(i));
  }
  int num_bins() const { return static_cast<int>(bins_.size()); }
  double bin_width() const { return bin_width_; }

  /// Value below which `q` (0..1) of the samples fall, estimated at bin
  /// upper edges.
  double quantile(double q) const {
    NOCS_EXPECTS(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return 0.0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      seen += bins_[i];
      if (seen >= target)
        return static_cast<double>(i + 1) * bin_width_;
    }
    return static_cast<double>(bins_.size()) * bin_width_;
  }

 private:
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Geometric mean over a sequence of positive values; the conventional way
/// to average speedups across benchmarks.
double geometric_mean(const std::vector<double>& xs);

/// Arithmetic mean; 0 for an empty sequence.
double arithmetic_mean(const std::vector<double>& xs);

}  // namespace nocs
