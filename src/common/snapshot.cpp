#include "common/snapshot.hpp"

#include <unistd.h>

#include <bit>
#include <cctype>
#include <cstdio>
#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace nocs::snapshot {

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// --- Writer -----------------------------------------------------------------

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::begin_section(const std::string& name) {
  str(name);
  open_.push_back(buf_.size());
  u64(0);  // length slot, patched by end_section
}

void Writer::end_section() {
  NOCS_EXPECTS(!open_.empty());
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t len = buf_.size() - (at + 8);
  for (int i = 0; i < 8; ++i)
    buf_[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
}

// --- Reader -----------------------------------------------------------------

void Reader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n)
    throw SnapshotError("snapshot truncated: needed " + std::to_string(n) +
                        " bytes, " + std::to_string(buf_.size() - pos_) +
                        " left");
}

std::uint8_t Reader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint64_t n = u64();
  if (n > buf_.size() - pos_)
    throw SnapshotError("snapshot truncated inside a string");
  std::string s(reinterpret_cast<const char*>(buf_.data()) +
                    static_cast<std::ptrdiff_t>(pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void Reader::begin_section(const std::string& name) {
  const std::string got = str();
  if (got != name)
    throw SnapshotError("snapshot section mismatch: expected '" + name +
                        "', found '" + got + "'");
  const std::uint64_t len = u64();
  if (len > buf_.size() - pos_)
    throw SnapshotError("snapshot section '" + name +
                        "' longer than remaining payload");
  ends_.push_back(pos_ + static_cast<std::size_t>(len));
}

void Reader::end_section() {
  NOCS_EXPECTS(!ends_.empty());
  const std::size_t expected = ends_.back();
  ends_.pop_back();
  if (pos_ != expected)
    throw SnapshotError(
        "snapshot section length mismatch: component read " +
        std::to_string(pos_) + " bytes, section ends at " +
        std::to_string(expected));
}

// --- files ------------------------------------------------------------------

namespace {

/// Header: magic[8] | version u32 | payload length u64 | checksum u64.
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

bool save_file(const std::string& path, const Writer& w) {
  const auto& payload = w.bytes();
  std::uint8_t header[kHeaderSize];
  std::memcpy(header, kMagic, 8);
  put_u32(header + 8, kFormatVersion);
  put_u64(header + 12, payload.size());
  put_u64(header + 20, fnv1a(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    log_message(LogLevel::kError, "snapshot: cannot open %s for writing",
                tmp.c_str());
    return false;
  }
  bool ok = std::fwrite(header, 1, kHeaderSize, f) == kHeaderSize;
  if (ok && !payload.empty())
    ok = std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    log_message(LogLevel::kError, "snapshot: short write to %s",
                tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  // Atomic publish: a reader sees either the complete old file or the
  // complete new one, never a half-written checkpoint.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    log_message(LogLevel::kError, "snapshot: cannot rename %s to %s",
                tmp.c_str(), path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

Reader load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw SnapshotError("cannot open snapshot file: " + path);

  std::uint8_t header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize) {
    std::fclose(f);
    throw SnapshotError("snapshot file too short for its header: " + path);
  }
  if (std::memcmp(header, kMagic, 8) != 0) {
    std::fclose(f);
    throw SnapshotError("bad snapshot magic (not a NOCSNAP1 file): " + path);
  }
  const std::uint32_t version = get_u32(header + 8);
  if (version != kFormatVersion) {
    std::fclose(f);
    throw SnapshotError("snapshot format version " + std::to_string(version) +
                        " != supported " + std::to_string(kFormatVersion) +
                        ": " + path);
  }
  const std::uint64_t length = get_u64(header + 12);
  const std::uint64_t checksum = get_u64(header + 20);

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(length));
  const std::size_t got =
      payload.empty() ? 0 : std::fread(payload.data(), 1, payload.size(), f);
  // Trailing garbage is as suspect as truncation.
  const bool at_eof = std::fgetc(f) == EOF;
  std::fclose(f);
  if (got != payload.size())
    throw SnapshotError("snapshot payload truncated (" + std::to_string(got) +
                        " of " + std::to_string(length) + " bytes): " + path);
  if (!at_eof)
    throw SnapshotError("snapshot has trailing bytes after payload: " + path);
  if (fnv1a(payload.data(), payload.size()) != checksum)
    throw SnapshotError("snapshot checksum mismatch (corrupted file): " +
                        path);
  return Reader(std::move(payload));
}

// --- append-only record log -------------------------------------------------

bool write_record(std::FILE* f, const std::uint8_t* data, std::size_t size) {
  NOCS_EXPECTS(f != nullptr);
  std::uint8_t frame[4 + 8 + 8];
  put_u32(frame, kRecordMagic);
  put_u64(frame + 4, size);
  put_u64(frame + 12, fnv1a(data, size));
  if (std::fwrite(frame, 1, sizeof frame, f) != sizeof frame) return false;
  if (size != 0 && std::fwrite(data, 1, size, f) != size) return false;
  return true;
}

bool append_record(std::FILE* f, const std::uint8_t* data, std::size_t size) {
  if (!write_record(f, data, size)) return false;
  if (std::fflush(f) != 0) return false;
  // Push through to the device: a ledger's whole point is surviving an
  // unclean death, so buffered-in-page-cache is the floor, not the goal.
  ::fsync(::fileno(f));
  return true;
}

RecordScan scan_records(const std::string& path) {
  RecordScan scan;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return scan;  // first start: empty, undamaged

  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);

  std::uint8_t frame[4 + 8 + 8];
  for (;;) {
    const std::size_t at = scan.valid_bytes;
    const std::size_t got = std::fread(frame, 1, sizeof frame, f);
    if (got == 0) break;  // clean EOF
    if (got < sizeof frame) {
      scan.damaged = true;
      scan.damage = "truncated record header at byte " + std::to_string(at);
      break;
    }
    if (get_u32(frame) != kRecordMagic) {
      scan.damaged = true;
      scan.damage = "bad record magic at byte " + std::to_string(at);
      break;
    }
    const std::uint64_t len = get_u64(frame + 4);
    const std::uint64_t checksum = get_u64(frame + 12);
    if (file_size >= 0 &&
        len > static_cast<std::uint64_t>(file_size) - at - sizeof frame) {
      scan.damaged = true;
      scan.damage = "record at byte " + std::to_string(at) +
                    " longer than the remaining file";
      break;
    }
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), f) != payload.size()) {
      scan.damaged = true;
      scan.damage = "truncated record payload at byte " + std::to_string(at);
      break;
    }
    if (fnv1a(payload.data(), payload.size()) != checksum) {
      scan.damaged = true;
      scan.damage =
          "record checksum mismatch at byte " + std::to_string(at);
      break;
    }
    scan.records.push_back(std::move(payload));
    scan.valid_bytes = at + sizeof frame + static_cast<std::size_t>(len);
  }
  std::fclose(f);
  return scan;
}

// --- TaskManifest -----------------------------------------------------------

namespace {

std::size_t skip_ws(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos])) != 0)
    ++pos;
  return pos;
}

/// Extent of one JSON value starting at `pos`: tracks brace/bracket depth
/// and string state, so a complete value of any type is spanned exactly.
/// Returns std::string::npos when the value never closes (truncation).
std::size_t value_end(const std::string& s, std::size_t pos) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = pos; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (depth == 0) return i;  // primitive ended by the container close
      if (--depth == 0) return i + 1;
    } else if (depth == 0 && (c == ',' || c == '\n')) {
      return i;  // primitive value ends at the separator
    }
  }
  // Ran off the end: even a parseable primitive here may itself be
  // truncated (a number missing digits still parses), so treat it as
  // damage rather than risk recovering a wrong value.
  return std::string::npos;
}

}  // namespace

std::map<std::size_t, json::Value> recover_manifest_prefix(
    const std::string& text, const std::string& fingerprint) {
  std::map<std::size_t, json::Value> recovered;
  // The header fields precede the completed map in every manifest this
  // code writes; without a textually intact magic + matching fingerprint
  // nothing after them can be trusted.
  if (text.find("\"magic\": \"nocs-sweep-manifest\"") == std::string::npos)
    return recovered;
  if (text.find("\"fingerprint\": " + json::escape(fingerprint)) ==
      std::string::npos)
    return recovered;
  std::size_t pos = text.find("\"completed\"");
  if (pos == std::string::npos) return recovered;
  pos = text.find('{', pos);
  if (pos == std::string::npos) return recovered;
  ++pos;

  for (;;) {
    pos = skip_ws(text, pos);
    if (pos >= text.size() || text[pos] == '}') break;
    if (text[pos] == ',') {
      ++pos;
      continue;
    }
    // One "index": value entry; keys are plain decimal strings.
    if (text[pos] != '"') break;
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    pos = skip_ws(text, key_end + 1);
    if (pos >= text.size() || text[pos] != ':') break;
    pos = skip_ws(text, pos + 1);
    const std::size_t end = value_end(text, pos);
    if (end == std::string::npos) break;
    try {
      json::Value value = json::Value::parse(text.substr(pos, end - pos));
      recovered[static_cast<std::size_t>(std::stoull(key))] =
          std::move(value);
    } catch (const std::exception&) {
      break;  // first unparseable record ends the valid prefix
    }
    pos = end;
  }
  return recovered;
}

TaskManifest::TaskManifest(const std::string& path,
                           const std::string& fingerprint)
    : path_(path), fingerprint_(fingerprint) {
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return;  // no prior run: start fresh
  std::string text;
  char chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) text.append(chunk, n);
  std::fclose(f);
  try {
    const json::Value doc = json::Value::parse(text);
    if (doc.at("magic").as_string() != "nocs-sweep-manifest" ||
        doc.at("version").as_number() != 1.0)
      throw SnapshotError("not a sweep manifest");
    if (doc.at("fingerprint").as_string() != fingerprint_) {
      log_message(LogLevel::kWarn,
                  "sweep manifest %s was written for a different sweep "
                  "configuration; starting fresh",
                  path_.c_str());
      return;
    }
    for (const auto& [key, value] : doc.at("completed").members())
      results_.emplace(static_cast<std::size_t>(std::stoull(key)), value);
  } catch (const std::exception& e) {
    // Truncated or half-written (e.g. the process died while a non-atomic
    // copy was in flight, or the filesystem ate the tail): salvage the
    // valid prefix of completed-task records rather than redoing the
    // whole sweep.
    results_ = recover_manifest_prefix(text, fingerprint_);
    if (!results_.empty()) {
      log_message(LogLevel::kWarn,
                  "sweep manifest %s is damaged (%s); recovered the valid "
                  "prefix of %zu completed task(s)",
                  path_.c_str(), e.what(), results_.size());
    } else {
      log_message(LogLevel::kWarn,
                  "ignoring unreadable sweep manifest %s: %s", path_.c_str(),
                  e.what());
    }
  }
}

std::size_t TaskManifest::completed_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

bool TaskManifest::completed(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return results_.count(index) != 0;
}

json::Value TaskManifest::result(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = results_.find(index);
  if (it == results_.end())
    throw SnapshotError("manifest has no result for task " +
                        std::to_string(index));
  return it->second;
}

void TaskManifest::record(std::size_t index, json::Value result) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  results_[index] = std::move(result);
  persist_locked();
}

void TaskManifest::persist_locked() const {
  json::Value doc = json::Value::object();
  doc.set("magic", "nocs-sweep-manifest");
  doc.set("version", 1);
  doc.set("fingerprint", fingerprint_);
  json::Value done = json::Value::object();
  for (const auto& [index, value] : results_)
    done.set(std::to_string(index), value);
  doc.set("completed", std::move(done));

  // Same atomic tmp + rename discipline as binary snapshots: a sweep
  // killed mid-record leaves the previous complete ledger behind.
  const std::string tmp = path_ + ".tmp";
  if (!json::write_file(tmp, doc)) return;
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    log_message(LogLevel::kError, "manifest: cannot rename %s to %s",
                tmp.c_str(), path_.c_str());
    std::remove(tmp.c_str());
  }
}

}  // namespace nocs::snapshot
