#include "common/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace nocs::snapshot {

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// --- Writer -----------------------------------------------------------------

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::begin_section(const std::string& name) {
  str(name);
  open_.push_back(buf_.size());
  u64(0);  // length slot, patched by end_section
}

void Writer::end_section() {
  NOCS_EXPECTS(!open_.empty());
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t len = buf_.size() - (at + 8);
  for (int i = 0; i < 8; ++i)
    buf_[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
}

// --- Reader -----------------------------------------------------------------

void Reader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n)
    throw SnapshotError("snapshot truncated: needed " + std::to_string(n) +
                        " bytes, " + std::to_string(buf_.size() - pos_) +
                        " left");
}

std::uint8_t Reader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint64_t n = u64();
  if (n > buf_.size() - pos_)
    throw SnapshotError("snapshot truncated inside a string");
  std::string s(reinterpret_cast<const char*>(buf_.data()) +
                    static_cast<std::ptrdiff_t>(pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void Reader::begin_section(const std::string& name) {
  const std::string got = str();
  if (got != name)
    throw SnapshotError("snapshot section mismatch: expected '" + name +
                        "', found '" + got + "'");
  const std::uint64_t len = u64();
  if (len > buf_.size() - pos_)
    throw SnapshotError("snapshot section '" + name +
                        "' longer than remaining payload");
  ends_.push_back(pos_ + static_cast<std::size_t>(len));
}

void Reader::end_section() {
  NOCS_EXPECTS(!ends_.empty());
  const std::size_t expected = ends_.back();
  ends_.pop_back();
  if (pos_ != expected)
    throw SnapshotError(
        "snapshot section length mismatch: component read " +
        std::to_string(pos_) + " bytes, section ends at " +
        std::to_string(expected));
}

// --- files ------------------------------------------------------------------

namespace {

/// Header: magic[8] | version u32 | payload length u64 | checksum u64.
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

bool save_file(const std::string& path, const Writer& w) {
  const auto& payload = w.bytes();
  std::uint8_t header[kHeaderSize];
  std::memcpy(header, kMagic, 8);
  put_u32(header + 8, kFormatVersion);
  put_u64(header + 12, payload.size());
  put_u64(header + 20, fnv1a(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    log_message(LogLevel::kError, "snapshot: cannot open %s for writing",
                tmp.c_str());
    return false;
  }
  bool ok = std::fwrite(header, 1, kHeaderSize, f) == kHeaderSize;
  if (ok && !payload.empty())
    ok = std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    log_message(LogLevel::kError, "snapshot: short write to %s",
                tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  // Atomic publish: a reader sees either the complete old file or the
  // complete new one, never a half-written checkpoint.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    log_message(LogLevel::kError, "snapshot: cannot rename %s to %s",
                tmp.c_str(), path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

Reader load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw SnapshotError("cannot open snapshot file: " + path);

  std::uint8_t header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize) {
    std::fclose(f);
    throw SnapshotError("snapshot file too short for its header: " + path);
  }
  if (std::memcmp(header, kMagic, 8) != 0) {
    std::fclose(f);
    throw SnapshotError("bad snapshot magic (not a NOCSNAP1 file): " + path);
  }
  const std::uint32_t version = get_u32(header + 8);
  if (version != kFormatVersion) {
    std::fclose(f);
    throw SnapshotError("snapshot format version " + std::to_string(version) +
                        " != supported " + std::to_string(kFormatVersion) +
                        ": " + path);
  }
  const std::uint64_t length = get_u64(header + 12);
  const std::uint64_t checksum = get_u64(header + 20);

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(length));
  const std::size_t got =
      payload.empty() ? 0 : std::fread(payload.data(), 1, payload.size(), f);
  // Trailing garbage is as suspect as truncation.
  const bool at_eof = std::fgetc(f) == EOF;
  std::fclose(f);
  if (got != payload.size())
    throw SnapshotError("snapshot payload truncated (" + std::to_string(got) +
                        " of " + std::to_string(length) + " bytes): " + path);
  if (!at_eof)
    throw SnapshotError("snapshot has trailing bytes after payload: " + path);
  if (fnv1a(payload.data(), payload.size()) != checksum)
    throw SnapshotError("snapshot checksum mismatch (corrupted file): " +
                        path);
  return Reader(std::move(payload));
}

// --- TaskManifest -----------------------------------------------------------

TaskManifest::TaskManifest(const std::string& path,
                           const std::string& fingerprint)
    : path_(path), fingerprint_(fingerprint) {
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return;  // no prior run: start fresh
  std::string text;
  char chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) text.append(chunk, n);
  std::fclose(f);
  try {
    const json::Value doc = json::Value::parse(text);
    if (doc.at("magic").as_string() != "nocs-sweep-manifest" ||
        doc.at("version").as_number() != 1.0)
      throw SnapshotError("not a sweep manifest");
    if (doc.at("fingerprint").as_string() != fingerprint_) {
      log_message(LogLevel::kWarn,
                  "sweep manifest %s was written for a different sweep "
                  "configuration; starting fresh",
                  path_.c_str());
      return;
    }
    for (const auto& [key, value] : doc.at("completed").members())
      results_.emplace(static_cast<std::size_t>(std::stoull(key)), value);
  } catch (const std::exception& e) {
    log_message(LogLevel::kWarn, "ignoring unreadable sweep manifest %s: %s",
                path_.c_str(), e.what());
    results_.clear();
  }
}

std::size_t TaskManifest::completed_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

bool TaskManifest::completed(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return results_.count(index) != 0;
}

json::Value TaskManifest::result(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = results_.find(index);
  if (it == results_.end())
    throw SnapshotError("manifest has no result for task " +
                        std::to_string(index));
  return it->second;
}

void TaskManifest::record(std::size_t index, json::Value result) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  results_[index] = std::move(result);
  persist_locked();
}

void TaskManifest::persist_locked() const {
  json::Value doc = json::Value::object();
  doc.set("magic", "nocs-sweep-manifest");
  doc.set("version", 1);
  doc.set("fingerprint", fingerprint_);
  json::Value done = json::Value::object();
  for (const auto& [index, value] : results_)
    done.set(std::to_string(index), value);
  doc.set("completed", std::move(done));

  // Same atomic tmp + rename discipline as binary snapshots: a sweep
  // killed mid-record leaves the previous complete ledger behind.
  const std::string tmp = path_ + ".tmp";
  if (!json::write_file(tmp, doc)) return;
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    log_message(LogLevel::kError, "manifest: cannot rename %s to %s",
                tmp.c_str(), path_.c_str());
    std::remove(tmp.c_str());
  }
}

}  // namespace nocs::snapshot
