// Lightweight metrics registry: named counters, gauges, and histograms.
//
// The observability layer's aggregation point.  Components (the stats
// collector, resilience counters, power models, PCM/thermal state) expose
// `export_metrics(MetricsRegistry&)` hooks that register their state under
// stable dotted names; the registry then serializes one JSON snapshot
// (`metrics=path.json` in the CLI) that dashboards and diff scripts
// consume.  Entirely passive: nothing in the simulator reads it, so runs
// are bit-identical whether or not a registry is populated.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/stats.hpp"

namespace nocs {

/// Monotonically increasing count (events, packets, retransmissions).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  /// Snapshot-style assignment for exporting an already-accumulated total.
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement (latency mean, power, temperature).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Owns metrics by name.  Re-requesting a name returns the same object
/// (references stay valid for the registry's lifetime).  Histograms are
/// auto-growing, so no sample range has to be guessed up front.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double bin_width = 1.0,
                       int num_bins = 256);

  /// Lookup without creation; nullptr when the name is not registered.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, mean-free summary, p50/p90/p99, ...}}}.
  json::Value to_json() const;

  /// Prometheus-style text exposition: one `name value` line per counter
  /// and gauge, histograms expanded to `name_count` / `name_max` /
  /// `name_p50` / `name_p90` / `name_p99` lines.  Dots in metric names
  /// become underscores (dotted names are the registry convention,
  /// underscores the exposition one).  The serve daemon returns this from
  /// its `metrics` op so scrapers need no JSON walking.
  std::string to_text() const;

  /// Dumps the snapshot to `path`; false (after logging) on IO failure.
  bool write_json(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace nocs
