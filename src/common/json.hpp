// Minimal JSON value: parse, build, serialize.
//
// Backs the observability layer — Chrome trace emission, metrics dumps,
// and the `report=` machine-readable run reports — and lets tests verify
// well-formedness and round-trip emitted files without an external
// dependency.  Objects preserve insertion order so dumps are stable and
// diffable; numbers round-trip bit-exactly (shortest representation that
// parses back to the same double).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nocs::json {

/// One JSON value (null, bool, number, string, array, or object).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(int i) : type_(Type::kNumber), num_(i) {}
  Value(long long i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(std::uint64_t i)
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  /// Parses `text` (a complete JSON document).  Throws
  /// std::invalid_argument on malformed input or trailing garbage.
  static Value parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::invalid_argument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // --- arrays ---------------------------------------------------------------

  void push_back(Value v);
  std::size_t size() const;  ///< element/member count (arrays and objects)
  const Value& at(std::size_t i) const;

  // --- objects --------------------------------------------------------------

  /// Inserts or overwrites a member (this value must be an object or null;
  /// null is promoted to an empty object).
  Value& set(const std::string& key, Value v);

  /// Member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;

  /// Member lookup that throws std::invalid_argument when absent.
  const Value& at(const std::string& key) const;

  /// Object members in insertion order.
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per
  /// level, 0 emits a compact single line.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Serializes a double with the shortest precision that parses back to the
/// same bits (used for report numbers so round-trips are exact).
std::string format_number(double d);

/// Escapes a string for embedding in JSON (adds surrounding quotes).
std::string escape(const std::string& s);

/// Writes `v` to `path` with a trailing newline; false (after logging to
/// stderr) when the file cannot be opened.
bool write_file(const std::string& path, const Value& v, int indent = 2);

}  // namespace nocs::json
