// Fundamental scalar types shared by every nocsprint library.
#pragma once

#include <cstdint>

namespace nocs {

/// Simulation time in router clock cycles.
using Cycle = std::uint64_t;

/// Index of a node (router + attached core/cache tile) in the mesh,
/// row-major from the top-left corner (the paper's coordinate origin).
using NodeId = int;

/// Index of a virtual channel within one input port.
using VcId = int;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Watts.
using Watts = double;
/// Joules.
using Joules = double;
/// Seconds.
using Seconds = double;
/// Kelvin.
using Kelvin = double;

}  // namespace nocs
