#include "thermal/grid.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace nocs::thermal {

TemperatureField::TemperatureField(int total_x, int total_y, int border,
                                   Kelvin init)
    : total_x_(total_x),
      total_y_(total_y),
      border_(border),
      t_(static_cast<std::size_t>(total_x) * static_cast<std::size_t>(total_y),
         init) {
  NOCS_EXPECTS(total_x > 2 * border && total_y > 2 * border);
}

Kelvin TemperatureField::at(int x, int y) const {
  NOCS_EXPECTS(x >= 0 && x < die_cells_x() && y >= 0 && y < die_cells_y());
  const int gx = x + border_;
  const int gy = y + border_;
  return t_[static_cast<std::size_t>(gy) * static_cast<std::size_t>(total_x_) +
            static_cast<std::size_t>(gx)];
}

Kelvin TemperatureField::peak() const {
  Kelvin p = 0.0;
  for (int y = 0; y < die_cells_y(); ++y)
    for (int x = 0; x < die_cells_x(); ++x) p = std::max(p, at(x, y));
  return p;
}

Kelvin TemperatureField::average() const {
  double sum = 0.0;
  for (int y = 0; y < die_cells_y(); ++y)
    for (int x = 0; x < die_cells_x(); ++x) sum += at(x, y);
  return sum / (static_cast<double>(die_cells_x()) *
                static_cast<double>(die_cells_y()));
}

GridThermalModel::GridThermalModel(const GridThermalParams& params,
                                   double die_w_mm, double die_h_mm)
    : params_(params), die_w_mm_(die_w_mm), die_h_mm_(die_h_mm) {
  params_.validate();
  NOCS_EXPECTS(die_w_mm > 0 && die_h_mm > 0);

  total_x_ = params_.cells_x + 2 * params_.border_cells;
  total_y_ = params_.cells_y + 2 * params_.border_cells;

  const double cw = die_w_mm_ * 1e-3 / params_.cells_x;  // meters
  const double ch = die_h_mm_ * 1e-3 / params_.cells_y;
  // Lateral conductance between adjacent cells through the silicon sheet
  // (square-cell approximation uses the geometric mean aspect).
  g_lat_ = params_.k_si * params_.die_thickness_m * 0.5 * (cw / ch + ch / cw);
  // The package's total vertical conductance is distributed uniformly over
  // every cell of the die + spreader border.
  const double total_cells =
      static_cast<double>(total_x_) * static_cast<double>(total_y_);
  g_vert_ = 1.0 / (params_.r_package * total_cells);
  c_cell_ = params_.c_per_area * cw * ch;
}

TemperatureField GridThermalModel::ambient_field() const {
  return TemperatureField(total_x_, total_y_, params_.border_cells,
                          params_.ambient);
}

std::vector<Watts> GridThermalModel::padded_power(const Floorplan& fp) const {
  NOCS_EXPECTS(std::abs(fp.die_w_mm() - die_w_mm_) < 1e-9 &&
               std::abs(fp.die_h_mm() - die_h_mm_) < 1e-9);
  const std::vector<Watts> die_map =
      fp.power_map(params_.cells_x, params_.cells_y);
  std::vector<Watts> padded(
      static_cast<std::size_t>(total_x_) * static_cast<std::size_t>(total_y_),
      0.0);
  const int b = params_.border_cells;
  for (int y = 0; y < params_.cells_y; ++y)
    for (int x = 0; x < params_.cells_x; ++x)
      padded[static_cast<std::size_t>(y + b) *
                 static_cast<std::size_t>(total_x_) +
             static_cast<std::size_t>(x + b)] =
          die_map[static_cast<std::size_t>(y) *
                      static_cast<std::size_t>(params_.cells_x) +
                  static_cast<std::size_t>(x)];
  return padded;
}

TemperatureField GridThermalModel::solve_steady(const Floorplan& fp,
                                                double tol,
                                                int max_iters) const {
  const std::vector<Watts> p = padded_power(fp);
  TemperatureField field = ambient_field();
  auto& t = field.raw();
  const int nx = total_x_;
  const int ny = total_y_;
  const double omega = 1.9;  // SOR over-relaxation

  auto idx = [nx](int x, int y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(x);
  };

  for (int iter = 0; iter < max_iters; ++iter) {
    double max_delta = 0.0;
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        double nsum = 0.0;
        int deg = 0;
        if (x > 0) { nsum += t[idx(x - 1, y)]; ++deg; }
        if (x + 1 < nx) { nsum += t[idx(x + 1, y)]; ++deg; }
        if (y > 0) { nsum += t[idx(x, y - 1)]; ++deg; }
        if (y + 1 < ny) { nsum += t[idx(x, y + 1)]; ++deg; }
        const double denom = g_lat_ * deg + g_vert_;
        const double t_new =
            (p[idx(x, y)] + g_lat_ * nsum + g_vert_ * params_.ambient) /
            denom;
        const double updated =
            t[idx(x, y)] + omega * (t_new - t[idx(x, y)]);
        max_delta = std::max(max_delta, std::abs(updated - t[idx(x, y)]));
        t[idx(x, y)] = updated;
      }
    }
    if (max_delta < tol) break;
  }
  return field;
}

Seconds GridThermalModel::stable_dt() const {
  // Explicit Euler stability: dt < C / sum(conductances) with a safety
  // factor.
  return 0.5 * c_cell_ / (4.0 * g_lat_ + g_vert_);
}

void GridThermalModel::step_transient(const Floorplan& fp,
                                      TemperatureField& field,
                                      Seconds dt_total) const {
  NOCS_EXPECTS(dt_total >= 0.0);
  NOCS_EXPECTS(field.total_x() == total_x_ && field.total_y() == total_y_);
  const std::vector<Watts> p = padded_power(fp);
  const Seconds dt_max = stable_dt();
  const int steps =
      std::max(1, static_cast<int>(std::ceil(dt_total / dt_max)));
  const Seconds dt = dt_total / steps;
  const int nx = total_x_;
  const int ny = total_y_;

  auto idx = [nx](int x, int y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(x);
  };

  std::vector<Kelvin> next(field.raw().size());
  for (int s = 0; s < steps; ++s) {
    auto& t = field.raw();
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        double flow = g_vert_ * (params_.ambient - t[idx(x, y)]);
        if (x > 0) flow += g_lat_ * (t[idx(x - 1, y)] - t[idx(x, y)]);
        if (x + 1 < nx) flow += g_lat_ * (t[idx(x + 1, y)] - t[idx(x, y)]);
        if (y > 0) flow += g_lat_ * (t[idx(x, y - 1)] - t[idx(x, y)]);
        if (y + 1 < ny) flow += g_lat_ * (t[idx(x, y + 1)] - t[idx(x, y)]);
        next[idx(x, y)] =
            t[idx(x, y)] + dt * (flow + p[idx(x, y)]) / c_cell_;
      }
    }
    field.raw().swap(next);
  }
}

std::string render_heatmap(const TemperatureField& field, int out_w,
                           int out_h) {
  NOCS_EXPECTS(out_w >= 1 && out_h >= 1);
  const char ramp[] = " .:-=+*%@#";
  const int ramp_n = 9;

  Kelvin lo = 1e30;
  Kelvin hi = -1e30;
  for (int y = 0; y < field.die_cells_y(); ++y) {
    for (int x = 0; x < field.die_cells_x(); ++x) {
      lo = std::min(lo, field.at(x, y));
      hi = std::max(hi, field.at(x, y));
    }
  }
  const double range = std::max(1e-9, hi - lo);

  std::string out;
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      const int x = ox * field.die_cells_x() / out_w;
      const int y = oy * field.die_cells_y() / out_h;
      const double f = (field.at(x, y) - lo) / range;
      const int level = std::min(ramp_n, static_cast<int>(f * ramp_n + 0.5));
      out += ramp[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace nocs::thermal
