// HotSpot-style finite-difference thermal grid solver.
//
// The die (plus a spreader border that extends past the die edge, which is
// what makes centers hotter than edges under uniform power) is discretized
// into cells.  Each cell exchanges heat laterally with its four neighbors
// through conductance G_lat and vertically with the ambient through the
// package resistance; power from the rasterized floorplan is injected per
// cell.  Steady state is solved by Gauss–Seidel iteration; transients by
// explicit forward Euler with a stability-checked time step.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "thermal/floorplan.hpp"

namespace nocs::thermal {

/// Solver configuration.  Defaults are calibrated for a ~12x12 mm, 45 nm
/// die so that the paper's Figure 12 magnitudes come out (full 16-core
/// sprint peaking near 358 K with a 4-core sprint near 348 K).
struct GridThermalParams {
  int cells_x = 32;           ///< grid resolution across the die
  int cells_y = 32;
  int border_cells = 6;       ///< spreader cells beyond each die edge
  double k_si = 60.0;         ///< effective lateral conductivity, W/(m K)
  double die_thickness_m = 0.65e-3;
  double r_package = 0.30;    ///< total junction->ambient resistance, K/W
  double c_per_area = 1650.0; ///< heat capacity per die area, J/(K m^2)
  Kelvin ambient = 318.0;     ///< paper-scale ambient/baseline temperature

  void validate() const {
    NOCS_EXPECTS(cells_x >= 2 && cells_y >= 2 && border_cells >= 0);
    NOCS_EXPECTS(k_si > 0 && die_thickness_m > 0 && r_package > 0);
    NOCS_EXPECTS(c_per_area > 0 && ambient > 0);
  }
};

/// Temperature field over the (die + border) grid with accessors in die
/// coordinates.
class TemperatureField {
 public:
  TemperatureField(int total_x, int total_y, int border, Kelvin init);

  int die_cells_x() const { return total_x_ - 2 * border_; }
  int die_cells_y() const { return total_y_ - 2 * border_; }

  /// Temperature of die cell (x, y), 0-indexed from the die's top-left.
  Kelvin at(int x, int y) const;

  /// Hottest die-cell temperature.
  Kelvin peak() const;
  /// Average die-cell temperature.
  Kelvin average() const;

  /// Raw grid (including border), row-major; used by the solver.
  std::vector<Kelvin>& raw() { return t_; }
  const std::vector<Kelvin>& raw() const { return t_; }
  int total_x() const { return total_x_; }
  int total_y() const { return total_y_; }
  int border() const { return border_; }

  /// Checkpoint/restore of the full (die + border) cell temperatures, so
  /// long thermal transients resume from the exact field.
  void save_state(snapshot::Writer& w) const {
    w.begin_section("temperature_field");
    w.i64(total_x_);
    w.i64(total_y_);
    w.i64(border_);
    for (const Kelvin t : t_) w.f64(t);
    w.end_section();
  }

  void load_state(snapshot::Reader& r) {
    r.begin_section("temperature_field");
    if (r.i64() != total_x_ || r.i64() != total_y_ || r.i64() != border_)
      throw snapshot::SnapshotError(
          "temperature field dimensions in checkpoint disagree with this "
          "field's grid");
    for (Kelvin& t : t_) t = r.f64();
    r.end_section();
  }

 private:
  int total_x_;
  int total_y_;
  int border_;
  std::vector<Kelvin> t_;
};

class GridThermalModel {
 public:
  GridThermalModel(const GridThermalParams& params, double die_w_mm,
                   double die_h_mm);

  const GridThermalParams& params() const { return params_; }

  /// Steady-state temperatures for the given floorplan (whose die
  /// dimensions must match).  Gauss–Seidel to `tol` Kelvin max-update or
  /// `max_iters`, whichever first.
  TemperatureField solve_steady(const Floorplan& fp, double tol = 1e-4,
                                int max_iters = 20000) const;

  /// Advances `field` by `dt_total` seconds of transient simulation under
  /// the floorplan's power (explicit Euler, internally sub-stepped to the
  /// stability limit).
  void step_transient(const Floorplan& fp, TemperatureField& field,
                      Seconds dt_total) const;

  /// A fresh field at ambient temperature.
  TemperatureField ambient_field() const;

  /// Largest stable explicit time step (seconds).
  Seconds stable_dt() const;

 private:
  std::vector<Watts> padded_power(const Floorplan& fp) const;

  GridThermalParams params_;
  double die_w_mm_;
  double die_h_mm_;
  double g_lat_;       ///< lateral conductance between adjacent cells, W/K
  double g_vert_;      ///< vertical conductance per cell to ambient, W/K
  double c_cell_;      ///< heat capacity per cell, J/K
  int total_x_;
  int total_y_;
};

/// Renders the die portion of a field as an ASCII heat map (one char per
/// cell block, '.' coolest to '#' hottest) for the examples.
std::string render_heatmap(const TemperatureField& field, int out_w = 32,
                           int out_h = 16);

}  // namespace nocs::thermal
