#include "thermal/floorplan.hpp"

#include <algorithm>

namespace nocs::thermal {

void Floorplan::add_block(Block b) {
  NOCS_EXPECTS(b.w_mm > 0 && b.h_mm > 0);
  NOCS_EXPECTS(b.x_mm >= -1e-9 && b.y_mm >= -1e-9);
  NOCS_EXPECTS(b.x_mm + b.w_mm <= die_w_ + 1e-9);
  NOCS_EXPECTS(b.y_mm + b.h_mm <= die_h_ + 1e-9);
  NOCS_EXPECTS(b.power >= 0.0);
  blocks_.push_back(std::move(b));
}

Watts Floorplan::total_power() const {
  Watts total = 0.0;
  for (const Block& b : blocks_) total += b.power;
  return total;
}

std::vector<Watts> Floorplan::power_map(int cells_x, int cells_y) const {
  NOCS_EXPECTS(cells_x >= 1 && cells_y >= 1);
  std::vector<Watts> map(
      static_cast<std::size_t>(cells_x) * static_cast<std::size_t>(cells_y),
      0.0);
  const double cw = die_w_ / cells_x;
  const double ch = die_h_ / cells_y;

  for (const Block& b : blocks_) {
    if (b.power <= 0.0) continue;
    const double density = b.power / b.area_mm2();  // W / mm^2
    const int x0 = std::max(0, static_cast<int>(b.x_mm / cw));
    const int x1 = std::min(cells_x - 1,
                            static_cast<int>((b.x_mm + b.w_mm) / cw));
    const int y0 = std::max(0, static_cast<int>(b.y_mm / ch));
    const int y1 = std::min(cells_y - 1,
                            static_cast<int>((b.y_mm + b.h_mm) / ch));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        // Overlap of block and cell rectangles.
        const double ox = std::min(b.x_mm + b.w_mm, (x + 1) * cw) -
                          std::max(b.x_mm, x * cw);
        const double oy = std::min(b.y_mm + b.h_mm, (y + 1) * ch) -
                          std::max(b.y_mm, y * ch);
        if (ox <= 0 || oy <= 0) continue;
        map[static_cast<std::size_t>(y) * static_cast<std::size_t>(cells_x) +
            static_cast<std::size_t>(x)] += density * ox * oy;
      }
    }
  }
  return map;
}

Floorplan make_cmp_floorplan(const MeshShape& mesh, double die_w_mm,
                             double die_h_mm,
                             const std::vector<Watts>& node_power,
                             const std::vector<int>& positions) {
  NOCS_EXPECTS(static_cast<int>(node_power.size()) == mesh.size());
  NOCS_EXPECTS(static_cast<int>(positions.size()) == mesh.size());
  Floorplan fp(die_w_mm, die_h_mm);
  const double bw = die_w_mm / mesh.width();
  const double bh = die_h_mm / mesh.height();
  for (NodeId logical = 0; logical < mesh.size(); ++logical) {
    const int slot = positions[static_cast<std::size_t>(logical)];
    NOCS_EXPECTS(mesh.valid(slot));
    const Coord c = mesh.coord_of(slot);
    Block b;
    b.name = "node" + std::to_string(logical);
    b.x_mm = c.x * bw;
    b.y_mm = c.y * bh;
    b.w_mm = bw;
    b.h_mm = bh;
    b.power = node_power[static_cast<std::size_t>(logical)];
    fp.add_block(std::move(b));
  }
  return fp;
}

Floorplan make_topology_floorplan(const noc::Topology& topo, double die_w_mm,
                                  double die_h_mm,
                                  const std::vector<Watts>& node_power) {
  NOCS_EXPECTS(static_cast<int>(node_power.size()) == topo.num_nodes());
  int max_x = 0;
  int max_y = 0;
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    const Coord c = topo.coord(id);
    NOCS_EXPECTS(c.x >= 0 && c.y >= 0);
    max_x = std::max(max_x, c.x);
    max_y = std::max(max_y, c.y);
  }
  Floorplan fp(die_w_mm, die_h_mm);
  const double bw = die_w_mm / (max_x + 1);
  const double bh = die_h_mm / (max_y + 1);
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    const Coord c = topo.coord(id);
    Block b;
    b.name = "node" + std::to_string(id);
    b.x_mm = c.x * bw;
    b.y_mm = c.y * bh;
    b.w_mm = bw;
    b.h_mm = bh;
    b.power = node_power[static_cast<std::size_t>(id)];
    fp.add_block(std::move(b));
  }
  return fp;
}

std::vector<int> identity_positions(int n) {
  std::vector<int> pos(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pos[static_cast<std::size_t>(i)] = i;
  return pos;
}

}  // namespace nocs::thermal
