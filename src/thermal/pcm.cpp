#include "thermal/pcm.hpp"

#include <cmath>
#include <limits>

namespace nocs::thermal {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Seconds PcmModel::rc_time(Watts p, Kelvin t0, Kelvin t1) const {
  NOCS_EXPECTS(t1 >= t0);
  if (t1 == t0) return 0.0;
  // C dT/dt = P - (T - T_amb) / R; T(t) -> T_amb + P R asymptotically.
  const double t_inf = params_.ambient + p * params_.r_th;
  if (t_inf <= t1) return kInf;  // never reaches t1
  const double tau = params_.r_th * params_.c_th;
  return tau * std::log((t_inf - t0) / (t_inf - t1));
}

SprintTimeline PcmModel::sprint_timeline(Watts p) const {
  NOCS_EXPECTS(p >= 0.0);
  SprintTimeline tl;

  tl.phase1 = rc_time(p, params_.ambient, params_.t_melt);
  if (std::isinf(tl.phase1)) {
    // Sustainable below the melt point: indefinite sprint.
    tl.phase1 = 0.0;
    tl.unbounded = true;
    return tl;
  }

  // Phase 2: power beyond what the package removes at T_melt goes into
  // melting the PCM.
  const Watts excess = p - params_.sustainable_at_melt();
  if (excess <= 0.0) {
    tl.unbounded = true;  // melt plateau is an equilibrium
    return tl;
  }
  tl.phase2 = params_.latent_budget() / excess;

  tl.phase3 = rc_time(p, params_.t_melt, params_.t_max);
  if (std::isinf(tl.phase3)) {
    tl.phase3 = 0.0;
    tl.unbounded = true;  // equilibrium between melt and max: sustainable
  }
  return tl;
}

Seconds PcmModel::sprint_duration(Watts p, Seconds cap) const {
  const SprintTimeline tl = sprint_timeline(p);
  if (tl.unbounded) return cap;
  const Seconds total = tl.total();
  return total > cap ? cap : total;
}

Kelvin PcmModel::temperature_at(Watts p, Seconds t) const {
  NOCS_EXPECTS(t >= 0.0);
  const SprintTimeline tl = sprint_timeline(p);
  const double tau = params_.r_th * params_.c_th;
  const double t_inf = params_.ambient + p * params_.r_th;

  auto rc_temp = [&](Kelvin start, Seconds dt) {
    return t_inf + (start - t_inf) * std::exp(-dt / tau);
  };

  if (tl.unbounded && tl.phase1 == 0.0 && tl.phase2 == 0.0)
    return std::min(rc_temp(params_.ambient, t), params_.t_melt);

  if (t < tl.phase1) return rc_temp(params_.ambient, t);
  if (tl.unbounded && tl.phase2 == 0.0) return params_.t_melt;
  if (t < tl.phase1 + tl.phase2) return params_.t_melt;
  if (tl.unbounded) return params_.t_melt;
  const Seconds into3 = t - tl.phase1 - tl.phase2;
  const Kelvin temp = rc_temp(params_.t_melt, into3);
  return temp > params_.t_max ? params_.t_max : temp;
}

}  // namespace nocs::thermal
