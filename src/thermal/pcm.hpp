// Phase-change-material (PCM) sprint-duration model.
//
// Computational sprinting places a PCM heat store near the die.  The sprint
// timeline (paper Figure 1) has three phases:
//   phase 1: lumped RC heat-up from ambient to the PCM melt point,
//   phase 2: melting at constant temperature, absorbing the power that
//            exceeds what the package can sustain (latent heat of fusion),
//   phase 3: heat-up from the melt point to T_max, where all but one core
//            must be terminated.
// NoC-sprinting lowers sprint power, which lengthens all three phases —
// the Section 4.4 result (+55.4 % average duration).
#pragma once

#include "common/assert.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"

namespace nocs::thermal {

/// Lumped thermal + PCM parameters.  Defaults calibrated so a 16-core
/// full sprint (~75 W chip power) sustains roughly one second, consistent
/// with the paper's worst-case assumption.
struct PcmParams {
  Kelvin ambient = 318.0;       ///< starting (nominal steady) temperature
  Kelvin t_melt = 331.0;        ///< PCM melting point
  Kelvin t_max = 358.0;         ///< thermal shutdown threshold
  double r_th = 2.0;            ///< junction->ambient resistance, K/W
                                ///  => TDP = (358-318)/2 = 20 W, which is
                                ///  exactly the 16-core chip's nominal
                                ///  (single-active-core) power
  double c_th = 1.0;            ///< lumped heat capacity (die+spreader), J/K
  double pcm_mass_g = 0.125;    ///< grams of PCM
  double latent_heat_j_per_g = 210.0;  ///< latent heat of fusion

  /// Power the package can remove at T_melt without consuming PCM.
  Watts sustainable_at_melt() const { return (t_melt - ambient) / r_th; }
  /// Power sustainable forever just below T_max (the TDP).
  Watts sustainable_at_max() const { return (t_max - ambient) / r_th; }
  /// Total latent-heat budget, joules.
  Joules latent_budget() const { return pcm_mass_g * latent_heat_j_per_g; }

  void validate() const {
    NOCS_EXPECTS(ambient < t_melt && t_melt < t_max);
    NOCS_EXPECTS(r_th > 0 && c_th > 0);
    NOCS_EXPECTS(pcm_mass_g >= 0 && latent_heat_j_per_g >= 0);
  }
};

/// Duration of each sprint phase for a constant sprint power.
struct SprintTimeline {
  Seconds phase1 = 0.0;  ///< ambient -> melt
  Seconds phase2 = 0.0;  ///< melting
  Seconds phase3 = 0.0;  ///< melt -> T_max
  bool unbounded = false;  ///< power is sustainable: sprint never ends

  Seconds total() const { return phase1 + phase2 + phase3; }

  /// Registers the timeline as "thermal.sprint.*" gauges (seconds).
  void export_metrics(MetricsRegistry& reg) const {
    reg.gauge("thermal.sprint.phase1_s").set(phase1);
    reg.gauge("thermal.sprint.phase2_s").set(phase2);
    reg.gauge("thermal.sprint.phase3_s").set(phase3);
    reg.gauge("thermal.sprint.total_s").set(total());
    reg.counter("thermal.sprint.unbounded").set(unbounded ? 1 : 0);
  }
};

class PcmModel {
 public:
  explicit PcmModel(const PcmParams& params) : params_(params) {
    params_.validate();
  }

  const PcmParams& params() const { return params_; }

  /// Sprint timeline at constant chip power `p`.  If `p` never drives the
  /// system past T_max the timeline is marked unbounded (phases that do
  /// complete are still reported).
  SprintTimeline sprint_timeline(Watts p) const;

  /// Convenience: total sprint duration, with unbounded mapped to `cap`.
  Seconds sprint_duration(Watts p, Seconds cap = 1e9) const;

  /// Temperature trajectory sample at time `t` into a sprint at power `p`
  /// (piecewise: exponential rise, melt plateau, exponential rise).  Used
  /// to regenerate the Figure 1 curve.
  Kelvin temperature_at(Watts p, Seconds t) const;

 private:
  /// Time for the lumped RC stage to go from `t0` to `t1` at power `p`;
  /// +inf if `p` cannot reach `t1`.
  Seconds rc_time(Watts p, Kelvin t0, Kelvin t1) const;

  PcmParams params_;
};

}  // namespace nocs::thermal
