// Physical floorplan: named rectangular blocks with assigned power, plus
// rasterization onto the thermal grid.
//
// For the paper's Figure 12 analysis the 16-core CMP is abstracted as 16
// blocks in a 2-D grid, each comprising a CPU, local caches, and the node's
// network resources; helpers below build exactly that layout.
#pragma once

#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/topology.hpp"

namespace nocs::thermal {

/// One rectangular block on the die.
struct Block {
  std::string name;
  double x_mm = 0.0;  ///< left edge
  double y_mm = 0.0;  ///< top edge (y grows south, like mesh coordinates)
  double w_mm = 0.0;
  double h_mm = 0.0;
  Watts power = 0.0;  ///< total power dissipated in this block

  double area_mm2() const { return w_mm * h_mm; }
};

/// A die floorplan: dimensions plus non-overlapping blocks.
class Floorplan {
 public:
  Floorplan(double die_w_mm, double die_h_mm)
      : die_w_(die_w_mm), die_h_(die_h_mm) {
    NOCS_EXPECTS(die_w_mm > 0 && die_h_mm > 0);
  }

  void add_block(Block b);

  double die_w_mm() const { return die_w_; }
  double die_h_mm() const { return die_h_; }
  const std::vector<Block>& blocks() const { return blocks_; }
  Watts total_power() const;

  /// Rasterizes block powers onto a cells_x x cells_y grid covering the
  /// die.  Each cell receives power proportional to its overlap with each
  /// block.  Returns row-major watts per cell.
  std::vector<Watts> power_map(int cells_x, int cells_y) const;

 private:
  double die_w_;
  double die_h_;
  std::vector<Block> blocks_;
};

/// Builds the paper's abstraction: a `width` x `height` grid of identical
/// node blocks covering a square die, where node i (mesh id, possibly
/// remapped by the thermal-aware floorplanner) dissipates `node_power[i]`.
/// `positions[i]` gives the *physical* grid slot of logical node i — the
/// identity for the default layout, or Algorithm 3's Pos() mapping.
Floorplan make_cmp_floorplan(const MeshShape& mesh, double die_w_mm,
                             double die_h_mm,
                             const std::vector<Watts>& node_power,
                             const std::vector<int>& positions);

/// Identity position mapping (logical node i sits at physical slot i).
std::vector<int> identity_positions(int n);

/// Floorplan for an arbitrary topology: node i's block sits at the grid
/// slot named by `topo.coord(i)` (the same floorplan coordinates the
/// generalized Algorithm 1 orders sprint sets by), with the die divided
/// uniformly over the coordinate bounding box.  On a mesh this matches
/// make_cmp_floorplan with identity positions.
Floorplan make_topology_floorplan(const noc::Topology& topo, double die_w_mm,
                                  double die_h_mm,
                                  const std::vector<Watts>& node_power);

}  // namespace nocs::thermal
