#include "sprint/dim_sprint.hpp"

#include "common/assert.hpp"

namespace nocs::sprint {

DimSprintPlanner::DimSprintPlanner(const cmp::PerfModel& perf,
                                   const power::ChipPowerModel& chip,
                                   const thermal::PcmModel& pcm,
                                   std::vector<power::OperatingPoint> ops,
                                   double core_dynamic_fraction)
    : perf_(perf),
      chip_(chip),
      pcm_(pcm),
      ops_(std::move(ops)),
      dyn_frac_(core_dynamic_fraction) {
  NOCS_EXPECTS(!ops_.empty());
  for (const auto& op : ops_) op.validate();
  NOCS_EXPECTS(dyn_frac_ > 0.0 && dyn_frac_ <= 1.0);
}

Watts DimSprintPlanner::core_power_at(const power::OperatingPoint& op) const {
  const power::OperatingPoint ref = power::kReferencePoint;
  const double dyn_scale = (op.voltage * op.voltage * op.frequency) /
                           (ref.voltage * ref.voltage * ref.frequency);
  const double leak_scale = op.voltage / ref.voltage;
  const Watts p_ref = chip_.params().core_active;
  return p_ref * (dyn_frac_ * dyn_scale + (1.0 - dyn_frac_) * leak_scale);
}

Watts DimSprintPlanner::chip_power_at(int level,
                                      const power::OperatingPoint& op) const {
  const auto& p = chip_.params();
  NOCS_EXPECTS(level >= 1 && level <= p.num_cores);
  const Watts cores = core_power_at(op) * level +
                      p.core_gated * (p.num_cores - level);
  // The active sub-network runs at the cores' operating point; the dark
  // sub-network is gated (NoC-sprinting's scheme).
  const power::OperatingPoint ref = power::kReferencePoint;
  const double noc_scale =
      0.6 * (op.voltage * op.voltage * op.frequency) /
          (ref.voltage * ref.voltage * ref.frequency) +
      0.4 * op.voltage / ref.voltage;
  const Watts noc = p.noc_per_node * noc_scale * level +
                    p.noc_gated_node * (p.num_cores - level);
  return cores + noc + p.l2_tile * p.num_cores + p.mc_each * p.num_mcs() +
         p.others;
}

double DimSprintPlanner::exec_seconds(const cmp::WorkloadParams& w, int level,
                                      const power::OperatingPoint& op) const {
  // Compute-bound assumption: all work stretches by f_ref / f.
  return perf_.exec_time(w, level) *
         (power::kReferencePoint.frequency / op.frequency);
}

std::vector<DimOption> DimSprintPlanner::enumerate(
    const cmp::WorkloadParams& w) const {
  std::vector<DimOption> options;
  for (const auto& op : ops_) {
    for (int level = 1; level <= perf_.n_max(); ++level) {
      DimOption o;
      o.level = level;
      o.op = op;
      o.exec_seconds = exec_seconds(w, level, op);
      o.chip_power = chip_power_at(level, op);
      o.sprint_duration = pcm_.sprint_duration(o.chip_power, 1e6);
      options.push_back(o);
    }
  }
  return options;
}

DimOption DimSprintPlanner::best_under_budget(const cmp::WorkloadParams& w,
                                              Watts budget) const {
  const std::vector<DimOption> options = enumerate(w);
  const DimOption* best = nullptr;
  for (const DimOption& o : options) {
    if (o.chip_power > budget) continue;
    if (best == nullptr || o.exec_seconds < best->exec_seconds - 1e-12 ||
        (o.exec_seconds < best->exec_seconds + 1e-12 &&
         o.level < best->level)) {
      best = &o;
    }
  }
  NOCS_EXPECTS(best != nullptr);
  return *best;
}

}  // namespace nocs::sprint
