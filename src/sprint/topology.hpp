// Algorithm 1 — irregular topological sprinting.
//
// Starting from the master node, nodes join the sprint region in ascending
// order of *Euclidean* distance to the master (ties broken by node index).
// The paper argues Euclidean ordering beats Hamming/Manhattan ordering
// because it keeps inter-node paths short (its 4-core example: Euclidean
// picks node 5, Hamming may pick node 2), and the resulting prefix regions
// are convex.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/topology.hpp"

namespace nocs::sprint {

/// The activation order of all N nodes (Algorithm 1).  `order[0]` is the
/// master; sprinting at level k activates `order[0..k)`.
std::vector<NodeId> sprint_order(const MeshShape& mesh,
                                 NodeId master = 0);

/// Algorithm 1 generalized to an arbitrary topology graph: nodes join the
/// sprint region by connected-subgraph growth — at each step the frontier
/// node (adjacent to the region) with the smallest squared Euclidean
/// floorplan distance to the master joins, ties broken by node index.  On
/// a mesh this dispatches to the exact mesh sprint_order above (Euclidean
/// prefixes of a mesh are connected, and the mesh path must stay
/// bit-identical), so every prefix of the returned order is a connected
/// powered region on any topology.
std::vector<NodeId> sprint_order(const noc::Topology& topo,
                                 NodeId master = 0);

/// The first `level` nodes of the generalized sprint order.
std::vector<NodeId> active_set(const noc::Topology& topo, int level,
                               NodeId master = 0);

/// Ablation baseline: the same construction ordered by Hamming (Manhattan)
/// distance instead, which the paper argues is inferior.
std::vector<NodeId> sprint_order_hamming(const MeshShape& mesh,
                                         NodeId master = 0);

/// The first `level` nodes of the sprint order.
std::vector<NodeId> active_set(const MeshShape& mesh, int level,
                               NodeId master = 0);

/// Graceful degradation: the longest sprint-order prefix of length <=
/// `level` containing none of `failed` — the largest healthy active set
/// still available when nodes fail to wake or freeze.  Being a prefix of
/// Algorithm 1's order it is automatically convex/staircase, so CDOR
/// remains valid on it without re-deriving anything.  Empty when the
/// master itself failed (no healthy region exists in this scheme).
std::vector<NodeId> largest_healthy_prefix(const MeshShape& mesh, int level,
                                           const std::vector<NodeId>& failed,
                                           NodeId master = 0);

/// True when `nodes` forms a convex region in the paper's sense: every
/// mesh node lying inside the convex hull of the set (inclusive of the
/// boundary) belongs to the set.
bool is_convex_region(const MeshShape& mesh,
                      const std::vector<NodeId>& nodes);

/// True when `nodes` is a "staircase" anchored at the top-left corner:
/// rows are left-aligned contiguous runs whose widths do not increase with
/// y.  This is the structural property CDOR's connectivity-bit routing
/// relies on; Euclidean-prefix regions with a corner master satisfy it.
bool is_staircase_region(const MeshShape& mesh,
                         const std::vector<NodeId>& nodes);

/// Average pairwise Manhattan distance within a node set — the topology
/// quality metric behind the paper's Euclidean-vs-Hamming argument.
double average_pairwise_distance(const MeshShape& mesh,
                                 const std::vector<NodeId>& nodes);

}  // namespace nocs::sprint
