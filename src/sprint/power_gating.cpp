#include "sprint/power_gating.hpp"

namespace nocs::sprint {

GatingAnalysis::GatingAnalysis(const power::RouterPowerModel& router_model,
                               const GatingParams& gating)
    : leak_(router_model.leakage_power()),
      cycle_time_(1.0 / router_model.params().op.frequency),
      gating_(gating) {
  gating_.validate();
  NOCS_EXPECTS(leak_ > gating_.sleep_power);
}

double GatingAnalysis::break_even_cycles() const {
  const Watts saved_per_s = leak_ - gating_.sleep_power;
  return gating_.wake_energy / (saved_per_s * cycle_time_);
}

Joules GatingAnalysis::gating_benefit(double idle_cycles) const {
  NOCS_EXPECTS(idle_cycles >= 0.0);
  const Watts saved_per_s = leak_ - gating_.sleep_power;
  return saved_per_s * idle_cycles * cycle_time_ - gating_.wake_energy;
}

std::vector<NodeId> dark_nodes(const MeshShape& mesh,
                               const std::vector<NodeId>& active) {
  std::vector<bool> is_active(static_cast<std::size_t>(mesh.size()), false);
  for (NodeId id : active) {
    NOCS_EXPECTS(mesh.valid(id));
    is_active[static_cast<std::size_t>(id)] = true;
  }
  std::vector<NodeId> dark;
  for (NodeId id = 0; id < mesh.size(); ++id)
    if (!is_active[static_cast<std::size_t>(id)]) dark.push_back(id);
  return dark;
}

}  // namespace nocs::sprint
