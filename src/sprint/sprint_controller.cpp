#include "sprint/sprint_controller.hpp"

#include "common/assert.hpp"
#include "common/trace.hpp"
#include "sprint/topology.hpp"

namespace nocs::sprint {

const char* to_string(SprintMode mode) {
  switch (mode) {
    case SprintMode::kNonSprinting: return "non-sprinting";
    case SprintMode::kFullSprinting: return "full-sprinting";
    case SprintMode::kFineGrained: return "fine-grained";
    case SprintMode::kNocSprinting: return "noc-sprinting";
  }
  return "?";
}

SprintController::SprintController(const MeshShape& mesh,
                                   const cmp::PerfModel& perf,
                                   const power::ChipPowerModel& chip,
                                   const thermal::PcmModel& pcm,
                                   NodeId master, Seconds duration_cap)
    : mesh_(mesh),
      perf_(perf),
      chip_(chip),
      pcm_(pcm),
      master_(master),
      duration_cap_(duration_cap) {
  NOCS_EXPECTS(mesh_.valid(master));
  NOCS_EXPECTS(mesh_.size() == perf_.n_max());
  NOCS_EXPECTS(mesh_.size() == chip_.params().num_cores);
  NOCS_EXPECTS(duration_cap > 0.0);
}

SprintPlan SprintController::plan(const cmp::WorkloadParams& workload,
                                  SprintMode mode) const {
  return plan(workload, mode, {});
}

SprintPlan SprintController::plan(const cmp::WorkloadParams& workload,
                                  SprintMode mode,
                                  const std::vector<NodeId>& failed) const {
  SprintPlan p;
  p.workload = workload.name;
  p.mode = mode;

  switch (mode) {
    case SprintMode::kNonSprinting: p.level = 1; break;
    case SprintMode::kFullSprinting: p.level = mesh_.size(); break;
    case SprintMode::kFineGrained:
    case SprintMode::kNocSprinting:
      p.level = perf_.optimal_level(workload);
      break;
  }
  if (failed.empty()) {
    p.active = active_set(mesh_, p.level, master_);
  } else {
    // Graceful degradation: shrink to the largest healthy convex prefix.
    p.active = largest_healthy_prefix(mesh_, p.level, failed, master_);
    NOCS_EXPECTS(!p.active.empty());  // the master itself must be healthy
    p.level = static_cast<int>(p.active.size());
  }

  p.exec_time = perf_.exec_time(workload, p.level);
  p.speedup = perf_.exec_time(workload, 1) / p.exec_time;

  // Core states: the gating policy is the difference between fine-grained
  // sprinting and full NoC-sprinting (Figure 8).
  const bool gate_idle = mode != SprintMode::kFineGrained;
  p.core_power = chip_.core_power(
      p.level, gate_idle ? power::CoreState::kGated
                         : power::CoreState::kIdle);

  // NoC: only NoC-sprinting gates the dark sub-network; every other scheme
  // keeps the full network powered (a gated node would block forwarding
  // under DOR).
  const int noc_active =
      mode == SprintMode::kNocSprinting ? p.level : mesh_.size();
  p.noc_power = chip_.noc_power(noc_active);

  std::vector<power::CoreState> cores(
      static_cast<std::size_t>(mesh_.size()),
      gate_idle ? power::CoreState::kGated : power::CoreState::kIdle);
  for (NodeId id : p.active)
    cores[static_cast<std::size_t>(id)] = power::CoreState::kActive;
  p.chip_power = chip_.breakdown_with_noc(cores, p.noc_power).total();

  p.sprint_duration = mode == SprintMode::kNonSprinting
                          ? duration_cap_  // nominal operation is sustainable
                          : pcm_.sprint_duration(p.chip_power, duration_cap_);
  if (trace::enabled()) {
    json::Value args = json::Value::object();
    args.set("workload", p.workload);
    args.set("mode", to_string(mode));
    args.set("level", p.level);
    args.set("chip_power_w", p.chip_power);
    args.set("sprint_duration_s", p.sprint_duration);
    trace::instant("sprint_plan", "controller", trace::kCtrlPid, 0, 0.0,
                   std::move(args));
  }
  return p;
}

std::vector<SprintPlan> SprintController::plan_suite(
    const std::vector<cmp::WorkloadParams>& suite, SprintMode mode) const {
  std::vector<SprintPlan> plans;
  plans.reserve(suite.size());
  for (const cmp::WorkloadParams& w : suite) plans.push_back(plan(w, mode));
  return plans;
}

}  // namespace nocs::sprint
