#include "sprint/llc.hpp"

#include "sprint/topology.hpp"

namespace nocs::sprint {

const char* to_string(LlcArchitecture arch) {
  switch (arch) {
    case LlcArchitecture::kPrivate: return "private";
    case LlcArchitecture::kCentralized: return "centralized";
    case LlcArchitecture::kNucaSeparate: return "nuca-separate";
    case LlcArchitecture::kTiledShared: return "tiled-shared";
  }
  return "?";
}

LlcModel::LlcModel(const MeshShape& mesh, const LlcParams& params)
    : mesh_(mesh), params_(params) {
  params_.validate();
  // Boustrophedon ring: row 0 left->right, row 1 right->left, ...
  ring_.reserve(static_cast<std::size_t>(mesh_.size()));
  for (int y = 0; y < mesh_.height(); ++y) {
    if (y % 2 == 0) {
      for (int x = 0; x < mesh_.width(); ++x)
        ring_.push_back(mesh_.id_of({x, y}));
    } else {
      for (int x = mesh_.width() - 1; x >= 0; --x)
        ring_.push_back(mesh_.id_of({x, y}));
    }
  }
  ring_position_.resize(static_cast<std::size_t>(mesh_.size()));
  for (int i = 0; i < mesh_.size(); ++i)
    ring_position_[static_cast<std::size_t>(
        ring_[static_cast<std::size_t>(i)])] = i;
}

LlcAnalysis LlcModel::analyze(int level) const {
  NOCS_EXPECTS(level >= 1 && level <= mesh_.size());
  LlcAnalysis a;

  if (params_.arch != LlcArchitecture::kTiledShared) {
    // Private slices gate with their cores; a centralized LLC or a
    // separate NUCA network never routes LLC traffic through gated sprint
    // routers.  "Our power gating mechanism works perfectly without the
    // need for any further hardware support."
    a.gating_safe_without_support = true;
    return a;
  }

  const int n = mesh_.size();
  const std::vector<NodeId> active = active_set(mesh_, level, 0);

  // Address-interleaved banks: accesses spread uniformly over all n banks,
  // so (n - level)/n of them target dark tiles.
  a.dark_access_fraction = static_cast<double>(n - level) / n;
  if (level == n) {
    a.gating_safe_without_support = true;  // nothing is dark
    return a;
  }

  // A dark-bank access enters the unidirectional ring at the requester,
  // rides to the bank, and the response continues around back to the
  // requester: exactly one full loop of n segments regardless of the
  // pair, each segment costing ring_hop_cycles.
  a.avg_bypass_round_trip =
      static_cast<double>(n) * params_.ring_hop_cycles;

  // The ring is powered end to end while any dark bank is reachable.
  a.bypass_power = static_cast<double>(n) * params_.ring_segment_power;

  // Average added latency per network packet: the fraction of traffic that
  // is an LLC request to a dark bank pays the bypass round trip instead of
  // the (much faster) sprint-region traversal; amortized over all packets.
  a.added_avg_latency = params_.llc_traffic_fraction *
                        a.dark_access_fraction * a.avg_bypass_round_trip;
  return a;
}

}  // namespace nocs::sprint
