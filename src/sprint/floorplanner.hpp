// Algorithms 3 & 4 — thermal-aware heuristic floorplanning.
//
// The logical mesh connectivity (what Algorithm 1 and CDOR operate on) is
// kept intact, but each logical node is reallocated to a physical slot so
// nodes likely to sprint together are spread apart.  Algorithm 3 walks the
// logical mesh breadth-first from the master in Algorithm 1's activation
// order; Algorithm 4 places each node on the free physical slot maximizing
// the weighted sum of Euclidean distances to already-placed nodes, with
// weights inversely proportional to the *logical* Hamming distance (nodes
// that are logically far apart rarely co-sprint, so they may sit close
// physically).
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace nocs::sprint {

/// Result of the floorplanning pass.
struct FloorplanResult {
  /// positions[logical] = physical slot (a permutation of 0..N-1).
  std::vector<int> positions;

  /// Total physical wire length (in node pitches, Euclidean) summed over
  /// all logical mesh links — the wiring-complexity cost the paper accepts
  /// and mitigates with clockless repeated wires.
  double total_wire_length = 0.0;
};

/// Runs Algorithms 3 + 4 on `mesh` with the given master node.
FloorplanResult thermal_aware_floorplan(const MeshShape& mesh,
                                        NodeId master = 0);

/// The identity floorplan (logical node i at physical slot i), the
/// baseline the Figure 12 heat maps compare against.
FloorplanResult identity_floorplan(const MeshShape& mesh);

/// Sum over active pairs of 1/d_phys (a heat-concentration proxy: higher
/// means active nodes cluster physically).  Used to verify the floorplan
/// spreads low sprint levels apart.
double thermal_proximity(const MeshShape& mesh,
                         const std::vector<NodeId>& active_logical,
                         const std::vector<int>& positions);

}  // namespace nocs::sprint
