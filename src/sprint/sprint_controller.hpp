// The NoC-sprinting controller: the public facade tying everything
// together.  Given a workload, it selects the sprint level (off-line
// profiling via the performance model), builds the sprint topology
// (Algorithm 1), and reports the execution-time, power, and
// sprint-duration consequences under each of the paper's schemes.
#pragma once

#include <string>
#include <vector>

#include "cmp/perf_model.hpp"
#include "cmp/workload.hpp"
#include "common/geometry.hpp"
#include "power/chip_power.hpp"
#include "thermal/pcm.hpp"

namespace nocs::sprint {

/// The sprinting schemes compared throughout Section 4.
enum class SprintMode {
  kNonSprinting,   ///< stay at nominal: one core, TDP-bounded
  kFullSprinting,  ///< wake all cores (Raghavan et al.)
  kFineGrained,    ///< optimal core count, but idle cores NOT power-gated
  kNocSprinting,   ///< optimal core count + core/NoC power gating + CDOR
};

const char* to_string(SprintMode mode);

/// Everything the controller decides/predicts for one workload + mode.
struct SprintPlan {
  std::string workload;
  SprintMode mode = SprintMode::kNocSprinting;
  int level = 1;                     ///< active core count
  std::vector<NodeId> active;       ///< Algorithm 1 prefix (logical ids)
  double exec_time = 1.0;           ///< normalized (nominal = 1.0)
  double speedup = 1.0;             ///< vs. non-sprinting
  Watts core_power = 0.0;           ///< cores component only (Figure 8)
  Watts noc_power = 0.0;            ///< model-level NoC power (Figure 10)
  Watts chip_power = 0.0;           ///< total chip power during the sprint
  Seconds sprint_duration = 0.0;    ///< PCM timeline total (Section 4.4)
};

class SprintController {
 public:
  /// All model references must outlive the controller.  `duration_cap`
  /// bounds reported sprint durations (sustainable powers are reported as
  /// the cap).
  SprintController(const MeshShape& mesh, const cmp::PerfModel& perf,
                   const power::ChipPowerModel& chip,
                   const thermal::PcmModel& pcm, NodeId master = 0,
                   Seconds duration_cap = 10.0);

  /// Plans one workload under one scheme.
  SprintPlan plan(const cmp::WorkloadParams& workload, SprintMode mode) const;

  /// Plans one workload while degrading gracefully around `failed` nodes
  /// (routers that are stuck or whose power-gate wake-up failed
  /// permanently): the active set shrinks to the largest healthy
  /// sprint-order prefix, which stays convex so CDOR remains valid without
  /// re-derivation.  The master must be healthy.
  SprintPlan plan(const cmp::WorkloadParams& workload, SprintMode mode,
                  const std::vector<NodeId>& failed) const;

  /// Plans the whole suite under one scheme.
  std::vector<SprintPlan> plan_suite(
      const std::vector<cmp::WorkloadParams>& suite, SprintMode mode) const;

  NodeId master() const { return master_; }
  const MeshShape& mesh() const { return mesh_; }

 private:
  MeshShape mesh_;
  const cmp::PerfModel& perf_;
  const power::ChipPowerModel& chip_;
  const thermal::PcmModel& pcm_;
  NodeId master_;
  Seconds duration_cap_;
};

}  // namespace nocs::sprint
