// Last-level-cache architecture analysis for network power gating
// (Section 3.4).
//
// Gating a node's router isolates everything behind it.  Whether that is
// safe depends on the LLC organization:
//
//  * private per-core LLC           — dark tiles hold no shared state: safe;
//  * centralized shared LLC         — the LLC sits at its own (active) node: safe;
//  * NUCA with a separate LLC network — the sprint network carries no LLC
//                                     traffic: safe;
//  * tiled shared LLC (address-interleaved banks) — a fraction
//    (N-k)/N of LLC accesses target banks on *dark* tiles; those banks
//    must stay reachable.  Following NoRD (Chen & Pinkston, MICRO'12) we
//    model a low-power unidirectional bypass ring that threads every
//    tile's NI and carries dark-bank traffic while the routers sleep.
//
// The model quantifies the bypass's latency and power cost per sprint
// level so the gating decision accounts for it.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace nocs::sprint {

/// LLC organizations discussed in the paper.
enum class LlcArchitecture {
  kPrivate,       ///< private per-core LLC slices
  kCentralized,   ///< one shared LLC at a dedicated (always-on) node
  kNucaSeparate,  ///< shared NUCA banks on a separate dedicated network
  kTiledShared,   ///< one shared bank per tile, address-interleaved
};

const char* to_string(LlcArchitecture arch);

/// Parameters of the LLC traffic and the NoRD-style bypass ring.
struct LlcParams {
  LlcArchitecture arch = LlcArchitecture::kTiledShared;
  /// Fraction of a core's network traffic that is LLC requests.
  double llc_traffic_fraction = 0.4;
  /// Cycles per bypass-ring hop (narrow, clocked slowly).
  int ring_hop_cycles = 2;
  /// Power of one powered bypass-ring segment, watts.
  Watts ring_segment_power = 2.0e-3;

  void validate() const {
    NOCS_EXPECTS(llc_traffic_fraction >= 0.0 && llc_traffic_fraction <= 1.0);
    NOCS_EXPECTS(ring_hop_cycles >= 1);
    NOCS_EXPECTS(ring_segment_power >= 0.0);
  }
};

/// What gating at a sprint level costs for a given LLC organization.
struct LlcAnalysis {
  bool gating_safe_without_support = false;  ///< no bypass hardware needed
  double dark_access_fraction = 0.0;  ///< LLC accesses hitting dark banks
  double avg_bypass_round_trip = 0.0; ///< cycles for one dark-bank access
  Watts bypass_power = 0.0;           ///< ring power while sprinting
  /// Extra average cycles added to the network's packet latency once
  /// dark-bank accesses are folded in (0 when no bypass is needed).
  double added_avg_latency = 0.0;
};

class LlcModel {
 public:
  LlcModel(const MeshShape& mesh, const LlcParams& params);

  /// Analyzes gating support at `level` active cores (Algorithm 1 prefix).
  LlcAnalysis analyze(int level) const;

  /// The bypass ring's visiting order: a boustrophedon (snake) walk over
  /// the mesh, which keeps physical segments one pitch long.
  const std::vector<NodeId>& ring_order() const { return ring_; }

  const LlcParams& params() const { return params_; }

 private:
  MeshShape mesh_;
  LlcParams params_;
  std::vector<NodeId> ring_;       ///< snake order
  std::vector<int> ring_position_; ///< node id -> index in ring_
};

}  // namespace nocs::sprint
