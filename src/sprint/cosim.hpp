// CMP <-> NoC co-simulation.
//
// Runs a workload's traffic through the cycle-accurate network under both
// full-sprinting (16 endpoints, XY-DOR, nothing gated) and NoC-sprinting
// (optimal convex region, CDOR, dark region gated), then feeds the
// *measured* network latencies back into the execution-time model through
// the comm-gamma coupling.  This closes the loop the paper's gem5+Garnet
// setup closes natively: CDOR's shorter paths show up in end-to-end
// execution time, not just in network statistics.
#pragma once

#include "cmp/perf_model.hpp"
#include "common/json.hpp"
#include "noc/params.hpp"
#include "noc/simulator.hpp"
#include "power/noc_power.hpp"

namespace nocs::sprint {

/// Everything one benchmark's co-simulation produces.
struct CosimResult {
  int level = 0;  ///< optimal sprint level (simulated at >= 2)

  // Full-sprinting network.
  double full_latency = 0.0;   ///< avg packet latency, cycles
  Watts full_noc_power = 0.0;
  bool full_saturated = false;

  // NoC-sprinting network.
  double noc_latency = 0.0;
  Watts noc_noc_power = 0.0;
  bool noc_saturated = false;

  // Latency-adjusted execution times (normalized; full-sprinting's
  // measured latency is the calibration reference, matching the paper's
  // gem5 profiling with the full network active).
  double exec_full = 0.0;  ///< at 16 cores, full network latency
  double exec_noc = 0.0;   ///< at the optimal level, CDOR latency
};

/// Co-simulation knobs.
struct CosimConfig {
  Cycle warmup = 2000;
  Cycle measure = 10000;
  std::uint64_t seed = 7;
  double link_length_mm = 2.5;  ///< uniform physical link length

  /// Workers for the two independent network simulations (<= 0 selects
  /// the default thread count, 1 forces serial).  Results are identical
  /// for any value: each simulation owns its network and seed.
  int num_threads = 0;
};

/// Runs both configurations for `workload` and couples the results.
CosimResult cosimulate(const noc::NetworkParams& params,
                       const cmp::WorkloadParams& workload,
                       const cmp::PerfModel& perf,
                       const CosimConfig& cfg = {});

/// Serializes one co-simulation's results as a JSON object (the per-
/// benchmark payload of the fig09/fig10 `report=` run reports).
json::Value to_json(const CosimResult& r);

}  // namespace nocs::sprint
