#include "sprint/cosim.hpp"

#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "sprint/network_builder.hpp"

namespace nocs::sprint {

CosimResult cosimulate(const noc::NetworkParams& params,
                       const cmp::WorkloadParams& workload,
                       const cmp::PerfModel& perf, const CosimConfig& cfg) {
  CosimResult out;
  out.level = perf.optimal_level(workload);
  const int sim_level = out.level < 2 ? 2 : out.level;

  noc::SimConfig sim;
  sim.warmup = cfg.warmup;
  sim.measure = cfg.measure;
  sim.injection_rate = workload.injection_rate;

  const power::RouterPowerParams rp =
      power::RouterPowerParams::from_network(params);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(params.flit_bytes * 8,
                                         cfg.link_length_mm, rp.tech, rp.op);

  // The two configurations are independent simulations (own network, own
  // seed); run them as parallel tasks writing disjoint result fields.
  run_tasks(
      {[&] {
         const trace::HostScope span("cosim full " + workload.name, "cosim");
         NetworkBundle full = make_full_sprinting_network(
             params, params.num_nodes(), "uniform", cfg.seed);
         const noc::SimResults r = noc::run_simulation(*full.network, sim);
         out.full_latency = r.avg_packet_latency;
         out.full_saturated = r.saturated;
         out.full_noc_power =
             power::estimate_noc_power(*full.network, router_model,
                                       link_model, r.cycles)
                 .total();
       },
       [&] {
         const trace::HostScope span("cosim noc " + workload.name, "cosim");
         NetworkBundle sprint_net = make_noc_sprinting_network(
             params, sim_level, "uniform", cfg.seed);
         const noc::SimResults r =
             noc::run_simulation(*sprint_net.network, sim);
         out.noc_latency = r.avg_packet_latency;
         out.noc_saturated = r.saturated;
         out.noc_noc_power =
             power::estimate_noc_power(*sprint_net.network, router_model,
                                       link_model, r.cycles)
                 .total();
       }},
      cfg.num_threads);

  // Feedback: full-sprinting's measured latency is the reference (the
  // off-line profiling ran with the whole network powered), so its
  // adjusted time equals the base model; the sprint region's shorter
  // latency speeds the parallel portion up through comm_gamma.
  out.exec_full = perf.exec_time(workload, params.num_nodes(),
                                 out.full_latency, out.full_latency);
  out.exec_noc = perf.exec_time(workload, out.level, out.noc_latency,
                                out.full_latency);
  return out;
}

json::Value to_json(const CosimResult& r) {
  json::Value o = json::Value::object();
  o.set("level", r.level);
  o.set("full_latency", r.full_latency);
  o.set("full_noc_power", r.full_noc_power);
  o.set("full_saturated", r.full_saturated);
  o.set("noc_latency", r.noc_latency);
  o.set("noc_noc_power", r.noc_noc_power);
  o.set("noc_saturated", r.noc_saturated);
  o.set("exec_full", r.exec_full);
  o.set("exec_noc", r.exec_noc);
  return o;
}

}  // namespace nocs::sprint
