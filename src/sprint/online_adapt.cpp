#include "sprint/online_adapt.hpp"

#include "common/trace.hpp"

namespace nocs::sprint {

namespace {

const char* phase_name(int phase) {
  switch (phase) {
    case 0: return "measure-base";
    case 1: return "probe-up";
    case 2: return "probe-down";
    case 3: return "locked";
    default: return "?";
  }
}

}  // namespace

OnlineLevelController::OnlineLevelController(int n_max, int start_level,
                                             int step, int reprobe_period)
    : n_max_(n_max),
      step_(step),
      reprobe_period_(reprobe_period),
      current_(start_level),
      base_level_(start_level) {
  NOCS_EXPECTS(n_max >= 1);
  NOCS_EXPECTS(start_level >= 1 && start_level <= n_max);
  NOCS_EXPECTS(step >= 1);
  NOCS_EXPECTS(reprobe_period >= 0);
  current_ = clamp(start_level);
  base_level_ = current_;
}

void OnlineLevelController::observe(double exec_time) {
  NOCS_EXPECTS(exec_time > 0.0);
  const Phase phase_before = phase_;
  const int level_before = current_;
  ++bursts_observed_;
  switch (phase_) {
    case Phase::kMeasureBase:
      base_time_ = exec_time;
      base_level_ = current_;
      if (base_level_ < n_max_) {
        current_ = clamp(base_level_ + step_);
        phase_ = Phase::kProbeUp;
      } else {
        current_ = clamp(base_level_ - step_);
        phase_ = Phase::kProbeDown;
      }
      break;

    case Phase::kProbeUp:
      if (exec_time < base_time_) {
        // Climbing helps: adopt and keep climbing.
        base_time_ = exec_time;
        base_level_ = current_;
        if (base_level_ == n_max_) {
          phase_ = Phase::kLocked;
          locked_bursts_ = 0;
        } else {
          current_ = clamp(base_level_ + step_);
        }
      } else if (base_level_ > 1) {
        // Up was worse: try down before locking.
        current_ = clamp(base_level_ - step_);
        phase_ = Phase::kProbeDown;
      } else {
        current_ = base_level_;
        phase_ = Phase::kLocked;
        locked_bursts_ = 0;
      }
      break;

    case Phase::kProbeDown:
      if (exec_time < base_time_) {
        base_time_ = exec_time;
        base_level_ = current_;
        if (base_level_ == 1) {
          phase_ = Phase::kLocked;
          locked_bursts_ = 0;
        } else {
          current_ = clamp(base_level_ - step_);
        }
      } else {
        current_ = base_level_;
        phase_ = Phase::kLocked;
        locked_bursts_ = 0;
      }
      break;

    case Phase::kLocked:
      current_ = base_level_;
      if (reprobe_period_ > 0 && ++locked_bursts_ >= reprobe_period_) {
        // Re-measure the base so workload phase changes are tracked.
        phase_ = Phase::kMeasureBase;
        locked_bursts_ = 0;
      }
      break;
  }
  // Phase transitions land on the controller trace timeline (ts = burst
  // index) so online-adaptation runs can be inspected alongside the
  // per-burst network traces.  A pure branch when tracing is off.
  if (trace::enabled() &&
      (phase_ != phase_before || current_ != level_before)) {
    json::Value args = json::Value::object();
    args.set("from_phase", phase_name(static_cast<int>(phase_before)));
    args.set("to_phase", phase_name(static_cast<int>(phase_)));
    args.set("level", current_);
    args.set("exec_time", exec_time);
    trace::instant("level_transition", "adapt", trace::kCtrlPid, 0,
                   static_cast<double>(bursts_observed_), std::move(args));
  }
}

}  // namespace nocs::sprint
