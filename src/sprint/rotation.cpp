#include "sprint/rotation.hpp"

#include "sprint/topology.hpp"

namespace nocs::sprint {

namespace {

/// Temperature at the center cell of one node's block.
Kelvin node_center_temp(const thermal::TemperatureField& field,
                        const MeshShape& mesh, NodeId id) {
  const Coord c = mesh.coord_of(id);
  const int cx = (2 * c.x + 1) * field.die_cells_x() / (2 * mesh.width());
  const int cy = (2 * c.y + 1) * field.die_cells_y() / (2 * mesh.height());
  return field.at(cx, cy);
}

}  // namespace

double region_temperature(const thermal::TemperatureField& field,
                          const MeshShape& mesh, NodeId master, int level) {
  const std::vector<NodeId> region = active_set(mesh, level, master);
  double sum = 0.0;
  for (NodeId id : region) sum += node_center_temp(field, mesh, id);
  return sum / static_cast<double>(region.size());
}

NodeId coolest_corner_master(const thermal::TemperatureField& field,
                             const MeshShape& mesh, int level) {
  const NodeId corners[] = {
      0, mesh.width() - 1, mesh.width() * (mesh.height() - 1),
      mesh.size() - 1};
  NodeId best = corners[0];
  double best_temp = region_temperature(field, mesh, corners[0], level);
  for (int i = 1; i < 4; ++i) {
    const double t = region_temperature(field, mesh, corners[i], level);
    if (t < best_temp - 1e-9) {
      best_temp = t;
      best = corners[i];
    }
  }
  return best;
}

SprintRotationSim::SprintRotationSim(
    const MeshShape& mesh, const thermal::GridThermalParams& thermal_params,
    const power::ChipPowerParams& chip_params, double die_mm)
    : mesh_(mesh),
      model_(thermal_params, die_mm, die_mm),
      chip_(chip_params),
      die_mm_(die_mm),
      field_(model_.ambient_field()) {}

void SprintRotationSim::reset() { field_ = model_.ambient_field(); }

thermal::Floorplan SprintRotationSim::region_floorplan(NodeId master,
                                                       int level) const {
  std::vector<Watts> powers(
      static_cast<std::size_t>(mesh_.size()),
      chip_.core_gated + chip_.l2_tile + chip_.noc_gated_node);
  for (NodeId id : active_set(mesh_, level, master))
    powers[static_cast<std::size_t>(id)] =
        chip_.core_active + chip_.l2_tile + chip_.noc_per_node;
  return thermal::make_cmp_floorplan(
      mesh_, die_mm_, die_mm_, powers,
      thermal::identity_positions(mesh_.size()));
}

SprintRotationSim::BurstRecord SprintRotationSim::run_burst(int level,
                                                            Seconds sprint_s,
                                                            Seconds idle_s,
                                                            bool rotate) {
  NOCS_EXPECTS(level >= 1 && level <= mesh_.size());
  NOCS_EXPECTS(sprint_s >= 0 && idle_s >= 0);
  BurstRecord rec;
  rec.master = rotate ? coolest_corner_master(field_, mesh_, level) : 0;

  model_.step_transient(region_floorplan(rec.master, level), field_,
                        sprint_s);
  rec.peak_after = field_.peak();

  // Cool-down at nominal: only the master's single-node region stays hot.
  model_.step_transient(region_floorplan(rec.master, 1), field_, idle_s);
  return rec;
}

}  // namespace nocs::sprint
