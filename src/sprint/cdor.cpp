#include "sprint/cdor.hpp"

#include "common/assert.hpp"
#include "sprint/topology.hpp"

namespace nocs::sprint {

CdorRouting::CdorRouting(const MeshShape& mesh, std::vector<NodeId> active,
                         NodeId master)
    : mesh_(mesh),
      active_(std::move(active)),
      active_mask_(static_cast<std::size_t>(mesh.size()), false),
      master_(master) {
  NOCS_EXPECTS(!active_.empty());
  NOCS_EXPECTS(mesh_.valid(master_));
  const Coord m = mesh_.coord_of(master_);
  NOCS_EXPECTS((m.x == 0 || m.x == mesh_.width() - 1) &&
               (m.y == 0 || m.y == mesh_.height() - 1));
  flip_x_ = m.x != 0;
  flip_y_ = m.y != 0;

  bool master_in_set = false;
  for (NodeId id : active_) {
    NOCS_EXPECTS(mesh_.valid(id));
    NOCS_EXPECTS(!active_mask_[static_cast<std::size_t>(id)]);
    active_mask_[static_cast<std::size_t>(id)] = true;
    master_in_set = master_in_set || id == master_;
  }
  NOCS_EXPECTS(master_in_set);

  // Verify the staircase property in canonical orientation — the invariant
  // CDOR's connectivity-bit logic relies on.
  std::vector<NodeId> canonical;
  canonical.reserve(active_.size());
  for (NodeId id : active_)
    canonical.push_back(mesh_.id_of(reflect(mesh_.coord_of(id))));
  NOCS_EXPECTS(is_staircase_region(mesh_, canonical));
}

Coord CdorRouting::reflect(Coord c) const {
  return Coord{flip_x_ ? mesh_.width() - 1 - c.x : c.x,
               flip_y_ ? mesh_.height() - 1 - c.y : c.y};
}

Port CdorRouting::unreflect(Port p) const {
  if (flip_x_ && (p == Port::kEast || p == Port::kWest))
    return p == Port::kEast ? Port::kWest : Port::kEast;
  if (flip_y_ && (p == Port::kNorth || p == Port::kSouth))
    return p == Port::kNorth ? Port::kSouth : Port::kNorth;
  return p;
}

bool CdorRouting::active_canonical(Coord c) const {
  if (!mesh_.contains(c)) return false;
  // reflect() is an involution: canonical -> physical uses the same map.
  return active_mask_[static_cast<std::size_t>(mesh_.id_of(reflect(c)))];
}

bool CdorRouting::connectivity_east(NodeId id) const {
  NOCS_EXPECTS(mesh_.valid(id));
  const Coord e = step(mesh_.coord_of(id), Port::kEast);
  return mesh_.contains(e) && is_active(id) &&
         active_mask_[static_cast<std::size_t>(mesh_.id_of(e))];
}

bool CdorRouting::connectivity_west(NodeId id) const {
  NOCS_EXPECTS(mesh_.valid(id));
  const Coord w = step(mesh_.coord_of(id), Port::kWest);
  return mesh_.contains(w) && is_active(id) &&
         active_mask_[static_cast<std::size_t>(mesh_.id_of(w))];
}

Port CdorRouting::route(Coord cur, Coord dst) const {
  NOCS_EXPECTS(mesh_.contains(cur) && mesh_.contains(dst));
  NOCS_EXPECTS(is_active(mesh_.id_of(cur)));
  NOCS_EXPECTS(is_active(mesh_.id_of(dst)));

  const Coord c = reflect(cur);
  const Coord d = reflect(dst);

  if (c == d) return Port::kLocal;
  if (d.x < c.x) {
    // Westward toward the master column: always connected inside a
    // left-anchored staircase (C_w holds whenever x > 0).
    return unreflect(Port::kWest);
  }
  if (d.x > c.x) {
    // Eastward if the connectivity bit allows; otherwise detour north
    // (canonical north, toward the master row) where the region is wider.
    // This is the NE-turn case of the paper's Figure 5a.
    const bool c_e = active_canonical(Coord{c.x + 1, c.y});
    if (c_e) return unreflect(Port::kEast);
    NOCS_ENSURES(c.y > 0);  // dst east of us => a wider row exists above
    return unreflect(Port::kNorth);
  }
  // Same column: plain Y routing; intermediate rows are guaranteed active
  // by the staircase property.
  return unreflect(d.y > c.y ? Port::kSouth : Port::kNorth);
}

Port CdorRouting::reroute(Coord cur, Coord dst, Port blocked) const {
  if (!mesh_.contains(cur) || !mesh_.contains(dst)) return blocked;
  if (!is_active(mesh_.id_of(cur)) || !is_active(mesh_.id_of(dst)))
    return blocked;
  const Coord c = reflect(cur);
  const Coord d = reflect(dst);
  // Only an eastward X-phase hop can be detoured: going canonical-north
  // instead is the NE turn Figure 5a already uses when a row narrows, and
  // the row above a staircase cell is always at least as wide, so the
  // detour stays inside the active region.  Westward/Y-phase hops have no
  // turn-safe alternative; the caller keeps the planned port and recovery
  // falls to end-to-end retransmission.
  if (blocked != unreflect(Port::kEast) || d.x <= c.x) return blocked;
  if (c.y == 0) return blocked;  // master row: no row above to detour into
  if (!active_canonical(Coord{c.x, c.y - 1})) return blocked;
  return unreflect(Port::kNorth);
}

}  // namespace nocs::sprint
