// Network power-gating support: the static dark-region scheme NoC-sprinting
// enables, plus the break-even analysis that governs conventional dynamic
// gating (the related work the paper contrasts with).
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "power/router_power.hpp"

namespace nocs::sprint {

/// Electrical parameters of a router's power gate.
struct GatingParams {
  Joules wake_energy = 2.0e-9;  ///< rail recharge energy per wake-up
  int wakeup_latency = 8;       ///< cycles before the router is usable
  Watts sleep_power = 1.0e-5;   ///< residual power while gated

  void validate() const {
    NOCS_EXPECTS(wake_energy >= 0 && wakeup_latency >= 0 &&
                 sleep_power >= 0);
  }
};

/// Break-even and savings analysis for one router.
class GatingAnalysis {
 public:
  GatingAnalysis(const power::RouterPowerModel& router_model,
                 const GatingParams& gating);

  /// Minimum idle period (cycles) for which gating saves energy: below
  /// this, the wake-up cost exceeds the leakage saved.  The paper's
  /// "adequate idle period" that traffic-driven schemes must guess — and
  /// that NoC-sprinting side-steps by gating on core state.
  double break_even_cycles() const;

  /// Net energy saved by gating for `idle_cycles` then waking once
  /// (negative when the interval is shorter than break-even).
  Joules gating_benefit(double idle_cycles) const;

  const GatingParams& params() const { return gating_; }

 private:
  Watts leak_;
  double cycle_time_;
  GatingParams gating_;
};

/// The complement of the active set: the node ids NoC-sprinting gates off.
std::vector<NodeId> dark_nodes(const MeshShape& mesh,
                               const std::vector<NodeId>& active);

}  // namespace nocs::sprint
