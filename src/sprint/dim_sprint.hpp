// Dim-silicon sprinting: trade sprint *width* against sprint *intensity*.
//
// The paper's introduction frames dark silicon as "either idle or
// significantly under-clocked (dim)".  NoC-sprinting as published always
// sprints at maximum V/f; this extension (in the spirit of the
// computational-sprinting literature's intensity knob) also considers
// waking MORE cores at a REDUCED operating point under the same power
// budget — profitable exactly for the scalable workloads, while
// badly-scaling workloads still prefer few fast cores.
#pragma once

#include <vector>

#include "cmp/perf_model.hpp"
#include "common/types.hpp"
#include "power/chip_power.hpp"
#include "power/tech.hpp"
#include "thermal/pcm.hpp"

namespace nocs::sprint {

/// One candidate (core count, operating point) sprint configuration.
struct DimOption {
  int level = 1;
  power::OperatingPoint op = power::kReferencePoint;
  double exec_seconds = 0.0;   ///< wall-clock per unit of nominal work
  Watts chip_power = 0.0;
  Seconds sprint_duration = 0.0;
};

class DimSprintPlanner {
 public:
  /// `ops` are the selectable operating points (highest first is
  /// conventional); core dynamic/leakage split defaults to 70/30.
  DimSprintPlanner(const cmp::PerfModel& perf,
                   const power::ChipPowerModel& chip,
                   const thermal::PcmModel& pcm,
                   std::vector<power::OperatingPoint> ops,
                   double core_dynamic_fraction = 0.7);

  /// Active-core power at an operating point (V^2 f dynamic + V leakage
  /// scaling of the reference core power).
  Watts core_power_at(const power::OperatingPoint& op) const;

  /// Chip power with `level` cores active at `op`, the rest gated, and
  /// the NoC-sprinting network (active sub-network at `op`).
  Watts chip_power_at(int level, const power::OperatingPoint& op) const;

  /// Wall-clock execution time (relative seconds) of one unit of nominal
  /// work on `level` cores at `op`: the T(n) model stretched by f_ref/f.
  double exec_seconds(const cmp::WorkloadParams& w, int level,
                      const power::OperatingPoint& op) const;

  /// Every (level, op) combination, with power and PCM duration filled in.
  std::vector<DimOption> enumerate(const cmp::WorkloadParams& w) const;

  /// The fastest option whose chip power fits `budget` (ties to fewer
  /// cores).  Dies if nothing fits (budget below single-core nominal).
  DimOption best_under_budget(const cmp::WorkloadParams& w,
                              Watts budget) const;

 private:
  const cmp::PerfModel& perf_;
  const power::ChipPowerModel& chip_;
  const thermal::PcmModel& pcm_;
  std::vector<power::OperatingPoint> ops_;
  double dyn_frac_;
};

}  // namespace nocs::sprint
