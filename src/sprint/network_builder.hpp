// Convenience builders wiring a noc::Network for the sprinting schemes the
// paper compares:
//
//  * NoC-sprinting: active set = Algorithm 1 prefix, CDOR routing, dark
//    region statically gated.
//  * Full-sprinting: every router powered, XY-DOR routing; the k traffic
//    endpoints are mapped randomly over the whole mesh (the paper averages
//    ten such samples in Figure 11).
//
// The routing function's lifetime is bound to the returned bundle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/params.hpp"
#include "noc/table_routing.hpp"
#include "noc/topology.hpp"
#include "sprint/cdor.hpp"
#include "sprint/physical_wires.hpp"

namespace nocs::sprint {

/// A network plus the routing function it borrows.
struct NetworkBundle {
  std::unique_ptr<noc::RoutingFunction> routing;
  std::unique_ptr<noc::Network> network;
  std::vector<NodeId> endpoints;
};

/// A sprinting network over an arbitrary topology, plus the routing policy
/// it borrows and the deadlock-check verdict its routes passed.
struct TopologyBundle {
  std::unique_ptr<noc::RoutingPolicy> policy;
  std::unique_ptr<noc::Network> network;
  std::vector<NodeId> endpoints;  ///< the powered (active) nodes
  noc::DeadlockCheckResult deadlock;
};

/// Generalized NoC-sprinting network at `level` active cores on an
/// arbitrary topology: active set = generalized Algorithm 1 prefix
/// (connected growth by floorplan distance), dark region gated, endpoints
/// = the active nodes.  Routing: the paper's CDOR when `topo` is a mesh,
/// up*/down* tables rooted at the master otherwise — either way the
/// channel-dependency-graph deadlock check runs at build time and a
/// failure throws std::runtime_error (bundle.deadlock records the passing
/// verdict).  params.num_nodes() must equal topo.num_nodes().
TopologyBundle make_topology_sprinting_network(
    const noc::NetworkParams& params, const noc::Topology& topo, int level,
    const std::string& traffic, std::uint64_t seed, NodeId master = 0);

/// NoC-sprinting network at `level` active cores: CDOR over the Algorithm 1
/// prefix, dark region gated, endpoints = the active nodes.
NetworkBundle make_noc_sprinting_network(const noc::NetworkParams& params,
                                         int level,
                                         const std::string& traffic,
                                         std::uint64_t seed,
                                         NodeId master = 0);

/// Full-sprinting network: all routers on, XY-DOR; `level` endpoints
/// placed uniformly at random (always including the master so comparisons
/// share the memory-controller node).
NetworkBundle make_full_sprinting_network(const noc::NetworkParams& params,
                                          int level,
                                          const std::string& traffic,
                                          std::uint64_t seed,
                                          NodeId master = 0);

/// NoC-sprinting network laid out on a physical floorplan: same as
/// make_noc_sprinting_network, but each logical link carries the latency
/// the floorplan's wire model assigns it (Section 3.3's wiring cost, and
/// the SMART wires that absorb it).
NetworkBundle make_floorplanned_network(const noc::NetworkParams& params,
                                        int level, const std::string& traffic,
                                        std::uint64_t seed,
                                        const std::vector<int>& positions,
                                        const WireParams& wires,
                                        NodeId master = 0);

}  // namespace nocs::sprint
