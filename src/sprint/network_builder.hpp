// Convenience builders wiring a noc::Network for the sprinting schemes the
// paper compares:
//
//  * NoC-sprinting: active set = Algorithm 1 prefix, CDOR routing, dark
//    region statically gated.
//  * Full-sprinting: every router powered, XY-DOR routing; the k traffic
//    endpoints are mapped randomly over the whole mesh (the paper averages
//    ten such samples in Figure 11).
//
// The routing function's lifetime is bound to the returned bundle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/params.hpp"
#include "sprint/cdor.hpp"
#include "sprint/physical_wires.hpp"

namespace nocs::sprint {

/// A network plus the routing function it borrows.
struct NetworkBundle {
  std::unique_ptr<noc::RoutingFunction> routing;
  std::unique_ptr<noc::Network> network;
  std::vector<NodeId> endpoints;
};

/// NoC-sprinting network at `level` active cores: CDOR over the Algorithm 1
/// prefix, dark region gated, endpoints = the active nodes.
NetworkBundle make_noc_sprinting_network(const noc::NetworkParams& params,
                                         int level,
                                         const std::string& traffic,
                                         std::uint64_t seed,
                                         NodeId master = 0);

/// Full-sprinting network: all routers on, XY-DOR; `level` endpoints
/// placed uniformly at random (always including the master so comparisons
/// share the memory-controller node).
NetworkBundle make_full_sprinting_network(const noc::NetworkParams& params,
                                          int level,
                                          const std::string& traffic,
                                          std::uint64_t seed,
                                          NodeId master = 0);

/// NoC-sprinting network laid out on a physical floorplan: same as
/// make_noc_sprinting_network, but each logical link carries the latency
/// the floorplan's wire model assigns it (Section 3.3's wiring cost, and
/// the SMART wires that absorb it).
NetworkBundle make_floorplanned_network(const noc::NetworkParams& params,
                                        int level, const std::string& traffic,
                                        std::uint64_t seed,
                                        const std::vector<int>& positions,
                                        const WireParams& wires,
                                        NodeId master = 0);

}  // namespace nocs::sprint
