// Algorithm 2 — CDOR: convex dimension-order routing.
//
// X-Y dimension-order routing extended for the irregular convex (staircase)
// regions Algorithm 1 produces, using two connectivity bits per switch
// (C_w, C_e) exactly as the paper describes.  When the eastward move a DOR
// router would take is not connected (the region is narrower at this row),
// the packet detours north toward the master row, where the region is
// wider; the NE turn this introduces is deadlock-free because the region's
// staircase shape makes the conflicting WN turn impossible at the same
// cycle (Section 3.2's argument).  Routes never touch the dark region, so
// gated routers are never woken for forwarding.
//
// The master node may sit at any corner of the mesh; coordinates are
// internally reflected so the region is always a top-left staircase.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "noc/routing.hpp"

namespace nocs::sprint {

class CdorRouting final : public noc::RoutingFunction {
 public:
  /// `active` is the sprint region (must contain `master` and form a
  /// staircase anchored at `master`'s corner).  `master` must be a corner
  /// node of the mesh.
  CdorRouting(const MeshShape& mesh, std::vector<NodeId> active,
              NodeId master = 0);

  Port route(Coord cur, Coord dst) const override;

  /// Fault fallback: when the planned hop's link is down, returns a safe
  /// detour or `blocked` unchanged if none exists.  Only the eastward
  /// X-phase hop is detoured — one row canonical-north, the same NE turn
  /// class the staircase argument already proves deadlock-free — so the
  /// detour can never introduce a new turn cycle or leave the active
  /// region.
  Port reroute(Coord cur, Coord dst, Port blocked) const override;

  const char* name() const override { return "cdor"; }

  /// The paper's per-switch connectivity bits (in physical orientation).
  bool connectivity_east(NodeId id) const;
  bool connectivity_west(NodeId id) const;

  bool is_active(NodeId id) const {
    return active_mask_[static_cast<std::size_t>(id)];
  }
  const std::vector<NodeId>& active_nodes() const { return active_; }
  NodeId master() const { return master_; }

 private:
  Coord reflect(Coord c) const;      ///< physical -> canonical (master at 0,0)
  Port unreflect(Port p) const;      ///< canonical port -> physical port
  bool active_canonical(Coord c) const;

  MeshShape mesh_;
  std::vector<NodeId> active_;
  std::vector<bool> active_mask_;
  NodeId master_;
  bool flip_x_ = false;
  bool flip_y_ = false;
};

}  // namespace nocs::sprint
