// Physical wire model for floorplanned networks (Section 3.3).
//
// The thermal-aware floorplan keeps the mesh's *logical* connectivity but
// moves nodes physically, stretching some links across the die.  This
// module turns a position mapping into per-link physical lengths and
// latencies under two wire technologies:
//
//  * conventional repeated wires: latency = ceil(length / reach-per-cycle);
//  * SMART-style clockless repeated wires (Krishna et al.), which let a
//    flit traverse up to `smart_max_pitches` node pitches in one cycle —
//    the mechanism the paper cites to absorb the floorplan's wiring cost.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "noc/network.hpp"

namespace nocs::sprint {

/// Wire technology parameters.
struct WireParams {
  double node_pitch_mm = 3.0;  ///< physical distance between adjacent slots
  double mm_per_cycle = 3.5;   ///< conventional repeated-wire reach per cycle
  /// Pitches traversable in a single cycle on a SMART path; 0 selects
  /// conventional wires.
  int smart_max_pitches = 0;

  void validate() const {
    NOCS_EXPECTS(node_pitch_mm > 0 && mm_per_cycle > 0);
    NOCS_EXPECTS(smart_max_pitches >= 0);
  }
};

/// Per-link lengths/latencies induced by a floorplan position mapping.
class PhysicalWires {
 public:
  /// `positions[logical] = physical slot` (Algorithm 3's Pos() or the
  /// identity).
  PhysicalWires(const MeshShape& mesh, std::vector<int> positions,
                const WireParams& wires);

  /// Physical length (mm) of the logical link between adjacent nodes.
  double link_length_mm(NodeId from, NodeId to) const;

  /// Cycle latency of that link under the configured wire technology.
  int link_latency(NodeId from, NodeId to) const;

  /// Adapter for the Network constructor.
  noc::LinkLatencyFn latency_fn() const;

  /// Mean physical length over all logical mesh links (mm).
  double average_link_length_mm() const;
  /// Longest single link (mm).
  double max_link_length_mm() const;

  const WireParams& params() const { return wires_; }

 private:
  double pitches(NodeId from, NodeId to) const;

  MeshShape mesh_;
  std::vector<int> positions_;
  WireParams wires_;
};

}  // namespace nocs::sprint
