// Online sprint-level adaptation.
//
// The paper assumes application parallelism "can be learnt in advance or
// monitored during run-time execution" (citing the helper-thread and
// dynamic-adaptation literature) and profiles PARSEC off-line.  This
// module implements the run-time half: a hill-climbing controller that
// adjusts the sprint level between bursts using only *observed* speedups,
// converging to the off-line optimum without a priori knowledge.
//
// Protocol: before each burst call `next_level()`, run the burst, then
// report the observed execution time with `observe()`.  The controller
// probes neighboring levels and keeps whatever measures faster; once both
// neighbors measure slower it locks in (still re-probing occasionally so
// phase changes are tracked).
#pragma once

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace nocs::sprint {

class OnlineLevelController {
 public:
  /// `n_max` is the machine's core count; `start_level` the initial guess.
  /// `step` is the probe distance; `reprobe_period` forces an exploration
  /// every so many locked-in bursts (0 disables).
  explicit OnlineLevelController(int n_max, int start_level = 1,
                                 int step = 2, int reprobe_period = 16);

  /// The sprint level to use for the next burst.
  int next_level() const { return current_; }

  /// Reports the normalized execution time observed for the burst that
  /// just ran at next_level().
  void observe(double exec_time);

  /// True once the controller has settled on a level (both neighbors
  /// probed slower).
  bool converged() const { return phase_ == Phase::kLocked; }

  int n_max() const { return n_max_; }

  /// Shrinks the usable level ceiling, e.g. after a node fails to wake and
  /// the sprint region degrades to a smaller healthy prefix.  If the
  /// controller was operating above the new ceiling it re-measures from
  /// the clamped level (its old baseline no longer exists).
  void restrict_max(int new_max) {
    NOCS_EXPECTS(new_max >= 1);
    if (new_max >= n_max_) return;
    n_max_ = new_max;
    if (current_ > n_max_ || base_level_ > n_max_) {
      current_ = clamp(current_);
      base_level_ = clamp(base_level_);
      phase_ = Phase::kMeasureBase;
      locked_bursts_ = 0;
    }
  }

  /// Checkpoint/restore of the hill-climbing state so long adaptive
  /// campaigns resume mid-search.  Construction parameters (n_max, step,
  /// reprobe period) are the caller's responsibility.
  void save_state(snapshot::Writer& w) const {
    w.begin_section("online_adapt");
    w.i64(n_max_);
    w.i64(current_);
    w.i64(base_level_);
    w.f64(base_time_);
    w.u8(static_cast<std::uint8_t>(phase_));
    w.i64(locked_bursts_);
    w.i64(bursts_observed_);
    w.end_section();
  }

  void load_state(snapshot::Reader& r) {
    r.begin_section("online_adapt");
    n_max_ = static_cast<int>(r.i64());
    current_ = static_cast<int>(r.i64());
    base_level_ = static_cast<int>(r.i64());
    base_time_ = r.f64();
    phase_ = static_cast<Phase>(r.u8());
    locked_bursts_ = static_cast<int>(r.i64());
    bursts_observed_ = static_cast<int>(r.i64());
    r.end_section();
  }

 private:
  enum class Phase { kMeasureBase, kProbeUp, kProbeDown, kLocked };

  int clamp(int level) const {
    return level < 1 ? 1 : (level > n_max_ ? n_max_ : level);
  }

  int n_max_;
  int step_;
  int reprobe_period_;
  int current_;
  int base_level_;
  double base_time_ = 0.0;
  Phase phase_ = Phase::kMeasureBase;
  int locked_bursts_ = 0;
  int bursts_observed_ = 0;  ///< total observe() calls (trace timestamps)
};

}  // namespace nocs::sprint
