#include "sprint/area.hpp"

namespace nocs::sprint {

namespace {
// Gate-equivalent cost factors (typical standard-cell figures).
constexpr double kGatesPerFlopBit = 8.0;    // storage flop + mux/control
constexpr double kGatesPerXbarCross = 3.0;  // per bit per crosspoint
constexpr double kGatesPerArbReq = 12.0;    // per request of an arbiter
constexpr double kGatesPerComparatorBit = 5.0;
}  // namespace

AreaEstimate estimate_router_area(const RouterAreaParams& p) {
  p.validate();
  AreaEstimate a;

  // Input buffers: ports x VCs x depth x width bits of storage.
  a.buffers = kGatesPerFlopBit * p.num_ports * p.num_vcs * p.vc_depth *
              p.flit_bits;

  // Crossbar: ports x ports crosspoints, flit_bits wide.
  a.crossbar = kGatesPerXbarCross * p.num_ports * p.num_ports * p.flit_bits;

  // VC allocator (PV x PV requests) + switch allocator (two separable
  // stages of P x V and P x P round-robin arbiters).
  const double pv = static_cast<double>(p.num_ports) * p.num_vcs;
  a.allocators = kGatesPerArbReq * (pv * p.num_vcs +            // VA
                                    p.num_ports * p.num_vcs +   // SA stage 1
                                    p.num_ports * p.num_ports); // SA stage 2

  // DOR route compute: two coordinate comparators (X and Y) plus a small
  // port decoder, replicated per input port.
  a.routing_dor = p.num_ports * (2.0 * kGatesPerComparatorBit * p.coord_bits +
                                 10.0);

  // CDOR additions (Figure 6): two connectivity-bit registers per switch
  // and ~8 extra gates of blocked-direction/turn selection per output
  // port's routing circuit.
  a.routing_cdor_extra = 2.0 * kGatesPerFlopBit + 8.0 * p.num_ports;

  return a;
}

}  // namespace nocs::sprint
