// Gate-count area model for the CDOR routing logic.
//
// Stands in for the paper's Synopsys Design Compiler synthesis (45 nm),
// which found CDOR adds < 2 % area over a conventional DOR switch.  We
// count gate equivalents: buffers dominate switch area; CDOR adds two
// connectivity-bit registers plus a few gates of port-selection logic per
// output port (Figure 6's two comparators already exist in DOR).
#pragma once

#include "common/assert.hpp"

namespace nocs::sprint {

/// Structural inputs to the area estimate.
struct RouterAreaParams {
  int num_ports = 5;
  int num_vcs = 4;
  int vc_depth = 4;
  int flit_bits = 128;
  int coord_bits = 2;  ///< bits per mesh coordinate (2 for a 4x4 mesh)

  void validate() const {
    NOCS_EXPECTS(num_ports >= 2 && num_vcs >= 1 && vc_depth >= 1);
    NOCS_EXPECTS(flit_bits >= 8 && coord_bits >= 1);
  }
};

/// Gate-equivalent counts per switch component.
struct AreaEstimate {
  double buffers = 0.0;       ///< input VC buffers (flops + control)
  double crossbar = 0.0;
  double allocators = 0.0;
  double routing_dor = 0.0;   ///< baseline DOR route-compute logic
  double routing_cdor_extra = 0.0;  ///< CDOR additions over DOR

  double dor_total() const {
    return buffers + crossbar + allocators + routing_dor;
  }
  double cdor_total() const { return dor_total() + routing_cdor_extra; }
  /// Fractional overhead of CDOR over the DOR switch (paper: < 0.02).
  double overhead() const { return routing_cdor_extra / dor_total(); }
};

/// Computes the estimate for one switch.
AreaEstimate estimate_router_area(const RouterAreaParams& params);

}  // namespace nocs::sprint
