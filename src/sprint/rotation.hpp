// Thermal-aware sprint rotation (extension beyond the paper).
//
// The paper fixes the master node at one corner (next to the memory
// controller) and relies on the design-time floorplan for heat spreading.
// Because CDOR supports a master at *any* corner by reflection, a system
// with per-corner memory controllers can also rotate: before each burst,
// pick the corner whose sprint region is currently coolest, letting the
// previously heated region cool while another sprints.  Across repeated
// bursts this lowers the running peak temperature versus sprinting the
// same corner every time.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "power/chip_power.hpp"
#include "thermal/grid.hpp"

namespace nocs::sprint {

/// Mean temperature over the physical blocks of `level` nodes activated
/// from `master` (identity placement; die covered by the mesh grid).
double region_temperature(const thermal::TemperatureField& field,
                          const MeshShape& mesh, NodeId master, int level);

/// The corner master whose sprint region is coolest in `field` (ties to
/// the lowest node id, i.e. the paper's default corner).
NodeId coolest_corner_master(const thermal::TemperatureField& field,
                             const MeshShape& mesh, int level);

/// Replays a sequence of sprint bursts through the transient thermal
/// solver, choosing the master per burst (rotating or fixed), and records
/// the running peak temperature.
class SprintRotationSim {
 public:
  SprintRotationSim(const MeshShape& mesh,
                    const thermal::GridThermalParams& thermal_params,
                    const power::ChipPowerParams& chip_params,
                    double die_mm);

  /// Result of one burst.
  struct BurstRecord {
    NodeId master = 0;
    Kelvin peak_after = 0.0;
  };

  /// Sprints `level` cores for `sprint_s` seconds then idles (single
  /// active master region) for `idle_s`.  When `rotate` is true the
  /// master is chosen by coolest_corner_master before each burst.
  BurstRecord run_burst(int level, Seconds sprint_s, Seconds idle_s,
                        bool rotate);

  const thermal::TemperatureField& field() const { return field_; }
  void reset();

 private:
  thermal::Floorplan region_floorplan(NodeId master, int level) const;

  MeshShape mesh_;
  thermal::GridThermalModel model_;
  power::ChipPowerParams chip_;
  double die_mm_;
  thermal::TemperatureField field_;
};

}  // namespace nocs::sprint
