#include "sprint/physical_wires.hpp"

#include <cmath>

namespace nocs::sprint {

PhysicalWires::PhysicalWires(const MeshShape& mesh, std::vector<int> positions,
                             const WireParams& wires)
    : mesh_(mesh), positions_(std::move(positions)), wires_(wires) {
  wires_.validate();
  NOCS_EXPECTS(static_cast<int>(positions_.size()) == mesh_.size());
  std::vector<bool> seen(static_cast<std::size_t>(mesh_.size()), false);
  for (int slot : positions_) {
    NOCS_EXPECTS(mesh_.valid(slot));
    NOCS_EXPECTS(!seen[static_cast<std::size_t>(slot)]);
    seen[static_cast<std::size_t>(slot)] = true;
  }
}

double PhysicalWires::pitches(NodeId from, NodeId to) const {
  NOCS_EXPECTS(mesh_.valid(from) && mesh_.valid(to));
  NOCS_EXPECTS(manhattan(mesh_.coord_of(from), mesh_.coord_of(to)) == 1);
  const Coord a =
      mesh_.coord_of(positions_[static_cast<std::size_t>(from)]);
  const Coord b = mesh_.coord_of(positions_[static_cast<std::size_t>(to)]);
  return euclidean(a, b);
}

double PhysicalWires::link_length_mm(NodeId from, NodeId to) const {
  return pitches(from, to) * wires_.node_pitch_mm;
}

int PhysicalWires::link_latency(NodeId from, NodeId to) const {
  const double p = pitches(from, to);
  if (wires_.smart_max_pitches > 0) {
    // SMART: up to smart_max_pitches pitches per cycle, asynchronously
    // repeated — one cycle for any link within reach.
    return std::max(
        1, static_cast<int>(std::ceil(p / wires_.smart_max_pitches)));
  }
  const double length = p * wires_.node_pitch_mm;
  return std::max(1, static_cast<int>(std::ceil(length / wires_.mm_per_cycle)));
}

noc::LinkLatencyFn PhysicalWires::latency_fn() const {
  // Capture by value: the Network outlives this helper in typical use.
  const PhysicalWires copy = *this;
  return [copy](NodeId from, NodeId to) { return copy.link_latency(from, to); };
}

double PhysicalWires::average_link_length_mm() const {
  double total = 0.0;
  int links = 0;
  for (NodeId id = 0; id < mesh_.size(); ++id) {
    const Coord c = mesh_.coord_of(id);
    for (Port p : {Port::kEast, Port::kSouth}) {
      const Coord nc = step(c, p);
      if (!mesh_.contains(nc)) continue;
      total += link_length_mm(id, mesh_.id_of(nc));
      ++links;
    }
  }
  return total / links;
}

double PhysicalWires::max_link_length_mm() const {
  double longest = 0.0;
  for (NodeId id = 0; id < mesh_.size(); ++id) {
    const Coord c = mesh_.coord_of(id);
    for (Port p : {Port::kEast, Port::kSouth}) {
      const Coord nc = step(c, p);
      if (!mesh_.contains(nc)) continue;
      longest = std::max(longest, link_length_mm(id, mesh_.id_of(nc)));
    }
  }
  return longest;
}

}  // namespace nocs::sprint
