#include "sprint/network_builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "sprint/topology.hpp"

namespace nocs::sprint {

TopologyBundle make_topology_sprinting_network(
    const noc::NetworkParams& params, const noc::Topology& topo, int level,
    const std::string& traffic, std::uint64_t seed, NodeId master) {
  NOCS_EXPECTS(level >= 2 && level <= topo.num_nodes());
  NOCS_EXPECTS(topo.num_nodes() == params.num_nodes());
  TopologyBundle b;
  b.endpoints = active_set(topo, level, master);
  if (topo.is_mesh()) {
    // Mesh specialization: the paper's CDOR over the Algorithm 1 prefix,
    // identical to make_noc_sprinting_network.
    const MeshShape shape = topo.mesh_shape();
    b.policy = std::make_unique<noc::MeshRoutingPolicy>(
        std::make_unique<CdorRouting>(shape, b.endpoints, master), shape);
  } else {
    b.policy = std::make_unique<noc::TableRouting>(
        noc::TableRouting::up_down(topo, b.endpoints, master));
  }
  // Certify before wiring anything: every active-pair route must terminate
  // inside the powered region with an acyclic channel-dependency graph.
  b.deadlock = noc::check_deadlock_free(topo, *b.policy, b.endpoints);
  if (!b.deadlock.ok)
    throw std::runtime_error("topology sprint level " +
                             std::to_string(level) +
                             " fails the deadlock check: " +
                             b.deadlock.detail);
  b.network = std::make_unique<noc::Network>(params, topo, b.policy.get());
  b.network->set_endpoints(b.endpoints, noc::make_traffic(traffic, level));
  b.network->gate_dark_region(b.endpoints);
  b.network->set_seed(seed);
  return b;
}

NetworkBundle make_noc_sprinting_network(const noc::NetworkParams& params,
                                         int level,
                                         const std::string& traffic,
                                         std::uint64_t seed, NodeId master) {
  NOCS_EXPECTS(level >= 2 && level <= params.num_nodes());
  NetworkBundle b;
  b.endpoints = active_set(params.shape(), level, master);
  auto cdor =
      std::make_unique<CdorRouting>(params.shape(), b.endpoints, master);
  b.network = std::make_unique<noc::Network>(params, cdor.get());
  b.routing = std::move(cdor);
  b.network->set_endpoints(b.endpoints,
                           noc::make_traffic(traffic, level));
  b.network->gate_dark_region(b.endpoints);
  b.network->set_seed(seed);
  return b;
}

NetworkBundle make_floorplanned_network(const noc::NetworkParams& params,
                                        int level, const std::string& traffic,
                                        std::uint64_t seed,
                                        const std::vector<int>& positions,
                                        const WireParams& wires,
                                        NodeId master) {
  NOCS_EXPECTS(level >= 2 && level <= params.num_nodes());
  const PhysicalWires phys(params.shape(), positions, wires);
  NetworkBundle b;
  b.endpoints = active_set(params.shape(), level, master);
  auto cdor =
      std::make_unique<CdorRouting>(params.shape(), b.endpoints, master);
  b.network =
      std::make_unique<noc::Network>(params, cdor.get(), phys.latency_fn());
  b.routing = std::move(cdor);
  b.network->set_endpoints(b.endpoints, noc::make_traffic(traffic, level));
  b.network->gate_dark_region(b.endpoints);
  b.network->set_seed(seed);
  return b;
}

NetworkBundle make_full_sprinting_network(const noc::NetworkParams& params,
                                          int level,
                                          const std::string& traffic,
                                          std::uint64_t seed, NodeId master) {
  NOCS_EXPECTS(level >= 2 && level <= params.num_nodes());
  NOCS_EXPECTS(params.shape().valid(master));
  NetworkBundle b;

  // Random endpoint mapping over the full mesh, master always included.
  Rng rng(seed ^ 0xf00dfeedbeefULL);
  std::vector<NodeId> pool;
  for (NodeId id = 0; id < params.num_nodes(); ++id)
    if (id != master) pool.push_back(id);
  // Fisher-Yates partial shuffle for the first level-1 picks.
  for (std::size_t i = 0; i < static_cast<std::size_t>(level - 1); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_int(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  b.endpoints.push_back(master);
  b.endpoints.insert(b.endpoints.end(), pool.begin(),
                     pool.begin() + (level - 1));

  b.routing = std::make_unique<noc::XyRouting>();
  b.network = std::make_unique<noc::Network>(params, b.routing.get());
  b.network->set_endpoints(b.endpoints,
                           noc::make_traffic(traffic, level));
  b.network->set_seed(seed);
  return b;
}

}  // namespace nocs::sprint
