#include "sprint/floorplanner.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"
#include "sprint/topology.hpp"

namespace nocs::sprint {

namespace {

/// Algorithm 4 — MaxWeightedDistance: picks the free physical slot for
/// logical node k maximizing sum over placed nodes j of
///   w_kj * d(slot, Pos(j)),  w_kj = 1 / logical_hamming(k, j).
int max_weighted_distance(const MeshShape& mesh,
                          const std::vector<NodeId>& placed,
                          const std::vector<int>& positions,
                          const std::vector<bool>& slot_taken, NodeId k) {
  const Coord ck = mesh.coord_of(k);
  double best = -1.0;
  int best_slot = -1;
  for (int slot = 0; slot < mesh.size(); ++slot) {
    if (slot_taken[static_cast<std::size_t>(slot)]) continue;
    const Coord cs = mesh.coord_of(slot);
    double sum = 0.0;
    for (NodeId j : placed) {
      const int h = hamming(ck, mesh.coord_of(j));
      NOCS_ENSURES(h > 0);  // k is unplaced, so it differs from every j
      const double w = 1.0 / static_cast<double>(h);
      const Coord cj =
          mesh.coord_of(positions[static_cast<std::size_t>(j)]);
      sum += w * euclidean(cs, cj);
    }
    // Deterministic tie-break on slot index keeps results reproducible.
    if (sum > best + 1e-12) {
      best = sum;
      best_slot = slot;
    }
  }
  NOCS_ENSURES(best_slot >= 0);
  return best_slot;
}

}  // namespace

FloorplanResult thermal_aware_floorplan(const MeshShape& mesh,
                                        NodeId master) {
  NOCS_EXPECTS(mesh.valid(master));
  const int n = mesh.size();
  const std::vector<NodeId> order = sprint_order(mesh, master);
  // rank[id] = position in Algorithm 1's activation list, used to order
  // the BFS queue "based on List L".
  std::vector<int> rank(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i)
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;

  std::vector<int> positions(static_cast<std::size_t>(n), -1);
  std::vector<bool> slot_taken(static_cast<std::size_t>(n), false);
  std::vector<bool> explored(static_cast<std::size_t>(n), false);
  std::vector<bool> queued(static_cast<std::size_t>(n), false);
  std::vector<NodeId> placed;
  std::deque<NodeId> queue;

  auto enqueue_neighbors = [&](NodeId id) {
    // Collect unexplored logical-mesh neighbors, sorted by activation rank.
    std::vector<NodeId> nbrs;
    const Coord c = mesh.coord_of(id);
    for (Port p : {Port::kNorth, Port::kEast, Port::kSouth, Port::kWest}) {
      const Coord nc = step(c, p);
      if (!mesh.contains(nc)) continue;
      const NodeId nid = mesh.id_of(nc);
      if (explored[static_cast<std::size_t>(nid)] ||
          queued[static_cast<std::size_t>(nid)])
        continue;
      nbrs.push_back(nid);
    }
    std::sort(nbrs.begin(), nbrs.end(), [&](NodeId a, NodeId b) {
      return rank[static_cast<std::size_t>(a)] <
             rank[static_cast<std::size_t>(b)];
    });
    for (NodeId nid : nbrs) {
      queue.push_back(nid);
      queued[static_cast<std::size_t>(nid)] = true;
    }
  };

  // Pos(R_0) = master's own slot: the master stays put (the paper keeps it
  // at the corner next to the memory controller).
  positions[static_cast<std::size_t>(master)] = master;
  slot_taken[static_cast<std::size_t>(master)] = true;
  explored[static_cast<std::size_t>(master)] = true;
  placed.push_back(master);
  enqueue_neighbors(master);

  while (!queue.empty()) {
    const NodeId k = queue.front();
    queue.pop_front();
    queued[static_cast<std::size_t>(k)] = false;
    const int slot =
        max_weighted_distance(mesh, placed, positions, slot_taken, k);
    positions[static_cast<std::size_t>(k)] = slot;
    slot_taken[static_cast<std::size_t>(slot)] = true;
    explored[static_cast<std::size_t>(k)] = true;
    placed.push_back(k);
    enqueue_neighbors(k);
  }
  NOCS_ENSURES(static_cast<int>(placed.size()) == n);

  FloorplanResult result;
  result.positions = std::move(positions);
  // Wire length: every logical mesh link now spans the Euclidean distance
  // between the two physical slots.
  double wire = 0.0;
  for (NodeId id = 0; id < n; ++id) {
    const Coord c = mesh.coord_of(id);
    for (Port p : {Port::kEast, Port::kSouth}) {
      const Coord nc = step(c, p);
      if (!mesh.contains(nc)) continue;
      const NodeId nid = mesh.id_of(nc);
      wire += euclidean(
          mesh.coord_of(result.positions[static_cast<std::size_t>(id)]),
          mesh.coord_of(result.positions[static_cast<std::size_t>(nid)]));
    }
  }
  result.total_wire_length = wire;
  return result;
}

FloorplanResult identity_floorplan(const MeshShape& mesh) {
  FloorplanResult r;
  r.positions.resize(static_cast<std::size_t>(mesh.size()));
  for (int i = 0; i < mesh.size(); ++i)
    r.positions[static_cast<std::size_t>(i)] = i;
  double wire = 0.0;
  for (NodeId id = 0; id < mesh.size(); ++id) {
    const Coord c = mesh.coord_of(id);
    for (Port p : {Port::kEast, Port::kSouth})
      if (mesh.contains(step(c, p))) wire += 1.0;
  }
  r.total_wire_length = wire;
  return r;
}

double thermal_proximity(const MeshShape& mesh,
                         const std::vector<NodeId>& active_logical,
                         const std::vector<int>& positions) {
  NOCS_EXPECTS(active_logical.size() >= 2);
  NOCS_EXPECTS(static_cast<int>(positions.size()) == mesh.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < active_logical.size(); ++i) {
    for (std::size_t j = i + 1; j < active_logical.size(); ++j) {
      const Coord a = mesh.coord_of(
          positions[static_cast<std::size_t>(active_logical[i])]);
      const Coord b = mesh.coord_of(
          positions[static_cast<std::size_t>(active_logical[j])]);
      sum += 1.0 / euclidean(a, b);
    }
  }
  return sum;
}

}  // namespace nocs::sprint
