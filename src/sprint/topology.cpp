#include "sprint/topology.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace nocs::sprint {

namespace {

std::vector<NodeId> order_by_metric(const MeshShape& mesh, NodeId master,
                                    bool euclidean) {
  NOCS_EXPECTS(mesh.valid(master));
  const Coord m = mesh.coord_of(master);
  std::vector<NodeId> order = mesh.all_nodes();
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const int da = euclidean ? euclidean_sq(mesh.coord_of(a), m)
                             : manhattan(mesh.coord_of(a), m);
    const int db = euclidean ? euclidean_sq(mesh.coord_of(b), m)
                             : manhattan(mesh.coord_of(b), m);
    if (da != db) return da < db;
    return a < b;  // Algorithm 1: break ties by node index
  });
  return order;
}

long long cross(Coord o, Coord a, Coord b) {
  return static_cast<long long>(a.x - o.x) * (b.y - o.y) -
         static_cast<long long>(a.y - o.y) * (b.x - o.x);
}

/// Andrew monotone-chain convex hull (returns CCW hull, no duplicate
/// endpoint; collinear boundary points are dropped).
std::vector<Coord> convex_hull(std::vector<Coord> pts) {
  std::sort(pts.begin(), pts.end(), [](Coord a, Coord b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n <= 2) return pts;
  std::vector<Coord> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper hull
    while (k >= lower && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

/// Point-in-convex-polygon, boundary inclusive.  `hull` is CCW.
bool inside_hull(const std::vector<Coord>& hull, Coord p) {
  if (hull.empty()) return false;
  if (hull.size() == 1) return hull[0] == p;
  if (hull.size() == 2) {
    // Collinear segment: p must lie on it.
    if (cross(hull[0], hull[1], p) != 0) return false;
    return std::min(hull[0].x, hull[1].x) <= p.x &&
           p.x <= std::max(hull[0].x, hull[1].x) &&
           std::min(hull[0].y, hull[1].y) <= p.y &&
           p.y <= std::max(hull[0].y, hull[1].y);
  }
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Coord a = hull[i];
    const Coord b = hull[(i + 1) % hull.size()];
    if (cross(a, b, p) < 0) return false;  // strictly right of a CCW edge
  }
  return true;
}

}  // namespace

std::vector<NodeId> sprint_order(const MeshShape& mesh, NodeId master) {
  return order_by_metric(mesh, master, /*euclidean=*/true);
}

std::vector<NodeId> sprint_order(const noc::Topology& topo, NodeId master) {
  NOCS_EXPECTS(topo.valid(master));
  // Mesh specialization: the paper's global Euclidean sort.  Every prefix
  // of that order is convex, hence connected, so the greedy growth below
  // would pick the same sets — but dispatching keeps the mesh path
  // literally the same code (bit-identical results guaranteed, not argued).
  if (topo.is_mesh()) return sprint_order(topo.mesh_shape(), master);

  const int n = topo.num_nodes();
  const Coord m = topo.coord(master);
  std::vector<bool> selected(static_cast<std::size_t>(n), false);
  std::vector<bool> frontier(static_cast<std::size_t>(n), false);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(master);
  selected[static_cast<std::size_t>(master)] = true;
  auto open_neighbors = [&](NodeId id) {
    for (int p : topo.connected_ports(id)) {
      const NodeId nb = topo.neighbor(id, p);
      if (!selected[static_cast<std::size_t>(nb)])
        frontier[static_cast<std::size_t>(nb)] = true;
    }
  };
  open_neighbors(master);
  while (static_cast<int>(order.size()) < n) {
    // Greedy connected growth: the closest frontier node joins (Euclidean
    // floorplan distance to the master, ties by node index).  The scan is
    // O(n) per step; sprint planning runs once per level, not per cycle.
    NodeId best = kInvalidNode;
    int best_d = 0;
    for (NodeId id = 0; id < n; ++id) {
      if (!frontier[static_cast<std::size_t>(id)]) continue;
      const int d = euclidean_sq(topo.coord(id), m);
      if (best == kInvalidNode || d < best_d) {
        best = id;
        best_d = d;
      }
    }
    NOCS_ENSURES(best != kInvalidNode);  // topology is connected
    frontier[static_cast<std::size_t>(best)] = false;
    selected[static_cast<std::size_t>(best)] = true;
    order.push_back(best);
    open_neighbors(best);
  }
  return order;
}

std::vector<NodeId> active_set(const noc::Topology& topo, int level,
                               NodeId master) {
  NOCS_EXPECTS(level >= 1 && level <= topo.num_nodes());
  std::vector<NodeId> order = sprint_order(topo, master);
  order.resize(static_cast<std::size_t>(level));
  return order;
}

std::vector<NodeId> sprint_order_hamming(const MeshShape& mesh,
                                         NodeId master) {
  return order_by_metric(mesh, master, /*euclidean=*/false);
}

std::vector<NodeId> active_set(const MeshShape& mesh, int level,
                               NodeId master) {
  NOCS_EXPECTS(level >= 1 && level <= mesh.size());
  std::vector<NodeId> order = sprint_order(mesh, master);
  order.resize(static_cast<std::size_t>(level));
  return order;
}

std::vector<NodeId> largest_healthy_prefix(const MeshShape& mesh, int level,
                                           const std::vector<NodeId>& failed,
                                           NodeId master) {
  NOCS_EXPECTS(level >= 1 && level <= mesh.size());
  std::vector<bool> bad(static_cast<std::size_t>(mesh.size()), false);
  for (NodeId id : failed) {
    NOCS_EXPECTS(mesh.valid(id));
    bad[static_cast<std::size_t>(id)] = true;
  }
  const std::vector<NodeId> order = sprint_order(mesh, master);
  std::vector<NodeId> healthy;
  healthy.reserve(static_cast<std::size_t>(level));
  for (int i = 0; i < level; ++i) {
    const NodeId id = order[static_cast<std::size_t>(i)];
    if (bad[static_cast<std::size_t>(id)]) break;
    healthy.push_back(id);
  }
  return healthy;
}

bool is_convex_region(const MeshShape& mesh,
                      const std::vector<NodeId>& nodes) {
  NOCS_EXPECTS(!nodes.empty());
  std::vector<Coord> pts;
  std::vector<bool> member(static_cast<std::size_t>(mesh.size()), false);
  pts.reserve(nodes.size());
  for (NodeId id : nodes) {
    NOCS_EXPECTS(mesh.valid(id));
    member[static_cast<std::size_t>(id)] = true;
    pts.push_back(mesh.coord_of(id));
  }
  const std::vector<Coord> hull = convex_hull(pts);
  for (NodeId id = 0; id < mesh.size(); ++id) {
    if (member[static_cast<std::size_t>(id)]) continue;
    if (inside_hull(hull, mesh.coord_of(id))) return false;
  }
  return true;
}

bool is_staircase_region(const MeshShape& mesh,
                         const std::vector<NodeId>& nodes) {
  NOCS_EXPECTS(!nodes.empty());
  // Row widths: each occupied row must be a contiguous run starting at
  // x = 0, and widths must be non-increasing from the top row down.
  std::vector<int> width(static_cast<std::size_t>(mesh.height()), 0);
  std::vector<std::vector<bool>> present(
      static_cast<std::size_t>(mesh.height()),
      std::vector<bool>(static_cast<std::size_t>(mesh.width()), false));
  for (NodeId id : nodes) {
    const Coord c = mesh.coord_of(id);
    present[static_cast<std::size_t>(c.y)][static_cast<std::size_t>(c.x)] =
        true;
    ++width[static_cast<std::size_t>(c.y)];
  }
  for (int y = 0; y < mesh.height(); ++y) {
    for (int x = 0; x < width[static_cast<std::size_t>(y)]; ++x)
      if (!present[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)])
        return false;  // row not left-aligned / not contiguous
  }
  for (int y = 1; y < mesh.height(); ++y)
    if (width[static_cast<std::size_t>(y)] >
        width[static_cast<std::size_t>(y - 1)])
      return false;
  if (width[0] == 0) return false;  // region must touch the master row
  return true;
}

double average_pairwise_distance(const MeshShape& mesh,
                                 const std::vector<NodeId>& nodes) {
  NOCS_EXPECTS(nodes.size() >= 2);
  long long total = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      total += manhattan(mesh.coord_of(nodes[i]), mesh.coord_of(nodes[j]));
  const double pairs =
      static_cast<double>(nodes.size()) *
      static_cast<double>(nodes.size() - 1) / 2.0;
  return static_cast<double>(total) / pairs;
}

}  // namespace nocs::sprint
