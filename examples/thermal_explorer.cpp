// Thermal explorer: visualize what fine-grained sprinting and the
// thermal-aware floorplan (Algorithms 3/4) do to the die temperature.
//
// For a chosen sprint level it prints ASCII heat maps side by side
// (identity placement vs thermal-aware placement), peak temperatures, and
// the PCM sprint timeline at that level's chip power.
//
// Run:  ./thermal_explorer [level=4] [die_mm=12]
#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "power/chip_power.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/topology.hpp"
#include "thermal/grid.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;
using namespace nocs::thermal;

namespace {

std::vector<Watts> node_powers(const MeshShape& mesh,
                               const std::vector<NodeId>& active,
                               const power::ChipPowerParams& chip) {
  std::vector<Watts> p(static_cast<std::size_t>(mesh.size()),
                       chip.core_gated + chip.l2_tile + chip.noc_gated_node);
  for (NodeId id : active)
    p[static_cast<std::size_t>(id)] =
        chip.core_active + chip.l2_tile + chip.noc_per_node;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int level = static_cast<int>(cfg.get_int("level", 4));
  const double die_mm = cfg.get_double("die_mm", 12.0);

  const MeshShape mesh(4, 4);
  const power::ChipPowerParams chip{};
  const GridThermalModel model(GridThermalParams{}, die_mm, die_mm);
  const auto active = sprint::active_set(mesh, level, 0);
  const auto powers = node_powers(mesh, active, chip);

  const auto identity = sprint::identity_floorplan(mesh);
  const auto planned = sprint::thermal_aware_floorplan(mesh, 0);

  const TemperatureField t_id = model.solve_steady(
      make_cmp_floorplan(mesh, die_mm, die_mm, powers, identity.positions));
  const TemperatureField t_fp = model.solve_steady(
      make_cmp_floorplan(mesh, die_mm, die_mm, powers, planned.positions));

  std::printf("sprint level %d: active nodes", level);
  for (NodeId id : active) std::printf(" %d", id);
  std::printf("\n\n");

  std::printf("identity placement            thermal-aware floorplan\n");
  std::printf("peak %.2f K                  peak %.2f K\n", t_id.peak(),
              t_fp.peak());
  const std::string a = render_heatmap(t_id, 28, 14);
  const std::string b = render_heatmap(t_fp, 28, 14);
  // Print the two maps side by side.
  std::size_t pa = 0, pb = 0;
  while (pa < a.size() && pb < b.size()) {
    const std::size_t ea = a.find('\n', pa);
    const std::size_t eb = b.find('\n', pb);
    std::printf("%s  %s\n", a.substr(pa, ea - pa).c_str(),
                b.substr(pb, eb - pb).c_str());
    pa = ea + 1;
    pb = eb + 1;
  }

  // Sprint timeline at this level's chip power.
  double total = 0.0;
  for (Watts w : powers) total += w;
  // Uncore not tied to nodes (MC, others).
  total += chip.mc_each * chip.num_mcs() + chip.others;

  const PcmModel pcm{PcmParams{}};
  const SprintTimeline tl = pcm.sprint_timeline(total);
  std::printf("\nchip power at this level: %.1f W\n", total);
  if (tl.unbounded) {
    std::printf("thermally sustainable: the chip can run at this level "
                "indefinitely.\n");
  } else {
    std::printf("sprint timeline: phase1 %.2fs (heat to melt), phase2 %.2fs "
                "(PCM melting), phase3 %.2fs (melt to Tmax) -> total %.2fs\n",
                tl.phase1, tl.phase2, tl.phase3, tl.total());
  }

  std::printf("\nwire length: identity %.1f pitches, floorplanned %.1f "
              "(longer links, repeated wires)\n",
              identity.total_wire_length, planned.total_wire_length);
  return 0;
}
