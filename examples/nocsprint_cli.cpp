// nocsprint_cli — one command-line entry point for the whole library.
//
// Modes (key=value arguments):
//   mode=plan      workload=<name> [scheme=noc|full|fine|non]
//       -> the sprint controller's decision for one workload
//   mode=simulate  level=<k> [traffic=uniform] [injection=0.1] [seed=1]
//                  [scheme=noc|full] [classes=1|2] [pipeline=5|3]
//                  [faults=true fault_flip_rate=... fault_seed=...]
//       -> one cycle-accurate run with latency/power/percentiles;
//          faults=true enables the fault injector + end-to-end protection
//          and a livelock watchdog (see README "Robustness")
//   mode=sweep     level=<k> [traffic=...] [rates=start:step:end]
//       -> latency-throughput curve
//   mode=thermal   level=<k> [floorplan=identity|thermal]
//       -> steady-state heat map + peak temperature
//   mode=topo      [topology=mesh|torus|ring_circulant|hamming|file]
//                  [topo_file=<path>] [ring_skip=4] [level=<k>]
//                  [traffic=uniform] [injection=0.1] [seed=1]
//       -> sprint on an arbitrary topology graph (docs/TOPOLOGY.md):
//          generalized Algorithm 1 active set, table-driven up*/down*
//          routing off the mesh, deadlock check certified at build time
//   mode=serve     [serve_port=0] [serve_dir=serve-state] [serve_workers=2]
//       -> crash-safe campaign daemon: line-delimited JSON over TCP with a
//          write-ahead job ledger, admission control, retry/timeout
//          supervision, and a result cache (protocol: docs/SERVE.md)
//
// Observability (simulate and sweep modes, all off by default — see
// README "Observability"):
//   trace=path.json         Chrome trace-event file (chrome://tracing /
//                           Perfetto); trace_sample=N sets the counter
//                           sampling window in cycles (default 256)
//   report=path.json        machine-readable JSON run report
//   metrics=path.json       metrics-registry snapshot (counters/gauges)
//
// Checkpoint/restore (see docs/SNAPSHOT_FORMAT.md):
//   mode=simulate checkpoint=run.nocsnap checkpoint_every=5000
//       -> periodic autosave of the full simulation state
//   mode=simulate restore=run.nocsnap
//       -> resume a checkpointed run (same config required); results are
//          bit-identical to the uninterrupted run
//   mode=sweep checkpoint=sweep.manifest.json
//       -> per-task completion ledger; a killed sweep re-run with the same
//          arguments skips every already-finished point
//
// Signals: simulate, sweep, and serve install SIGINT/SIGTERM handlers —
// the first signal checkpoints (simulate: checkpoint= snapshot; sweep: the
// task manifest; serve: every in-flight job) and exits 130; a second
// signal kills the process the ordinary way.
//
// Examples:
//   ./nocsprint_cli mode=plan workload=canneal
//   ./nocsprint_cli mode=simulate level=4 injection=0.2 scheme=full
//   ./nocsprint_cli mode=sweep level=8 rates=0.05:0.05:0.5
//   ./nocsprint_cli mode=thermal level=4 floorplan=thermal
//   ./nocsprint_cli mode=topo topology=ring_circulant ring_skip=4 level=8
//   ./nocsprint_cli mode=serve serve_port=4517 serve_dir=campaign
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "cmp/perf_model.hpp"
#include "common/config.hpp"
#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "fault/fault_injector.hpp"
#include "noc/parallel_sweep.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "power/chip_power.hpp"
#include "power/noc_power.hpp"
#include "serve/server.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/sprint_controller.hpp"
#include "sprint/topology.hpp"
#include "thermal/grid.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;

namespace {

noc::NetworkParams params_from(const Config& cfg) {
  noc::NetworkParams p;
  p.num_classes = static_cast<int>(cfg.get_int("classes", 1));
  p.pipeline_stages = static_cast<int>(cfg.get_int("pipeline", 5));
  p.validate();
  return p;
}

/// Opens/closes the global trace session around a mode when `trace=` is
/// set; a no-op otherwise.
class TraceSession {
 public:
  explicit TraceSession(const Config& cfg)
      : path_(cfg.get_string("trace", "")) {
    if (!path_.empty()) trace::begin(path_);
  }
  ~TraceSession() {
    if (!path_.empty() && trace::end())
      std::printf("trace written to %s (load in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  path_.c_str());
  }

 private:
  std::string path_;
};

int mode_plan(const Config& cfg) {
  const MeshShape mesh(4, 4);
  const cmp::PerfModel perf(mesh.size());
  const power::ChipPowerModel chip{power::ChipPowerParams{}};
  const thermal::PcmModel pcm{thermal::PcmParams{}};
  const sprint::SprintController ctl(mesh, perf, chip, pcm);
  const auto suite = cmp::parsec_suite(mesh.size());
  const auto& w =
      cmp::find_workload(suite, cfg.get_string("workload", "dedup"));

  const std::string scheme = cfg.get_string("scheme", "noc");
  sprint::SprintMode mode = sprint::SprintMode::kNocSprinting;
  if (scheme == "full") mode = sprint::SprintMode::kFullSprinting;
  else if (scheme == "fine") mode = sprint::SprintMode::kFineGrained;
  else if (scheme == "non") mode = sprint::SprintMode::kNonSprinting;
  else if (scheme != "noc") throw std::invalid_argument("bad scheme");

  const sprint::SprintPlan p = ctl.plan(w, mode);
  std::printf("workload     %s\nscheme       %s\nlevel        %d\n",
              p.workload.c_str(), sprint::to_string(p.mode), p.level);
  std::printf("active nodes ");
  for (NodeId id : p.active) std::printf("%d ", id);
  std::printf("\nspeedup      %.2fx\ncore power   %.1f W\n", p.speedup,
              p.core_power);
  std::printf("noc power    %.2f W\nchip power   %.1f W\nduration     ",
              p.noc_power, p.chip_power);
  if (p.sprint_duration >= 10.0) std::printf("sustainable\n");
  else std::printf("%.2f s\n", p.sprint_duration);
  return 0;
}

int mode_simulate(const Config& cfg) {
  install_shutdown_handlers();
  const noc::NetworkParams params = params_from(cfg);
  const int level = static_cast<int>(cfg.get_int("level", 4));
  const std::string traffic = cfg.get_string("traffic", "uniform");
  const std::uint64_t seed = cfg.get_int("seed", 1);
  const bool full = cfg.get_string("scheme", "noc") == "full";

  sprint::NetworkBundle b =
      full ? sprint::make_full_sprinting_network(params, level, traffic, seed)
           : sprint::make_noc_sprinting_network(params, level, traffic, seed);
  const bool protocol = cfg.get_bool("protocol", false);
  if (params.num_classes >= 2 && protocol) b.network->set_request_reply(1, 5);
  // Shard tick() across threads; results are bit-identical for any value
  // (0 defers to NOCS_SIM_THREADS, else serial).
  b.network->set_sim_threads(static_cast<int>(cfg.get_int("sim_threads", 0)));

  noc::SimConfig sim;
  sim.warmup = cfg.get_int("warmup", 2000);
  sim.measure = cfg.get_int("measure", 10000);
  sim.injection_rate = cfg.get_double("injection", 0.1);
  sim.trace_sample = static_cast<Cycle>(cfg.get_int("trace_sample", 256));
  const TraceSession trace_session(cfg);

  const fault::FaultParams fparams = fault::FaultParams::from_config(cfg);
  std::unique_ptr<fault::FaultInjector> injector;
  if (fparams.enabled) {
    injector =
        std::make_unique<fault::FaultInjector>(params.shape(), fparams);
    const noc::ProtectionParams prot = fparams.protection();
    b.network->enable_resilience(injector.get(), &prot);
    sim.watchdog_cycles =
        static_cast<Cycle>(cfg.get_int("watchdog", 50000));
  }

  // Checkpoint/restore: the fault injector's RNG streams are part of the
  // simulation state, so it rides along as an extra snapshot component.
  noc::CheckpointConfig ckpt;
  ckpt.save_path = cfg.get_string("checkpoint", "");
  ckpt.every = static_cast<Cycle>(cfg.get_int("checkpoint_every", 0));
  ckpt.restore_path = cfg.get_string("restore", "");
  // Ctrl-C / SIGTERM: checkpoint (when configured) instead of dying mid-run.
  ckpt.stop_flag = shutdown_flag();
  if (injector != nullptr) ckpt.extras.emplace_back("fault", injector.get());

  if (!ckpt.restore_path.empty())
    std::printf("restoring from %s\n", ckpt.restore_path.c_str());

  const noc::SimResults r = run_simulation(*b.network, sim, ckpt);
  if (r.interrupted && shutdown_requested()) {
    // Keys normally read further down; touch them so reject_unknown()
    // in main() doesn't flag a legitimate report=/metrics= after ^C.
    (void)cfg.get_string("report", "");
    (void)cfg.get_string("metrics", "");
    std::printf("interrupted by signal %d at cycle %llu\n",
                shutdown_signal(),
                static_cast<unsigned long long>(r.cycles));
    if (!ckpt.save_path.empty())
      std::printf("checkpoint flushed to %s; resume with restore=%s\n",
                  ckpt.save_path.c_str(), ckpt.save_path.c_str());
    else
      std::printf("no checkpoint= configured, partial run discarded\n");
    return 130;
  }

  const auto rp = power::RouterPowerParams::from_network(params);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(params.flit_bytes * 8, 2.5, rp.tech,
                                         rp.op);
  const auto power_est =
      power::estimate_noc_power(*b.network, router_model, link_model,
                                r.cycles);

  std::printf("scheme           %s (routing %s)\n", full ? "full" : "noc",
              b.routing->name());
  std::printf("avg latency      %.2f cycles (p50 %.1f, p99 %.1f)\n",
              r.avg_packet_latency, r.p50_latency, r.p99_latency);
  std::printf("avg hops         %.2f\n", r.avg_hops);
  std::printf("accepted rate    %.4f flits/cycle/node\n", r.accepted_rate);
  std::printf("packets          %llu (saturated: %s)\n",
              static_cast<unsigned long long>(r.packets_ejected),
              r.saturated ? "yes" : "no");
  std::printf("network power    %.2f mW (routers %.2f, links %.2f)\n",
              power_est.total() * 1e3, power_est.routers.total() * 1e3,
              (power_est.link_dynamic + power_est.link_leakage) * 1e3);
  if (fparams.enabled) {
    const noc::ResilienceCounters& rs = r.resilience;
    std::printf(
        "resilience       retx %llu (timeouts %llu), corrupted %llu, "
        "dropped %llu, dups %llu\n",
        static_cast<unsigned long long>(rs.retransmissions),
        static_cast<unsigned long long>(rs.timeouts),
        static_cast<unsigned long long>(rs.corrupted_packets),
        static_cast<unsigned long long>(rs.dropped_packets),
        static_cast<unsigned long long>(rs.duplicates));
    std::printf("fault activity   corrupted flits %llu, reroutes %llu, "
                "wake failures %llu\n",
                static_cast<unsigned long long>(r.counters.flits_corrupted),
                static_cast<unsigned long long>(r.counters.reroutes),
                static_cast<unsigned long long>(r.counters.wake_failures));
    if (r.hung)
      std::printf("WATCHDOG FIRED: no flit progress\n%s", r.diagnostic.c_str());
  }

  const std::string report = cfg.get_string("report", "");
  if (!report.empty()) {
    json::Value doc = noc::to_json(r);
    doc.set("mode", "simulate");
    doc.set("scheme", full ? "full" : "noc");
    doc.set("level", level);
    doc.set("traffic", traffic);
    doc.set("injection_rate", sim.injection_rate);
    doc.set("seed", static_cast<std::uint64_t>(seed));
    json::Value pw = json::Value::object();
    pw.set("total_mw", power_est.total() * 1e3);
    pw.set("routers_mw", power_est.routers.total() * 1e3);
    pw.set("links_mw",
           (power_est.link_dynamic + power_est.link_leakage) * 1e3);
    doc.set("power", std::move(pw));
    if (noc::write_report(report, doc))
      std::printf("report written to %s\n", report.c_str());
  }

  const std::string metrics = cfg.get_string("metrics", "");
  if (!metrics.empty()) {
    MetricsRegistry reg;
    r.export_metrics(reg);
    b.network->stats().export_metrics(reg);
    power_est.export_metrics(reg);
    if (reg.write_json(metrics))
      std::printf("metrics written to %s\n", metrics.c_str());
  }
  return 0;
}

int mode_sweep(const Config& cfg) {
  install_shutdown_handlers();
  const noc::NetworkParams params = params_from(cfg);
  const int level = static_cast<int>(cfg.get_int("level", 4));
  const std::string spec = cfg.get_string("rates", "0.05:0.05:0.5");
  double start = 0.05, step = 0.05, end = 0.5;
  if (std::sscanf(spec.c_str(), "%lf:%lf:%lf", &start, &step, &end) != 3)
    throw std::invalid_argument("rates=start:step:end");

  const std::string traffic = cfg.get_string("traffic", "uniform");
  const std::uint64_t seed = cfg.get_int("seed", 1);
  const int threads = static_cast<int>(cfg.get_int("threads", 0));
  const int sim_threads = static_cast<int>(cfg.get_int("sim_threads", 0));
  const fault::FaultParams fparams = fault::FaultParams::from_config(cfg);
  const Cycle watchdog =
      static_cast<Cycle>(cfg.get_int("watchdog", 50000));
  std::vector<double> rates;
  for (double r = start; r <= end + 1e-12; r += step) rates.push_back(r);
  noc::SimConfig sim;
  sim.warmup = 1000;
  sim.measure = 6000;
  sim.trace_sample = static_cast<Cycle>(cfg.get_int("trace_sample", 256));
  const TraceSession trace_session(cfg);
  // checkpoint= names a task manifest: each finished point is recorded
  // immediately, and a re-run with the same arguments replays completed
  // points instead of re-simulating them.
  snapshot::TaskManifest manifest(cfg.get_string("checkpoint", ""),
                                  noc::sweep_fingerprint(rates, seed));
  // One independent network per point, seeded per task: results are
  // identical for any threads= value (threads=1 is the plain serial loop).
  // Fault injection follows the same rule — one injector per point, so
  // fault schedules never depend on scheduling.
  const auto points = noc::resumable_sweep_injection(
      [&](const noc::SweepTask& task) {
        sprint::NetworkBundle b = sprint::make_noc_sprinting_network(
            params, level, traffic, task.seed);
        // Orthogonal to threads=: threads= parallelizes across points,
        // sim_threads= shards each point's tick loop.  Either way the
        // results stay bit-identical to the all-serial sweep.
        b.network->set_sim_threads(sim_threads);
        std::unique_ptr<fault::FaultInjector> injector;
        noc::SimConfig point_sim = sim;
        if (fparams.enabled) {
          injector = std::make_unique<fault::FaultInjector>(params.shape(),
                                                            fparams);
          const noc::ProtectionParams prot = fparams.protection();
          b.network->enable_resilience(injector.get(), &prot);
          point_sim.watchdog_cycles = watchdog;
        }
        point_sim.injection_rate = task.injection_rate;
        // Wire the signal flag into every point: on SIGINT/SIGTERM the
        // running points stop cooperatively and stay off the manifest, so
        // the interrupted sweep resumes exactly where it was killed.
        noc::CheckpointConfig point_ckpt;
        point_ckpt.stop_flag = shutdown_flag();
        return noc::run_simulation(*b.network, point_sim, point_ckpt);
      },
      rates, seed, &manifest, threads, shutdown_flag());

  Table t({"rate", "latency", "p99", "accepted", "saturated"});
  std::size_t finished = 0;
  for (const auto& pt : points) {
    if (pt.results.interrupted) continue;
    ++finished;
    t.add_row({Table::fmt(pt.injection_rate, 3),
               Table::fmt(pt.results.avg_packet_latency, 2),
               Table::fmt(pt.results.p99_latency, 1),
               Table::fmt(pt.results.accepted_rate, 4),
               pt.results.saturated ? "yes" : "no"});
  }
  t.print();

  if (shutdown_requested() && finished < points.size()) {
    (void)cfg.get_string("report", "");
    std::printf("interrupted by signal %d after %zu of %zu point(s)\n",
                shutdown_signal(), finished, points.size());
    if (manifest.enabled())
      std::printf("manifest flushed to %s; re-run the same command to "
                  "resume\n",
                  cfg.get_string("checkpoint", "").c_str());
    else
      std::printf("no checkpoint= manifest configured, finished points "
                  "were discarded\n");
    return 130;
  }

  const std::string report = cfg.get_string("report", "");
  if (!report.empty()) {
    json::Value doc = json::Value::object();
    doc.set("mode", "sweep");
    doc.set("level", level);
    doc.set("traffic", traffic);
    doc.set("seed", static_cast<std::uint64_t>(seed));
    json::Value arr = json::Value::array();
    for (const auto& pt : points) {
      json::Value p = noc::to_json(pt.results);
      p.set("injection_rate", pt.injection_rate);
      arr.push_back(std::move(p));
    }
    doc.set("points", std::move(arr));
    if (noc::write_report(report, doc))
      std::printf("report written to %s\n", report.c_str());
  }
  return 0;
}

int mode_serve(const Config& cfg) {
  // Arm signals before recovery: a SIGTERM during a long ledger replay
  // already drains cleanly.
  install_shutdown_handlers();
  const serve::ServerOptions opts = serve::ServerOptions::from_config(cfg);
  serve::Server server(opts);
  std::printf("serving on %s:%d (state %s, %d worker(s))\n",
              opts.host.c_str(), server.port(), opts.dir.c_str(),
              opts.limits.workers);
  if (server.scheduler().recovered_jobs() > 0)
    std::printf("recovered %zu interrupted job(s) from the ledger\n",
                server.scheduler().recovered_jobs());
  std::fflush(stdout);  // scripts wait for this line before connecting
  server.run();
  std::printf("drained cleanly\n");
  return 0;
}

int mode_topo(const Config& cfg) {
  // topology= picks a generator (docs/TOPOLOGY.md); topology=file loads
  // the documented text format from topo_file=.  The mesh keeps the
  // paper's CDOR; everything else routes on up*/down* tables, and either
  // way the channel-dependency deadlock check gates construction.
  const std::string kind = cfg.get_string("topology", "mesh");
  const int width = static_cast<int>(cfg.get_int("width", 4));
  const int height = static_cast<int>(cfg.get_int("height", 4));
  const int ring_skip = static_cast<int>(cfg.get_int("ring_skip", 4));
  const noc::Topology topo =
      kind == "file"
          ? noc::Topology::from_file(cfg.get_string("topo_file", ""))
          : noc::Topology::make(kind, width, height, ring_skip);

  noc::NetworkParams params = params_from(cfg);
  if (topo.is_mesh()) {
    params.width = topo.mesh_shape().width();
    params.height = topo.mesh_shape().height();
  } else {
    // Only num_nodes() matters off the mesh; keep validate() happy.
    params.width = topo.num_nodes();
    params.height = 1;
  }
  params.validate();

  const int level = static_cast<int>(cfg.get_int("level", 4));
  const std::string traffic = cfg.get_string("traffic", "uniform");
  const std::uint64_t seed = cfg.get_int("seed", 1);
  sprint::TopologyBundle b =
      sprint::make_topology_sprinting_network(params, topo, level, traffic,
                                              seed);

  noc::SimConfig sim;
  sim.warmup = cfg.get_int("warmup", 2000);
  sim.measure = cfg.get_int("measure", 10000);
  sim.injection_rate = cfg.get_double("injection", 0.1);
  const noc::SimResults r = run_simulation(*b.network, sim);

  const auto rp = power::RouterPowerParams::from_network(params);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(params.flit_bytes * 8, 2.5, rp.tech,
                                         rp.op);
  const auto power_est = power::estimate_noc_power(
      *b.network, router_model, link_model, r.cycles);

  std::printf("topology         %s (%d nodes, %zu directed links)\n",
              topo.kind().c_str(), topo.num_nodes(), topo.links().size());
  std::printf("routing          %s\n", b.policy->name());
  std::printf("active nodes     ");
  for (NodeId id : b.endpoints) std::printf("%d ", id);
  std::printf("\ndeadlock check   ok (%d channels, %d dependencies)\n",
              b.deadlock.channels_used, b.deadlock.dependencies);
  std::printf("avg latency      %.2f cycles (p50 %.1f, p99 %.1f)\n",
              r.avg_packet_latency, r.p50_latency, r.p99_latency);
  std::printf("avg hops         %.2f\n", r.avg_hops);
  std::printf("accepted rate    %.4f flits/cycle/node\n", r.accepted_rate);
  std::printf("packets          %llu (saturated: %s)\n",
              static_cast<unsigned long long>(r.packets_ejected),
              r.saturated ? "yes" : "no");
  std::printf("network power    %.2f mW (routers %.2f, links %.2f)\n",
              power_est.total() * 1e3, power_est.routers.total() * 1e3,
              (power_est.link_dynamic + power_est.link_leakage) * 1e3);

  const std::string report = cfg.get_string("report", "");
  if (!report.empty()) {
    json::Value doc = noc::to_json(r);
    doc.set("mode", "topo");
    doc.set("topology", topo.kind());
    doc.set("level", level);
    doc.set("traffic", traffic);
    doc.set("injection_rate", sim.injection_rate);
    doc.set("seed", static_cast<std::uint64_t>(seed));
    doc.set("topology_fingerprint", topo.fingerprint());
    doc.set("deadlock_channels", b.deadlock.channels_used);
    doc.set("deadlock_dependencies", b.deadlock.dependencies);
    if (noc::write_report(report, doc))
      std::printf("report written to %s\n", report.c_str());
  }
  return 0;
}

int mode_thermal(const Config& cfg) {
  const MeshShape mesh(4, 4);
  const int level = static_cast<int>(cfg.get_int("level", 4));
  const bool thermal_fp = cfg.get_string("floorplan", "identity") == "thermal";
  const power::ChipPowerParams chip{};
  const thermal::GridThermalModel model(thermal::GridThermalParams{}, 12.0,
                                        12.0);
  std::vector<Watts> powers(16, chip.core_gated + chip.l2_tile +
                                    chip.noc_gated_node);
  for (NodeId id : sprint::active_set(mesh, level, 0))
    powers[static_cast<std::size_t>(id)] =
        chip.core_active + chip.l2_tile + chip.noc_per_node;
  const auto positions = thermal_fp
                             ? sprint::thermal_aware_floorplan(mesh, 0).positions
                             : sprint::identity_floorplan(mesh).positions;
  const auto field = model.solve_steady(
      thermal::make_cmp_floorplan(mesh, 12.0, 12.0, powers, positions));
  std::printf("level %d, %s floorplan: peak %.2f K, avg %.2f K\n\n", level,
              thermal_fp ? "thermal-aware" : "identity", field.peak(),
              field.average());
  std::printf("%s", thermal::render_heatmap(field, 32, 16).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    const std::string mode = cfg.get_string("mode", "plan");
    int rc = 2;
    if (mode == "plan") rc = mode_plan(cfg);
    else if (mode == "simulate") rc = mode_simulate(cfg);
    else if (mode == "sweep") rc = mode_sweep(cfg);
    else if (mode == "thermal") rc = mode_thermal(cfg);
    else if (mode == "topo") rc = mode_topo(cfg);
    else if (mode == "serve") rc = mode_serve(cfg);
    else {
      std::fprintf(stderr,
                   "unknown mode '%s' "
                   "(plan|simulate|sweep|thermal|topo|serve)\n",
                   mode.c_str());
      return 2;
    }
    // Every knob the mode understands has been queried by now; anything
    // left over is a typo (error out with a near-miss suggestion).
    cfg.reject_unknown();
    return rc;
  } catch (const std::exception& e) {
    std::fflush(stdout);  // keep the error after the mode's buffered output
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
