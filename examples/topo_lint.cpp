// topo_lint — parse and certify topology files without simulating.
//
// Usage: topo_lint <file.topo> [<file.topo> ...]
//
// For each file: parses the documented text format (docs/TOPOLOGY.md),
// validates the graph (reverse-link pairing, port uniqueness,
// connectivity), derives the generalized Algorithm 1 sprint order, and
// runs the channel-dependency-graph deadlock check for up*/down* routing
// at every sprint level.  Exit 0 when every file passes; the CI lint
// `scripts/check_topo_examples.sh` runs it over every example shipped in
// docs/.
#include <cstdio>
#include <exception>

#include "noc/table_routing.hpp"
#include "noc/topology.hpp"
#include "sprint/topology.hpp"

using namespace nocs;

namespace {

bool lint(const char* path) {
  try {
    const noc::Topology topo = noc::Topology::from_file(path);
    for (int level = 2; level <= topo.num_nodes(); ++level) {
      const std::vector<NodeId> active = sprint::active_set(topo, level, 0);
      const noc::TableRouting routing =
          noc::TableRouting::up_down(topo, active, 0);
      const noc::DeadlockCheckResult res =
          noc::check_deadlock_free(topo, routing, active);
      if (!res.ok) {
        std::fprintf(stderr, "%s: level %d deadlock check failed: %s\n",
                     path, level, res.detail.c_str());
        return false;
      }
    }
    std::printf("%s: ok (%s, %d nodes, %zu directed links, levels 2..%d "
                "deadlock-free)\n",
                path, topo.kind().c_str(), topo.num_nodes(),
                topo.links().size(), topo.num_nodes());
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path, e.what());
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: topo_lint <file.topo> [...]\n");
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = lint(argv[i]) && ok;
  return ok ? 0 : 1;
}
