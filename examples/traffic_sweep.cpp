// Traffic sweep: exercise the cycle-accurate NoC directly.
//
// For every synthetic traffic pattern and a set of sprint levels, runs the
// NoC-sprinting network (CDOR + gated dark region) and the full-sprinting
// baseline, printing latency and network power side by side.  Useful for
// exploring where CDOR's compact-region advantage is largest (answer:
// low levels, locality-free patterns).
//
// Run:  ./traffic_sweep [injection=0.15] [seed=3]
#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "noc/simulator.hpp"
#include "power/noc_power.hpp"
#include "sprint/network_builder.hpp"

using namespace nocs;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double injection = cfg.get_double("injection", 0.15);
  const std::uint64_t seed = cfg.get_int("seed", 3);

  noc::NetworkParams params;  // Table 1 defaults
  const auto rp = power::RouterPowerParams::from_network(params);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(params.flit_bytes * 8, 2.5, rp.tech,
                                         rp.op);

  noc::SimConfig sim;
  sim.warmup = 1000;
  sim.measure = 6000;
  sim.injection_rate = injection;

  std::printf("offered load %.2f flits/cycle/endpoint\n\n", injection);

  Table t({"traffic", "level", "noc lat", "full lat", "lat cut", "noc mW",
           "full mW", "power cut"});
  for (const char* traffic :
       {"uniform", "neighbor", "transpose", "bitcomp", "hotspot"}) {
    for (int level : {4, 8, 16}) {
      auto nb = sprint::make_noc_sprinting_network(params, level, traffic,
                                                   seed);
      const noc::SimResults rn = run_simulation(*nb.network, sim);
      const Watts pn = power::estimate_noc_power(*nb.network, router_model,
                                                 link_model, rn.cycles)
                           .total();

      auto fb = sprint::make_full_sprinting_network(params, level, traffic,
                                                    seed);
      const noc::SimResults rf = run_simulation(*fb.network, sim);
      const Watts pf = power::estimate_noc_power(*fb.network, router_model,
                                                 link_model, rf.cycles)
                           .total();

      t.add_row({traffic, Table::fmt(static_cast<long long>(level)),
                 rn.saturated ? "sat" : Table::fmt(rn.avg_packet_latency, 1),
                 rf.saturated ? "sat" : Table::fmt(rf.avg_packet_latency, 1),
                 (rn.saturated || rf.saturated)
                     ? "-"
                     : Table::pct(1.0 - rn.avg_packet_latency /
                                            rf.avg_packet_latency),
                 Table::fmt(pn * 1e3, 1), Table::fmt(pf * 1e3, 1),
                 Table::pct(1.0 - pn / pf)});
    }
  }
  t.print();

  std::printf(
      "\nreading the table: the latency cut shrinks as the sprint level\n"
      "approaches 16 (at level 16 both schemes use the whole mesh), while\n"
      "the power cut tracks how much of the network can be gated.\n");
  return 0;
}
