// Online sprint-level adaptation demo.
//
// The paper profiles PARSEC off-line to find each workload's optimal
// sprint level.  This example shows the run-time alternative: a
// hill-climbing controller that converges to (near) the same level using
// only observed burst execution times — no a priori knowledge — and then
// tracks a workload phase change.
//
// Run:  ./online_adaptation [workload=vips] [noise=0.02] [seed=4]
#include <cstdio>

#include "cmp/perf_model.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sprint/online_adapt.hpp"

using namespace nocs;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::string name = cfg.get_string("workload", "vips");
  const double noise = cfg.get_double("noise", 0.02);
  Rng rng(cfg.get_int("seed", 4));

  const cmp::PerfModel perf(16);
  const auto suite = cmp::parsec_suite(16);
  const cmp::WorkloadParams* workload = &cmp::find_workload(suite, name);
  const cmp::WorkloadParams* phase2 =
      &cmp::find_workload(suite, cfg.get_string("phase2", "blackscholes"));

  sprint::OnlineLevelController ctl(16, /*start_level=*/1, /*step=*/2,
                                    /*reprobe_period=*/6);

  std::printf("workload %s (true optimum %d), switching to %s (optimum %d) "
              "at burst 20; measurement noise +-%.0f%%\n\n",
              workload->name.c_str(), perf.optimal_level(*workload),
              phase2->name.c_str(), perf.optimal_level(*phase2),
              noise * 100.0);

  Table t({"burst", "level used", "observed T", "state"});
  for (int burst = 0; burst < 40; ++burst) {
    if (burst == 20) workload = phase2;  // workload phase change
    const int level = ctl.next_level();
    const double truth = perf.exec_time(*workload, level);
    const double observed =
        truth * (1.0 + noise * (2.0 * rng.uniform() - 1.0));
    ctl.observe(observed);
    t.add_row({Table::fmt(static_cast<long long>(burst)),
               Table::fmt(static_cast<long long>(level)),
               Table::fmt(observed, 3),
               ctl.converged() ? "locked" : "probing"});
  }
  t.print();

  std::printf("\nfinal level %d vs off-line optimum %d\n", ctl.next_level(),
              perf.optimal_level(*workload));
  return 0;
}
