// Quickstart: the 60-second tour of the NoC-sprinting API.
//
// Builds the paper's 16-core / 4x4-mesh system, asks the sprint controller
// to plan a burst of `dedup`, and prints what each sprinting scheme would
// do — level, speedup, power, and how long the sprint can last.
//
// Run:  ./quickstart [workload=dedup]
#include <cstdio>

#include "cmp/perf_model.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "power/chip_power.hpp"
#include "sprint/sprint_controller.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::string name = cfg.get_string("workload", "dedup");

  // 1. The machine: Table 1 of the paper — 16 cores on a 4x4 mesh.
  const MeshShape mesh(4, 4);

  // 2. The models: calibrated performance, chip power, and PCM thermal.
  const cmp::PerfModel perf(mesh.size());
  const power::ChipPowerModel chip{power::ChipPowerParams{}};
  const thermal::PcmModel pcm{thermal::PcmParams{}};

  // 3. The controller ties them together (master = node 0, next to the
  //    memory controller).
  const sprint::SprintController controller(mesh, perf, chip, pcm);

  // 4. Pick a workload (one of the 11 calibrated PARSEC benchmarks).
  const auto suite = cmp::parsec_suite(mesh.size());
  const cmp::WorkloadParams& workload = cmp::find_workload(suite, name);

  std::printf("workload: %s (serial fraction %.2f)\n\n",
              workload.name.c_str(), workload.serial_frac);

  Table t({"scheme", "cores", "speedup", "core power (W)", "NoC power (W)",
           "chip power (W)", "sprint duration (s)"});
  for (const auto mode :
       {sprint::SprintMode::kNonSprinting, sprint::SprintMode::kFullSprinting,
        sprint::SprintMode::kFineGrained, sprint::SprintMode::kNocSprinting}) {
    const sprint::SprintPlan p = controller.plan(workload, mode);
    t.add_row({sprint::to_string(mode),
               Table::fmt(static_cast<long long>(p.level)),
               Table::fmt(p.speedup, 2) + "x", Table::fmt(p.core_power, 1),
               Table::fmt(p.noc_power, 2), Table::fmt(p.chip_power, 1),
               p.sprint_duration >= 10.0 ? "sustainable"
                                         : Table::fmt(p.sprint_duration, 2)});
  }
  t.print();

  const sprint::SprintPlan plan =
      controller.plan(workload, sprint::SprintMode::kNocSprinting);
  std::printf("\nNoC-sprinting activates nodes:");
  for (NodeId id : plan.active) std::printf(" %d", id);
  std::printf("  (Algorithm 1 order from the master)\n");
  return 0;
}
