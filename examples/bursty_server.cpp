// Bursty interactive server — the scenario that motivates computational
// sprinting: a mostly-idle chip receives short bursts of work with varied
// parallelism, and responsiveness (time to finish each burst) is what
// users feel.
//
// We replay a randomized timeline of bursts drawn from the PARSEC suite
// and compare three policies end to end: never sprint, always
// full-sprint, and NoC-sprint at each burst's optimal level.  For each
// policy we account burst completion time (scaled by the perf model),
// whether the sprint survived the burst (PCM budget), and the energy
// spent.  NoC-sprinting wins on all three at once — the paper's thesis.
//
// Run:  ./bursty_server [bursts=20] [seed=1] [burst_work=0.35]
#include <cstdio>
#include <vector>

#include "cmp/perf_model.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "power/chip_power.hpp"
#include "sprint/sprint_controller.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;

namespace {

struct PolicyTotals {
  double completion_s = 0.0;  ///< summed burst completion time
  double energy_j = 0.0;      ///< summed chip energy over the bursts
  int truncated = 0;          ///< bursts that outlived the sprint budget
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int bursts = static_cast<int>(cfg.get_int("bursts", 20));
  const std::uint64_t seed = cfg.get_int("seed", 1);
  // Work per burst: seconds it would take on the single nominal core.
  const double burst_work = cfg.get_double("burst_work", 0.35);

  const MeshShape mesh(4, 4);
  const cmp::PerfModel perf(mesh.size());
  const power::ChipPowerModel chip{power::ChipPowerParams{}};
  const thermal::PcmModel pcm{thermal::PcmParams{}};
  const sprint::SprintController controller(mesh, perf, chip, pcm);
  const auto suite = cmp::parsec_suite(mesh.size());

  Rng rng(seed);
  std::vector<const cmp::WorkloadParams*> timeline;
  for (int i = 0; i < bursts; ++i)
    timeline.push_back(
        &suite[static_cast<std::size_t>(rng.uniform_int(suite.size()))]);

  std::printf("replaying %d bursts of %.2f s nominal work each\n\n", bursts,
              burst_work);

  const sprint::SprintMode policies[] = {sprint::SprintMode::kNonSprinting,
                                         sprint::SprintMode::kFullSprinting,
                                         sprint::SprintMode::kNocSprinting};
  Table t({"policy", "total completion (s)", "avg speedup", "energy (J)",
           "bursts truncated by thermals"});
  for (const auto mode : policies) {
    PolicyTotals totals;
    for (const cmp::WorkloadParams* w : timeline) {
      const sprint::SprintPlan p = controller.plan(*w, mode);
      // Time to finish this burst at the chosen level.
      double finish = burst_work * p.exec_time;
      // If the sprint budget runs out first, the chip falls back to one
      // core for the remainder (the paper's t_one event in Figure 1).
      if (finish > p.sprint_duration) {
        const double done_frac = p.sprint_duration / finish;
        finish = p.sprint_duration + burst_work * (1.0 - done_frac);
        ++totals.truncated;
      }
      totals.completion_s += finish;
      totals.energy_j += p.chip_power * finish;
    }
    t.add_row({sprint::to_string(mode), Table::fmt(totals.completion_s, 2),
               Table::fmt(burst_work * bursts / totals.completion_s, 2) + "x",
               Table::fmt(totals.energy_j, 0),
               Table::fmt(static_cast<long long>(totals.truncated))});
  }
  t.print();

  std::printf(
      "\nNoC-sprinting finishes bursts fastest AND with the least energy:\n"
      "it allocates only the parallelism each burst can use, so the PCM\n"
      "budget lasts longer and the dark region stops leaking.\n");
  return 0;
}
