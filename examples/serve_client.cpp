// serve_client — minimal client for the mode=serve daemon.
//
// Sends one request line over TCP and prints the reply; with wait=true a
// successful submit is followed by a `wait` so the command blocks until
// the job finishes (how scripts run a whole campaign through the daemon).
// op=watch (or watch=true after a submit) streams progress frames — one
// JSON line each — until the final status line arrives.
//
// Keys:
//   host=127.0.0.1       daemon address
//   port=4517            daemon port (or port_file=path written by the
//                        daemon's serve_port_file=)
//   op=status            submit | job | wait | watch | status | metrics |
//                        drain | ping
//   kind=sweep           submit only: simulate | sweep | selftest
//   priority=normal      submit only: high | normal | low
//   job=job-1            job/wait/watch: the job to query
//   timeout_ms=60000     wait only
//   nowait=false         wait only: non-blocking poll (timeout_ms=0)
//   every_ms=0           watch only: progress cadence (server enforces
//                        its serve_progress_every_ms floor)
//   wait=false           submit only: block until the job is terminal
//   watch=false          submit only: stream progress until terminal
//   every other key      submit only: forwarded as a job parameter
//                        (level=8 rates=0.05:0.05:0.5 seed=1 ...)
//
// Examples:
//   ./serve_client port=4517 op=submit kind=sweep level=8 wait=true
//   ./serve_client port=4517 op=submit kind=sweep level=8 watch=true
//   ./serve_client port=4517 op=watch job=job-1 every_ms=250
//   ./serve_client port=4517 op=status
//   ./serve_client port=4517 op=drain
//
// Exit status: 0 when every reply has "ok": true, 1 otherwise.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>

#include "common/config.hpp"
#include "common/json.hpp"

using namespace nocs;

namespace {

/// Keys the client consumes itself; everything else becomes a job param.
const std::set<std::string>& reserved_keys() {
  static const std::set<std::string> keys = {
      "host", "port",     "port_file",  "op",   "kind",  "job",
      "priority", "timeout_ms", "nowait", "wait", "watch", "every_ms"};
  return keys;
}

int connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("cannot create socket");
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  return fd;
}

void send_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("write failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string read_line(int fd) {
  std::string line;
  char c;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("read failed");
    }
    if (n == 0) throw std::runtime_error("daemon closed the connection");
    if (c == '\n') return line;
    line += c;
  }
}

/// One round trip; prints the reply and returns it.
json::Value round_trip(int fd, const json::Value& request) {
  send_line(fd, request.dump());
  const std::string reply = read_line(fd);
  std::printf("%s\n", reply.c_str());
  return json::Value::parse(reply);
}

/// A watch round trip: prints every streamed progress frame (lines with
/// an "event" field) and returns the final status line.
json::Value watch_stream(int fd, const json::Value& request) {
  send_line(fd, request.dump());
  while (true) {
    const std::string reply = read_line(fd);
    std::printf("%s\n", reply.c_str());
    std::fflush(stdout);  // frames should appear live, not at exit
    json::Value doc = json::Value::parse(reply);
    if (doc.find("event") == nullptr) return doc;
  }
}

int resolve_port(const Config& cfg) {
  const std::string port_file = cfg.get_string("port_file", "");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f == nullptr)
      throw std::runtime_error("cannot read port file " + port_file);
    int port = 0;
    const int got = std::fscanf(f, "%d", &port);
    std::fclose(f);
    if (got != 1 || port <= 0)
      throw std::runtime_error(port_file + " does not contain a port");
    return port;
  }
  const int port = static_cast<int>(cfg.get_int("port", 0));
  if (port <= 0)
    throw std::runtime_error("pass port= or port_file= (see mode=serve)");
  return port;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    const std::string host = cfg.get_string("host", "127.0.0.1");
    const int port = resolve_port(cfg);
    const std::string op = cfg.get_string("op", "status");

    json::Value request = json::Value::object();
    request.set("op", op);
    if (op == "submit") {
      request.set("kind", cfg.get_string("kind", "sweep"));
      request.set("priority", cfg.get_string("priority", "normal"));
      json::Value params = json::Value::object();
      for (const std::string& key : cfg.keys())
        if (reserved_keys().count(key) == 0)
          params.set(key, cfg.get_string(key, ""));
      request.set("params", std::move(params));
    } else if (op == "job" || op == "wait" || op == "watch") {
      request.set("job", cfg.get_string("job", ""));
      const long long t = cfg.get_int("timeout_ms", 0);
      if (t > 0) request.set("timeout_ms", static_cast<double>(t));
      if (cfg.get_bool("nowait", false)) request.set("nowait", true);
      const long long every = cfg.get_int("every_ms", 0);
      if (every > 0) request.set("every_ms", static_cast<double>(every));
    }

    const int fd = connect_to(host, port);
    json::Value reply = op == "watch" ? watch_stream(fd, request)
                                      : round_trip(fd, request);
    bool ok = reply.at("ok").as_bool();

    // wait=true / watch=true: follow an accepted submit with a blocking
    // wait (or a progress stream) on the same connection, so one command
    // runs a campaign to completion.
    const bool follow_watch = cfg.get_bool("watch", false);
    if (ok && op == "submit" && (follow_watch || cfg.get_bool("wait", false))) {
      const json::Value* cached = reply.find("cached");
      if (cached == nullptr || !cached->as_bool()) {
        json::Value follow = json::Value::object();
        follow.set("op", follow_watch ? "watch" : "wait");
        follow.set("job", reply.at("job").as_string());
        const long long t = cfg.get_int("timeout_ms", 0);
        if (!follow_watch && t > 0)
          follow.set("timeout_ms", static_cast<double>(t));
        const long long every = cfg.get_int("every_ms", 0);
        if (follow_watch && every > 0)
          follow.set("every_ms", static_cast<double>(every));
        reply = follow_watch ? watch_stream(fd, follow)
                             : round_trip(fd, follow);
        ok = reply.at("ok").as_bool();
        const json::Value* state = reply.find("state");
        if (state != nullptr && state->is_string() &&
            state->as_string() != "done")
          ok = false;
      }
    }
    ::close(fd);
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
