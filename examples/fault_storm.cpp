// fault_storm — sweeps fault intensity on a sprinting NoC and reports how
// throughput and latency degrade while the end-to-end protection keeps
// delivery lossless, then shows the sprint controller degrading gracefully
// around failed nodes.
//
// Build & run:  cmake --build build --target fault_storm && ./build/examples/fault_storm
#include <cstdio>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/topology.hpp"

using namespace nocs;

int main() {
  noc::NetworkParams params;
  const int level = 8;

  std::printf("fault storm on a level-%d NoC-sprinting network (%dx%d)\n\n",
              level, params.width, params.height);

  // Part 1: fault-rate sweep.  Each point combines transient bit flips,
  // injection drops, and periodic link outages at a common intensity; the
  // protection layer retransmits until everything is delivered, so the
  // cost shows up as latency/throughput, never as loss.
  Table t({"flip_rate", "drop_rate", "latency", "p99", "accepted", "retx",
           "corrupt", "reroutes", "delivered", "hung"});
  for (const double s : {0.0, 1e-5, 1e-4, 1e-3, 5e-3}) {
    sprint::NetworkBundle b =
        sprint::make_noc_sprinting_network(params, level, "uniform", 1);
    fault::FaultParams fp;
    fp.enabled = s > 0.0;
    fp.seed = 42;
    fp.flip_rate = s;
    fp.drop_rate = s;
    fp.link_down_rate = s / 10.0;
    fp.link_down_cycles = 50;

    noc::SimConfig sim;
    sim.warmup = 1000;
    sim.measure = 5000;
    sim.injection_rate = 0.1;

    std::unique_ptr<fault::FaultInjector> injector;
    if (fp.enabled) {
      injector = std::make_unique<fault::FaultInjector>(params.shape(), fp);
      const noc::ProtectionParams prot = fp.protection();
      b.network->enable_resilience(injector.get(), &prot);
      sim.watchdog_cycles = 20000;
    }

    const noc::SimResults r = run_simulation(*b.network, sim);
    const bool lossless = r.packets_ejected >= r.packets_generated;
    t.add_row({Table::fmt(fp.flip_rate, 5), Table::fmt(fp.drop_rate, 5),
               Table::fmt(r.avg_packet_latency, 2),
               Table::fmt(r.p99_latency, 1), Table::fmt(r.accepted_rate, 4),
               std::to_string(r.resilience.retransmissions),
               std::to_string(r.counters.flits_corrupted),
               std::to_string(r.counters.reroutes),
               lossless ? "all" : "LOST", r.hung ? "yes" : "no"});
  }
  t.print();

  // Part 2: graceful degradation.  When a node is stuck or its power-gate
  // wake-up fails permanently, the sprint region shrinks to the largest
  // healthy prefix of Algorithm 1's order — still convex, so CDOR stays
  // valid without re-derivation.
  std::printf("\ngraceful degradation (sprint level %d requested)\n", level);
  const MeshShape mesh = params.shape();
  const auto order = sprint::sprint_order(mesh, 0);
  const std::vector<std::vector<NodeId>> failure_sets = {
      {},
      {order[6]},
      {order[3]},
      {order[3], order[6]},
      {order[1]},
  };
  Table d({"failed nodes", "degraded level", "active set", "convex"});
  for (const auto& failed : failure_sets) {
    const auto healthy =
        sprint::largest_healthy_prefix(mesh, level, failed, 0);
    std::string failed_str, active_str;
    for (NodeId id : failed)
      failed_str += (failed_str.empty() ? "" : ",") + std::to_string(id);
    for (NodeId id : healthy)
      active_str += (active_str.empty() ? "" : ",") + std::to_string(id);
    d.add_row({failed_str.empty() ? "-" : failed_str,
               std::to_string(healthy.size()),
               active_str,
               !healthy.empty() && sprint::is_convex_region(mesh, healthy)
                   ? "yes"
                   : "-"});
  }
  d.print();
  return 0;
}
