// Figure 14 (extension) — Algorithm 1 sprint-set selection on arbitrary
// topologies.
//
// The paper evaluates NoC-sprinting on a 4x4 mesh only.  With the
// topology-agnostic core (noc::Topology + RoutingPolicy) the same
// powered-closure selection runs on any connected graph: per topology the
// generalized Algorithm 1 grows a connected sprint region by floorplan
// distance, routing is CDOR on the mesh and up*/down* tables elsewhere,
// and every (topology, level) pair must pass the channel-dependency-graph
// deadlock check before a single flit moves.
//
// The sweep compares the mesh against a ring-circulant (sparser, cheaper
// wiring) and a Hamming/rook's graph (denser, richer path diversity) under
// uniform traffic and under a DRAM-bound analogue (hotspot at the master,
// modeling memory-controller pressure), and reports the level Algorithm 1
// would select for time and for energy on each graph.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "power/noc_power.hpp"
#include "sprint/network_builder.hpp"

using namespace nocs;

namespace {

struct RunResult {
  int level = 0;
  std::string traffic;
  double latency = 0.0;
  bool saturated = false;
  double power_w = 0.0;
  double energy_j = 0.0;
  int deadlock_channels = 0;
  int deadlock_deps = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams mesh_net = bench::network_params(cfg);
  bench::banner("Figure 14: sprint-set selection across topologies",
                "generalized Algorithm 1 + deadlock-checked routing on "
                "mesh, ring-circulant, and Hamming graphs",
                mesh_net);

  const int n = mesh_net.num_nodes();
  const std::uint64_t seed = cfg.get_int("seed", 7);
  const int ring_skip = static_cast<int>(cfg.get_int("ring_skip", 4));
  noc::SimConfig sim;
  sim.warmup = 2000;
  sim.measure = 8000;
  sim.drain_max = 40000;
  sim.injection_rate = cfg.get_double("injection_rate", 0.10);

  std::vector<int> levels;
  for (int l : {2, 4, 8, 16})
    if (l <= n) levels.push_back(l);
  const std::vector<std::string> traffics = {"uniform", "hotspot"};

  const power::RouterPowerParams rp =
      power::RouterPowerParams::from_network(mesh_net);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(mesh_net.flit_bytes * 8, 2.5,
                                         rp.tech, rp.op);

  struct TopoCase {
    std::string label;
    noc::Topology topo;
    noc::NetworkParams params;
  };
  // Non-mesh graphs use a 1 x n NetworkParams: only num_nodes() matters to
  // the topology constructor, and the power model keys off per-node degree.
  noc::NetworkParams flat_net = mesh_net;
  flat_net.width = n;
  flat_net.height = 1;
  std::vector<TopoCase> cases;
  cases.push_back({"mesh", noc::Topology::mesh(mesh_net.width,
                                               mesh_net.height),
                   mesh_net});
  cases.push_back({"ring_circulant",
                   noc::Topology::ring_circulant(n, ring_skip), flat_net});
  cases.push_back({"hamming",
                   noc::Topology::hamming(mesh_net.height, mesh_net.width),
                   flat_net});

  json::Value topo_docs = json::Value::array();
  std::vector<std::pair<std::string, double>> metrics;
  int deadlock_passes = 0, deadlock_total = 0;

  for (const TopoCase& tc : cases) {
    std::printf("\n--- topology: %s (%d nodes, %zu directed links) ---\n",
                tc.label.c_str(), tc.topo.num_nodes(),
                tc.topo.links().size());
    std::vector<RunResult> rows;
    for (int level : levels) {
      for (const std::string& traffic : traffics) {
        auto b = sprint::make_topology_sprinting_network(
            tc.params, tc.topo, level, traffic, seed);
        ++deadlock_total;
        if (b.deadlock.ok) ++deadlock_passes;
        const noc::SimResults r = noc::run_simulation(*b.network, sim);
        RunResult row;
        row.level = level;
        row.traffic = traffic;
        row.latency = r.avg_packet_latency;
        row.saturated = r.saturated;
        row.power_w = power::estimate_noc_power(*b.network, router_model,
                                                link_model, r.cycles)
                          .total();
        row.energy_j =
            row.power_w * static_cast<double>(r.cycles) / rp.op.frequency;
        row.deadlock_channels = b.deadlock.channels_used;
        row.deadlock_deps = b.deadlock.dependencies;
        rows.push_back(std::move(row));
      }
    }

    Table t({"level", "traffic", "latency (cyc)", "power (mW)",
             "energy (uJ)", "CDG chans", "CDG deps", "routing"});
    for (const RunResult& r : rows)
      t.add_row({Table::fmt(static_cast<long long>(r.level)), r.traffic,
                 r.saturated ? "sat" : Table::fmt(r.latency, 2),
                 Table::fmt(r.power_w * 1e3, 2),
                 Table::fmt(r.energy_j * 1e6, 2),
                 Table::fmt(static_cast<long long>(r.deadlock_channels)),
                 Table::fmt(static_cast<long long>(r.deadlock_deps)),
                 tc.topo.is_mesh() ? "cdor" : "updown"});
    t.print();

    json::Value topo_doc = json::Value::object();
    topo_doc.set("topology", tc.label);
    topo_doc.set("links", static_cast<std::uint64_t>(tc.topo.links().size()));
    json::Value row_docs = json::Value::array();
    for (const std::string& traffic : traffics) {
      int best_time = -1, best_energy = -1;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const RunResult& r = rows[i];
        if (r.traffic != traffic || r.saturated) continue;
        if (best_time < 0 ||
            r.latency < rows[static_cast<std::size_t>(best_time)].latency)
          best_time = static_cast<int>(i);
        if (best_energy < 0 ||
            r.energy_j <
                rows[static_cast<std::size_t>(best_energy)].energy_j)
          best_energy = static_cast<int>(i);
      }
      if (best_time >= 0) {
        const int lvl = rows[static_cast<std::size_t>(best_time)].level;
        metrics.emplace_back(
            "fig14." + tc.label + "." + traffic + ".time_optimal_level",
            lvl);
        topo_doc.set(traffic + "_time_optimal_level", lvl);
      }
      if (best_energy >= 0) {
        const int lvl = rows[static_cast<std::size_t>(best_energy)].level;
        metrics.emplace_back(
            "fig14." + tc.label + "." + traffic + ".energy_optimal_level",
            lvl);
        topo_doc.set(traffic + "_energy_optimal_level", lvl);
      }
    }
    for (const RunResult& r : rows) {
      json::Value row = json::Value::object();
      row.set("level", r.level);
      row.set("traffic", r.traffic);
      row.set("latency", r.latency);
      row.set("saturated", r.saturated);
      row.set("power_w", r.power_w);
      row.set("energy_j", r.energy_j);
      row.set("cdg_channels", r.deadlock_channels);
      row.set("cdg_dependencies", r.deadlock_deps);
      row_docs.push_back(std::move(row));
      if (!r.saturated)
        metrics.emplace_back("fig14." + tc.label + ".level" +
                                 std::to_string(r.level) + "." + r.traffic +
                                 ".latency",
                             r.latency);
    }
    topo_doc.set("runs", std::move(row_docs));
    topo_docs.push_back(std::move(topo_doc));
  }

  bench::headline(
      "deadlock checks passed (topology x level x traffic)",
      "all (the check gates construction)",
      Table::fmt(static_cast<long long>(deadlock_passes)) + " of " +
          Table::fmt(static_cast<long long>(deadlock_total)));

  json::Value doc = json::Value::object();
  doc.set("figure", "fig14_topology_sprint");
  doc.set("config", bench::to_json(mesh_net));
  doc.set("seed", static_cast<std::uint64_t>(seed));
  doc.set("ring_skip", ring_skip);
  doc.set("injection_rate", sim.injection_rate);
  doc.set("topologies", std::move(topo_docs));
  bench::maybe_write_report(cfg, std::move(doc));

  const std::string bench_json = cfg.get_string("bench_json", "");
  if (!bench_json.empty()) {
    bench::merge_bench_json(bench_json, metrics);
    std::printf("bench metrics merged into %s\n", bench_json.c_str());
  }
  return 0;
}
