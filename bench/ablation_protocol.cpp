// Ablation — synthetic uniform traffic vs cache-shaped request/reply
// traffic.
//
// The paper's PARSEC network numbers come from gem5's MESI traffic; our
// Figures 9/10 approximate it with uniform single-class packets.  This
// ablation re-runs the NoC-sprinting vs full-sprinting comparison with a
// structured protocol load — short class-0 requests to address-
// interleaved LLC banks plus memory-controller traffic at the master, and
// 5-flit class-1 data replies — to check the paper's conclusions are not
// an artifact of the uniform-traffic simplification.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/simulator.hpp"
#include "power/noc_power.hpp"
#include "sprint/cdor.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/topology.hpp"

using namespace nocs;
using namespace nocs::sprint;

namespace {

struct Result {
  double latency;
  Watts power;
};

Result run_one(noc::Network& net, const noc::SimConfig& sim,
               const power::RouterPowerModel& router_model,
               const power::LinkPowerModel& link_model) {
  const noc::SimResults r = run_simulation(net, sim);
  return {r.avg_packet_latency,
          power::estimate_noc_power(net, router_model, link_model, r.cycles)
              .total()};
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  noc::NetworkParams params = bench::network_params(cfg);
  params.num_classes = 2;  // request + response virtual networks
  bench::banner("Ablation: uniform vs cache request/reply traffic",
                "does the NoC-sprinting advantage survive protocol-shaped "
                "load? (1-flit requests, 5-flit replies, MC hotspot)",
                params);

  const std::uint64_t seed = cfg.get_int("seed", 29);
  const auto rp = power::RouterPowerParams::from_network(params);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(params.flit_bytes * 8, 2.5, rp.tech,
                                         rp.op);
  noc::SimConfig sim;
  sim.warmup = 1000;
  sim.measure = 6000;
  sim.injection_rate = cfg.get_double("injection", 0.08);

  const double base_rate = sim.injection_rate;
  Table t({"traffic", "level", "noc lat", "full lat", "lat cut", "noc mW",
           "full mW", "power cut"});
  for (const bool protocol : {false, true}) {
    // Each 1-flit request begets a 5-flit reply: scale the offered request
    // rate so total flit load matches the uniform rows.
    sim.injection_rate = protocol ? base_rate / 6.0 : base_rate;
    for (int level : {4, 8}) {
      // NoC-sprinting configuration.
      const auto active = active_set(params.shape(), level, 0);
      CdorRouting cdor(params.shape(), active, 0);
      noc::Network noc_net(params, &cdor);
      noc_net.set_endpoints(active,
                            noc::make_traffic(protocol ? "cache" : "uniform",
                                              level));
      if (protocol) noc_net.set_request_reply(1, 5);
      noc_net.gate_dark_region(active);
      noc_net.set_seed(seed);
      const Result rn = run_one(noc_net, sim, router_model, link_model);

      // Full-sprinting configuration (random endpoint mapping).
      auto full = make_full_sprinting_network(params, level,
                                              protocol ? "cache" : "uniform",
                                              seed);
      if (protocol) full.network->set_request_reply(1, 5);
      const Result rf = run_one(*full.network, sim, router_model, link_model);

      t.add_row({protocol ? "cache req/reply" : "uniform",
                 Table::fmt(static_cast<long long>(level)),
                 Table::fmt(rn.latency, 2), Table::fmt(rf.latency, 2),
                 Table::pct(1.0 - rn.latency / rf.latency),
                 Table::fmt(rn.power * 1e3, 1), Table::fmt(rf.power * 1e3, 1),
                 Table::pct(1.0 - rn.power / rf.power)});
    }
  }
  t.print();

  bench::headline(
      "conclusion robustness",
      "latency/power advantages hold under protocol traffic",
      "cuts at matching levels are similar for uniform and cache-shaped "
      "request/reply load");
  return 0;
}
