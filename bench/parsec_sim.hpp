// Shared simulation driver for the PARSEC network experiments (Figures 9
// and 10) — a thin adapter over the library's sprint::cosimulate().
#pragma once

#include <string>
#include <vector>

#include "cmp/perf_model.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/snapshot.hpp"
#include "sprint/cosim.hpp"

namespace nocs::bench {

struct ParsecNetResult {
  int level = 0;
  double full_latency = 0.0;
  double noc_latency = 0.0;
  Watts full_power = 0.0;
  Watts noc_power = 0.0;
};

/// Manifest payload for one benchmark (bit-exact double round-trip).
inline json::Value to_json(const ParsecNetResult& r) {
  json::Value o = json::Value::object();
  o.set("level", r.level);
  o.set("full_latency", r.full_latency);
  o.set("noc_latency", r.noc_latency);
  o.set("full_power", r.full_power);
  o.set("noc_power", r.noc_power);
  return o;
}

inline ParsecNetResult parsec_net_result_from_json(const json::Value& v) {
  ParsecNetResult r;
  r.level = static_cast<int>(v.at("level").as_number());
  r.full_latency = v.at("full_latency").as_number();
  r.noc_latency = v.at("noc_latency").as_number();
  r.full_power = v.at("full_power").as_number();
  r.noc_power = v.at("noc_power").as_number();
  return r;
}

/// Manifest fingerprint for a PARSEC suite run: mesh shape, suite size,
/// and seed.  A manifest written under different arguments starts fresh.
inline std::string parsec_suite_fingerprint(
    const noc::NetworkParams& params,
    const std::vector<cmp::WorkloadParams>& suite, std::uint64_t seed) {
  return "parsec-suite:mesh=" + std::to_string(params.width) + "x" +
         std::to_string(params.height) +
         ";n=" + std::to_string(suite.size()) +
         ";seed=" + std::to_string(seed);
}

inline ParsecNetResult run_parsec_network(const noc::NetworkParams& params,
                                          const cmp::WorkloadParams& w,
                                          const cmp::PerfModel& pm,
                                          std::uint64_t seed,
                                          int num_threads = 0) {
  sprint::CosimConfig cfg;
  cfg.seed = seed;
  cfg.num_threads = num_threads;
  const sprint::CosimResult r = sprint::cosimulate(params, w, pm, cfg);
  ParsecNetResult out;
  out.level = r.level;
  out.full_latency = r.full_latency;
  out.noc_latency = r.noc_latency;
  out.full_power = r.full_noc_power;
  out.noc_power = r.noc_noc_power;
  return out;
}

/// Runs the whole suite with one worker per benchmark (each co-simulation
/// stays serial internally).  Every benchmark uses the same fixed `seed`
/// and its own networks, so results are identical to the serial loop no
/// matter the thread count.
inline std::vector<ParsecNetResult> run_parsec_suite(
    const noc::NetworkParams& params,
    const std::vector<cmp::WorkloadParams>& suite, const cmp::PerfModel& pm,
    std::uint64_t seed, int num_threads = 0,
    snapshot::TaskManifest* manifest = nullptr) {
  std::vector<ParsecNetResult> results(suite.size());
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (manifest != nullptr && manifest->enabled() && manifest->completed(i))
      results[i] = parsec_net_result_from_json(manifest->result(i));
    else
      todo.push_back(i);
  }
  if (manifest != nullptr && manifest->enabled() && !todo.empty() &&
      todo.size() < suite.size())
    std::printf("resuming: %zu/%zu benchmarks already completed\n",
                suite.size() - todo.size(), suite.size());
  ParallelFor(
      todo.size(),
      [&](std::size_t k) {
        const std::size_t i = todo[k];
        results[i] =
            run_parsec_network(params, suite[i], pm, seed, /*num_threads=*/1);
        if (manifest != nullptr)
          manifest->record(i, to_json(results[i]));
      },
      num_threads);
  return results;
}

}  // namespace nocs::bench
