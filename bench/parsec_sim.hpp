// Shared simulation driver for the PARSEC network experiments (Figures 9
// and 10) — a thin adapter over the library's sprint::cosimulate().
#pragma once

#include <vector>

#include "cmp/perf_model.hpp"
#include "common/parallel.hpp"
#include "sprint/cosim.hpp"

namespace nocs::bench {

struct ParsecNetResult {
  int level = 0;
  double full_latency = 0.0;
  double noc_latency = 0.0;
  Watts full_power = 0.0;
  Watts noc_power = 0.0;
};

inline ParsecNetResult run_parsec_network(const noc::NetworkParams& params,
                                          const cmp::WorkloadParams& w,
                                          const cmp::PerfModel& pm,
                                          std::uint64_t seed,
                                          int num_threads = 0) {
  sprint::CosimConfig cfg;
  cfg.seed = seed;
  cfg.num_threads = num_threads;
  const sprint::CosimResult r = sprint::cosimulate(params, w, pm, cfg);
  ParsecNetResult out;
  out.level = r.level;
  out.full_latency = r.full_latency;
  out.noc_latency = r.noc_latency;
  out.full_power = r.full_noc_power;
  out.noc_power = r.noc_noc_power;
  return out;
}

/// Runs the whole suite with one worker per benchmark (each co-simulation
/// stays serial internally).  Every benchmark uses the same fixed `seed`
/// and its own networks, so results are identical to the serial loop no
/// matter the thread count.
inline std::vector<ParsecNetResult> run_parsec_suite(
    const noc::NetworkParams& params,
    const std::vector<cmp::WorkloadParams>& suite, const cmp::PerfModel& pm,
    std::uint64_t seed, int num_threads = 0) {
  std::vector<ParsecNetResult> results(suite.size());
  ParallelFor(
      suite.size(),
      [&](std::size_t i) {
        results[i] =
            run_parsec_network(params, suite[i], pm, seed, /*num_threads=*/1);
      },
      num_threads);
  return results;
}

}  // namespace nocs::bench
