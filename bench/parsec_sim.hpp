// Shared simulation driver for the PARSEC network experiments (Figures 9
// and 10) — a thin adapter over the library's sprint::cosimulate().
#pragma once

#include "cmp/perf_model.hpp"
#include "sprint/cosim.hpp"

namespace nocs::bench {

struct ParsecNetResult {
  int level = 0;
  double full_latency = 0.0;
  double noc_latency = 0.0;
  Watts full_power = 0.0;
  Watts noc_power = 0.0;
};

inline ParsecNetResult run_parsec_network(const noc::NetworkParams& params,
                                          const cmp::WorkloadParams& w,
                                          const cmp::PerfModel& pm,
                                          std::uint64_t seed) {
  sprint::CosimConfig cfg;
  cfg.seed = seed;
  const sprint::CosimResult r = sprint::cosimulate(params, w, pm, cfg);
  ParsecNetResult out;
  out.level = r.level;
  out.full_latency = r.full_latency;
  out.noc_latency = r.noc_latency;
  out.full_power = r.full_noc_power;
  out.noc_power = r.noc_noc_power;
  return out;
}

}  // namespace nocs::bench
