// Ablation — NoC-sprinting across mesh sizes.
//
// The dark-silicon trend (Figure 3) says the NoC's share of chip power
// grows with core count; this ablation shows NoC-sprinting's savings grow
// with it.  For 4x4, 6x6, and 8x8 meshes sprinting a fixed 4-core region,
// we measure simulated network power and latency vs full-sprinting.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "noc/simulator.hpp"
#include "power/chip_power.hpp"
#include "power/noc_power.hpp"
#include "sprint/network_builder.hpp"

using namespace nocs;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  bench::banner("Ablation: NoC-sprinting vs mesh size",
                "4-core sprint on 4x4 / 6x6 / 8x8 meshes; savings grow "
                "with the dark fraction",
                bench::network_params(cfg));

  const std::uint64_t seed = cfg.get_int("seed", 23);
  const int threads = static_cast<int>(cfg.get_int("threads", 0));
  noc::SimConfig sim;
  sim.warmup = 1000;
  sim.measure = 6000;
  sim.injection_rate = cfg.get_double("injection", 0.15);

  // All six simulations (3 mesh sizes x 2 schemes) are independent; run
  // them as parallel tasks and print the rows in mesh order afterwards.
  const std::vector<int> sides = {4, 6, 8};
  struct Row {
    noc::SimResults noc, full;
    Watts noc_power = 0.0, full_power = 0.0;
  };
  std::vector<Row> rows(sides.size());
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < sides.size(); ++i) {
    noc::NetworkParams params;
    params.width = sides[i];
    params.height = sides[i];
    const int level = 4;
    tasks.push_back([&, i, params, level] {
      const auto rp = power::RouterPowerParams::from_network(params);
      const power::RouterPowerModel router_model(rp);
      const power::LinkPowerModel link_model(params.flit_bytes * 8, 2.5,
                                             rp.tech, rp.op);
      auto nb = make_noc_sprinting_network(params, level, "uniform", seed);
      rows[i].noc = run_simulation(*nb.network, sim);
      rows[i].noc_power =
          power::estimate_noc_power(*nb.network, router_model, link_model,
                                    rows[i].noc.cycles)
              .total();
    });
    tasks.push_back([&, i, params, level] {
      const auto rp = power::RouterPowerParams::from_network(params);
      const power::RouterPowerModel router_model(rp);
      const power::LinkPowerModel link_model(params.flit_bytes * 8, 2.5,
                                             rp.tech, rp.op);
      auto fb = make_full_sprinting_network(params, level, "uniform", seed);
      rows[i].full = run_simulation(*fb.network, sim);
      rows[i].full_power =
          power::estimate_noc_power(*fb.network, router_model, link_model,
                                    rows[i].full.cycles)
              .total();
    });
  }
  run_tasks(tasks, threads);

  Table t({"mesh", "dark frac", "noc lat", "full lat", "lat cut",
           "noc power (mW)", "full power (mW)", "power cut",
           "NoC share @nominal"});
  for (std::size_t i = 0; i < sides.size(); ++i) {
    const int side = sides[i];
    const int n = side * side;
    const int level = 4;
    const Row& row = rows[i];

    power::ChipPowerParams chip_params;
    chip_params.num_cores = n;
    const auto nominal = power::ChipPowerModel(chip_params).nominal();

    t.add_row({std::to_string(side) + "x" + std::to_string(side),
               Table::pct(static_cast<double>(n - level) / n, 0),
               Table::fmt(row.noc.avg_packet_latency, 2),
               Table::fmt(row.full.avg_packet_latency, 2),
               Table::pct(1.0 - row.noc.avg_packet_latency /
                                    row.full.avg_packet_latency),
               Table::fmt(row.noc_power * 1e3, 1),
               Table::fmt(row.full_power * 1e3, 1),
               Table::pct(1.0 - row.noc_power / row.full_power),
               Table::pct(nominal.noc / nominal.total())});
  }
  t.print();

  bench::headline("power saving vs mesh size",
                  "the darker the chip, the more NoC-sprinting saves",
                  "power cut grows monotonically with the dark fraction");
  return 0;
}
