// Figure 11 — synthetic uniform-random load sweep for 4-core and 8-core
// sprinting on the 16-node mesh.
//
// Full-sprinting maps the k endpoints randomly over the fully powered
// mesh (averaged over ten samples, as in the paper); NoC-sprinting uses
// the convex region with CDOR and a gated dark region.  Paper results:
// pre-saturation latency cut 45.1 % (4-core) / 16.1 % (8-core), network
// power cut 62.1 % / 25.9 %, and NoC-sprinting saturates earlier because
// it concentrates the same traffic on fewer links.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/snapshot.hpp"
#include "common/stats.hpp"
#include "noc/simulator.hpp"
#include "parsec_sim.hpp"
#include "sprint/network_builder.hpp"

using namespace nocs;

namespace {

struct Point {
  double rate;
  double noc_lat = 0.0, full_lat = 0.0;
  double noc_pow = 0.0, full_pow = 0.0;
  bool noc_sat = false, full_sat = false;
};

/// One full-sprinting random-mapping sample (folded in sample order after
/// the parallel batch so averages match the serial loop bit for bit).
struct FullSample {
  double lat = 0.0;
  double pow = 0.0;
  bool sat = false;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Figure 11: synthetic uniform-random load sweep",
                "4-core and 8-core sprinting; full-sprinting averaged over "
                "10 random endpoint mappings",
                net);

  const int samples = static_cast<int>(cfg.get_int("samples", 10));
  const std::uint64_t seed = cfg.get_int("seed", 11);
  const int threads = static_cast<int>(cfg.get_int("threads", 0));
  const std::vector<double> rates = {0.02, 0.05, 0.10, 0.15, 0.20, 0.25,
                                     0.30, 0.35, 0.40, 0.50, 0.60, 0.70};

  // checkpoint= names a manifest file recording every finished (level,
  // rate, mapping) simulation, so an interrupted sweep resumes from the
  // last completed task (see docs/SNAPSHOT_FORMAT.md).  Task indices are
  // assigned level-major / rate-major / sample-minor below.
  snapshot::TaskManifest manifest(
      cfg.get_string("checkpoint", ""),
      "fig11:rates=" + std::to_string(rates.size()) +
          ";samples=" + std::to_string(samples) +
          ";seed=" + std::to_string(seed) + ";mesh=" +
          std::to_string(net.width) + "x" + std::to_string(net.height));
  const std::size_t tasks_per_rate = 1 + static_cast<std::size_t>(samples);
  const std::size_t tasks_per_level = rates.size() * tasks_per_rate;

  const power::RouterPowerParams rp =
      power::RouterPowerParams::from_network(net);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(net.flit_bytes * 8, 2.5, rp.tech,
                                         rp.op);

  noc::SimConfig sim;
  sim.warmup = 2000;
  sim.measure = 8000;
  sim.drain_max = 40000;

  // Manifest payload for one task: the three numbers folded into the
  // tables (doubles round-trip bit-exactly through the JSON layer).
  const auto sample_to_json = [](double lat, double pow, bool sat) {
    json::Value o = json::Value::object();
    o.set("lat", lat);
    o.set("pow", pow);
    o.set("sat", sat);
    return o;
  };

  json::Value levels = json::Value::array();
  std::size_t level_base = 0;
  for (int level : {4, 8}) {
    // Every (rate, mapping) simulation is independent: one task per
    // NoC-sprinting point plus one per full-sprinting random mapping, all
    // with the same seeds the serial loop used, so the tables below are
    // identical for any thread count.  Tasks already in the manifest are
    // replayed from their recorded numbers instead of queued.
    std::vector<Point> points(rates.size());
    std::vector<std::vector<FullSample>> full(
        rates.size(), std::vector<FullSample>(static_cast<std::size_t>(
                          samples)));
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      noc::SimConfig point_sim = sim;
      point_sim.injection_rate = rates[i];
      points[i].rate = rates[i];

      const std::size_t noc_task = level_base + i * tasks_per_rate;
      if (manifest.enabled() && manifest.completed(noc_task)) {
        const json::Value v = manifest.result(noc_task);
        points[i].noc_lat = v.at("lat").as_number();
        points[i].noc_pow = v.at("pow").as_number();
        points[i].noc_sat = v.at("sat").as_bool();
      } else {
        tasks.push_back([&, i, point_sim, level, noc_task] {
          // NoC-sprinting: deterministic convex region.
          auto b =
              sprint::make_noc_sprinting_network(net, level, "uniform", seed);
          const noc::SimResults r =
              noc::run_simulation(*b.network, point_sim);
          points[i].noc_lat = r.avg_packet_latency;
          points[i].noc_sat = r.saturated;
          points[i].noc_pow = power::estimate_noc_power(*b.network,
                                                        router_model,
                                                        link_model, r.cycles)
                                  .total();
          manifest.record(noc_task, sample_to_json(points[i].noc_lat,
                                                   points[i].noc_pow,
                                                   points[i].noc_sat));
        });
      }
      for (int s = 0; s < samples; ++s) {
        const std::size_t full_task =
            noc_task + 1 + static_cast<std::size_t>(s);
        if (manifest.enabled() && manifest.completed(full_task)) {
          const json::Value v = manifest.result(full_task);
          FullSample& fs = full[i][static_cast<std::size_t>(s)];
          fs.lat = v.at("lat").as_number();
          fs.pow = v.at("pow").as_number();
          fs.sat = v.at("sat").as_bool();
          continue;
        }
        tasks.push_back([&, i, s, point_sim, level, full_task] {
          // Full-sprinting: one random endpoint mapping.
          auto b = sprint::make_full_sprinting_network(
              net, level, "uniform", seed + static_cast<std::uint64_t>(s));
          const noc::SimResults r =
              noc::run_simulation(*b.network, point_sim);
          FullSample& fs = full[i][static_cast<std::size_t>(s)];
          fs.lat = r.avg_packet_latency;
          fs.sat = r.saturated;
          fs.pow = power::estimate_noc_power(*b.network, router_model,
                                             link_model, r.cycles)
                       .total();
          manifest.record(full_task, sample_to_json(fs.lat, fs.pow, fs.sat));
        });
      }
    }
    run_tasks(tasks, threads);
    level_base += tasks_per_level;

    for (std::size_t i = 0; i < rates.size(); ++i) {
      RunningStat lat, pow;
      int saturated = 0;
      for (const FullSample& fs : full[i]) {
        lat.add(fs.lat);
        pow.add(fs.pow);
        saturated += fs.sat ? 1 : 0;
      }
      points[i].full_lat = lat.mean();
      points[i].full_pow = pow.mean();
      points[i].full_sat = saturated > samples / 2;
    }

    std::printf("\n--- %d-core sprinting ---\n", level);
    Table t({"inj rate", "noc lat (cyc)", "full lat (cyc)", "lat cut",
             "noc power (mW)", "full power (mW)", "power cut", "sat"});
    std::vector<double> lat_cuts, pow_cuts;
    // Pre-saturation = latency still within 3x of the zero-load latency
    // for BOTH schemes (matching the paper's "before saturation" framing).
    const double noc_zero = points.front().noc_lat;
    const double full_zero = points.front().full_lat;
    json::Value point_rows = json::Value::array();
    for (const Point& pt : points) {
      const bool presat = !pt.noc_sat && !pt.full_sat &&
                          pt.noc_lat < 3.0 * noc_zero &&
                          pt.full_lat < 3.0 * full_zero;
      if (presat) {
        lat_cuts.push_back(1.0 - pt.noc_lat / pt.full_lat);
        pow_cuts.push_back(1.0 - pt.noc_pow / pt.full_pow);
      }
      json::Value row = json::Value::object();
      row.set("injection_rate", pt.rate);
      row.set("noc_latency", pt.noc_lat);
      row.set("full_latency", pt.full_lat);
      row.set("noc_power_w", pt.noc_pow);
      row.set("full_power_w", pt.full_pow);
      row.set("noc_saturated", pt.noc_sat);
      row.set("full_saturated", pt.full_sat);
      row.set("pre_saturation", presat);
      point_rows.push_back(std::move(row));
      std::string sat = pt.noc_sat ? (pt.full_sat ? "both" : "noc") :
                                     (pt.full_sat ? "full" : "-");
      t.add_row({Table::fmt(pt.rate, 2),
                 pt.noc_sat ? "sat" : Table::fmt(pt.noc_lat, 2),
                 pt.full_sat ? "sat" : Table::fmt(pt.full_lat, 2),
                 presat ? Table::pct(lat_cuts.back()) : "-",
                 Table::fmt(pt.noc_pow * 1e3, 2),
                 Table::fmt(pt.full_pow * 1e3, 2),
                 presat ? Table::pct(pow_cuts.back()) : "-", sat});
    }
    t.print();

    const char* paper_lat = level == 4 ? "45.1%" : "16.1%";
    const char* paper_pow = level == 4 ? "62.1%" : "25.9%";
    bench::headline(
        std::string("pre-saturation averages (") + std::to_string(level) +
            "-core)",
        std::string("latency cut ") + paper_lat + ", power cut " + paper_pow,
        "latency cut " + Table::pct(arithmetic_mean(lat_cuts)) +
            ", power cut " + Table::pct(arithmetic_mean(pow_cuts)));

    json::Value lv = json::Value::object();
    lv.set("level", level);
    lv.set("points", std::move(point_rows));
    lv.set("avg_presat_latency_cut", arithmetic_mean(lat_cuts));
    lv.set("avg_presat_power_cut", arithmetic_mean(pow_cuts));
    levels.push_back(std::move(lv));
  }

  json::Value doc = json::Value::object();
  doc.set("figure", "fig11_synthetic");
  doc.set("config", bench::to_json(net));
  doc.set("seed", static_cast<std::uint64_t>(seed));
  doc.set("samples", samples);
  doc.set("levels", std::move(levels));
  bench::maybe_write_report(cfg, std::move(doc));

  std::printf(
      "\nnote: NoC-sprinting saturates at lower offered load than "
      "full-sprinting (fewer links carry the same traffic) — harmless in "
      "practice, PARSEC injection stays below 0.3 flits/cycle.\n");
  return 0;
}
