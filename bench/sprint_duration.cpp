// Section 4.4 — sprint duration under the PCM model.
//
// Paper result: by allocating just enough power for the maximal speedup,
// NoC-sprinting slows thermal-capacitance depletion and lengthens the
// melting phase, increasing sprint duration by 55.4 % on average over
// full-sprinting (unsustainable-power benchmarks only; workloads whose
// optimal level is low enough to be thermally sustainable sprint
// indefinitely and are reported at the cap).
#include <cstdio>

#include "bench_util.hpp"
#include "cmp/perf_model.hpp"
#include "common/stats.hpp"
#include "power/chip_power.hpp"
#include "sprint/sprint_controller.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;
using namespace nocs::cmp;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Section 4.4: sprint duration (PCM model)",
                "phase1 heat-up + phase2 melt + phase3 heat-up to Tmax; "
                "full-sprinting vs NoC-sprinting chip power",
                net);

  const MeshShape mesh = net.shape();
  const PerfModel pm(mesh.size());
  const power::ChipPowerModel chip(power::ChipPowerParams{});
  const thermal::PcmParams pcm_params{};
  const thermal::PcmModel pcm(pcm_params);
  const Seconds cap = cfg.get_double("cap", 10.0);
  const SprintController ctl(mesh, pm, chip, pcm, 0, cap);

  std::printf("PCM: melt %.0f K, Tmax %.0f K, latent budget %.1f J, "
              "sustainable-at-melt %.1f W\n\n",
              pcm_params.t_melt, pcm_params.t_max, pcm_params.latent_budget(),
              pcm_params.sustainable_at_melt());

  Table t({"benchmark", "level", "full power (W)", "noc power (W)",
           "full dur (s)", "noc dur (s)", "gain"});
  std::vector<double> gains;
  for (const WorkloadParams& w : parsec_suite(mesh.size())) {
    const SprintPlan full = ctl.plan(w, SprintMode::kFullSprinting);
    const SprintPlan noc = ctl.plan(w, SprintMode::kNocSprinting);
    const bool capped = noc.sprint_duration >= cap;
    const double gain = noc.sprint_duration / full.sprint_duration - 1.0;
    if (!capped) gains.push_back(gain);
    t.add_row({w.name, Table::fmt(static_cast<long long>(noc.level)),
               Table::fmt(full.chip_power, 1), Table::fmt(noc.chip_power, 1),
               Table::fmt(full.sprint_duration, 3),
               capped ? ">" + Table::fmt(cap, 0)
                      : Table::fmt(noc.sprint_duration, 3),
               capped ? "sustainable" : Table::pct(gain)});
  }
  t.print();

  bench::headline("average sprint-duration gain (non-sustainable workloads)",
                  "+55.4%", "+" + Table::pct(arithmetic_mean(gains)));
  return 0;
}
