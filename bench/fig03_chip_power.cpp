// Figure 3 — chip power breakdown during nominal operation (single active
// core, other cores power-gated, NoC fully on) for 4/8/16/32-core CMPs.
//
// Paper numbers (McPAT, Niagara2-based): NoC accounts for 18 %, 26 %,
// 35 %, 42 % of chip power — rising as the dark-silicon fraction grows,
// while the single active core's share keeps shrinking.
#include <cstdio>

#include "bench_util.hpp"
#include "power/chip_power.hpp"

using namespace nocs;
using namespace nocs::power;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  bench::banner("Figure 3: chip power breakdown at nominal operation",
                "1 active core, dark cores gated, NoC fully powered "
                "(McPAT-style Niagara2 calibration)",
                bench::network_params(cfg));

  Table t({"cores", "core (W)", "L2 (W)", "NoC (W)", "MC (W)", "others (W)",
           "total (W)", "NoC share", "core share"});
  std::string shares;
  for (int n : {4, 8, 16, 32}) {
    ChipPowerParams params;
    params.num_cores = n;
    const ChipPowerModel model(params);
    const ChipPowerBreakdown b = model.nominal();
    t.add_row({Table::fmt(static_cast<long long>(n)),
               Table::fmt(b.cores, 2), Table::fmt(b.l2, 2),
               Table::fmt(b.noc, 2), Table::fmt(b.mc, 2),
               Table::fmt(b.others, 2), Table::fmt(b.total(), 2),
               Table::pct(b.noc / b.total()),
               Table::pct(b.cores / b.total())});
    if (!shares.empty()) shares += "/";
    shares += Table::pct(b.noc / b.total(), 0);
  }
  t.print();

  bench::headline("NoC share of chip power at nominal (4/8/16/32 cores)",
                  "18%/26%/35%/42%", shares);
  return 0;
}
