// Figure 7 — execution time under the three sprint mechanisms.
//
// Paper result: NoC-sprinting achieves 3.6x average speedup over
// non-sprinting; full-sprinting only 1.9x because over-parallelized
// workloads pay scheduling/synchronization/interconnect overheads.
#include <cstdio>

#include "bench_util.hpp"
#include "cmp/perf_model.hpp"
#include "common/stats.hpp"
#include "power/chip_power.hpp"
#include "sprint/sprint_controller.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;
using namespace nocs::cmp;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Figure 7: execution time per sprinting scheme",
                "non-sprinting (1 core) vs full-sprinting (16) vs "
                "NoC-sprinting (optimal level)",
                net);

  const MeshShape mesh = net.shape();
  const PerfModel pm(mesh.size());
  const power::ChipPowerModel chip(power::ChipPowerParams{});
  const thermal::PcmModel pcm{thermal::PcmParams{}};
  const SprintController ctl(mesh, pm, chip, pcm);

  const auto suite = parsec_suite(mesh.size());
  Table t({"benchmark", "T non-sprint", "T full-sprint", "T noc-sprint",
           "level", "speedup full", "speedup noc"});
  std::vector<double> full_speedups, noc_speedups;
  for (const WorkloadParams& w : suite) {
    const SprintPlan non = ctl.plan(w, SprintMode::kNonSprinting);
    const SprintPlan full = ctl.plan(w, SprintMode::kFullSprinting);
    const SprintPlan noc = ctl.plan(w, SprintMode::kNocSprinting);
    full_speedups.push_back(full.speedup);
    noc_speedups.push_back(noc.speedup);
    t.add_row({w.name, Table::fmt(non.exec_time, 3),
               Table::fmt(full.exec_time, 3), Table::fmt(noc.exec_time, 3),
               Table::fmt(static_cast<long long>(noc.level)),
               Table::fmt(full.speedup, 2), Table::fmt(noc.speedup, 2)});
  }
  t.print();

  bench::headline("average speedup (NoC-sprinting vs full-sprinting)",
                  "3.6x vs 1.9x",
                  Table::fmt(arithmetic_mean(noc_speedups), 2) + "x vs " +
                      Table::fmt(arithmetic_mean(full_speedups), 2) + "x");
  return 0;
}
