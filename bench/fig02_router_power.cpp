// Figure 2 — router power breakdown (dynamic vs leakage) across operating
// points (1.0 V, 2 GHz), (0.9 V, 1.5 GHz), (0.75 V, 1.0 GHz) at 45 nm.
//
// Paper setup: classic wormhole router, 128-bit flits, 2 VCs x 4 flits per
// input port, average injection 0.4 flits/cycle, estimated with DSENT.
// Expected shape: leakage is a significant share everywhere and its ratio
// *grows* as voltage/frequency scale down, exceeding dynamic power at the
// lowest point.
#include <cstdio>

#include "bench_util.hpp"
#include "power/router_power.hpp"

using namespace nocs;
using namespace nocs::power;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Figure 2: router power breakdown vs operating point",
                "wormhole router, 128-bit flits, 2 VCs x 4, inj 0.4 "
                "flits/cycle, 45 nm (DSENT-style model)",
                net);

  const double inj = cfg.get_double("injection", 0.4);
  const OperatingPoint points[] = {
      {1.0, 2.0e9}, {0.9, 1.5e9}, {0.75, 1.0e9}};

  Table t({"V", "f (GHz)", "buffer dyn (mW)", "xbar dyn (mW)",
           "arb dyn (mW)", "clock dyn (mW)", "leakage (mW)", "total (mW)",
           "leak share"});
  double first_share = 0.0, last_share = 0.0;
  for (const OperatingPoint& op : points) {
    RouterPowerParams rp;
    rp.num_ports = 5;
    rp.num_vcs = 2;
    rp.vc_depth = 4;
    rp.flit_bits = 128;
    rp.tech = TechNode::k45nm;
    rp.op = op;
    const RouterPowerModel model(rp);
    const RouterPowerBreakdown b = model.at_injection(inj);
    const double share = b.leakage / b.total();
    if (op.voltage == 1.0) first_share = share;
    last_share = share;
    t.add_row({Table::fmt(op.voltage, 2), Table::fmt(op.frequency / 1e9, 1),
               Table::fmt(b.buffer_dynamic * 1e3, 3),
               Table::fmt(b.crossbar_dynamic * 1e3, 3),
               Table::fmt(b.arbiter_dynamic * 1e3, 3),
               Table::fmt(b.clock_dynamic * 1e3, 3),
               Table::fmt(b.leakage * 1e3, 3), Table::fmt(b.total() * 1e3, 3),
               Table::pct(share)});
  }
  t.print();

  bench::headline(
      "leakage share grows as V/f scale down",
      "significant at (1.0V,2GHz), exceeds dynamic in some cases",
      Table::pct(first_share) + " -> " + Table::pct(last_share) +
          (last_share > 0.5 ? " (exceeds dynamic)" : ""));
  return 0;
}
