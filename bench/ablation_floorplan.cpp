// Ablation — thermal-aware floorplanning (Algorithms 3/4) across sprint
// levels: peak steady-state temperature and heat-concentration proxy with
// and without the remapping, plus the wiring-length cost it incurs.
#include <cstdio>

#include "bench_util.hpp"
#include "power/chip_power.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/topology.hpp"
#include "thermal/grid.hpp"

using namespace nocs;
using namespace nocs::sprint;
using namespace nocs::thermal;

namespace {

Kelvin peak_temp(const MeshShape& mesh, const std::vector<NodeId>& active,
                 const std::vector<int>& positions, double die_mm,
                 const GridThermalModel& model,
                 const power::ChipPowerParams& chip) {
  std::vector<Watts> powers(
      static_cast<std::size_t>(mesh.size()),
      chip.core_gated + chip.l2_tile + chip.noc_gated_node);
  for (NodeId id : active)
    powers[static_cast<std::size_t>(id)] =
        chip.core_active + chip.l2_tile + chip.noc_per_node;
  const Floorplan fp =
      make_cmp_floorplan(mesh, die_mm, die_mm, powers, positions);
  return model.solve_steady(fp).peak();
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Ablation: thermal-aware floorplanning across sprint levels",
                "identity vs Algorithm 3/4 placement: peak temperature, "
                "heat concentration, wire length",
                net);

  const MeshShape mesh = net.shape();
  const double die_mm = cfg.get_double("die_mm", 12.0);
  const power::ChipPowerParams chip{};
  const GridThermalModel model(GridThermalParams{}, die_mm, die_mm);

  const auto identity = identity_floorplan(mesh);
  const auto remapped = thermal_aware_floorplan(mesh, 0);

  Table t({"level", "identity peak (K)", "floorplan peak (K)", "delta (K)",
           "identity proximity", "floorplan proximity"});
  int improved = 0;
  const int levels[] = {2, 3, 4, 6, 8, 12};
  for (int k : levels) {
    const auto active = active_set(mesh, k, 0);
    const Kelvin pi =
        peak_temp(mesh, active, identity.positions, die_mm, model, chip);
    const Kelvin pf =
        peak_temp(mesh, active, remapped.positions, die_mm, model, chip);
    if (pf < pi) ++improved;
    t.add_row({Table::fmt(static_cast<long long>(k)), Table::fmt(pi, 2),
               Table::fmt(pf, 2), Table::fmt(pf - pi, 2),
               Table::fmt(thermal_proximity(mesh, active,
                                            identity.positions), 3),
               Table::fmt(thermal_proximity(mesh, active,
                                            remapped.positions), 3)});
  }
  t.print();

  std::printf("\nwire-length cost: identity %.1f pitches, floorplanned %.1f "
              "pitches (%.1fx) — mitigated by clockless repeated wires "
              "(Section 3.3)\n",
              identity.total_wire_length, remapped.total_wire_length,
              remapped.total_wire_length / identity.total_wire_length);
  bench::headline("levels with lower peak after floorplanning",
                  "better temperature profile at low/mid levels",
                  Table::fmt(static_cast<long long>(improved)) + " of 6");
  return 0;
}
