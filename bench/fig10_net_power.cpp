// Figure 10 — total network power during the sprint phase of PARSEC.
//
// Paper result: NoC-sprinting saves 71.9 % network power on average vs
// full-sprinting by power-gating the dark sub-network (which otherwise
// leaks and forwards packets) and operating only the convex active region.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "parsec_sim.hpp"

using namespace nocs;
using namespace nocs::cmp;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Figure 10: total network power, PARSEC sprint phase",
                "full-sprinting vs NoC-sprinting (routers + links, "
                "DSENT-style event energies from simulation counters)",
                net);

  const std::uint64_t seed = cfg.get_int("seed", 7);
  const int threads = static_cast<int>(cfg.get_int("threads", 0));
  const PerfModel pm(net.num_nodes());
  const auto suite = parsec_suite(net.num_nodes());

  // checkpoint= names a manifest file for per-benchmark resume (same
  // semantics as fig09; see docs/SNAPSHOT_FORMAT.md).
  snapshot::TaskManifest manifest(
      cfg.get_string("checkpoint", ""),
      bench::parsec_suite_fingerprint(net, suite, seed));

  const auto results =
      bench::run_parsec_suite(net, suite, pm, seed, threads, &manifest);

  Table t({"benchmark", "level", "full power (mW)", "noc-sprint power (mW)",
           "saving"});
  std::vector<double> savings;
  json::Value rows = json::Value::array();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const WorkloadParams& w = suite[i];
    const bench::ParsecNetResult& r = results[i];
    const double save = 1.0 - r.noc_power / r.full_power;
    savings.push_back(save);
    t.add_row({w.name, Table::fmt(static_cast<long long>(r.level)),
               Table::fmt(r.full_power * 1e3, 2),
               Table::fmt(r.noc_power * 1e3, 2), Table::pct(save)});
    json::Value row = json::Value::object();
    row.set("benchmark", w.name);
    row.set("level", r.level);
    row.set("full_power_w", r.full_power);
    row.set("noc_power_w", r.noc_power);
    row.set("saving", save);
    rows.push_back(std::move(row));
  }
  t.print();

  bench::headline("average network power saving", "71.9%",
                  Table::pct(arithmetic_mean(savings)));

  json::Value doc = json::Value::object();
  doc.set("figure", "fig10_net_power");
  doc.set("config", bench::to_json(net));
  doc.set("seed", static_cast<std::uint64_t>(seed));
  doc.set("benchmarks", std::move(rows));
  doc.set("avg_power_saving", arithmetic_mean(savings));
  bench::maybe_write_report(cfg, std::move(doc));
  return 0;
}
