// Ablation — power-gating policies on the NoC.
//
// Compares (i) no gating, (ii) conventional dynamic gating (idle-timeout +
// wake-on-arrival, the Section 2 related-work schemes that "do not account
// for the underlying core status"), and (iii) NoC-sprinting's static
// dark-region gating, at a 4-core sprint.  Dynamic gating recovers some
// leakage but pays wake-up latency and stray wake-ups; static gating by
// core state gets the full benefit at zero latency cost.  Also prints the
// break-even analysis.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/simulator.hpp"
#include "power/noc_power.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/power_gating.hpp"
#include "sprint/topology.hpp"

using namespace nocs;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Ablation: NoC power-gating policies (4-core sprint)",
                "none vs dynamic (idle-timeout) vs static dark-region "
                "gating",
                net);

  const int level = static_cast<int>(cfg.get_int("level", 4));
  const std::uint64_t seed = cfg.get_int("seed", 5);
  const power::RouterPowerParams rp =
      power::RouterPowerParams::from_network(net);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(net.flit_bytes * 8, 2.5, rp.tech,
                                         rp.op);

  const GatingAnalysis analysis(router_model, GatingParams{});
  std::printf("router leakage: %.3f mW; break-even idle period: %.0f "
              "cycles; wake-up latency: %d cycles\n\n",
              router_model.leakage_power() * 1e3,
              analysis.break_even_cycles(), GatingParams{}.wakeup_latency);

  noc::SimConfig sim;
  sim.injection_rate = cfg.get_double("injection", 0.1);
  sim.warmup = 2000;
  sim.measure = 10000;

  Table t({"policy", "latency (cyc)", "NoC power (mW)", "gated cyc frac",
           "wake events"});

  // (i) Fine-grained traffic, all routers on (no gating): convex region
  // endpoints, CDOR, but the dark region left powered.
  {
    const auto active = active_set(net.shape(), level, 0);
    CdorRouting cdor(net.shape(), active, 0);
    noc::Network n(net, &cdor);
    n.set_endpoints(active, noc::make_traffic("uniform", level));
    n.set_seed(seed);
    const noc::SimResults r = noc::run_simulation(n, sim);
    const auto est =
        power::estimate_noc_power(n, router_model, link_model, r.cycles);
    const auto c = n.total_counters();
    t.add_row({"no gating", Table::fmt(r.avg_packet_latency, 2),
               Table::fmt(est.total() * 1e3, 2),
               Table::pct(static_cast<double>(c.gated_cycles) /
                          (static_cast<double>(r.cycles) * net.num_nodes())),
               Table::fmt(static_cast<long long>(c.wake_events))});
  }

  // (ii) Dynamic gating: same setup, idle-timeout gating with
  // wake-on-arrival on every router.
  {
    const auto active = active_set(net.shape(), level, 0);
    CdorRouting cdor(net.shape(), active, 0);
    noc::Network n(net, &cdor);
    n.set_endpoints(active, noc::make_traffic("uniform", level));
    n.set_dynamic_gating(true);
    n.set_seed(seed);
    const noc::SimResults r = noc::run_simulation(n, sim);
    const auto est =
        power::estimate_noc_power(n, router_model, link_model, r.cycles);
    const auto c = n.total_counters();
    t.add_row({"dynamic (idle-timeout)", Table::fmt(r.avg_packet_latency, 2),
               Table::fmt(est.total() * 1e3, 2),
               Table::pct(static_cast<double>(c.gated_cycles) /
                          (static_cast<double>(r.cycles) * net.num_nodes())),
               Table::fmt(static_cast<long long>(c.wake_events))});
  }

  // (iii) NoC-sprinting: static dark-region gating.
  {
    auto b = make_noc_sprinting_network(net, level, "uniform", seed);
    const noc::SimResults r = noc::run_simulation(*b.network, sim);
    const auto est = power::estimate_noc_power(*b.network, router_model,
                                               link_model, r.cycles);
    const auto c = b.network->total_counters();
    t.add_row({"static dark-region", Table::fmt(r.avg_packet_latency, 2),
               Table::fmt(est.total() * 1e3, 2),
               Table::pct(static_cast<double>(c.gated_cycles) /
                          (static_cast<double>(r.cycles) * net.num_nodes())),
               Table::fmt(static_cast<long long>(c.wake_events))});
  }
  t.print();

  bench::headline(
      "static dark-region gating",
      "recovers the dark region's leakage with zero latency penalty",
      "power near the dynamic scheme's, latency identical to no-gating "
      "(dynamic gating pays wake-up latency and stray wake-ups)");
  return 0;
}
