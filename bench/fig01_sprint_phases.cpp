// Figure 1 — the sprint temperature timeline.
//
// Regenerates the paper's concept figure quantitatively from the PCM
// model: temperature rises from ambient when the sprint starts (phase 1),
// plateaus at T_melt while the phase-change material absorbs the excess
// heat (phase 2), rises again to T_max where all but one core terminate
// (phase 3).  Printed for full-sprinting and for dedup's 4-core
// NoC-sprint so the phase stretching is visible.
#include <cstdio>

#include "bench_util.hpp"
#include "cmp/perf_model.hpp"
#include "power/chip_power.hpp"
#include "sprint/sprint_controller.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;
using namespace nocs::thermal;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Figure 1: sprint temperature timeline (PCM model)",
                "phase 1 heat-up, phase 2 melt plateau, phase 3 heat-up to "
                "Tmax; full-sprinting vs dedup's 4-core NoC-sprint",
                net);

  const MeshShape mesh = net.shape();
  const cmp::PerfModel perf(mesh.size());
  const power::ChipPowerModel chip{power::ChipPowerParams{}};
  const PcmParams pcm_params{};
  const PcmModel pcm(pcm_params);
  const sprint::SprintController ctl(mesh, perf, chip, pcm);

  const auto suite = cmp::parsec_suite(mesh.size());
  const auto& dedup = cmp::find_workload(suite, "dedup");
  const auto full = ctl.plan(dedup, sprint::SprintMode::kFullSprinting);
  const auto noc = ctl.plan(dedup, sprint::SprintMode::kNocSprinting);

  const SprintTimeline tl_full = pcm.sprint_timeline(full.chip_power);
  const SprintTimeline tl_noc = pcm.sprint_timeline(noc.chip_power);

  Table phases({"scheme", "power (W)", "phase1 (s)", "phase2 melt (s)",
                "phase3 (s)", "total sprint (s)"});
  phases.add_row({"full-sprinting", Table::fmt(full.chip_power, 1),
                  Table::fmt(tl_full.phase1, 3), Table::fmt(tl_full.phase2, 3),
                  Table::fmt(tl_full.phase3, 3),
                  Table::fmt(tl_full.total(), 3)});
  phases.add_row({"noc-sprinting (dedup, 4)", Table::fmt(noc.chip_power, 1),
                  Table::fmt(tl_noc.phase1, 3), Table::fmt(tl_noc.phase2, 3),
                  Table::fmt(tl_noc.phase3, 3),
                  Table::fmt(tl_noc.total(), 3)});
  phases.print();

  std::printf("\ntemperature trajectory (K) sampled every 0.25 s:\n");
  Table t({"t (s)", "full-sprinting", "noc-sprinting"});
  const double horizon = tl_noc.total() * 1.05;
  for (double time = 0.0; time <= horizon; time += 0.25) {
    t.add_row({Table::fmt(time, 2),
               Table::fmt(pcm.temperature_at(full.chip_power, time), 1),
               Table::fmt(pcm.temperature_at(noc.chip_power, time), 1)});
  }
  t.print();

  bench::headline(
      "melt plateau", "temperature constant at T_melt during phase 2",
      "plateau at " + Table::fmt(pcm_params.t_melt, 0) + " K visible in "
      "both columns; NoC-sprinting holds it " +
          Table::fmt(tl_noc.phase2 / tl_full.phase2, 1) + "x longer");
  return 0;
}
