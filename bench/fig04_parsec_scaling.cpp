// Figure 4 — execution time of PARSEC benchmarks as the number of
// available cores grows (1..16).
//
// Expected workload classes: blackscholes/bodytrack keep speeding up;
// freqmine is nearly flat (serial); vips/swaptions (and other mid-scalable
// workloads) peak at an intermediate count and then *slow down* from
// scheduling, synchronization, and interconnect-spread overheads.
#include <cstdio>

#include "bench_util.hpp"
#include "cmp/perf_model.hpp"

using namespace nocs;
using namespace nocs::cmp;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  bench::banner("Figure 4: PARSEC execution time vs available cores",
                "normalized to 1-core execution (calibrated perf model)",
                bench::network_params(cfg));

  const int n_max = static_cast<int>(cfg.get_int("cores", 16));
  const PerfModel pm(n_max);
  const auto suite = parsec_suite(n_max);

  std::vector<std::string> headers = {"benchmark"};
  for (int n = 1; n <= n_max; n *= 2)
    headers.push_back("T(" + std::to_string(n) + ")");
  headers.push_back("optimal");
  Table t(headers);

  for (const WorkloadParams& w : suite) {
    std::vector<std::string> row = {w.name};
    for (int n = 1; n <= n_max; n *= 2)
      row.push_back(Table::fmt(pm.exec_time(w, n), 3));
    row.push_back(Table::fmt(static_cast<long long>(pm.optimal_level(w))));
    t.add_row(row);
  }
  t.print();

  const auto& fm = find_workload(suite, "freqmine");
  const auto& bs = find_workload(suite, "blackscholes");
  const auto& vp = find_workload(suite, "vips");
  std::printf("\nworkload classes:\n");
  std::printf("  scalable      : blackscholes T(16)=%.3f (keeps improving)\n",
              pm.exec_time(bs, 16));
  std::printf("  serial        : freqmine     T(16)=%.3f (worse than T(1))\n",
              pm.exec_time(fm, 16));
  std::printf("  peak-degrade  : vips         T(%d)=%.3f < T(16)=%.3f\n",
              pm.optimal_level(vp), pm.exec_time(vp, pm.optimal_level(vp)),
              pm.exec_time(vp, 16));
  return 0;
}
