// Figure 12 — steady-state heat maps for dedup (optimal sprint level 4).
//
// Paper result (HotSpot, McPAT power densities, 16 blocks on a 2-D grid):
//   (a) full-sprinting: uniform power but an overheated center, 358.3 K;
//   (b) fine-grained 4-core sprint (top-left region): peak 347.79 K;
//   (c) + thermal-aware floorplanning: peak 343.81 K.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "power/chip_power.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/topology.hpp"
#include "thermal/grid.hpp"

using namespace nocs;
using namespace nocs::thermal;

namespace {

std::vector<Watts> node_powers(const MeshShape& mesh,
                               const std::vector<NodeId>& active,
                               const power::ChipPowerParams& p) {
  std::vector<Watts> powers(
      static_cast<std::size_t>(mesh.size()),
      p.core_gated + p.l2_tile + p.noc_gated_node);
  for (NodeId id : active)
    powers[static_cast<std::size_t>(id)] =
        p.core_active + p.l2_tile + p.noc_per_node;
  return powers;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Figure 12: steady-state heat maps (dedup, level 4)",
                "full-sprinting vs fine-grained vs thermal-aware floorplan "
                "(HotSpot-style FD grid solver)",
                net);

  const MeshShape mesh = net.shape();
  const double die_mm = cfg.get_double("die_mm", 12.0);
  const power::ChipPowerParams chip{};
  const GridThermalParams gp{};
  const GridThermalModel model(gp, die_mm, die_mm);

  const std::vector<NodeId> all = mesh.all_nodes();
  const std::vector<NodeId> four = sprint::active_set(mesh, 4, 0);
  const auto identity = sprint::identity_floorplan(mesh).positions;
  const auto remapped = sprint::thermal_aware_floorplan(mesh, 0).positions;

  struct Case {
    const char* name;
    const char* paper;
    std::vector<NodeId> active;
    std::vector<int> positions;
  };
  const Case cases[] = {
      {"(a) full-sprinting (16 cores)", "358.30 K", all, identity},
      {"(b) fine-grained 4-core sprint", "347.79 K", four, identity},
      {"(c) 4-core + thermal floorplan", "343.81 K", four, remapped},
  };

  Table t({"configuration", "power (W)", "peak (K)", "avg (K)",
           "paper peak"});
  std::vector<Kelvin> peaks;
  std::vector<std::string> maps;
  for (const Case& c : cases) {
    const Floorplan fp = make_cmp_floorplan(
        mesh, die_mm, die_mm, node_powers(mesh, c.active, chip),
        c.positions);
    const TemperatureField field = model.solve_steady(fp);
    peaks.push_back(field.peak());
    maps.push_back(std::string(c.name) + "\n" +
                   render_heatmap(field, 32, 16));
    t.add_row({c.name, Table::fmt(fp.total_power(), 1),
               Table::fmt(field.peak(), 2), Table::fmt(field.average(), 2),
               c.paper});
  }
  t.print();

  std::printf("\n");
  for (const std::string& m : maps) std::printf("%s\n", m.c_str());

  bench::headline(
      "peak temperature ordering",
      "full > fine-grained > floorplanned (358.3 / 347.8 / 343.8 K)",
      Table::fmt(peaks[0], 1) + " > " + Table::fmt(peaks[1], 1) + " > " +
          Table::fmt(peaks[2], 1) + " K");
  return 0;
}
