// Ablation — dark sprinting vs dim sprinting.
//
// Under a fixed chip-power budget, compare the paper's policy (sprint the
// optimal number of cores at maximum V/f) against an intensity-aware
// planner that may wake MORE cores at a REDUCED operating point.  Dim
// sprinting pays off exactly for the scalable workloads; serial and
// peaked workloads stick with few fast cores — evidence that the paper's
// fine-grained *width* knob and the sprinting literature's *intensity*
// knob are complementary.
#include <cstdio>

#include "bench_util.hpp"
#include "cmp/perf_model.hpp"
#include "power/chip_power.hpp"
#include "sprint/dim_sprint.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Ablation: dark sprinting vs dim sprinting",
                "same power budget; operating points (1.0V,2GHz), "
                "(0.9V,1.5GHz), (0.75V,1GHz)",
                net);

  const cmp::PerfModel perf(net.num_nodes());
  const power::ChipPowerModel chip{power::ChipPowerParams{}};
  const thermal::PcmModel pcm{thermal::PcmParams{}};
  const std::vector<power::OperatingPoint> all_ops = {
      {1.0, 2.0e9}, {0.9, 1.5e9}, {0.75, 1.0e9}, {0.65, 0.8e9}};
  const DimSprintPlanner planner(perf, chip, pcm, all_ops);
  const DimSprintPlanner dark_only(perf, chip, pcm, {{1.0, 2.0e9}});

  const auto suite = cmp::parsec_suite(net.num_nodes());
  auto describe = [](const DimOption& o) {
    return std::to_string(o.level) + "@" + Table::fmt(o.op.voltage, 2) +
           "V/" + Table::fmt(o.op.frequency / 1e9, 1) + "G";
  };

  int dim_wins_total = 0, cases = 0;
  for (const Watts budget : {25.0, 35.0, 45.0, 60.0}) {
    std::printf("\n--- chip power budget %.0f W ---\n", budget);
    Table t({"benchmark", "dark: cores@V/f", "dark time", "dim: cores@V/f",
             "dim time", "dim wins?"});
    for (const auto& w : suite) {
      const DimOption dark = dark_only.best_under_budget(w, budget);
      const DimOption dim = planner.best_under_budget(w, budget);
      const bool wins = dim.exec_seconds < dark.exec_seconds - 1e-9;
      dim_wins_total += wins ? 1 : 0;
      ++cases;
      t.add_row({w.name, describe(dark), Table::fmt(dark.exec_seconds, 3),
                 describe(dim), Table::fmt(dim.exec_seconds, 3),
                 wins ? "yes" : "tie"});
    }
    t.print();
  }

  bench::headline(
      "cases (benchmark x budget) where dim sprinting wins",
      "open question: width vs intensity",
      Table::fmt(static_cast<long long>(dim_wins_total)) + " of " +
          Table::fmt(static_cast<long long>(cases)) +
          " — with V^2*f dynamic scaling, the ~13-35% perf/W gain of lower "
          "voltage rarely offsets Amdahl saturation, so sprinting few fast "
          "cores (the paper's policy) is robust");
  return 0;
}
