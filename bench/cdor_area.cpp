// Section 3.2 — CDOR area overhead.
//
// Paper result: behavioral Verilog synthesized with Design Compiler at
// 45 nm shows CDOR adds < 2 % area over a conventional DOR switch.  Our
// gate-equivalent model reproduces the bound (and shows the overhead is
// buffer-dominated-switch small).
#include <cstdio>

#include "bench_util.hpp"
#include "sprint/area.hpp"

using namespace nocs;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Section 3.2: CDOR routing-logic area overhead",
                "gate-equivalent model standing in for Design Compiler "
                "synthesis at 45 nm",
                net);

  Table t({"configuration", "buffers", "crossbar", "allocators", "DOR logic",
           "CDOR extra", "overhead"});
  double paper_config_overhead = 0.0;
  struct Cfg { const char* name; int vcs; int depth; int bits; };
  const Cfg cfgs[] = {
      {"2 VCs x 4, 128-bit (Fig.2 router)", 2, 4, 128},
      {"4 VCs x 4, 128-bit (Table 1)", 4, 4, 128},
      {"2 VCs x 2, 64-bit (lean switch)", 2, 2, 64},
      {"1 VC x 2, 32-bit (minimal switch)", 1, 2, 32},
  };
  for (const Cfg& c : cfgs) {
    RouterAreaParams p;
    p.num_vcs = c.vcs;
    p.vc_depth = c.depth;
    p.flit_bits = c.bits;
    const AreaEstimate a = estimate_router_area(p);
    if (c.vcs == 4) paper_config_overhead = a.overhead();
    t.add_row({c.name, Table::fmt(a.buffers, 0), Table::fmt(a.crossbar, 0),
               Table::fmt(a.allocators, 0), Table::fmt(a.routing_dor, 0),
               Table::fmt(a.routing_cdor_extra, 0),
               Table::pct(a.overhead(), 3)});
  }
  t.print();

  bench::headline("CDOR area overhead vs DOR switch (Table 1 config)",
                  "< 2%", Table::pct(paper_config_overhead, 3));
  return 0;
}
