// Figure 13 (extension) — sprint-level selection when the workload is
// DRAM-bound.
//
// The paper's Algorithm 1 picks how many cores to sprint with by asking
// which level minimizes execution time (Fig. 7) or energy under the power
// budget.  Its workloads are compute/NoC-bound; this experiment asks the
// same question for a tile-transfer workload in the DRAM-bound regime:
// per layer, group leaders fetch weights from the edge DRAM controllers,
// broadcast them across their tile group (tree multicast), tiles stream
// activations to the next group, and leaders write results back.  When
// the edge controllers are the bottleneck, sprinting more tiles adds
// leakage and replication power without shortening the critical DRAM
// serialization — so the time- and energy-optimal levels separate.
//
// Per sprint level the bench reports completion time, average NoC power,
// energy, and the DRAM/queue statistics, then the level Algorithm 1
// would select for time and for energy.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/trace.hpp"
#include "mem/mem_params.hpp"
#include "mem/mem_subsystem.hpp"
#include "mem/tile_driver.hpp"
#include "mem/tile_schedule.hpp"
#include "noc/routing.hpp"
#include "power/noc_power.hpp"
#include "sprint/topology.hpp"

using namespace nocs;

namespace {

struct LevelResult {
  int level = 0;
  bool finished = false;
  Cycle cycles = 0;
  double power_w = 0.0;
  double energy_j = 0.0;
  double mcast_repl_w = 0.0;
  mem::MemCounters mem_counters;
  std::uint64_t weight_mcasts = 0;
};

/// Contiguous near-equal partition of the sprint-order active set into
/// `groups` tile groups (member 0 of each block is the leader).
std::vector<std::vector<NodeId>> partition_groups(
    const std::vector<NodeId>& active, int groups) {
  const int n = static_cast<int>(active.size());
  const int base = n / groups;
  const int extra = n % groups;
  std::vector<std::vector<NodeId>> out;
  out.reserve(static_cast<std::size_t>(groups));
  int pos = 0;
  for (int g = 0; g < groups; ++g) {
    const int len = base + (g < extra ? 1 : 0);
    out.emplace_back(active.begin() + pos, active.begin() + pos + len);
    pos += len;
  }
  return out;
}

/// Active tiles, controller sites, and every node on an XY route between
/// any two of them — the sub-network that must stay powered so no packet
/// of this closed-loop workload ever reaches a gated router.
std::vector<NodeId> powered_closure(const MeshShape& shape,
                                    const std::vector<NodeId>& active,
                                    const std::vector<NodeId>& sites) {
  std::vector<bool> on(static_cast<std::size_t>(shape.size()), false);
  std::vector<NodeId> all = active;
  all.insert(all.end(), sites.begin(), sites.end());
  for (NodeId a : all)
    for (NodeId b : all)
      for (NodeId n : mem::xy_path_nodes(shape, a, b))
        on[static_cast<std::size_t>(n)] = true;
  std::vector<NodeId> powered;
  for (NodeId n = 0; n < shape.size(); ++n)
    if (on[static_cast<std::size_t>(n)]) powered.push_back(n);
  return powered;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  noc::NetworkParams net = bench::network_params(cfg);
  // Requests (class 0) and replies/data (class 1) need separate virtual
  // networks — the standard protocol-deadlock guard.
  net.num_classes = 2;
  net.validate();
  bench::banner("Figure 13: sprint-level selection, DRAM-bound tile transfer",
                "edge DRAM controllers + multicast weight broadcast; "
                "time- vs energy-optimal sprint level",
                net);

  mem::MemParams mp = mem::MemParams::from_config(cfg);
  if (mp.ctrls == 0) mp.ctrls = 4;  // the bench needs DRAM to be bound by
  const bool multicast = cfg.get_bool("multicast", true);
  const int tile_groups = static_cast<int>(cfg.get_int("tile_groups", 4));
  const int threads = static_cast<int>(cfg.get_int("threads", 1));
  const Cycle max_cycles =
      static_cast<Cycle>(cfg.get_int("max_cycles", 2'000'000));
  const mem::TileSchedule sched =
      mem::TileSchedule::parse(cfg.get_string(
          "schedule", mem::TileSchedule::example().to_string()));

  std::vector<int> levels;
  for (int l : {1, 2, 4, 8, 16})
    if (l <= net.num_nodes()) levels.push_back(l);

  const std::string trace_path = cfg.get_string("trace", "");
  if (!trace_path.empty()) trace::begin(trace_path);

  const power::RouterPowerParams rp =
      power::RouterPowerParams::from_network(net);
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(net.flit_bytes * 8, 2.5, rp.tech,
                                         rp.op);
  const MeshShape shape = net.shape();
  const noc::XyRouting xy;

  std::printf("schedule: %s   controllers: %d (%s)   multicast: %s\n\n",
              sched.to_string().c_str(), mp.ctrls,
              mem::to_string(mp.placement), multicast ? "tree" : "unicast");

  std::vector<LevelResult> results;
  for (int level : levels) {
    noc::Network network(net, &xy);
    if (threads > 1) network.set_sim_threads(threads);
    const std::vector<NodeId> active = sprint::active_set(shape, level);
    const std::vector<NodeId> sites =
        mem::controller_sites(shape, mp.ctrls, mp.placement);
    network.gate_dark_region(powered_closure(shape, active, sites));

    mem::MemSubsystem mem_sys(network, mp);
    mem::TileTransferDriver driver(
        network, mem_sys, sched,
        partition_groups(active, std::min(tile_groups, level)),
        {.multicast = multicast, .chunk_flits = 0});
    driver.install();

    while (!driver.done() && network.now() < max_cycles) network.tick();
    driver.uninstall();

    LevelResult r;
    r.level = level;
    r.finished = driver.done();
    r.cycles = driver.finished_at();
    if (r.finished && r.cycles > 0) {
      const power::NocPowerEstimate est = power::estimate_noc_power(
          network, router_model, link_model, r.cycles);
      r.power_w = est.total();
      r.mcast_repl_w = est.mcast_replication;
      r.energy_j =
          r.power_w * static_cast<double>(r.cycles) / rp.op.frequency;
    }
    r.mem_counters = mem_sys.total_counters();
    r.weight_mcasts = driver.counters().weight_mcasts;
    results.push_back(r);
    if (!r.finished)
      std::fprintf(stderr, "level %d did not finish within %llu cycles\n",
                   level, static_cast<unsigned long long>(max_cycles));
  }

  if (!trace_path.empty()) trace::end();

  Table t({"level", "cycles", "power (mW)", "energy (uJ)", "DRAM rd/wr",
           "queue peak", "mcast sends"});
  int best_time = -1, best_energy = -1;
  for (const LevelResult& r : results) {
    if (!r.finished) continue;
    if (best_time < 0 || r.cycles < results[static_cast<std::size_t>(
                                        best_time)].cycles)
      best_time = static_cast<int>(&r - results.data());
    if (best_energy < 0 ||
        r.energy_j <
            results[static_cast<std::size_t>(best_energy)].energy_j)
      best_energy = static_cast<int>(&r - results.data());
    t.add_row({Table::fmt(static_cast<long long>(r.level)),
               Table::fmt(static_cast<long long>(r.cycles)),
               Table::fmt(r.power_w * 1e3, 2),
               Table::fmt(r.energy_j * 1e6, 2),
               Table::fmt(static_cast<long long>(r.mem_counters.reads)) +
                   "/" +
                   Table::fmt(static_cast<long long>(r.mem_counters.writes)),
               Table::fmt(static_cast<long long>(r.mem_counters.queue_peak)),
               Table::fmt(static_cast<long long>(r.weight_mcasts))});
  }
  t.print();

  if (best_time >= 0 && best_energy >= 0) {
    bench::headline(
        "Algorithm 1 selection (DRAM-bound)",
        "time- and energy-optimal levels separate when DRAM binds",
        "time-optimal level = " +
            std::to_string(results[static_cast<std::size_t>(best_time)]
                               .level) +
            ", energy-optimal level = " +
            std::to_string(results[static_cast<std::size_t>(best_energy)]
                               .level));
  }

  json::Value rows = json::Value::array();
  for (const LevelResult& r : results) {
    json::Value row = json::Value::object();
    row.set("level", r.level);
    row.set("finished", r.finished);
    row.set("cycles", static_cast<std::uint64_t>(r.cycles));
    row.set("power_w", r.power_w);
    row.set("energy_j", r.energy_j);
    row.set("mcast_replication_w", r.mcast_repl_w);
    row.set("dram_reads", r.mem_counters.reads);
    row.set("dram_writes", r.mem_counters.writes);
    row.set("queue_peak", r.mem_counters.queue_peak);
    row.set("weight_mcasts", r.weight_mcasts);
    rows.push_back(std::move(row));
  }
  json::Value doc = json::Value::object();
  doc.set("figure", "fig13_membound");
  doc.set("config", bench::to_json(net));
  doc.set("schedule", sched.to_string());
  doc.set("mem_ctrls", mp.ctrls);
  doc.set("multicast", multicast);
  doc.set("levels", std::move(rows));
  if (best_time >= 0)
    doc.set("time_optimal_level",
            results[static_cast<std::size_t>(best_time)].level);
  if (best_energy >= 0)
    doc.set("energy_optimal_level",
            results[static_cast<std::size_t>(best_energy)].level);
  bench::maybe_write_report(cfg, std::move(doc));

  // bench_json= merges the headline numbers into BENCH_noc.json next to
  // micro_perf's keys (CI uploads the combined file).
  const std::string bench_json = cfg.get_string("bench_json", "");
  if (!bench_json.empty()) {
    std::vector<std::pair<std::string, double>> metrics;
    for (const LevelResult& r : results) {
      if (!r.finished) continue;
      const std::string prefix =
          "fig13.level" + std::to_string(r.level);
      metrics.emplace_back(prefix + ".cycles",
                           static_cast<double>(r.cycles));
      metrics.emplace_back(prefix + ".energy_uj", r.energy_j * 1e6);
    }
    if (best_time >= 0)
      metrics.emplace_back(
          "fig13.time_optimal_level",
          results[static_cast<std::size_t>(best_time)].level);
    if (best_energy >= 0)
      metrics.emplace_back(
          "fig13.energy_optimal_level",
          results[static_cast<std::size_t>(best_energy)].level);
    bench::merge_bench_json(bench_json, metrics);
    std::printf("bench metrics merged into %s\n", bench_json.c_str());
  }
  return 0;
}
