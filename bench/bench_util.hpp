// Shared helpers for the figure-regeneration benches.
//
// Every bench binary regenerates one table/figure of the paper: it prints
// the Table 1 configuration banner, the reproduced rows, and the headline
// aggregate the paper quotes, so `for b in build/bench/*; do $b; done`
// emits a complete experiment log.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "noc/params.hpp"

namespace nocs::bench {

/// Writes a flat {"name": value, ...} JSON object — the machine-readable
/// summary (e.g. BENCH_noc.json) perf-tracking scripts diff across
/// commits.  Returns false (after logging) when the file cannot be opened.
inline bool write_bench_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < metrics.size(); ++i)
    std::fprintf(f, "  \"%s\": %.6g%s\n", metrics[i].first.c_str(),
                 metrics[i].second, i + 1 < metrics.size() ? "," : "");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// Merges flat metrics into an existing BENCH-style JSON file: loads the
/// current {"name": value} object if the file exists and parses (anything
/// else starts fresh), overwrites the given keys, and rewrites the file.
/// Lets several bench binaries contribute to one BENCH_noc.json without
/// clobbering each other's keys.
inline bool merge_bench_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::vector<std::pair<std::string, double>> merged;
  if (std::FILE* f = std::fopen(path.c_str(), "r")) {
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
    try {
      const json::Value v = json::Value::parse(text);
      if (v.is_object())
        for (const auto& [key, val] : v.members())
          if (val.is_number()) merged.emplace_back(key, val.as_number());
    } catch (const std::invalid_argument&) {
      // Unparseable previous contents: rewrite from scratch.
    }
  }
  for (const auto& [key, val] : metrics) {
    bool found = false;
    for (auto& m : merged)
      if (m.first == key) {
        m.second = val;
        found = true;
        break;
      }
    if (!found) merged.emplace_back(key, val);
  }
  return write_bench_json(path, merged);
}

/// Parses key=value overrides from argv, tolerating none.
inline Config parse_config(int argc, char** argv) {
  return Config::from_args(argc, argv);
}

/// Writes a structured run report to the path given by the `report=`
/// config key; a silent no-op when the key is unset.  The standard way
/// for a bench to expose its table as machine-readable JSON.
inline bool maybe_write_report(const Config& cfg, json::Value doc) {
  const std::string path = cfg.get_string("report", "");
  if (path.empty()) return false;
  if (!json::write_file(path, doc)) return false;
  std::printf("report written to %s\n", path.c_str());
  return true;
}

/// Serializes the Table 1 network configuration (for report headers).
inline json::Value to_json(const noc::NetworkParams& p) {
  json::Value o = json::Value::object();
  o.set("width", p.width);
  o.set("height", p.height);
  o.set("num_vcs", p.num_vcs);
  o.set("vc_depth", p.vc_depth);
  o.set("packet_length", p.packet_length);
  o.set("flit_bytes", p.flit_bytes);
  return o;
}

/// Builds the Table 1 network configuration with optional overrides
/// (width, height, num_vcs, vc_depth, packet_length, flit_bytes).
inline noc::NetworkParams network_params(const Config& cfg) {
  noc::NetworkParams p;
  p.width = static_cast<int>(cfg.get_int("width", p.width));
  p.height = static_cast<int>(cfg.get_int("height", p.height));
  p.num_vcs = static_cast<int>(cfg.get_int("num_vcs", p.num_vcs));
  p.vc_depth = static_cast<int>(cfg.get_int("vc_depth", p.vc_depth));
  p.packet_length =
      static_cast<int>(cfg.get_int("packet_length", p.packet_length));
  p.flit_bytes = static_cast<int>(cfg.get_int("flit_bytes", p.flit_bytes));
  p.validate();
  return p;
}

/// Prints the experiment banner: which figure, what configuration.
inline void banner(const char* experiment, const char* summary,
                   const noc::NetworkParams& p) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, summary);
  std::printf(
      "config: %dx%d mesh, %d VCs x %d flits, %d-flit packets, %d-byte "
      "flits (Table 1)\n",
      p.width, p.height, p.num_vcs, p.vc_depth, p.packet_length,
      p.flit_bytes);
  std::printf("==============================================================\n");
}

/// Prints a "paper vs measured" headline line.
inline void headline(const std::string& what, const std::string& paper,
                     const std::string& measured) {
  std::printf("\n>> %s: paper = %s, measured = %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace nocs::bench
