// Ablation (extension) — thermal-aware sprint rotation.
//
// Repeated bursts sprinting the *same* corner accumulate heat there;
// rotating the master to the coolest corner before each burst (possible
// because CDOR handles any corner by reflection) spreads the heat load in
// *time* the way the Algorithm 3/4 floorplan spreads it in *space*.  We
// replay a burst train through the transient thermal solver and compare
// the running peak temperature.
#include <cstdio>

#include "bench_util.hpp"
#include "sprint/rotation.hpp"

using namespace nocs;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Ablation (extension): thermal-aware sprint rotation",
                "burst train, fixed corner vs coolest-corner master; "
                "transient FD thermal solver",
                net);

  const int bursts = static_cast<int>(cfg.get_int("bursts", 8));
  const int level = static_cast<int>(cfg.get_int("level", 4));
  const double sprint_s = cfg.get_double("sprint_s", 0.3);
  const double idle_s = cfg.get_double("idle_s", 0.3);

  const MeshShape mesh = net.shape();
  thermal::GridThermalParams gp{};
  // Include the spreader/PCM mass in the distributed heat capacity so the
  // thermal time constant (~0.7 s) exceeds the burst period and heat
  // actually accumulates across bursts (the regime rotation targets).
  gp.c_per_area = 16500.0;
  const power::ChipPowerParams chip{};

  std::printf("%d bursts of level-%d sprinting, %.1f s sprint + %.1f s "
              "cool-down each\n\n",
              bursts, level, sprint_s, idle_s);

  Table t({"burst", "fixed master", "fixed peak (K)", "rotated master",
           "rotated peak (K)", "delta (K)"});
  SprintRotationSim fixed(mesh, gp, chip, 12.0);
  SprintRotationSim rotated(mesh, gp, chip, 12.0);
  double final_delta = 0.0;
  for (int b = 0; b < bursts; ++b) {
    const auto f = fixed.run_burst(level, sprint_s, idle_s, false);
    const auto r = rotated.run_burst(level, sprint_s, idle_s, true);
    final_delta = r.peak_after - f.peak_after;
    t.add_row({Table::fmt(static_cast<long long>(b)),
               Table::fmt(static_cast<long long>(f.master)),
               Table::fmt(f.peak_after, 2),
               Table::fmt(static_cast<long long>(r.master)),
               Table::fmt(r.peak_after, 2), Table::fmt(final_delta, 2)});
  }
  t.print();

  bench::headline(
      "rotation vs fixed corner (final burst peak)",
      "extension: cooler peaks by spreading heat in time",
      Table::fmt(final_delta, 2) + " K (negative = rotation cooler)");
  return 0;
}
