// Ablation — LLC architectures and network power gating (Section 3.4).
//
// For private / centralized / separate-NUCA LLCs, gating the dark region
// needs no extra hardware.  For a tiled shared LLC, dark banks must stay
// reachable: a NoRD-style bypass ring carries the (N-k)/N of LLC accesses
// that target them.  This bench quantifies the bypass's latency and power
// cost against the gating savings it unlocks, per sprint level.
#include <cstdio>

#include "bench_util.hpp"
#include "power/chip_power.hpp"
#include "sprint/llc.hpp"

using namespace nocs;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Ablation: LLC architectures vs network power gating",
                "Section 3.4 — bypass-path support for tiled shared LLCs",
                net);

  const MeshShape mesh = net.shape();
  const power::ChipPowerModel chip{power::ChipPowerParams{}};

  std::printf("architectures without extra hardware requirements:\n");
  for (LlcArchitecture arch :
       {LlcArchitecture::kPrivate, LlcArchitecture::kCentralized,
        LlcArchitecture::kNucaSeparate}) {
    LlcParams p;
    p.arch = arch;
    const LlcModel model(mesh, p);
    std::printf("  %-14s gating safe: %s\n", to_string(arch),
                model.analyze(4).gating_safe_without_support ? "yes" : "no");
  }

  std::printf("\ntiled shared LLC (address-interleaved banks), NoRD-style "
              "bypass ring:\n");
  LlcParams tiled;
  tiled.arch = LlcArchitecture::kTiledShared;
  const LlcModel model(mesh, tiled);

  Table t({"level", "dark-bank access frac", "bypass round trip (cyc)",
           "added avg latency (cyc)", "bypass power (mW)",
           "gating saving (W)", "net benefit (W)"});
  for (int level : {2, 4, 6, 8, 12, 16}) {
    const LlcAnalysis a = model.analyze(level);
    const Watts gating_saving =
        chip.noc_power(16) - chip.noc_power(level);
    t.add_row({Table::fmt(static_cast<long long>(level)),
               Table::pct(a.dark_access_fraction),
               Table::fmt(a.avg_bypass_round_trip, 0),
               Table::fmt(a.added_avg_latency, 2),
               Table::fmt(a.bypass_power * 1e3, 1),
               Table::fmt(gating_saving, 2),
               Table::fmt(gating_saving - a.bypass_power, 2)});
  }
  t.print();

  bench::headline(
      "bypass cost vs gating benefit",
      "bypass paths let cache banks stay reachable while routers sleep",
      "ring power is milliwatts against watts of recovered router "
      "leakage — gating stays profitable at every level");
  return 0;
}
