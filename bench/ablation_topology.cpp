// Ablation — Euclidean vs Hamming activation ordering (Algorithm 1's
// design choice).
//
// The paper argues Euclidean ordering yields tighter regions: at 4-core
// sprinting, Hamming ordering may pick node 2 where Euclidean picks node 5
// (shorter inter-node communication).  We quantify with the average
// pairwise Manhattan distance of the active set and with simulated
// latency at a fixed load.
//
// The simulated path runs through the topology-agnostic core: the mesh is
// built as a noc::Topology and the network through
// make_topology_sprinting_network, which on a mesh resolves to the exact
// CDOR construction (so the numbers match the legacy builder bit for bit)
// while also exercising the deadlock check the generalized path requires.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/topology.hpp"

using namespace nocs;
using namespace nocs::sprint;

namespace {

// Hamming-ordered prefixes are not guaranteed to satisfy CDOR's staircase
// property, so the latency comparison uses plain region geometry: zero-load
// latency is dominated by hop distance.
double sim_latency_euclidean(const noc::NetworkParams& params,
                             const noc::Topology& topo, int level) {
  auto b = make_topology_sprinting_network(params, topo, level, "uniform", 3);
  noc::SimConfig sim;
  sim.injection_rate = 0.1;
  return noc::run_simulation(*b.network, sim).avg_packet_latency;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Ablation: Euclidean vs Hamming activation ordering",
                "Algorithm 1 design choice — region compactness and "
                "simulated latency",
                net);

  const MeshShape mesh = net.shape();
  const noc::Topology topo = noc::Topology::mesh(net.width, net.height);
  const auto euclid = sprint_order(topo, 0);
  const auto hamming = sprint_order_hamming(mesh, 0);

  std::printf("euclidean order:");
  for (NodeId id : euclid) std::printf(" %d", id);
  std::printf("\nhamming order:  ");
  for (NodeId id : hamming) std::printf(" %d", id);
  std::printf("\n\n");

  Table t({"level", "euclid avg pair dist", "hamming avg pair dist",
           "euclid better?", "sim latency (euclid, cyc)"});
  int wins = 0, ties = 0;
  for (int k = 3; k <= mesh.size(); ++k) {
    std::vector<NodeId> se(euclid.begin(), euclid.begin() + k);
    std::vector<NodeId> sh(hamming.begin(), hamming.begin() + k);
    const double de = average_pairwise_distance(mesh, se);
    const double dh = average_pairwise_distance(mesh, sh);
    if (de < dh - 1e-9) ++wins;
    if (std::abs(de - dh) <= 1e-9) ++ties;
    t.add_row({Table::fmt(static_cast<long long>(k)), Table::fmt(de, 3),
               Table::fmt(dh, 3),
               de < dh - 1e-9 ? "yes" : (de > dh + 1e-9 ? "no" : "tie"),
               Table::fmt(sim_latency_euclidean(net, topo, k), 2)});
  }
  t.print();

  bench::headline(
      "levels where Euclidean ordering is at least as compact",
      "always (paper's 4-core example)",
      Table::fmt(static_cast<long long>(wins + ties)) + " of " +
          Table::fmt(static_cast<long long>(mesh.size() - 2)));
  return 0;
}
