// Figure 9 — average network latency running PARSEC under full-sprinting
// vs NoC-sprinting.
//
// Paper result: NoC-sprinting cuts average network latency by 24.5 % by
// keeping traffic inside a compact convex region (CDOR avoids traversing
// the dark region entirely).
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "parsec_sim.hpp"

using namespace nocs;
using namespace nocs::cmp;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Figure 9: average network latency, PARSEC",
                "full-sprinting (16 nodes, XY-DOR) vs NoC-sprinting "
                "(optimal convex region, CDOR, dark region gated)",
                net);

  const std::uint64_t seed = cfg.get_int("seed", 7);
  const int threads = static_cast<int>(cfg.get_int("threads", 0));
  const PerfModel pm(net.num_nodes());
  const auto suite = parsec_suite(net.num_nodes());

  // checkpoint= names a manifest file: finished benchmarks are recorded as
  // they complete, and a killed run re-launched with the same arguments
  // replays them instead of re-simulating (see docs/SNAPSHOT_FORMAT.md).
  snapshot::TaskManifest manifest(
      cfg.get_string("checkpoint", ""),
      bench::parsec_suite_fingerprint(net, suite, seed));

  // One worker per benchmark; rows are folded in suite order afterwards so
  // the table and averages match the serial loop exactly.
  const auto results =
      bench::run_parsec_suite(net, suite, pm, seed, threads, &manifest);

  Table t({"benchmark", "inj (flits/cyc)", "level", "full lat (cyc)",
           "noc-sprint lat (cyc)", "reduction"});
  std::vector<double> reductions;
  json::Value rows = json::Value::array();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const WorkloadParams& w = suite[i];
    const bench::ParsecNetResult& r = results[i];
    const double red = 1.0 - r.noc_latency / r.full_latency;
    reductions.push_back(red);
    t.add_row({w.name, Table::fmt(w.injection_rate, 2),
               Table::fmt(static_cast<long long>(r.level)),
               Table::fmt(r.full_latency, 2), Table::fmt(r.noc_latency, 2),
               Table::pct(red)});
    json::Value row = json::Value::object();
    row.set("benchmark", w.name);
    row.set("injection_rate", w.injection_rate);
    row.set("level", r.level);
    row.set("full_latency", r.full_latency);
    row.set("noc_latency", r.noc_latency);
    row.set("reduction", red);
    rows.push_back(std::move(row));
  }
  t.print();

  bench::headline("average network latency reduction", "24.5%",
                  Table::pct(arithmetic_mean(reductions)));

  json::Value doc = json::Value::object();
  doc.set("figure", "fig09_net_latency");
  doc.set("config", bench::to_json(net));
  doc.set("seed", static_cast<std::uint64_t>(seed));
  doc.set("benchmarks", std::move(rows));
  doc.set("avg_latency_reduction", arithmetic_mean(reductions));
  bench::maybe_write_report(cfg, std::move(doc));
  return 0;
}
