// Figure 8 — core power dissipation per sprinting scheme.
//
// Paper result: vs full-sprinting, naive fine-grained sprinting (optimal
// core count but idle cores left un-gated) saves 25.5 % core power on
// average; NoC-sprinting (gated) saves 69.1 %.  blackscholes/bodytrack
// sprint all 16 cores, so they leave no gating headroom.
#include <cstdio>

#include "bench_util.hpp"
#include "cmp/perf_model.hpp"
#include "common/stats.hpp"
#include "power/chip_power.hpp"
#include "sprint/sprint_controller.hpp"
#include "thermal/pcm.hpp"

using namespace nocs;
using namespace nocs::cmp;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Figure 8: core power dissipation per sprinting scheme",
                "full vs fine-grained (idle, no gating) vs NoC-sprinting "
                "(dark cores gated)",
                net);

  const MeshShape mesh = net.shape();
  const PerfModel pm(mesh.size());
  const power::ChipPowerModel chip(power::ChipPowerParams{});
  const thermal::PcmModel pcm{thermal::PcmParams{}};
  const SprintController ctl(mesh, pm, chip, pcm);

  const auto suite = parsec_suite(mesh.size());
  Table t({"benchmark", "level", "full (W)", "fine-grained (W)",
           "noc-sprint (W)", "fg saving", "noc saving"});
  std::vector<double> fg_savings, noc_savings;
  for (const WorkloadParams& w : suite) {
    const SprintPlan full = ctl.plan(w, SprintMode::kFullSprinting);
    const SprintPlan fg = ctl.plan(w, SprintMode::kFineGrained);
    const SprintPlan noc = ctl.plan(w, SprintMode::kNocSprinting);
    const double fg_save = 1.0 - fg.core_power / full.core_power;
    const double noc_save = 1.0 - noc.core_power / full.core_power;
    fg_savings.push_back(fg_save);
    noc_savings.push_back(noc_save);
    t.add_row({w.name, Table::fmt(static_cast<long long>(noc.level)),
               Table::fmt(full.core_power, 1), Table::fmt(fg.core_power, 1),
               Table::fmt(noc.core_power, 1), Table::pct(fg_save),
               Table::pct(noc_save)});
  }
  t.print();

  bench::headline("average core power saving vs full-sprinting",
                  "fine-grained 25.5%, NoC-sprinting 69.1%",
                  "fine-grained " +
                      Table::pct(arithmetic_mean(fg_savings)) +
                      ", NoC-sprinting " +
                      Table::pct(arithmetic_mean(noc_savings)));
  return 0;
}
