// Micro-benchmarks (google-benchmark): raw speed of the simulator and the
// paper's algorithms.  Not a paper figure — engineering data for users
// sizing their own sweeps.
//
// The custom main() additionally times the headline throughput numbers
// outside google-benchmark and writes them to BENCH_noc.json (flat
// name -> value JSON) so perf regressions are diffable across commits.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <deque>

#include "bench_util.hpp"
#include "cmp/perf_model.hpp"
#include "noc/parallel_sweep.hpp"
#include "noc/simulator.hpp"
#include "sprint/cdor.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/topology.hpp"
#include "thermal/grid.hpp"

using namespace nocs;

namespace {

/// Builds the standard tick-benchmark network: side x side mesh, every
/// node an endpoint, uniform traffic at 0.2 flits/cycle, pipelines warm.
std::unique_ptr<noc::Network> make_tick_network(
    int side, const noc::RoutingFunction* routing) {
  noc::NetworkParams p;
  p.width = side;
  p.height = side;
  auto net = std::make_unique<noc::Network>(p, routing);
  std::vector<NodeId> all;
  for (int i = 0; i < p.num_nodes(); ++i) all.push_back(i);
  net->set_endpoints(all, noc::make_traffic("uniform", p.num_nodes()));
  net->set_injection_rate(0.2);
  net->set_seed(1);
  net->run(1000);  // warm the pipelines
  return net;
}

}  // namespace

static void BM_NetworkTick(benchmark::State& state) {
  noc::XyRouting xy;
  auto net = make_tick_network(static_cast<int>(state.range(0)), &xy);
  for (auto _ : state) net->tick();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(net->num_nodes()));
}
BENCHMARK(BM_NetworkTick)->Arg(4)->Arg(8);

// Sharded barrier-synchronous tick: same network as BM_NetworkTick but
// with tick() partitioned into row-band shards on sim_threads threads.
// Results are bit-identical to serial; this measures the wall-clock win.
static void BM_NetworkTickSharded(benchmark::State& state) {
  noc::XyRouting xy;
  auto net = make_tick_network(static_cast<int>(state.range(0)), &xy);
  net->set_sim_threads(static_cast<int>(state.range(1)));
  for (auto _ : state) net->tick();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(net->num_nodes()));
}
BENCHMARK(BM_NetworkTickSharded)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({32, 8});

// Sprint level 4 of 16: a 2x2 active region, 12 routers dark.  The
// active-router fast path should make the dark region's tick cost ~zero,
// so this lands far below BM_NetworkTick/4 per tick.
static void BM_NetworkTickGated(benchmark::State& state) {
  noc::NetworkParams p;
  p.width = 4;
  p.height = 4;
  sprint::NetworkBundle b =
      sprint::make_noc_sprinting_network(p, 4, "uniform", 1);
  b.network->set_injection_rate(0.2);
  b.network->run(1000);
  for (auto _ : state) b.network->tick();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.num_nodes()));
}
BENCHMARK(BM_NetworkTickGated);

namespace {

/// The pre-ring VcBuffer implementation, kept here as the comparison
/// baseline for BM_VcBuffer (std::deque allocates/frees chunks as flits
/// stream through, which is what the ring rewrite removed).
class DequeVcBuffer {
 public:
  explicit DequeVcBuffer(int capacity) : capacity_(capacity) {}
  bool empty() const { return q_.empty(); }
  bool full() const { return static_cast<int>(q_.size()) >= capacity_; }
  void push(const noc::Flit& f) { q_.push_back(f); }
  const noc::Flit& front() const { return q_.front(); }
  noc::Flit pop() {
    noc::Flit f = q_.front();
    q_.pop_front();
    return f;
  }

 private:
  int capacity_;
  std::deque<noc::Flit> q_;
};

template <typename Buffer>
void run_buffer_benchmark(benchmark::State& state) {
  Buffer buf(4);
  noc::Flit f;
  f.packet = 42;
  std::int64_t items = 0;
  for (auto _ : state) {
    // One wormhole burst: fill the VC, then drain it.
    for (int i = 0; i < 4; ++i) {
      f.index = i;
      buf.push(f);
    }
    while (!buf.empty()) benchmark::DoNotOptimize(buf.pop());
    items += 4;
  }
  state.SetItemsProcessed(items);
}

}  // namespace

static void BM_VcBufferRing(benchmark::State& state) {
  run_buffer_benchmark<noc::VcBuffer>(state);
}
BENCHMARK(BM_VcBufferRing);

static void BM_VcBufferDeque(benchmark::State& state) {
  run_buffer_benchmark<DequeVcBuffer>(state);
}
BENCHMARK(BM_VcBufferDeque);

static void BM_SprintOrder(benchmark::State& state) {
  const MeshShape mesh(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sprint::sprint_order(mesh, 0));
}
BENCHMARK(BM_SprintOrder)->Arg(4)->Arg(16);

static void BM_CdorRoute(benchmark::State& state) {
  const MeshShape mesh(4, 4);
  const sprint::CdorRouting cdor(mesh, sprint::active_set(mesh, 8, 0), 0);
  int i = 0;
  const auto& act = cdor.active_nodes();
  for (auto _ : state) {
    const Coord a = mesh.coord_of(act[static_cast<std::size_t>(i % 8)]);
    const Coord b = mesh.coord_of(act[static_cast<std::size_t>((i + 3) % 8)]);
    benchmark::DoNotOptimize(cdor.route(a, b));
    ++i;
  }
}
BENCHMARK(BM_CdorRoute);

static void BM_Floorplan(benchmark::State& state) {
  const MeshShape mesh(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sprint::thermal_aware_floorplan(mesh, 0));
}
BENCHMARK(BM_Floorplan)->Arg(4)->Arg(8);

static void BM_ThermalSteady(benchmark::State& state) {
  const MeshShape mesh(4, 4);
  thermal::GridThermalParams gp;
  const thermal::GridThermalModel model(gp, 12.0, 12.0);
  std::vector<Watts> powers(16, 1.0);
  powers[0] = 5.0;
  const thermal::Floorplan fp = thermal::make_cmp_floorplan(
      mesh, 12.0, 12.0, powers, thermal::identity_positions(16));
  for (auto _ : state) benchmark::DoNotOptimize(model.solve_steady(fp));
}
BENCHMARK(BM_ThermalSteady);

static void BM_CalibrateSuite(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(cmp::parsec_suite(16));
}
BENCHMARK(BM_CalibrateSuite);

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Ticks `net` for `n` cycles and returns ticks per second.
double measure_ticks_per_sec(noc::Network& net, Cycle n) {
  const auto t0 = std::chrono::steady_clock::now();
  net.run(n);
  return static_cast<double>(n) / seconds_since(t0);
}

/// Times a small fig11-style injection sweep (fresh 4x4 sprint network per
/// point) at the given worker count; returns wall-clock seconds.
double measure_sweep_seconds(int threads) {
  const std::vector<double> rates = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30,
                                     0.35, 0.40};
  noc::NetworkParams p;
  p.width = 4;
  p.height = 4;
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 4000;
  const auto t0 = std::chrono::steady_clock::now();
  const auto points = noc::parallel_sweep_injection(
      [&](const noc::SweepTask& task) {
        sprint::NetworkBundle b =
            sprint::make_noc_sprinting_network(p, 8, "uniform", task.seed);
        noc::SimConfig point_sim = sim;
        point_sim.injection_rate = task.injection_rate;
        return noc::run_simulation(*b.network, point_sim);
      },
      rates, /*base_seed=*/11, threads);
  benchmark::DoNotOptimize(points);
  return seconds_since(t0);
}

/// Headline metrics for BENCH_noc.json, measured outside google-benchmark
/// (simple wall-clock timing is enough for the cross-commit diff).  With
/// NOCS_BENCH_FAST set (the CI bench job), cycle budgets shrink 10x: the
/// numbers get noisier but the whole emit stays under a minute.
void emit_bench_json() {
  const Cycle div = std::getenv("NOCS_BENCH_FAST") != nullptr ? 10 : 1;
  std::vector<std::pair<std::string, double>> metrics;

  noc::XyRouting xy;
  auto full = make_tick_network(8, &xy);
  metrics.emplace_back("network_tick_8x8_ticks_per_sec",
                       measure_ticks_per_sec(*full, 200000 / div));

  noc::NetworkParams p4;
  p4.width = 4;
  p4.height = 4;
  sprint::NetworkBundle gated =
      sprint::make_noc_sprinting_network(p4, 4, "uniform", 1);
  gated.network->set_injection_rate(0.2);
  gated.network->run(1000);
  metrics.emplace_back("network_tick_gated_4of16_ticks_per_sec",
                       measure_ticks_per_sec(*gated.network, 2000000 / div));

  // Sharded-tick speedup curve: ticks/sec for each mesh size x thread
  // count, plus the headline 32x32 speedups relative to serial.  Cycle
  // budgets shrink with mesh size so the whole curve stays a few seconds.
  {
    noc::XyRouting curve_xy;
    const struct { int side; Cycle cycles; } meshes[] = {
        {8, 100000}, {16, 30000}, {32, 8000}};
    for (const auto& m : meshes) {
      double serial_tps = 0.0;
      for (const int t : {1, 2, 4, 8}) {
        auto net = make_tick_network(m.side, &curve_xy);
        net->set_sim_threads(t);
        const double tps = measure_ticks_per_sec(*net, m.cycles / div);
        if (t == 1) serial_tps = tps;
        metrics.emplace_back("tick_" + std::to_string(m.side) + "x" +
                                 std::to_string(m.side) + "_t" +
                                 std::to_string(t) + "_ticks_per_sec",
                             tps);
        if (m.side == 32 && t > 1)
          metrics.emplace_back(
              "tick_32x32_speedup_t" + std::to_string(t),
              serial_tps > 0 ? tps / serial_tps : 0.0);
      }
    }
  }

  const double serial = measure_sweep_seconds(1);
  const double parallel = measure_sweep_seconds(4);
  metrics.emplace_back("sweep_8pt_serial_seconds", serial);
  metrics.emplace_back("sweep_8pt_4threads_seconds", parallel);
  metrics.emplace_back("sweep_4thread_speedup",
                       parallel > 0 ? serial / parallel : 0.0);

  bench::write_bench_json("BENCH_noc.json", metrics);
  double speedup32_t4 = 0.0, sweep_speedup = 0.0;
  for (const auto& [name, value] : metrics) {
    if (name == "tick_32x32_speedup_t4") speedup32_t4 = value;
    if (name == "sweep_4thread_speedup") sweep_speedup = value;
  }
  std::printf("wrote BENCH_noc.json (8x8 %.3g ticks/s, gated %.3g ticks/s, "
              "32x32 sharded-tick speedup %.2fx @4 threads, "
              "4-thread sweep speedup %.2fx)\n",
              metrics[0].second, metrics[1].second, speedup32_t4,
              sweep_speedup);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_bench_json();
  return 0;
}
