// Micro-benchmarks (google-benchmark): raw speed of the simulator and the
// paper's algorithms.  Not a paper figure — engineering data for users
// sizing their own sweeps.
#include <benchmark/benchmark.h>

#include "cmp/perf_model.hpp"
#include "noc/simulator.hpp"
#include "sprint/cdor.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/topology.hpp"
#include "thermal/grid.hpp"

using namespace nocs;

static void BM_NetworkTick(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  noc::NetworkParams p;
  p.width = side;
  p.height = side;
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  std::vector<NodeId> all;
  for (int i = 0; i < p.num_nodes(); ++i) all.push_back(i);
  net.set_endpoints(all, noc::make_traffic("uniform", p.num_nodes()));
  net.set_injection_rate(0.2);
  net.set_seed(1);
  net.run(1000);  // warm the pipelines
  for (auto _ : state) net.tick();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.num_nodes()));
}
BENCHMARK(BM_NetworkTick)->Arg(4)->Arg(8);

static void BM_SprintOrder(benchmark::State& state) {
  const MeshShape mesh(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sprint::sprint_order(mesh, 0));
}
BENCHMARK(BM_SprintOrder)->Arg(4)->Arg(16);

static void BM_CdorRoute(benchmark::State& state) {
  const MeshShape mesh(4, 4);
  const sprint::CdorRouting cdor(mesh, sprint::active_set(mesh, 8, 0), 0);
  int i = 0;
  const auto& act = cdor.active_nodes();
  for (auto _ : state) {
    const Coord a = mesh.coord_of(act[static_cast<std::size_t>(i % 8)]);
    const Coord b = mesh.coord_of(act[static_cast<std::size_t>((i + 3) % 8)]);
    benchmark::DoNotOptimize(cdor.route(a, b));
    ++i;
  }
}
BENCHMARK(BM_CdorRoute);

static void BM_Floorplan(benchmark::State& state) {
  const MeshShape mesh(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sprint::thermal_aware_floorplan(mesh, 0));
}
BENCHMARK(BM_Floorplan)->Arg(4)->Arg(8);

static void BM_ThermalSteady(benchmark::State& state) {
  const MeshShape mesh(4, 4);
  thermal::GridThermalParams gp;
  const thermal::GridThermalModel model(gp, 12.0, 12.0);
  std::vector<Watts> powers(16, 1.0);
  powers[0] = 5.0;
  const thermal::Floorplan fp = thermal::make_cmp_floorplan(
      mesh, 12.0, 12.0, powers, thermal::identity_positions(16));
  for (auto _ : state) benchmark::DoNotOptimize(model.solve_steady(fp));
}
BENCHMARK(BM_ThermalSteady);

static void BM_CalibrateSuite(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(cmp::parsec_suite(16));
}
BENCHMARK(BM_CalibrateSuite);

BENCHMARK_MAIN();
