// Ablation — the floorplan's wiring cost and the SMART-wire mitigation
// (Section 3.3).
//
// The thermal-aware floorplan stretches logical mesh links across the
// die.  With conventional repeated wires each stretched link costs extra
// cycles; with SMART-style clockless repeated wires (Krishna et al.)
// multi-pitch traversals complete in one cycle.  We simulate a 4-core and
// an 8-core sprint under three wire configurations and report latency.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/simulator.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/network_builder.hpp"

using namespace nocs;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  const noc::NetworkParams net = bench::network_params(cfg);
  bench::banner("Ablation: floorplan wiring cost and SMART wires",
                "identity vs thermal-aware placement x conventional vs "
                "SMART repeated wires",
                net);

  const MeshShape mesh = net.shape();
  const std::uint64_t seed = cfg.get_int("seed", 17);
  const auto identity = identity_floorplan(mesh).positions;
  const auto remapped = thermal_aware_floorplan(mesh, 0).positions;

  noc::SimConfig sim;
  sim.warmup = 1000;
  sim.measure = 6000;
  sim.injection_rate = cfg.get_double("injection", 0.15);

  struct Cfg {
    const char* name;
    const std::vector<int>* positions;
    int smart;
  };
  WireParams conventional;  // smart_max_pitches = 0
  const Cfg configs[] = {
      {"identity + conventional", &identity, 0},
      {"floorplan + conventional", &remapped, 0},
      {"floorplan + SMART (8 pitches/cycle)", &remapped, 8},
  };

  for (int level : {4, 8}) {
    std::printf("\n--- %d-core sprint ---\n", level);
    Table t({"configuration", "avg link (mm)", "max link (mm)",
             "latency (cyc)", "vs identity"});
    double base_latency = 0.0;
    for (const Cfg& c : configs) {
      WireParams wires = conventional;
      wires.smart_max_pitches = c.smart;
      const PhysicalWires phys(mesh, *c.positions, wires);
      auto b = make_floorplanned_network(net, level, "uniform", seed,
                                         *c.positions, wires);
      const noc::SimResults r = run_simulation(*b.network, sim);
      if (c.positions == &identity) base_latency = r.avg_packet_latency;
      t.add_row({c.name, Table::fmt(phys.average_link_length_mm(), 2),
                 Table::fmt(phys.max_link_length_mm(), 2),
                 r.saturated ? "sat" : Table::fmt(r.avg_packet_latency, 2),
                 Table::pct(r.avg_packet_latency / base_latency - 1.0, 1)});
    }
    t.print();
  }

  bench::headline(
      "SMART wires absorb the floorplan's wiring cost",
      "multi-hop traversals in a single clock cycle (Section 3.3)",
      "floorplan+conventional pays a latency penalty; floorplan+SMART "
      "returns to near the identity latency");
  return 0;
}
