// Ablation — router pipeline depth (classic 5-stage vs 3-stage
// lookahead/speculative).
//
// Table 1 specifies the classic five-stage router.  A shallower pipeline
// lowers absolute latency everywhere but *shrinks* NoC-sprinting's
// relative latency cut: per-hop router delay is what makes short convex
// paths pay off, so deeper pipelines amplify the paper's Figure 11 gap.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/simulator.hpp"
#include "sprint/network_builder.hpp"

using namespace nocs;
using namespace nocs::sprint;

int main(int argc, char** argv) {
  const Config cfg = bench::parse_config(argc, argv);
  bench::banner("Ablation: router pipeline depth",
                "5-stage (Table 1) vs 3-stage lookahead router: absolute "
                "latency and the sprint latency cut",
                bench::network_params(cfg));

  const std::uint64_t seed = cfg.get_int("seed", 41);
  noc::SimConfig sim;
  sim.warmup = 1000;
  sim.measure = 6000;
  sim.injection_rate = cfg.get_double("injection", 0.1);

  Table t({"pipeline", "level", "noc lat (cyc)", "full lat (cyc)",
           "lat cut"});
  for (int stages : {5, 3}) {
    for (int level : {4, 8}) {
      noc::NetworkParams params = bench::network_params(cfg);
      params.pipeline_stages = stages;
      auto nb = make_noc_sprinting_network(params, level, "uniform", seed);
      const double noc_lat =
          run_simulation(*nb.network, sim).avg_packet_latency;
      auto fb = make_full_sprinting_network(params, level, "uniform", seed);
      const double full_lat =
          run_simulation(*fb.network, sim).avg_packet_latency;
      t.add_row({stages == 5 ? "5-stage (paper)" : "3-stage lookahead",
                 Table::fmt(static_cast<long long>(level)),
                 Table::fmt(noc_lat, 2), Table::fmt(full_lat, 2),
                 Table::pct(1.0 - noc_lat / full_lat)});
    }
  }
  t.print();

  bench::headline(
      "pipeline depth and the sprint advantage",
      "Figure 11's latency cut assumes the five-stage router",
      "the relative cut shrinks with a shallower pipeline (absolute "
      "latency drops for both schemes)");
  return 0;
}
