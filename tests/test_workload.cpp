// Tests for workload calibration and the PARSEC suite table.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cmp/perf_model.hpp"
#include "cmp/workload.hpp"

namespace nocs::cmp {
namespace {

TEST(Calibration, HitsOptimalLevelExactly) {
  const PerfModel pm(16);
  for (const CalibrationTarget& t : parsec_targets()) {
    const WorkloadParams w = calibrate_workload(t, 16);
    EXPECT_EQ(pm.optimal_level(w), t.optimal_cores) << t.name;
    EXPECT_NEAR(pm.speedup(w, t.optimal_cores), t.speedup_optimal, 0.01)
        << t.name;
  }
}

TEST(Calibration, FullMachineSpeedupApproximate) {
  // The 2-D scan matches s(16) only as well as the model family allows;
  // direction must always be right (never better than the optimum).
  const PerfModel pm(16);
  for (const CalibrationTarget& t : parsec_targets()) {
    const WorkloadParams w = calibrate_workload(t, 16);
    EXPECT_LE(pm.speedup(w, 16), pm.speedup(w, t.optimal_cores) + 1e-9)
        << t.name;
  }
}

TEST(Calibration, InfeasibleTargetThrows) {
  CalibrationTarget t;
  t.name = "impossible";
  t.optimal_cores = 4;
  t.speedup_optimal = 4.5;  // superlinear: beyond Amdahl at 4 cores
  t.speedup_full = 1.0;
  EXPECT_THROW(calibrate_workload(t, 16), std::invalid_argument);
}

TEST(Calibration, MonotonicWorkloadNeedsConsistentTargets) {
  CalibrationTarget t;
  t.name = "scalable";
  t.optimal_cores = 16;
  t.speedup_optimal = 6.0;
  t.speedup_full = 6.0;
  const WorkloadParams w = calibrate_workload(t, 16);
  const PerfModel pm(16);
  EXPECT_EQ(pm.optimal_level(w), 16);
  EXPECT_NEAR(pm.speedup(w, 16), 6.0, 0.01);
}

TEST(ParsecSuite, ElevenBenchmarks) {
  const auto suite = parsec_suite();
  EXPECT_EQ(suite.size(), 11u);
  for (const WorkloadParams& w : suite) {
    w.validate();
    EXPECT_LE(w.injection_rate, 0.3)
        << w.name << ": paper reports PARSEC injection never exceeds 0.3";
  }
}

TEST(ParsecSuite, WorkloadClassesOfFigure4) {
  const PerfModel pm(16);
  const auto suite = parsec_suite();

  // Scalable: blackscholes and bodytrack sprint all 16 cores.
  EXPECT_EQ(pm.optimal_level(find_workload(suite, "blackscholes")), 16);
  EXPECT_EQ(pm.optimal_level(find_workload(suite, "bodytrack")), 16);

  // Serial-ish: freqmine's optimum is tiny and 16-core runs are *slower*
  // than one core.
  const auto& fm = find_workload(suite, "freqmine");
  EXPECT_LE(pm.optimal_level(fm), 3);
  EXPECT_GT(pm.exec_time(fm, 16), 1.0);

  // Peak-then-degrade: vips and swaptions peak in the middle.
  for (const char* name : {"vips", "swaptions"}) {
    const auto& w = find_workload(suite, name);
    const int k = pm.optimal_level(w);
    EXPECT_GT(k, 2) << name;
    EXPECT_LT(k, 16) << name;
    EXPECT_GT(pm.exec_time(w, 16), pm.exec_time(w, k)) << name;
  }

  // Section 4.4's anchor: dedup's optimal level is 4.
  EXPECT_EQ(pm.optimal_level(find_workload(suite, "dedup")), 4);
}

TEST(ParsecSuite, AggregateSpeedupsMatchFigure7Shape) {
  // Paper: NoC-sprinting 3.6x average vs full-sprinting 1.9x.
  const PerfModel pm(16);
  double sum_opt = 0.0, sum_full = 0.0;
  const auto suite = parsec_suite();
  for (const WorkloadParams& w : suite) {
    sum_opt += pm.speedup(w, pm.optimal_level(w));
    sum_full += pm.speedup(w, 16);
  }
  const double avg_opt = sum_opt / static_cast<double>(suite.size());
  const double avg_full = sum_full / static_cast<double>(suite.size());
  EXPECT_NEAR(avg_opt, 3.6, 0.4);
  EXPECT_GT(avg_opt, 1.4 * avg_full);  // the paper's headline gap
}

TEST(ParsecSuite, FindWorkload) {
  const auto suite = parsec_suite();
  EXPECT_EQ(find_workload(suite, "dedup").name, "dedup");
  EXPECT_THROW(find_workload(suite, "doom3"), std::out_of_range);
}

TEST(Calibration, WorksForOtherMachineSizes) {
  CalibrationTarget t;
  t.name = "mid";
  t.optimal_cores = 4;
  t.speedup_optimal = 2.5;
  t.speedup_full = 1.5;
  for (int n_max : {8, 32, 64}) {
    const WorkloadParams w = calibrate_workload(t, n_max);
    const PerfModel pm(n_max);
    EXPECT_EQ(pm.optimal_level(w), 4) << n_max;
  }
}

}  // namespace
}  // namespace nocs::cmp
