// Tests for the floorplan rasterization and the HotSpot-style grid solver.
#include <gtest/gtest.h>

#include <numeric>

#include "thermal/grid.hpp"

namespace nocs::thermal {
namespace {

TEST(Floorplan, PowerMapConservesTotalPower) {
  Floorplan fp(10.0, 10.0);
  fp.add_block({"a", 0.0, 0.0, 5.0, 5.0, 7.0});
  fp.add_block({"b", 5.0, 5.0, 5.0, 5.0, 3.0});
  for (int cells : {4, 16, 33}) {
    const std::vector<Watts> map = fp.power_map(cells, cells);
    const double sum = std::accumulate(map.begin(), map.end(), 0.0);
    EXPECT_NEAR(sum, 10.0, 1e-6) << cells;
  }
  EXPECT_DOUBLE_EQ(fp.total_power(), 10.0);
}

TEST(Floorplan, PowerLandsInTheRightCells) {
  Floorplan fp(8.0, 8.0);
  fp.add_block({"hot", 0.0, 0.0, 4.0, 4.0, 4.0});  // top-left quadrant
  const std::vector<Watts> map = fp.power_map(4, 4);
  // Cells are 2x2 mm; the block covers cells (0,0),(1,0),(0,1),(1,1).
  EXPECT_NEAR(map[0], 1.0, 1e-9);
  EXPECT_NEAR(map[1], 1.0, 1e-9);
  EXPECT_NEAR(map[4], 1.0, 1e-9);
  EXPECT_NEAR(map[5], 1.0, 1e-9);
  EXPECT_NEAR(map[15], 0.0, 1e-9);  // bottom-right empty
}

TEST(Floorplan, PartialOverlapSplitsProportionally) {
  Floorplan fp(4.0, 4.0);
  fp.add_block({"straddle", 1.0, 0.0, 2.0, 2.0, 2.0});  // spans 2 cells
  const std::vector<Watts> map = fp.power_map(2, 2);
  EXPECT_NEAR(map[0], 1.0, 1e-9);
  EXPECT_NEAR(map[1], 1.0, 1e-9);
}

TEST(Floorplan, RejectsOutOfDieBlocks) {
  Floorplan fp(5.0, 5.0);
  EXPECT_DEATH(fp.add_block({"bad", 4.0, 0.0, 2.0, 1.0, 1.0}),
               "precondition");
}

TEST(CmpFloorplan, BuildsGridOfNodeBlocks) {
  const MeshShape mesh(4, 4);
  std::vector<Watts> powers(16, 1.0);
  const Floorplan fp = make_cmp_floorplan(mesh, 12.0, 12.0, powers,
                                          identity_positions(16));
  ASSERT_EQ(fp.blocks().size(), 16u);
  EXPECT_DOUBLE_EQ(fp.total_power(), 16.0);
  EXPECT_DOUBLE_EQ(fp.blocks()[0].w_mm, 3.0);
  // Node 5 = (1,1) sits at (3mm, 3mm) under identity placement.
  EXPECT_DOUBLE_EQ(fp.blocks()[5].x_mm, 3.0);
  EXPECT_DOUBLE_EQ(fp.blocks()[5].y_mm, 3.0);
}

TEST(CmpFloorplan, PositionsRemapPhysicalSlots) {
  const MeshShape mesh(2, 2);
  std::vector<Watts> powers = {5.0, 0.0, 0.0, 0.0};
  std::vector<int> positions = {3, 1, 2, 0};  // logical 0 -> slot 3
  const Floorplan fp = make_cmp_floorplan(mesh, 10.0, 10.0, powers, positions);
  EXPECT_DOUBLE_EQ(fp.blocks()[0].x_mm, 5.0);  // slot 3 = (1,1)
  EXPECT_DOUBLE_EQ(fp.blocks()[0].y_mm, 5.0);
  EXPECT_DOUBLE_EQ(fp.blocks()[0].power, 5.0);
}

class SolverTest : public ::testing::Test {
 protected:
  GridThermalParams gp_;
  static constexpr double kDie = 12.0;
};

TEST_F(SolverTest, ZeroPowerStaysAmbient) {
  const GridThermalModel model(gp_, kDie, kDie);
  Floorplan fp(kDie, kDie);
  const TemperatureField field = model.solve_steady(fp);
  EXPECT_NEAR(field.peak(), gp_.ambient, 1e-3);
  EXPECT_NEAR(field.average(), gp_.ambient, 1e-3);
}

TEST_F(SolverTest, UniformPowerPeaksInCenter) {
  const GridThermalModel model(gp_, kDie, kDie);
  Floorplan fp(kDie, kDie);
  fp.add_block({"all", 0.0, 0.0, kDie, kDie, 60.0});
  const TemperatureField field = model.solve_steady(fp);
  const int cx = field.die_cells_x() / 2;
  const int cy = field.die_cells_y() / 2;
  EXPECT_GT(field.at(cx, cy), field.at(0, 0));
  EXPECT_GT(field.at(cx, cy), gp_.ambient + 5.0);
  // Four corners roughly equal by symmetry.
  const int mx = field.die_cells_x() - 1;
  const int my = field.die_cells_y() - 1;
  EXPECT_NEAR(field.at(0, 0), field.at(mx, my), 0.5);
  EXPECT_NEAR(field.at(mx, 0), field.at(0, my), 0.5);
}

TEST_F(SolverTest, HotBlockCreatesLocalHotspot) {
  const GridThermalModel model(gp_, kDie, kDie);
  Floorplan fp(kDie, kDie);
  fp.add_block({"hot", 0.0, 0.0, 3.0, 3.0, 10.0});  // top-left corner
  const TemperatureField field = model.solve_steady(fp);
  EXPECT_GT(field.at(1, 1), field.at(field.die_cells_x() - 2,
                                     field.die_cells_y() - 2) + 3.0);
}

TEST_F(SolverTest, MorePowerMeansHotter) {
  const GridThermalModel model(gp_, kDie, kDie);
  double prev_peak = 0.0;
  for (double p : {10.0, 30.0, 60.0}) {
    Floorplan fp(kDie, kDie);
    fp.add_block({"all", 0.0, 0.0, kDie, kDie, p});
    const Kelvin peak = model.solve_steady(fp).peak();
    EXPECT_GT(peak, prev_peak);
    prev_peak = peak;
  }
}

TEST_F(SolverTest, SteadyStateIsLinearInPower) {
  // The model is linear: doubling power doubles the temperature rise.
  const GridThermalModel model(gp_, kDie, kDie);
  Floorplan fp1(kDie, kDie);
  fp1.add_block({"a", 0.0, 0.0, kDie, kDie, 20.0});
  Floorplan fp2(kDie, kDie);
  fp2.add_block({"a", 0.0, 0.0, kDie, kDie, 40.0});
  const double rise1 = model.solve_steady(fp1).peak() - gp_.ambient;
  const double rise2 = model.solve_steady(fp2).peak() - gp_.ambient;
  EXPECT_NEAR(rise2 / rise1, 2.0, 0.02);
}

TEST_F(SolverTest, TransientConvergesToSteadyState) {
  const GridThermalModel model(gp_, kDie, kDie);
  Floorplan fp(kDie, kDie);
  fp.add_block({"all", 0.0, 0.0, kDie, kDie, 40.0});
  const TemperatureField steady = model.solve_steady(fp);
  TemperatureField field = model.ambient_field();
  model.step_transient(fp, field, 60.0);  // long enough to settle
  EXPECT_NEAR(field.peak(), steady.peak(), 1.0);
  EXPECT_NEAR(field.average(), steady.average(), 1.0);
}

TEST_F(SolverTest, TransientHeatsMonotonically) {
  const GridThermalModel model(gp_, kDie, kDie);
  Floorplan fp(kDie, kDie);
  fp.add_block({"all", 0.0, 0.0, kDie, kDie, 50.0});
  TemperatureField field = model.ambient_field();
  double prev = gp_.ambient;
  for (int i = 0; i < 5; ++i) {
    model.step_transient(fp, field, 0.05);
    EXPECT_GT(field.peak(), prev);
    prev = field.peak();
  }
}

TEST_F(SolverTest, StableDtPositiveAndSmall) {
  const GridThermalModel model(gp_, kDie, kDie);
  EXPECT_GT(model.stable_dt(), 0.0);
  EXPECT_LT(model.stable_dt(), 0.1);
}

TEST(Heatmap, RendersExpectedShape) {
  TemperatureField field(20, 20, 2, 300.0);
  const std::string map = render_heatmap(field, 16, 8);
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 8);
  EXPECT_EQ(map.size(), 8u * 17u);  // 16 chars + newline per row
}

}  // namespace
}  // namespace nocs::thermal
