// Tests for the ASCII table formatter.
#include <gtest/gtest.h>

#include "common/table.hpp"

namespace nocs {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"a", "1234"});
  t.add_row({"longer", "5"});
  const std::string out = t.to_string();
  // Header, rule, 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line has the same width (trailing pad keeps columns aligned).
  std::size_t start = 0;
  std::size_t expected = out.find('\n');
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "precondition");
}

TEST(Table, NumRows) {
  Table t({"x"});
  EXPECT_EQ(t.num_rows(), 0);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt(static_cast<long long>(-42)), "-42");
  EXPECT_EQ(Table::pct(0.255, 1), "25.5%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, ContainsCells) {
  Table t({"benchmark", "speedup"});
  t.add_row({"dedup", "2.10"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("benchmark"), std::string::npos);
  EXPECT_NE(out.find("dedup"), std::string::npos);
  EXPECT_NE(out.find("2.10"), std::string::npos);
}

}  // namespace
}  // namespace nocs
