// Tests for the DSENT-style router/link power models, including the
// Figure 2 shape properties.
#include <gtest/gtest.h>

#include "power/router_power.hpp"

namespace nocs::power {
namespace {

RouterPowerParams fig2_params(OperatingPoint op = kReferencePoint) {
  RouterPowerParams p;
  p.num_ports = 5;
  p.num_vcs = 2;
  p.vc_depth = 4;
  p.flit_bits = 128;
  p.tech = TechNode::k45nm;
  p.op = op;
  return p;
}

TEST(RouterPower, AllComponentsPositive) {
  const RouterPowerModel m(fig2_params());
  EXPECT_GT(m.buffer_write_energy(), 0.0);
  EXPECT_GT(m.buffer_read_energy(), 0.0);
  EXPECT_GT(m.crossbar_energy(), 0.0);
  EXPECT_GT(m.arbitration_energy(), 0.0);
  EXPECT_GT(m.clock_energy_per_cycle(), 0.0);
  EXPECT_GT(m.leakage_power(), 0.0);
}

TEST(RouterPower, Fig2MagnitudesAreMilliwatts) {
  // The canonical router at the reference point and 0.4 flits/cycle should
  // land in the single-digit-mW range DSENT reports at 45 nm.
  const RouterPowerModel m(fig2_params());
  const RouterPowerBreakdown b = m.at_injection(0.4);
  EXPECT_GT(b.total(), 1e-3);
  EXPECT_LT(b.total(), 20e-3);
}

TEST(RouterPower, Fig2LeakageShareGrowsAsVfScaleDown) {
  const OperatingPoint pts[] = {{1.0, 2.0e9}, {0.9, 1.5e9}, {0.75, 1.0e9}};
  double prev_share = 0.0;
  for (const OperatingPoint& op : pts) {
    const RouterPowerModel m(fig2_params(op));
    const RouterPowerBreakdown b = m.at_injection(0.4);
    const double share = b.leakage / b.total();
    EXPECT_GT(share, prev_share);
    prev_share = share;
  }
  // At the lowest point leakage exceeds dynamic (the paper's observation).
  const RouterPowerModel low(fig2_params({0.75, 1.0e9}));
  const RouterPowerBreakdown b = low.at_injection(0.4);
  EXPECT_GT(b.leakage, b.dynamic());
}

TEST(RouterPower, LeakageSignificantAtReference) {
  const RouterPowerModel m(fig2_params());
  const RouterPowerBreakdown b = m.at_injection(0.4);
  const double share = b.leakage / b.total();
  EXPECT_GT(share, 0.2);
  EXPECT_LT(share, 0.5);
}

TEST(RouterPower, DynamicScalesWithInjection) {
  const RouterPowerModel m(fig2_params());
  const auto lo = m.at_injection(0.1);
  const auto hi = m.at_injection(0.4);
  EXPECT_NEAR(hi.buffer_dynamic / lo.buffer_dynamic, 4.0, 1e-9);
  EXPECT_EQ(hi.leakage, lo.leakage);          // load-independent
  EXPECT_EQ(hi.clock_dynamic, lo.clock_dynamic);
}

TEST(RouterPower, EnergyScalesWithVoltageSquared) {
  const RouterPowerModel v10(fig2_params({1.0, 2.0e9}));
  const RouterPowerModel v05(fig2_params({0.5, 2.0e9}));
  EXPECT_NEAR(v05.buffer_write_energy() / v10.buffer_write_energy(), 0.25,
              1e-9);
  // Leakage scales ~linearly with V.
  EXPECT_NEAR(v05.leakage_power() / v10.leakage_power(), 0.5, 1e-9);
}

TEST(RouterPower, TechScalingReducesDynamicRaisesRelativeLeakage) {
  RouterPowerParams p45 = fig2_params();
  RouterPowerParams p22 = fig2_params();
  p22.tech = TechNode::k22nm;
  const RouterPowerModel m45(p45), m22(p22);
  EXPECT_LT(m22.crossbar_energy(), m45.crossbar_energy());
  EXPECT_GT(m22.leakage_power(), m45.leakage_power());
}

TEST(RouterPower, BiggerBuffersLeakMore) {
  RouterPowerParams small = fig2_params();
  RouterPowerParams big = fig2_params();
  big.num_vcs = 4;
  big.vc_depth = 8;
  EXPECT_GT(RouterPowerModel(big).leakage_power(),
            RouterPowerModel(small).leakage_power());
}

TEST(RouterPower, FromCountersMatchesAnalytic) {
  // A synthetic counter set describing the same steady activity as
  // at_injection(0.4) must give nearly the same answer.
  const RouterPowerModel m(fig2_params());
  const Cycle window = 10000;
  noc::RouterCounters c;
  c.buffer_writes = 4000;  // 0.4 flits/cycle
  c.buffer_reads = 4000;
  c.xbar_traversals = 4000;
  c.vc_allocs = 800;       // one per 5-flit packet
  c.sa_arbitrations = 4000;
  c.active_cycles = window;
  const RouterPowerBreakdown from_c = m.from_counters(c, window);
  const RouterPowerBreakdown analytic = m.at_injection(0.4);
  EXPECT_NEAR(from_c.buffer_dynamic, analytic.buffer_dynamic,
              0.05 * analytic.buffer_dynamic);
  EXPECT_NEAR(from_c.crossbar_dynamic, analytic.crossbar_dynamic, 1e-12);
  EXPECT_EQ(from_c.leakage, m.leakage_power());
  EXPECT_EQ(from_c.clock_dynamic, analytic.clock_dynamic);
}

TEST(RouterPower, GatedCyclesEliminateLeakage) {
  const RouterPowerModel m(fig2_params());
  const Cycle window = 1000;
  noc::RouterCounters gated;
  gated.gated_cycles = window;
  const RouterPowerBreakdown b = m.from_counters(gated, window);
  EXPECT_EQ(b.leakage, 0.0);
  EXPECT_EQ(b.total(), 0.0);

  noc::RouterCounters half;
  half.active_cycles = window / 2;
  half.gated_cycles = window / 2;
  EXPECT_NEAR(m.from_counters(half, window).leakage,
              0.5 * m.leakage_power(), 1e-12);
}

TEST(RouterPower, FromNetworkDerivesStructure) {
  noc::NetworkParams net;
  net.flit_bytes = 16;
  net.num_vcs = 4;
  net.vc_depth = 4;
  const RouterPowerParams p = RouterPowerParams::from_network(net);
  EXPECT_EQ(p.flit_bits, 128);
  EXPECT_EQ(p.num_vcs, 4);
  EXPECT_EQ(p.num_ports, 5);
}

TEST(LinkPower, ScalesWithLengthAndGatesToZero) {
  const LinkPowerModel short_link(128, 2.5, TechNode::k45nm,
                                  kReferencePoint);
  const LinkPowerModel long_link(128, 5.0, TechNode::k45nm,
                                 kReferencePoint);
  EXPECT_NEAR(long_link.traversal_energy() / short_link.traversal_energy(),
              2.0, 1e-9);
  EXPECT_GT(short_link.average_power(0.2, false),
            short_link.average_power(0.0, false));
  EXPECT_EQ(short_link.average_power(0.5, true), 0.0);
}

}  // namespace
}  // namespace nocs::power
