// End-to-end integration tests: the paper's headline comparisons run
// through the full stack (controller -> topology -> CDOR network ->
// simulator -> power models -> PCM).
#include <gtest/gtest.h>

#include "cmp/perf_model.hpp"
#include "noc/simulator.hpp"
#include "power/chip_power.hpp"
#include "power/noc_power.hpp"
#include "common/stats.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/sprint_controller.hpp"
#include "sprint/topology.hpp"
#include "thermal/grid.hpp"
#include "thermal/pcm.hpp"

namespace nocs {
namespace {

noc::NetworkParams table1() {
  noc::NetworkParams p;  // defaults are Table 1
  return p;
}

TEST(Integration, Figure11LatencyGapAt4CoreSprint) {
  noc::SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  cfg.injection_rate = 0.1;

  auto noc_b = sprint::make_noc_sprinting_network(table1(), 4, "uniform", 21);
  const noc::SimResults rn = run_simulation(*noc_b.network, cfg);

  RunningStat full_lat;
  for (std::uint64_t s = 0; s < 5; ++s) {
    auto full_b =
        sprint::make_full_sprinting_network(table1(), 4, "uniform", 21 + s);
    full_lat.add(run_simulation(*full_b.network, cfg).avg_packet_latency);
  }
  // The paper's 4-core gap is 45%; any reproduction must show a clear
  // double-digit cut.
  EXPECT_LT(rn.avg_packet_latency, 0.85 * full_lat.mean());
}

TEST(Integration, Figure11EarlierSaturationForNocSprinting) {
  // At very high load the sprint region (fewer links) saturates while the
  // spread-out full-sprint mapping still drains.
  noc::SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  cfg.drain_max = 2000;
  cfg.injection_rate = 0.95;

  auto noc_b = sprint::make_noc_sprinting_network(table1(), 8, "uniform", 33);
  const noc::SimResults rn = run_simulation(*noc_b.network, cfg);
  auto full_b =
      sprint::make_full_sprinting_network(table1(), 8, "uniform", 33);
  const noc::SimResults rf = run_simulation(*full_b.network, cfg);
  // NoC-sprinting is at least as saturated as full-sprinting, never less.
  EXPECT_GE(static_cast<int>(rn.saturated), static_cast<int>(rf.saturated));
  EXPECT_TRUE(rn.saturated);
}

TEST(Integration, Figure10NetworkPowerGap) {
  const auto rp = power::RouterPowerParams::from_network(table1());
  const power::RouterPowerModel router_model(rp);
  const power::LinkPowerModel link_model(128, 2.5, rp.tech, rp.op);

  noc::SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  cfg.injection_rate = 0.15;

  auto noc_b = sprint::make_noc_sprinting_network(table1(), 4, "uniform", 5);
  const noc::SimResults rn = run_simulation(*noc_b.network, cfg);
  const Watts p_noc = power::estimate_noc_power(*noc_b.network, router_model,
                                                link_model, rn.cycles)
                          .total();

  auto full_b =
      sprint::make_full_sprinting_network(table1(), 4, "uniform", 5);
  const noc::SimResults rf = run_simulation(*full_b.network, cfg);
  const Watts p_full = power::estimate_noc_power(
                           *full_b.network, router_model, link_model,
                           rf.cycles)
                           .total();
  EXPECT_LT(p_noc, 0.5 * p_full);  // paper: 62% saving at 4-core sprint
}

TEST(Integration, CdorNeverWakesDarkRoutersUnderStress) {
  // Sustained high load on every sprint level: no dark router may ever
  // receive a flit (wake_events == 0) and every measured packet drains.
  for (int level : {2, 3, 5, 7, 8, 11, 13}) {
    auto b = sprint::make_noc_sprinting_network(table1(), level, "uniform",
                                                100 + level);
    noc::SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 2000;
    cfg.injection_rate = 0.25;
    cfg.drain_max = 200000;
    const noc::SimResults r = run_simulation(*b.network, cfg);
    EXPECT_EQ(b.network->total_counters().wake_events, 0u)
        << "level " << level;
    EXPECT_FALSE(r.saturated) << "level " << level;
  }
}

TEST(Integration, DeadlockStressOnConvexRegions) {
  // Near-saturation load with long drains — a deadlock would stall the
  // drain and trip the budget.
  for (int level : {4, 8, 12, 16}) {
    auto b = sprint::make_noc_sprinting_network(table1(), level, "uniform",
                                                200 + level);
    noc::SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 3000;
    cfg.injection_rate = 0.55;
    cfg.drain_max = 300000;
    const noc::SimResults r = run_simulation(*b.network, cfg);
    EXPECT_FALSE(r.saturated) << "possible deadlock at level " << level;
    EXPECT_EQ(r.packets_ejected, r.packets_generated);
  }
}

TEST(Integration, DynamicGatingStillDeliversEverything) {
  noc::NetworkParams p = table1();
  p.gate_idle_threshold = 8;
  p.wakeup_latency = 6;
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  net.set_endpoints(net.params().shape().all_nodes(),
                    noc::make_traffic("uniform", 16));
  net.set_dynamic_gating(true);
  net.set_seed(55);
  noc::SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  cfg.injection_rate = 0.02;  // sparse: gating kicks in between packets
  const noc::SimResults r = run_simulation(net, cfg);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.packets_ejected, r.packets_generated);
  EXPECT_GT(net.total_counters().wake_events, 0u);
  EXPECT_GT(net.total_counters().gated_cycles, 0u);
}

TEST(Integration, EndToEndPlanForDedupMatchesPaperStory) {
  // The paper's Section 4.4 walk-through: dedup sprints at level 4,
  // saving power, cutting latency, extending duration vs full-sprinting.
  const MeshShape mesh(4, 4);
  const cmp::PerfModel perf(16);
  const power::ChipPowerModel chip{power::ChipPowerParams{}};
  const thermal::PcmModel pcm{thermal::PcmParams{}};
  const sprint::SprintController ctl(mesh, perf, chip, pcm);
  const auto suite = cmp::parsec_suite(16);
  const auto& dedup = cmp::find_workload(suite, "dedup");

  const auto full = ctl.plan(dedup, sprint::SprintMode::kFullSprinting);
  const auto noc = ctl.plan(dedup, sprint::SprintMode::kNocSprinting);

  EXPECT_EQ(noc.level, 4);
  EXPECT_GT(noc.speedup, 2.0);
  EXPECT_LT(full.speedup, 1.0);  // dedup degrades at 16 cores
  EXPECT_LT(noc.chip_power, 0.5 * full.chip_power);
  EXPECT_GT(noc.sprint_duration, 2.0 * full.sprint_duration);
}

TEST(Integration, ThermalOrderingAcrossSchemes) {
  // Steady-state peaks: full > fine-grained cluster > floorplanned.
  const MeshShape mesh(4, 4);
  const power::ChipPowerParams chip{};
  const thermal::GridThermalModel model(thermal::GridThermalParams{}, 12.0,
                                        12.0);
  auto powers = [&](const std::vector<NodeId>& active) {
    std::vector<Watts> p(16, chip.core_gated + chip.l2_tile +
                                 chip.noc_gated_node);
    for (NodeId id : active)
      p[static_cast<std::size_t>(id)] =
          chip.core_active + chip.l2_tile + chip.noc_per_node;
    return p;
  };
  const auto identity = thermal::identity_positions(16);
  const auto remap = sprint::thermal_aware_floorplan(mesh, 0).positions;
  const auto all = mesh.all_nodes();
  const auto four = sprint::active_set(mesh, 4, 0);

  const Kelvin full = model
                          .solve_steady(thermal::make_cmp_floorplan(
                              mesh, 12.0, 12.0, powers(all), identity))
                          .peak();
  const Kelvin fine = model
                          .solve_steady(thermal::make_cmp_floorplan(
                              mesh, 12.0, 12.0, powers(four), identity))
                          .peak();
  const Kelvin planned = model
                             .solve_steady(thermal::make_cmp_floorplan(
                                 mesh, 12.0, 12.0, powers(four), remap))
                             .peak();
  EXPECT_GT(full, fine);
  EXPECT_GT(fine, planned);
  // Paper magnitudes: 358.3 / 347.8 / 343.8 K.
  EXPECT_NEAR(full, 358.3, 4.0);
  EXPECT_NEAR(fine, 347.8, 4.0);
}

}  // namespace
}  // namespace nocs
